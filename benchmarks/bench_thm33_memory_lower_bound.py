"""Benchmark E6 — Theorem 3.3: memory/closeness tradeoff curve.

Times the quick-scale regeneration of this paper artifact and asserts
every measured-vs-theory claim passes (see DESIGN.md experiment index).
"""

from benchmarks._common import run_experiment_benchmark


def test_thm33_memory_lower_bound(benchmark):
    run_experiment_benchmark(benchmark, "E6")
