"""CI benchmark-regression gate for the counting-engine benchmark record.

Compares a fresh benchmark run (``BENCH_fresh.json``, produced by
``benchmarks/bench_join_kernel.py`` in the CI benchmark step) against the
committed baseline (``BENCH_counting.json``) and fails the build when the
performance trajectory regresses:

* **timings** — every numeric leaf whose key mentions ``seconds`` (e.g.
  ``seconds_per_call``, ``dp_nocache_seconds``) must not exceed its
  baseline value by more than the slowdown budget (default 1.5x);
  absolute wall-times are only comparable between machines of similar
  speed, so the committed baseline must be recorded on (or re-recorded
  from) the runner class that executes the gate — refresh it with
  ``python benchmarks/bench_join_kernel.py --json BENCH_counting.json``
  (e.g. from the uploaded ``BENCH_fresh`` artifact of a trusted green
  run) whenever the CI hardware changes or the gate starts failing
  uniformly across all timing leaves.  A slower-than-budget machine
  shows up as *every* leaf failing at a similar ratio; a real
  regression shows up in the specific kernel or scenario that changed;
* **speedup floors** — the baseline's ``floors`` table maps dotted
  record paths (``"join_kernel_methods.k=8192.speedup_vs_dp"``) to the
  minimum acceptable value of that ratio in the fresh run.  Ratios of
  two same-machine timings are machine-independent, so floors are exact
  requirements, not budgets;
* **coverage** — a timing or floored path present in the baseline but
  missing from the fresh record fails too: silently dropping a benchmark
  must not pass the gate.

Exit status 0 means no regression; 1 means at least one violation (all
are printed, not just the first).  The gate's own behaviour — including
"a synthetic 2x slowdown must fail" — is pinned by
``tests/benchmarks/test_check_regression.py``.
"""

from __future__ import annotations

import argparse
import json
from typing import Any, Iterator

DEFAULT_MAX_SLOWDOWN = 1.5

#: Key substring marking a lower-is-better wall-time leaf.
TIMING_MARKER = "seconds"

#: Record keys never treated as benchmark measurements.
METADATA_KEYS = frozenset({"floors"})


def iter_numeric_leaves(record: Any, prefix: str = "") -> Iterator[tuple[str, float]]:
    """Yield ``(dotted_path, value)`` for every numeric leaf of ``record``."""
    if isinstance(record, dict):
        for key, value in record.items():
            if not prefix and key in METADATA_KEYS:
                continue
            path = f"{prefix}.{key}" if prefix else str(key)
            yield from iter_numeric_leaves(value, path)
    elif isinstance(record, bool):
        return
    elif isinstance(record, (int, float)):
        yield prefix, float(record)


def lookup(record: Any, path: str) -> float | None:
    """The numeric leaf at dotted ``path``, or ``None`` if absent."""
    node = record
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        return None
    return float(node)


def check_regressions(
    baseline: dict, fresh: dict, *, max_slowdown: float = DEFAULT_MAX_SLOWDOWN
) -> list[str]:
    """All gate violations of ``fresh`` against ``baseline`` (empty = pass)."""
    violations: list[str] = []

    for path, base_value in iter_numeric_leaves(baseline):
        if TIMING_MARKER not in path.rsplit(".", 1)[-1]:
            continue
        fresh_value = lookup(fresh, path)
        if fresh_value is None:
            violations.append(f"timing {path}: present in baseline but missing from fresh run")
            continue
        if base_value > 0 and fresh_value > base_value * max_slowdown:
            violations.append(
                f"timing {path}: {fresh_value:.6g}s is {fresh_value / base_value:.2f}x "
                f"the baseline {base_value:.6g}s (budget {max_slowdown:.2f}x)"
            )

    floors = baseline.get("floors", {})
    if not isinstance(floors, dict):
        violations.append("baseline 'floors' table is not a mapping")
        floors = {}
    for path, floor in floors.items():
        fresh_value = lookup(fresh, path)
        if fresh_value is None:
            violations.append(f"floored ratio {path}: missing from fresh run")
        elif fresh_value < float(floor):
            violations.append(
                f"ratio {path}: {fresh_value:.3f} dropped below its floor {float(floor):.3f}"
            )
    return violations


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        default="BENCH_counting.json",
        help="committed baseline benchmark record",
    )
    parser.add_argument(
        "--fresh",
        default="BENCH_fresh.json",
        help="benchmark record produced by this CI run",
    )
    parser.add_argument(
        "--max-slowdown",
        type=float,
        default=DEFAULT_MAX_SLOWDOWN,
        help="largest tolerated fresh/baseline ratio for any timing leaf",
    )
    args = parser.parse_args(argv)
    if args.max_slowdown <= 0:
        parser.error("--max-slowdown must be positive")

    with open(args.baseline, encoding="utf-8") as f:
        baseline = json.load(f)
    with open(args.fresh, encoding="utf-8") as f:
        fresh = json.load(f)

    violations = check_regressions(baseline, fresh, max_slowdown=args.max_slowdown)
    if violations:
        print(f"benchmark regression gate FAILED ({len(violations)} violation(s)):")
        for violation in violations:
            print(f"  - {violation}")
        return 1
    n_timings = sum(
        1
        for path, _ in iter_numeric_leaves(baseline)
        if TIMING_MARKER in path.rsplit(".", 1)[-1]
    )
    print(
        f"benchmark regression gate passed: {n_timings} timings within "
        f"{args.max_slowdown:.2f}x, {len(baseline.get('floors', {}))} ratio floors held"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
