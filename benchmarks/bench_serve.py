"""Scenario-service load benchmark: concurrent clients replay a hot/cold trace.

Two entry points, like ``bench_scheduler.py``:

* under pytest (``pytest benchmarks/bench_serve.py``) the cases assert
  the service's dedup accounting and response byte-identity on a small
  trace;
* as a script (``python benchmarks/bench_serve.py --json
  BENCH_serve.json``) it stands up a real HTTP server
  (:class:`repro.serve.BackgroundServer`) over a fresh store, replays a
  mixed trace — 8 cold points computed once, then 8 concurrent clients
  hammering those same points 25 times each over keep-alive
  connections — and records p50/p99 latency, throughput, and the dedup
  ratio into the ``floors`` table the CI regression gate
  (``benchmarks/check_regression.py --baseline BENCH_serve.json``)
  enforces.

What the floors measure — and deliberately do not measure: the service's
job is to make *repeated* requests free (digest dedup against the
content-addressed store) while cold requests pay exactly one
computation.  So the gate pins

* ``dedup_ratio`` — the fraction of trace requests served without
  computing (a property of the dedup logic, not of the host: the trace
  composition fixes the ideal at 200/208 ≈ 0.96, and the floor of 0.9
  fails if any repeat request ever reaches a worker);
* ``cached_speedup_p50`` — cold p50 over hot p50, a ratio of two
  same-machine timings (machine-independent): a cache hit must be at
  least 3x faster than computing the point, or serving from the store
  has stopped being the point of the service;
* ``hot_requests_per_second`` — a deliberately conservative absolute
  floor (any functioning event loop exceeds it by an order of
  magnitude) that catches the service accidentally serializing hits
  behind the compute queue.

The absolute ``*_seconds`` leaves ride the generic 1.5x timing budget
and document the latency trajectory across PRs.

Every client's response for a given point is byte-compared against the
first response for that point before any timing is reported: concurrency
that changed a single response byte would be worse than no concurrency.
"""

from __future__ import annotations

import argparse
import http.client
import json
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.obs import monotonic as obs_monotonic
from repro.scenario import ScenarioSpec
from repro.serve import BackgroundServer, ScenarioService
from repro.store import ResultStore

BENCH_K = 8
BENCH_N = 4_000
BENCH_ROUNDS = 1_000
BENCH_TRIALS = 1
#: The cold side of the trace: distinct sweep points, each computed once.
GAMMA_VALUES = [round(0.02 + 0.005 * i, 3) for i in range(8)]
#: The hot side: concurrent clients replaying the cold points.
CLIENTS = 8
HOT_REQUESTS_PER_CLIENT = 25

DEDUP_RATIO_FLOOR = 0.9
CACHED_SPEEDUP_FLOOR = 3.0
HOT_THROUGHPUT_FLOOR = 25.0

#: Cold-point poll cadence; fine-grained so measured cold latency tracks
#: the compute time, not the polling quantum.
POLL_SECONDS = 0.01


def _base_spec() -> ScenarioSpec:
    return ScenarioSpec(
        algorithm={"name": "ant", "params": {"gamma": 0.025}},
        demand={"name": "powerlaw", "params": {"n": BENCH_N, "k": BENCH_K, "alpha": 1.0}},
        feedback={"name": "exact"},
        engine={"name": "counting"},
        rounds=BENCH_ROUNDS,
        seed=11,
        label="serve-bench",
    )


def _payload(gamma: float) -> bytes:
    body = {
        "spec": _base_spec().to_dict(),
        "params": {"algorithm.gamma": gamma},
        "trials": BENCH_TRIALS,
    }
    return json.dumps(body).encode("utf-8")


def _request(conn: http.client.HTTPConnection, method: str, path: str, body: bytes | None = None):
    conn.request(method, path, body=body, headers={"Content-Type": "application/json"})
    response = conn.getresponse()
    return response.status, response.read()


def _run_cold(conn: http.client.HTTPConnection, gammas: list[float]) -> tuple[list[float], dict]:
    """POST each distinct point, poll it to 200; returns latencies + bodies."""
    latencies = []
    bodies: dict[float, bytes] = {}
    for gamma in gammas:
        t0 = obs_monotonic()
        status, raw = _request(conn, "POST", "/scenarios", _payload(gamma))
        assert status == 202, f"cold POST for gamma={gamma} answered {status}: {raw!r}"
        digest = json.loads(raw)["digest"]
        while True:
            status, raw = _request(conn, "GET", f"/results/{digest}")
            if status == 200:
                break
            assert status == 202, f"poll for {digest[:12]} answered {status}: {raw!r}"
            time.sleep(POLL_SECONDS)
        latencies.append(obs_monotonic() - t0)
        bodies[gamma] = raw
    return latencies, bodies


def _hot_client(
    port: int,
    gammas: list[float],
    offset: int,
    n_requests: int,
    reference: dict,
    out_latencies: list[float],
    errors: list[str],
    barrier: threading.Barrier,
) -> None:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        barrier.wait()
        for i in range(n_requests):
            gamma = gammas[(offset + i) % len(gammas)]
            t0 = obs_monotonic()
            status, raw = _request(conn, "POST", "/scenarios", _payload(gamma))
            out_latencies.append(obs_monotonic() - t0)
            if status != 200:
                errors.append(f"hot POST for gamma={gamma} answered {status}")
                return
            if raw != reference[gamma]:
                errors.append(f"hot response for gamma={gamma} differs from the cold body")
                return
    finally:
        conn.close()


def _run_trace(
    gammas: list[float] = GAMMA_VALUES,
    clients: int = CLIENTS,
    hot_per_client: int = HOT_REQUESTS_PER_CLIENT,
    workers: int = 2,
) -> dict:
    """Replay the cold-then-hot trace against a live server; one record row."""
    with tempfile.TemporaryDirectory() as tmp:
        service = ScenarioService(ResultStore(Path(tmp) / "store"), workers=workers)
        with BackgroundServer(service) as server:
            conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
            cold_latencies, reference = _run_cold(conn, gammas)

            hot_latencies: list[list[float]] = [[] for _ in range(clients)]
            errors: list[str] = []
            barrier = threading.Barrier(clients)
            threads = [
                threading.Thread(
                    target=_hot_client,
                    args=(
                        server.port,
                        gammas,
                        index,
                        hot_per_client,
                        reference,
                        hot_latencies[index],
                        errors,
                        barrier,
                    ),
                    name=f"bench-client-{index}",
                )
                for index in range(clients)
            ]
            t0 = obs_monotonic()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            hot_elapsed = obs_monotonic() - t0
            assert not errors, errors

            status, raw = _request(conn, "GET", "/status")
            assert status == 200, (status, raw)
            counters = json.loads(raw)
            conn.close()

    # The accounting must be exact before any timing means anything:
    # every cold point computed once, every hot request a store hit.
    n_hot = clients * hot_per_client
    assert counters["computed"] == len(gammas), counters
    assert counters["misses"] == len(gammas), counters
    assert counters["hits"] == n_hot, counters
    assert counters["failed"] == 0, counters

    hot_all = np.array([lat for per_client in hot_latencies for lat in per_client])
    cold_all = np.array(cold_latencies)
    dedup_ratio = counters["hits"] / (counters["hits"] + counters["misses"])
    row = {
        "points": len(gammas),
        "clients": clients,
        "hot_requests": n_hot,
        "computed": counters["computed"],
        "coalesced": counters["coalesced"],
        "dedup_ratio": dedup_ratio,
        "cold_p50_seconds": float(np.percentile(cold_all, 50)),
        "hot_p50_seconds": float(np.percentile(hot_all, 50)),
        "hot_p99_seconds": float(np.percentile(hot_all, 99)),
        "hot_requests_per_second": n_hot / hot_elapsed,
        "cached_speedup_p50": float(np.percentile(cold_all, 50) / np.percentile(hot_all, 50)),
    }
    return row


# ----------------------------------------------------------------------
# pytest cases


def test_small_trace_dedup_accounting_and_byte_identity():
    """2 points x 3 clients x 4 requests: exact counters, identical bodies."""
    row = _run_trace(gammas=GAMMA_VALUES[:2], clients=3, hot_per_client=4, workers=1)
    assert row["computed"] == 2
    assert row["dedup_ratio"] == 12 / 14


def test_full_trace_meets_floors():
    """The committed trace shape meets every floor the CI gate enforces."""
    row = _run_trace()
    assert row["dedup_ratio"] >= DEDUP_RATIO_FLOOR
    assert row["cached_speedup_p50"] >= CACHED_SPEEDUP_FLOOR
    assert row["hot_requests_per_second"] >= HOT_THROUGHPUT_FLOOR


# ----------------------------------------------------------------------
# Standalone recorder (CI writes the benchmark record with this)


def collect() -> dict:
    row = _run_trace()
    assert row["dedup_ratio"] >= DEDUP_RATIO_FLOOR, row
    assert row["cached_speedup_p50"] >= CACHED_SPEEDUP_FLOOR, row
    record: dict = {"serve": {"hot_trace": row}}
    record["floors"] = {
        "serve.hot_trace.dedup_ratio": DEDUP_RATIO_FLOOR,
        "serve.hot_trace.cached_speedup_p50": CACHED_SPEEDUP_FLOOR,
        "serve.hot_trace.hot_requests_per_second": HOT_THROUGHPUT_FLOOR,
    }
    return record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", default="BENCH_serve.json",
                        help="output path for the benchmark record")
    args = parser.parse_args(argv)
    record = collect()
    with open(args.json, "w", encoding="utf-8") as f:
        json.dump(record, f, indent=2, sort_keys=True)
    row = record["serve"]["hot_trace"]
    print(
        f"{row['points']} cold points + {row['hot_requests']} hot requests from "
        f"{row['clients']} clients: dedup {row['dedup_ratio']:.3f}, "
        f"hot p50 {1e3 * row['hot_p50_seconds']:.2f}ms "
        f"(p99 {1e3 * row['hot_p99_seconds']:.2f}ms), "
        f"{row['hot_requests_per_second']:.0f} req/s, "
        f"cache hits {row['cached_speedup_p50']:.1f}x faster than cold"
    )
    print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
