"""Observability overhead benchmark: instrumented vs traced engine runs.

The obs spine (:mod:`repro.obs`) promises to be *nearly free*: metric
counters are always on (one lock-guarded increment per cache lookup)
and installing a tracer — which appends a canonical-JSON line per
engine span, kernel miss, and cache-stats event — must cost at most a
few percent of wall time on a realistic counting run.

Two entry points, mirroring the other benchmark modules:

* under pytest (``pytest benchmarks/bench_obs.py``) the comparison is an
  assertion-bearing test case: traced throughput must stay above
  ``OBS_EFFICIENCY_FLOOR`` of the bare (metrics-only) run, and the two
  runs' statistics must be bit-identical — instrumentation that speeds
  up or slows down by *changing the computation* must fail loudly;
* as a script (``python benchmarks/bench_obs.py --json BENCH_obs.json``)
  it writes the ``obs_overhead`` section plus its floor so
  ``check_regression.py`` gates the ratio in CI.

The workload is an Ant run at k = 64: every round touches the pi-cache
counters (the hottest instrumented path), early rounds miss the
join-kernel cache (each miss emits a span), and the run itself is
wrapped in a ``counting_run`` span — i.e. every obs code path is
exercised at its real-world frequency, not synthetically.
"""

from __future__ import annotations

import argparse
import json
import tempfile
from pathlib import Path

import numpy as np

from repro.core.ant import AntAlgorithm
from repro.env.critical import lambda_for_critical_value
from repro.env.demands import uniform_demands
from repro.env.feedback import SigmoidFeedback
from repro.obs import monotonic as obs_monotonic
from repro.obs import trace_to
from repro.sim.counting import CountingSimulator

K = 64
N = 100 * K
ROUNDS = 3000
REPEATS = 5
SEED = 7

#: Minimum traced/bare throughput ratio (<= 5% overhead).  Measured
#: ~0.99 on the reference machine: trace lines are written only on
#: kernel misses and span boundaries, so the steady state pays one
#: counter increment per round and nothing else.
OBS_EFFICIENCY_FLOOR = 0.95


def _factory() -> CountingSimulator:
    demand = uniform_demands(n=N, k=K)
    lam = lambda_for_critical_value(demand, gamma_star=0.01)
    return CountingSimulator(AntAlgorithm(gamma=0.025), demand, SigmoidFeedback(lam), seed=SEED)


def _comparison() -> dict:
    """Bare vs traced wall time of the same run, paired per repetition.

    Fresh simulators every repetition (cold per-run caches on both
    paths) and a fresh trace file per traced repetition (appending to
    one growing file would bill later repetitions for earlier lines).
    The efficiency is the *best paired ratio* across repetitions: bare
    and traced runs alternate back-to-back, so one repetition where
    traced keeps up with bare proves the instrumentation is not
    inherently costly — whereas a ratio of two independent minima is
    at the mercy of machine-load drift between the two sweeps (this
    gate runs on shared CI runners).
    """
    # Warm-up: imports, scipy machinery, demand/lambda construction.
    _factory().run(min(ROUNDS, 64))

    bare_times: list[float] = []
    traced_times: list[float] = []
    bare_out = traced_out = None
    trace_lines = 0
    with tempfile.TemporaryDirectory() as tmp:
        for rep in range(REPEATS):
            t0 = obs_monotonic()
            bare_out = _factory().run(ROUNDS)
            bare_times.append(obs_monotonic() - t0)

            trace_path = Path(tmp) / f"rep{rep}.jsonl"
            sim = _factory()
            t0 = obs_monotonic()
            with trace_to(trace_path):
                traced_out = sim.run(ROUNDS)
            traced_times.append(obs_monotonic() - t0)
            trace_lines = sum(1 for _ in trace_path.open(encoding="utf-8"))

    # The null-overhead invariant, at benchmark scale: tracing never
    # changes the trajectory.
    assert bare_out.metrics.cumulative_regret == traced_out.metrics.cumulative_regret
    assert np.array_equal(bare_out.metrics.final_loads, traced_out.metrics.final_loads)

    t_bare = min(bare_times)
    t_traced = min(traced_times)
    efficiency = max(b / t for b, t in zip(bare_times, traced_times))
    assert efficiency >= OBS_EFFICIENCY_FLOOR, (
        f"traced run at {efficiency:.3f}x bare throughput "
        f"(floor {OBS_EFFICIENCY_FLOOR}) — obs instrumentation got expensive"
    )
    return {
        "k": K,
        "n": N,
        "rounds": ROUNDS,
        "bare_seconds": t_bare,
        "traced_seconds": t_traced,
        "trace_lines": trace_lines,
        "efficiency": efficiency,
    }


# ----------------------------------------------------------------------
# pytest case


def test_obs_overhead_within_budget():
    """Tracing costs <= 5% wall time and is byte-transparent to the run."""
    _comparison()


# ----------------------------------------------------------------------
# Standalone recorder (CI gates this against the committed BENCH_obs.json)


def collect() -> dict:
    """The ``obs_overhead`` section and its regression floor."""
    row = _comparison()
    return {
        "obs_overhead": {f"k={K}": row},
        "floors": {f"obs_overhead.k={K}.efficiency": OBS_EFFICIENCY_FLOOR},
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json",
        default="BENCH_obs.json",
        help="benchmark record to write the obs_overhead section into",
    )
    args = parser.parse_args(argv)
    record = collect()
    with open(args.json, "w", encoding="utf-8") as f:
        json.dump(record, f, indent=2, sort_keys=True)

    row = record["obs_overhead"][f"k={K}"]
    print(
        f"obs overhead at k={K}, rounds={ROUNDS}: bare {row['bare_seconds']:.3f}s, "
        f"traced {row['traced_seconds']:.3f}s ({row['trace_lines']} trace lines, "
        f"efficiency {row['efficiency']:.3f})"
    )
    print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
