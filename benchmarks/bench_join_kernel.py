"""Join-kernel and many-task counting-engine benchmarks.

Two entry points:

* under pytest-benchmark (``pytest benchmarks/bench_join_kernel.py
  --benchmark-only``) each timing is a named benchmark case;
* as a script (``python benchmarks/bench_join_kernel.py --json
  BENCH_counting.json``) it times the same cases without the plugin and
  records kernel + counting-engine throughput to a JSON file, which CI
  uploads so the performance trajectory of the hot path is tracked.

Both modes assert the PR acceptance criteria accumulated so far: the
O(k^2) exact kernel is >= 10x faster than subset enumeration at k = 12;
an exact counting run at k = 64 (impossible under the old ``2^k``
enumerator) completes; the FFT Poisson-binomial PMF beats the O(k^2) DP
PMF at k = 1024; and a heterogeneous k = 1024 counting scenario runs
faster on the FFT + pi-cache path than on plain DP with the cache off.
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from repro.core.ant import AntAlgorithm
from repro.env.critical import lambda_for_critical_value
from repro.env.demands import powerlaw_demands, uniform_demands
from repro.env.feedback import ExactBinaryFeedback, SigmoidFeedback
from repro.sim.counting import CountingSimulator
from repro.util.mathx import (
    enumerate_subset_join_probabilities,
    exact_join_probabilities,
    fft_poisson_binomial_pmf,
    poisson_binomial_pmf,
)

SPEEDUP_FLOOR = 10.0  # required kernel speedup over enumeration at k = 12
FFT_PMF_SPEEDUP_FLOOR = 2.0  # required FFT-over-DP PMF speedup at k = 1024
ENUM_K = 12
KERNEL_KS = (12, 64, 256, 1024)
FFT_K = 1024
ENGINE_KS = (4, 64, 256)
ENGINE_ROUNDS = 500
HET_ENGINE_K = 1024
HET_ENGINE_ROUNDS = 300


def _kernel_inputs(k: int) -> np.ndarray:
    return np.random.default_rng(k).random(k)


def _time(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall time of ``fn()`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _engine_for(k: int) -> CountingSimulator:
    demand = uniform_demands(n=1000 * k, k=k)
    lam = lambda_for_critical_value(demand, gamma_star=0.01)
    return CountingSimulator(
        AntAlgorithm(gamma=0.025), demand, SigmoidFeedback(lam), seed=0
    )


def _het_engine(*, join_kernel_method: str, pi_cache: bool) -> CountingSimulator:
    """Heterogeneous k = 1024 scenario: power-law demand spectrum under
    exact-binary feedback (integer deficits -> repeating mark signatures,
    the workload the pi cache exists for)."""
    demand = powerlaw_demands(n=1000 * HET_ENGINE_K, k=HET_ENGINE_K, alpha=1.0)
    return CountingSimulator(
        AntAlgorithm(gamma=0.025),
        demand,
        ExactBinaryFeedback(),
        seed=0,
        join_kernel_method=join_kernel_method,
        pi_cache=pi_cache,
    )


# ----------------------------------------------------------------------
# pytest-benchmark cases


def test_enumeration_baseline_k12(benchmark):
    u = _kernel_inputs(ENUM_K)
    pi = benchmark(enumerate_subset_join_probabilities, u)
    assert pi.shape == (ENUM_K + 1,)


def test_exact_kernel_k12(benchmark):
    u = _kernel_inputs(ENUM_K)
    pi = benchmark(exact_join_probabilities, u)
    np.testing.assert_allclose(pi, enumerate_subset_join_probabilities(u), atol=1e-12)


def test_exact_kernel_k64(benchmark):
    u = _kernel_inputs(64)
    pi = benchmark(exact_join_probabilities, u)
    assert abs(pi.sum() - 1.0) < 1e-12


def test_exact_kernel_k256(benchmark):
    u = _kernel_inputs(256)
    pi = benchmark(exact_join_probabilities, u)
    assert abs(pi.sum() - 1.0) < 1e-12


def test_kernel_speedup_over_enumeration_k12():
    u = _kernel_inputs(ENUM_K)
    t_enum = _time(lambda: enumerate_subset_join_probabilities(u), repeats=3)
    t_kernel = _time(lambda: exact_join_probabilities(u), repeats=20)
    speedup = t_enum / t_kernel
    assert speedup >= SPEEDUP_FLOOR, (
        f"kernel only {speedup:.1f}x faster than enumeration at k={ENUM_K}"
    )


def test_counting_engine_k64_exact_run(benchmark):
    """An exact k = 64 counting run — impossible under subset enumeration."""
    out = benchmark.pedantic(
        lambda: _engine_for(64).run(ENGINE_ROUNDS), rounds=1, iterations=1
    )
    assert out.k == 64 and out.rounds == ENGINE_ROUNDS


def test_fft_pmf_beats_dp_at_k1024():
    _fft_pmf_comparison()


def _time_het_engine(join_kernel_method: str, pi_cache: bool) -> tuple[float, CountingSimulator]:
    """Best-of-2 wall time of a fresh (cold-cache) heterogeneous run."""
    best, last_sim = float("inf"), None
    for _ in range(2):
        sim = _het_engine(join_kernel_method=join_kernel_method, pi_cache=pi_cache)
        t0 = time.perf_counter()
        out = sim.run(HET_ENGINE_ROUNDS)
        best = min(best, time.perf_counter() - t0)
        assert out.k == HET_ENGINE_K and out.rounds == HET_ENGINE_ROUNDS
        last_sim = sim
    return best, last_sim


def _fft_pmf_comparison() -> dict:
    """Time FFT vs DP PMF at k = 1024; assert agreement and the speedup
    floor.  Single source of truth for the pytest case and collect()."""
    u = _kernel_inputs(FFT_K)
    np.testing.assert_allclose(
        fft_poisson_binomial_pmf(u), poisson_binomial_pmf(u), atol=1e-10
    )
    t_dp = _time(lambda: poisson_binomial_pmf(u), repeats=5)
    t_fft = _time(lambda: fft_poisson_binomial_pmf(u), repeats=5)
    assert t_dp / t_fft >= FFT_PMF_SPEEDUP_FLOOR, (
        f"FFT PMF only {t_dp / t_fft:.1f}x faster than DP at k={FFT_K}"
    )
    return {
        "dp_seconds_per_call": t_dp,
        "fft_seconds_per_call": t_fft,
        "speedup": t_dp / t_fft,
    }


def _het_engine_comparison() -> dict:
    """Run the heterogeneous k = 1024 scenario on both paths; assert the
    FFT + pi-cache path wins.  Shared by the pytest case and collect()."""
    t_dp, _ = _time_het_engine("dp", False)
    t_fft, sim = _time_het_engine("fft", True)
    assert sim.pi_cache_hits > 0
    assert t_fft < t_dp, (
        f"FFT+cache ({t_fft:.2f}s) did not beat plain DP ({t_dp:.2f}s) at k={HET_ENGINE_K}"
    )
    return {
        "n": sim.n,
        "rounds": HET_ENGINE_ROUNDS,
        "dp_nocache_seconds": t_dp,
        "fft_cache_seconds": t_fft,
        "speedup": t_dp / t_fft,
        "pi_cache_hits": sim.pi_cache_hits,
        "pi_cache_misses": sim.pi_cache_misses,
    }


def test_counting_engine_k1024_fft_cache_beats_dp():
    """The heterogeneous k = 1024 scenario must complete, and the FFT +
    pi-cache path must beat plain DP with the cache off."""
    _het_engine_comparison()


# ----------------------------------------------------------------------
# Standalone recorder (CI writes BENCH_counting.json with this)


def collect() -> dict:
    record: dict = {"speedup_floor": SPEEDUP_FLOOR, "kernel": {}, "counting_engine": {}}

    u12 = _kernel_inputs(ENUM_K)
    t_enum = _time(lambda: enumerate_subset_join_probabilities(u12), repeats=3)
    record["enumeration"] = {"k": ENUM_K, "seconds_per_call": t_enum}

    for k in KERNEL_KS:
        u = _kernel_inputs(k)
        t = _time(lambda: exact_join_probabilities(u), repeats=20)
        record["kernel"][f"k={k}"] = {"seconds_per_call": t, "calls_per_second": 1.0 / t}

    speedup = t_enum / record["kernel"][f"k={ENUM_K}"]["seconds_per_call"]
    record["speedup_at_k12"] = speedup
    assert speedup >= SPEEDUP_FLOOR, f"speedup {speedup:.1f}x below {SPEEDUP_FLOOR}x floor"

    for k in ENGINE_KS:
        sim = _engine_for(k)
        t0 = time.perf_counter()
        out = sim.run(ENGINE_ROUNDS)
        elapsed = time.perf_counter() - t0
        assert out.rounds == ENGINE_ROUNDS
        record["counting_engine"][f"k={k}"] = {
            "n": sim.n,
            "rounds": ENGINE_ROUNDS,
            "seconds": elapsed,
            "rounds_per_second": ENGINE_ROUNDS / elapsed,
        }

    # FFT Poisson-binomial PMF vs the O(k^2) DP at k = 1024, and the
    # heterogeneous k = 1024 scenario end to end (FFT + pi cache vs plain
    # DP, best-of-2 fresh runs each so one descheduled run on a noisy CI
    # machine cannot flip the comparison).
    record["fft_pmf"] = {f"k={FFT_K}": _fft_pmf_comparison()}
    record["counting_engine_heterogeneous"] = {
        f"k={HET_ENGINE_K}": _het_engine_comparison()
    }
    return record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", default="BENCH_counting.json",
                        help="output path for the benchmark record")
    args = parser.parse_args(argv)
    record = collect()
    with open(args.json, "w", encoding="utf-8") as f:
        json.dump(record, f, indent=2, sort_keys=True)
    print(f"speedup over enumeration at k={ENUM_K}: {record['speedup_at_k12']:.0f}x")
    for key, row in record["counting_engine"].items():
        print(f"counting engine {key}: {row['rounds_per_second']:.0f} rounds/s")
    fft_row = record["fft_pmf"][f"k={FFT_K}"]
    print(f"FFT PMF speedup over DP at k={FFT_K}: {fft_row['speedup']:.1f}x")
    het = record["counting_engine_heterogeneous"][f"k={HET_ENGINE_K}"]
    print(
        f"heterogeneous k={HET_ENGINE_K} engine: FFT+cache {het['speedup']:.2f}x over "
        f"plain DP ({het['pi_cache_hits']} cache hits / {het['pi_cache_misses']} misses)"
    )
    print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
