"""Join-kernel and many-task counting-engine benchmarks.

Two entry points:

* under pytest-benchmark (``pytest benchmarks/bench_join_kernel.py
  --benchmark-only``) each timing is a named benchmark case;
* as a script (``python benchmarks/bench_join_kernel.py --json
  BENCH_counting.json``) it times the same cases without the plugin and
  records kernel + counting-engine throughput to a JSON file, which CI
  uploads so the performance trajectory of the hot path is tracked.

Both modes assert the PR acceptance criteria accumulated so far: the
O(k^2) exact kernel is >= 10x faster than subset enumeration at k = 12;
an exact counting run at k = 64 (impossible under the old ``2^k``
enumerator) completes; the FFT Poisson-binomial PMF beats the O(k^2) DP
PMF at k = 1024; a heterogeneous k = 1024 counting scenario runs faster
on the FFT + pi-cache path than on plain DP with the cache off; the
loop-free Gauss-Legendre quadrature kernel beats both the DP and the
FFT deconvolution end to end at k = 8192 (and powers an exact k = 8192
counting run); a shared cross-trial pi cache amortizes kernel work
across the trials of a multi-trial scenario run; and a persistent
:class:`~repro.store.DiskPiCache` tier lets a *second session* on the
same machine replace kernel calls with memory-mapped reads of the first
session's distributions (``cross_session_amortization``).

The JSON record also carries a ``floors`` table mapping dotted record
paths to the minimum acceptable value of each speedup ratio; the CI
benchmark-regression gate (``benchmarks/check_regression.py``) reads it
from the committed baseline and fails the build when a fresh run drops
below a floor or any timing regresses past the slowdown budget.
"""

from __future__ import annotations

import argparse
import json
import tempfile

import numpy as np

from repro.core.ant import AntAlgorithm
from repro.env.critical import lambda_for_critical_value
from repro.env.demands import powerlaw_demands, uniform_demands
from repro.env.feedback import ExactBinaryFeedback, SigmoidFeedback
from repro.obs import monotonic as obs_monotonic
from repro.scenario import ScenarioSpec, run_scenario
from repro.sim.counting import CountingSimulator
from repro.sim.pi_cache import SharedPiCache
from repro.store import DiskPiCache
from repro.util.mathx import (
    enumerate_subset_join_probabilities,
    exact_join_probabilities,
    fft_poisson_binomial_pmf,
    poisson_binomial_pmf,
)

SPEEDUP_FLOOR = 10.0  # required kernel speedup over enumeration at k = 12
FFT_PMF_SPEEDUP_FLOOR = 2.0  # required FFT-over-DP PMF speedup at k = 1024
#: The quadrature kernel must beat DP and FFT deconvolution end to end at
#: k = 8192 by at least this factor (measured ~40-50x; the floor leaves
#: headroom for noisy CI machines while still catching real regressions).
QUADRATURE_SPEEDUP_FLOOR = 2.0
#: The shared cross-trial cache must not meaningfully slow a multi-trial
#: run (the measured effect is a ~1.2x speedup, but it rides on only
#: ~13% of kernel calls, so wall-time noise could eat it on a loaded CI
#: machine — the hard, deterministic guarantee is the amortization
#: fraction below).
SHARED_CACHE_SPEEDUP_FLOOR = 0.8
#: Fraction of shared-cache lookups served from another trial's kernel
#: work.  Unlike the wall-time ratio this is structural (it depends only
#: on the trajectories, not the machine), so the regression gate pins it.
SHARED_CACHE_AMORTIZATION_FLOOR = 0.05
#: In a *second session* against the same DiskPiCache, every signature
#: the first session computed is on disk, so the fraction of
#: memory-missing lookups served from disk is structurally ~1.0 — the
#: floor leaves room only for pathological cache interleavings.
CROSS_SESSION_AMORTIZATION_FLOOR = 0.9
#: The second session replaces kernel calls with mmap'd file reads, so
#: it must at minimum not be slower (wall-time floors stay conservative
#: on noisy CI machines; the structural guarantee is the amortization).
CROSS_SESSION_SPEEDUP_FLOOR = 0.8
ENUM_K = 12
KERNEL_KS = (12, 64, 256, 1024)
FFT_K = 1024
QUAD_K = 8192
ENGINE_KS = (4, 64, 256)
ENGINE_ROUNDS = 500
HET_ENGINE_K = 1024
HET_ENGINE_ROUNDS = 300
XL_ENGINE_K = 8192
XL_ENGINE_ROUNDS = 60
SHARED_SWEEP_K = 1024
SHARED_SWEEP_TRIALS = 3
SHARED_SWEEP_ROUNDS = 200


def _kernel_inputs(k: int) -> np.ndarray:
    return np.random.default_rng(k).random(k)


def _time(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall time of ``fn()`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        t0 = obs_monotonic()
        fn()
        best = min(best, obs_monotonic() - t0)
    return best


def _engine_for(k: int) -> CountingSimulator:
    demand = uniform_demands(n=1000 * k, k=k)
    lam = lambda_for_critical_value(demand, gamma_star=0.01)
    return CountingSimulator(
        AntAlgorithm(gamma=0.025), demand, SigmoidFeedback(lam), seed=0
    )


def _het_engine(*, join_kernel_method: str, pi_cache: bool) -> CountingSimulator:
    """Heterogeneous k = 1024 scenario: power-law demand spectrum under
    exact-binary feedback (integer deficits -> repeating mark signatures,
    the workload the pi cache exists for)."""
    demand = powerlaw_demands(n=1000 * HET_ENGINE_K, k=HET_ENGINE_K, alpha=1.0)
    return CountingSimulator(
        AntAlgorithm(gamma=0.025),
        demand,
        ExactBinaryFeedback(),
        seed=0,
        join_kernel_method=join_kernel_method,
        pi_cache=pi_cache,
    )


# ----------------------------------------------------------------------
# pytest-benchmark cases


def test_enumeration_baseline_k12(benchmark):
    u = _kernel_inputs(ENUM_K)
    pi = benchmark(enumerate_subset_join_probabilities, u)
    assert pi.shape == (ENUM_K + 1,)


def test_exact_kernel_k12(benchmark):
    u = _kernel_inputs(ENUM_K)
    pi = benchmark(exact_join_probabilities, u)
    np.testing.assert_allclose(pi, enumerate_subset_join_probabilities(u), atol=1e-12)


def test_exact_kernel_k64(benchmark):
    u = _kernel_inputs(64)
    pi = benchmark(exact_join_probabilities, u)
    assert abs(pi.sum() - 1.0) < 1e-12


def test_exact_kernel_k256(benchmark):
    u = _kernel_inputs(256)
    pi = benchmark(exact_join_probabilities, u)
    assert abs(pi.sum() - 1.0) < 1e-12


def test_kernel_speedup_over_enumeration_k12():
    u = _kernel_inputs(ENUM_K)
    t_enum = _time(lambda: enumerate_subset_join_probabilities(u), repeats=3)
    t_kernel = _time(lambda: exact_join_probabilities(u), repeats=20)
    speedup = t_enum / t_kernel
    assert speedup >= SPEEDUP_FLOOR, (
        f"kernel only {speedup:.1f}x faster than enumeration at k={ENUM_K}"
    )


def test_counting_engine_k64_exact_run(benchmark):
    """An exact k = 64 counting run — impossible under subset enumeration."""
    out = benchmark.pedantic(
        lambda: _engine_for(64).run(ENGINE_ROUNDS), rounds=1, iterations=1
    )
    assert out.k == 64 and out.rounds == ENGINE_ROUNDS


def test_fft_pmf_beats_dp_at_k1024():
    _fft_pmf_comparison()


def _time_het_engine(join_kernel_method: str, pi_cache: bool) -> tuple[float, CountingSimulator]:
    """Best-of-2 wall time of a fresh (cold-cache) heterogeneous run."""
    best, last_sim = float("inf"), None
    for _ in range(2):
        sim = _het_engine(join_kernel_method=join_kernel_method, pi_cache=pi_cache)
        t0 = obs_monotonic()
        out = sim.run(HET_ENGINE_ROUNDS)
        best = min(best, obs_monotonic() - t0)
        assert out.k == HET_ENGINE_K and out.rounds == HET_ENGINE_ROUNDS
        last_sim = sim
    return best, last_sim


def _fft_pmf_comparison() -> dict:
    """Time FFT vs DP PMF at k = 1024; assert agreement and the speedup
    floor.  Single source of truth for the pytest case and collect()."""
    u = _kernel_inputs(FFT_K)
    np.testing.assert_allclose(
        fft_poisson_binomial_pmf(u), poisson_binomial_pmf(u), atol=1e-10
    )
    t_dp = _time(lambda: poisson_binomial_pmf(u), repeats=5)
    t_fft = _time(lambda: fft_poisson_binomial_pmf(u), repeats=5)
    assert t_dp / t_fft >= FFT_PMF_SPEEDUP_FLOOR, (
        f"FFT PMF only {t_dp / t_fft:.1f}x faster than DP at k={FFT_K}"
    )
    return {
        "dp_seconds_per_call": t_dp,
        "fft_seconds_per_call": t_fft,
        "speedup": t_dp / t_fft,
    }


def _het_engine_comparison() -> dict:
    """Run the heterogeneous k = 1024 scenario on both paths; assert the
    FFT + pi-cache path wins.  Shared by the pytest case and collect()."""
    t_dp, _ = _time_het_engine("dp", False)
    t_fft, sim = _time_het_engine("fft", True)
    assert sim.pi_cache_hits > 0
    assert t_fft < t_dp, (
        f"FFT+cache ({t_fft:.2f}s) did not beat plain DP ({t_dp:.2f}s) at k={HET_ENGINE_K}"
    )
    return {
        "n": sim.n,
        "rounds": HET_ENGINE_ROUNDS,
        "dp_nocache_seconds": t_dp,
        "fft_cache_seconds": t_fft,
        "speedup": t_dp / t_fft,
        "pi_cache_hits": sim.pi_cache_hits,
        "pi_cache_misses": sim.pi_cache_misses,
    }


def test_counting_engine_k1024_fft_cache_beats_dp():
    """The heterogeneous k = 1024 scenario must complete, and the FFT +
    pi-cache path must beat plain DP with the cache off."""
    _het_engine_comparison()


def _quadrature_comparison() -> dict:
    """Time all three exact join back ends end to end at k = 8192 and
    assert the loop-free quadrature beats both deconvolution paths."""
    u = _kernel_inputs(QUAD_K)
    t_dp = _time(lambda: exact_join_probabilities(u, method="dp"), repeats=2)
    t_fft = _time(lambda: exact_join_probabilities(u, method="fft"), repeats=2)
    t_quad = _time(lambda: exact_join_probabilities(u, method="quadrature"), repeats=5)
    speedup_vs_dp = t_dp / t_quad
    speedup_vs_fft = t_fft / t_quad
    assert speedup_vs_dp >= QUADRATURE_SPEEDUP_FLOOR, (
        f"quadrature only {speedup_vs_dp:.1f}x faster than DP at k={QUAD_K}"
    )
    assert speedup_vs_fft >= QUADRATURE_SPEEDUP_FLOOR, (
        f"quadrature only {speedup_vs_fft:.1f}x faster than FFT deconvolution at k={QUAD_K}"
    )
    return {
        "dp_seconds_per_call": t_dp,
        "fft_seconds_per_call": t_fft,
        "quadrature_seconds_per_call": t_quad,
        "speedup_vs_dp": speedup_vs_dp,
        "speedup_vs_fft": speedup_vs_fft,
    }


def _xl_engine_run() -> dict:
    """An exact k = 8192 counting run — the scale the quadrature kernel
    (auto-dispatched past QUADRATURE_K_THRESHOLD) exists to unlock."""
    demand = powerlaw_demands(n=100 * XL_ENGINE_K, k=XL_ENGINE_K, alpha=1.0)
    lam = lambda_for_critical_value(demand, gamma_star=0.01)
    sim = CountingSimulator(AntAlgorithm(gamma=0.025), demand, SigmoidFeedback(lam), seed=0)
    t0 = obs_monotonic()
    out = sim.run(XL_ENGINE_ROUNDS)
    elapsed = obs_monotonic() - t0
    assert out.k == XL_ENGINE_K and out.rounds == XL_ENGINE_ROUNDS
    return {
        "n": sim.n,
        "rounds": XL_ENGINE_ROUNDS,
        "seconds": elapsed,
        "rounds_per_second": XL_ENGINE_ROUNDS / elapsed,
        "join_kernel_method": sim._resolved_kernel_method,
    }


def _shared_sweep_spec() -> ScenarioSpec:
    """Heterogeneous many-task scenario under exact-binary feedback: the
    integer deficit signatures repeat *across* trials, which is exactly
    the reuse a cross-trial cache can and a per-trial cache cannot see."""
    return ScenarioSpec(
        algorithm={"name": "ant", "params": {"gamma": 0.025}},
        demand={
            "name": "powerlaw",
            "params": {"n": 100 * SHARED_SWEEP_K, "k": SHARED_SWEEP_K, "alpha": 1.0},
        },
        feedback={"name": "exact"},
        engine={"name": "counting"},
        rounds=SHARED_SWEEP_ROUNDS,
        seed=7,
    )


def _shared_cache_comparison() -> dict:
    """Run the same multi-trial scenario with per-trial caches only and
    with a shared cross-trial cache; assert bit-identical statistics and
    report how much kernel work the shared cache amortized."""
    spec = _shared_sweep_spec()
    t0 = obs_monotonic()
    solo = run_scenario(spec, trials=SHARED_SWEEP_TRIALS, keep_results=False)
    t_solo = obs_monotonic() - t0
    cache = SharedPiCache()
    t0 = obs_monotonic()
    shared = run_scenario(
        spec, trials=SHARED_SWEEP_TRIALS, keep_results=False, shared_pi_cache=cache
    )
    t_shared = obs_monotonic() - t0
    assert np.array_equal(solo.average_regrets, shared.average_regrets), (
        "shared-cache run is not bit-identical to the per-trial-cache run"
    )
    assert cache.hits > 0, "no cross-trial signature ever repeated"
    amortized = cache.hits / (cache.hits + cache.misses)
    assert amortized >= SHARED_CACHE_AMORTIZATION_FLOOR, (
        f"shared pi cache amortized only {amortized:.1%} of kernel lookups"
    )
    speedup = t_solo / t_shared
    assert speedup >= SHARED_CACHE_SPEEDUP_FLOOR, (
        f"shared pi cache slowed the run down ({speedup:.2f}x)"
    )
    return {
        "k": SHARED_SWEEP_K,
        "trials": SHARED_SWEEP_TRIALS,
        "rounds": SHARED_SWEEP_ROUNDS,
        "per_trial_cache_seconds": t_solo,
        "shared_cache_seconds": t_shared,
        "speedup": speedup,
        "shared_cache_hits": cache.hits,
        "shared_cache_misses": cache.misses,
        "cross_trial_amortization": amortized,
    }


def _cross_session_comparison() -> dict:
    """Run the same multi-trial scenario in two simulated *sessions*
    sharing one on-disk pi cache (fresh in-memory tiers each, as two
    processes on one machine would have); assert bit-identical results
    and that the second session is served from disk instead of paying
    the kernel again."""
    spec = _shared_sweep_spec()
    with tempfile.TemporaryDirectory() as tmp:
        first_cache = SharedPiCache(disk=DiskPiCache(tmp))
        t0 = obs_monotonic()
        first = run_scenario(
            spec, trials=SHARED_SWEEP_TRIALS, keep_results=False, shared_pi_cache=first_cache
        )
        t_first = obs_monotonic() - t0
        assert first_cache.disk.writes > 0

        second_cache = SharedPiCache(disk=DiskPiCache(tmp))
        t0 = obs_monotonic()
        second = run_scenario(
            spec, trials=SHARED_SWEEP_TRIALS, keep_results=False, shared_pi_cache=second_cache
        )
        t_second = obs_monotonic() - t0

    assert np.array_equal(first.average_regrets, second.average_regrets), (
        "disk-cache-served session is not bit-identical to the cold session"
    )
    assert second_cache.disk_hits > 0, "second session never hit the disk cache"
    amortized = second_cache.disk_hits / (second_cache.disk_hits + second_cache.misses)
    assert amortized >= CROSS_SESSION_AMORTIZATION_FLOOR, (
        f"disk pi cache amortized only {amortized:.1%} of second-session lookups"
    )
    speedup = t_first / t_second
    assert speedup >= CROSS_SESSION_SPEEDUP_FLOOR, (
        f"disk pi cache slowed the second session down ({speedup:.2f}x)"
    )
    return {
        "k": SHARED_SWEEP_K,
        "trials": SHARED_SWEEP_TRIALS,
        "rounds": SHARED_SWEEP_ROUNDS,
        "first_session_seconds": t_first,
        "second_session_seconds": t_second,
        "second_session_speedup": speedup,
        "disk_entries_written": first_cache.disk.writes,
        "second_session_disk_hits": second_cache.disk_hits,
        "second_session_kernel_misses": second_cache.misses,
        "cross_session_amortization": amortized,
    }


def test_quadrature_beats_deconvolution_at_k8192():
    _quadrature_comparison()


def test_disk_pi_cache_amortizes_across_sessions():
    _cross_session_comparison()


def test_counting_engine_k8192_exact_run():
    row = _xl_engine_run()
    assert row["join_kernel_method"] == "quadrature"


def test_shared_pi_cache_amortizes_across_trials():
    _shared_cache_comparison()


# ----------------------------------------------------------------------
# Standalone recorder (CI writes the benchmark record with this)


def collect() -> dict:
    record: dict = {"speedup_floor": SPEEDUP_FLOOR, "kernel": {}, "counting_engine": {}}

    u12 = _kernel_inputs(ENUM_K)
    t_enum = _time(lambda: enumerate_subset_join_probabilities(u12), repeats=3)
    record["enumeration"] = {"k": ENUM_K, "seconds_per_call": t_enum}

    for k in KERNEL_KS:
        u = _kernel_inputs(k)
        t = _time(lambda: exact_join_probabilities(u), repeats=20)
        record["kernel"][f"k={k}"] = {"seconds_per_call": t, "calls_per_second": 1.0 / t}

    speedup = t_enum / record["kernel"][f"k={ENUM_K}"]["seconds_per_call"]
    record["speedup_at_k12"] = speedup
    assert speedup >= SPEEDUP_FLOOR, f"speedup {speedup:.1f}x below {SPEEDUP_FLOOR}x floor"

    for k in ENGINE_KS:
        sim = _engine_for(k)
        t0 = obs_monotonic()
        out = sim.run(ENGINE_ROUNDS)
        elapsed = obs_monotonic() - t0
        assert out.rounds == ENGINE_ROUNDS
        record["counting_engine"][f"k={k}"] = {
            "n": sim.n,
            "rounds": ENGINE_ROUNDS,
            "seconds": elapsed,
            "rounds_per_second": ENGINE_ROUNDS / elapsed,
        }

    # FFT Poisson-binomial PMF vs the O(k^2) DP at k = 1024, and the
    # heterogeneous k = 1024 scenario end to end (FFT + pi cache vs plain
    # DP, best-of-2 fresh runs each so one descheduled run on a noisy CI
    # machine cannot flip the comparison).
    record["fft_pmf"] = {f"k={FFT_K}": _fft_pmf_comparison()}
    record["counting_engine_heterogeneous"] = {
        f"k={HET_ENGINE_K}": _het_engine_comparison()
    }

    # Loop-free quadrature vs both deconvolution back ends at k = 8192,
    # the exact k = 8192 scenario it unlocks, and the cross-trial shared
    # pi cache's amortization of kernel work across trials.
    record["join_kernel_methods"] = {f"k={QUAD_K}": _quadrature_comparison()}
    record["counting_engine_xl"] = {f"k={XL_ENGINE_K}": _xl_engine_run()}
    record["shared_pi_cache_sweep"] = {f"k={SHARED_SWEEP_K}": _shared_cache_comparison()}

    # Cross-session amortization: a second "session" (fresh in-memory
    # caches, same DiskPiCache root) replaces kernel work with mmap'd
    # reads of the distributions the first session persisted.
    record["disk_pi_cache_cross_session"] = {
        f"k={SHARED_SWEEP_K}": _cross_session_comparison()
    }

    # Floors consumed by benchmarks/check_regression.py: dotted record
    # paths -> minimum acceptable value in a fresh CI run.
    record["floors"] = {
        "speedup_at_k12": SPEEDUP_FLOOR,
        f"fft_pmf.k={FFT_K}.speedup": FFT_PMF_SPEEDUP_FLOOR,
        f"counting_engine_heterogeneous.k={HET_ENGINE_K}.speedup": 1.0,
        f"join_kernel_methods.k={QUAD_K}.speedup_vs_dp": QUADRATURE_SPEEDUP_FLOOR,
        f"join_kernel_methods.k={QUAD_K}.speedup_vs_fft": QUADRATURE_SPEEDUP_FLOOR,
        f"shared_pi_cache_sweep.k={SHARED_SWEEP_K}.speedup": SHARED_CACHE_SPEEDUP_FLOOR,
        f"shared_pi_cache_sweep.k={SHARED_SWEEP_K}.cross_trial_amortization": (
            SHARED_CACHE_AMORTIZATION_FLOOR
        ),
        f"disk_pi_cache_cross_session.k={SHARED_SWEEP_K}.cross_session_amortization": (
            CROSS_SESSION_AMORTIZATION_FLOOR
        ),
        f"disk_pi_cache_cross_session.k={SHARED_SWEEP_K}.second_session_speedup": (
            CROSS_SESSION_SPEEDUP_FLOOR
        ),
    }
    return record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", default="BENCH_counting.json",
                        help="output path for the benchmark record")
    args = parser.parse_args(argv)
    record = collect()
    with open(args.json, "w", encoding="utf-8") as f:
        json.dump(record, f, indent=2, sort_keys=True)
    print(f"speedup over enumeration at k={ENUM_K}: {record['speedup_at_k12']:.0f}x")
    for key, row in record["counting_engine"].items():
        print(f"counting engine {key}: {row['rounds_per_second']:.0f} rounds/s")
    fft_row = record["fft_pmf"][f"k={FFT_K}"]
    print(f"FFT PMF speedup over DP at k={FFT_K}: {fft_row['speedup']:.1f}x")
    het = record["counting_engine_heterogeneous"][f"k={HET_ENGINE_K}"]
    print(
        f"heterogeneous k={HET_ENGINE_K} engine: FFT+cache {het['speedup']:.2f}x over "
        f"plain DP ({het['pi_cache_hits']} cache hits / {het['pi_cache_misses']} misses)"
    )
    quad = record["join_kernel_methods"][f"k={QUAD_K}"]
    print(
        f"quadrature kernel at k={QUAD_K}: {quad['speedup_vs_dp']:.1f}x over DP, "
        f"{quad['speedup_vs_fft']:.1f}x over FFT deconvolution"
    )
    xl = record["counting_engine_xl"][f"k={XL_ENGINE_K}"]
    print(
        f"exact k={XL_ENGINE_K} engine ({xl['join_kernel_method']}): "
        f"{xl['rounds_per_second']:.1f} rounds/s"
    )
    sh = record["shared_pi_cache_sweep"][f"k={SHARED_SWEEP_K}"]
    print(
        f"shared pi cache over {sh['trials']} trials at k={SHARED_SWEEP_K}: "
        f"{sh['speedup']:.2f}x, {sh['shared_cache_hits']} shared hits / "
        f"{sh['shared_cache_misses']} misses "
        f"({100 * sh['cross_trial_amortization']:.0f}% amortized)"
    )
    cs = record["disk_pi_cache_cross_session"][f"k={SHARED_SWEEP_K}"]
    print(
        f"disk pi cache second session at k={SHARED_SWEEP_K}: "
        f"{cs['second_session_speedup']:.2f}x end to end, "
        f"{cs['second_session_disk_hits']} disk hits / "
        f"{cs['second_session_kernel_misses']} kernel misses "
        f"({100 * cs['cross_session_amortization']:.0f}% amortized across sessions)"
    )
    print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
