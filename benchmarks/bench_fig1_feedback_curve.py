"""Benchmark E1 — Figure 1: the sigmoid feedback curve and its grey zone.

Times the quick-scale regeneration of this paper artifact and asserts
every measured-vs-theory claim passes (see DESIGN.md experiment index).
"""

from benchmarks._common import run_experiment_benchmark


def test_fig1_feedback_curve(benchmark):
    run_experiment_benchmark(benchmark, "E1")
