"""Benchmark E12 — Learning-rate tradeoff: steady regret vs convergence time.

Times the quick-scale regeneration of this paper artifact and asserts
every measured-vs-theory claim passes (see DESIGN.md experiment index).
"""

from benchmarks._common import run_experiment_benchmark


def test_gamma_tradeoff(benchmark):
    run_experiment_benchmark(benchmark, "E12")
