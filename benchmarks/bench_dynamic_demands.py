"""Benchmark E13 — Remark 3.4: re-convergence after a demand step change.

Times the quick-scale regeneration of this paper artifact and asserts
every measured-vs-theory claim passes (see DESIGN.md experiment index).
"""

from benchmarks._common import run_experiment_benchmark


def test_dynamic_demands(benchmark):
    run_experiment_benchmark(benchmark, "E13")
