"""Benchmark E2 — Figure 2: two-sample phase anatomy and the stable zone.

Times the quick-scale regeneration of this paper artifact and asserts
every measured-vs-theory claim passes (see DESIGN.md experiment index).
"""

from benchmarks._common import run_experiment_benchmark


def test_fig2_phase_anatomy(benchmark):
    run_experiment_benchmark(benchmark, "E2")
