"""Benchmark E3 — Theorem 3.1: Algorithm Ant closeness under both noise models.

Times the quick-scale regeneration of this paper artifact and asserts
every measured-vs-theory claim passes (see DESIGN.md experiment index).
"""

from benchmarks._common import run_experiment_benchmark


def test_thm31_ant_closeness(benchmark):
    run_experiment_benchmark(benchmark, "E3")
