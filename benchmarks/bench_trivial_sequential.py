"""Benchmark E10 — Appendix D.1: sequential trivial algorithm converges.

Times the quick-scale regeneration of this paper artifact and asserts
every measured-vs-theory claim passes (see DESIGN.md experiment index).
"""

from benchmarks._common import run_experiment_benchmark


def test_trivial_sequential(benchmark):
    run_experiment_benchmark(benchmark, "E10")
