"""Benchmark E8 — Theorem 3.5: indistinguishable-demands adversarial lower bound.

Times the quick-scale regeneration of this paper artifact and asserts
every measured-vs-theory claim passes (see DESIGN.md experiment index).
"""

from benchmarks._common import run_experiment_benchmark


def test_thm35_adversarial_lb(benchmark):
    run_experiment_benchmark(benchmark, "E8")
