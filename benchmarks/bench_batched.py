"""Batched counting-engine benchmarks: B trials per vectorized step.

Two entry points, mirroring ``bench_join_kernel.py``:

* under pytest (``pytest benchmarks/bench_batched.py``) each comparison
  is an assertion-bearing test case;
* as a script (``python benchmarks/bench_batched.py --json
  BENCH_counting.json``) it times the same cases and **merges** a
  ``batched_engine`` section (plus its floors) into the benchmark record
  at that path — CI runs it right after ``bench_join_kernel.py`` against
  the same fresh JSON, so ``check_regression.py``'s coverage rule sees
  one complete record.

The headline case is the acceptance criterion for the batched engine:
at B = 16 lanes and k = 256 tasks, batched aggregate throughput
(lane-rounds per second) must be at least ``BATCHED_SPEEDUP_FLOOR``x the
serial engine's.  The precise-sigmoid scenario carries that floor: its
phase structure (2 draw rounds per 2m-round phase, the rest pure
vectorized bookkeeping) is where stacking trials pays most (measured
~8x on the reference machine).  Algorithm Ant at the same size is
reported too, with a modest floor — its rounds are dominated by
*join-kernel misses* (~2 ms each at k = 256, paid per distinct mark
signature in both engines), which batching cannot remove, so ~2x is the
honest expectation there.

Both comparisons also assert bit-identical per-trial statistics between
the serial and batched paths — a benchmark that got faster by drifting
off the serial trajectories must fail loudly.
"""

from __future__ import annotations

import argparse
import json
import os

import numpy as np

from repro.core.ant import AntAlgorithm
from repro.core.precise_sigmoid import PreciseSigmoidAlgorithm
from repro.env.critical import lambda_for_critical_value
from repro.env.demands import uniform_demands
from repro.env.feedback import SigmoidFeedback
from repro.obs import monotonic as obs_monotonic
from repro.sim.batched import BatchedCountingSimulator
from repro.sim.counting import CountingSimulator

#: Lanes per batch — the engine's DEFAULT_BATCH and the acceptance
#: operating point (B = 16, k = 256).
BATCH = 16
K = 256
N = 100 * K  # per-task demand n/(2k) = 50: small loads, inversion-sampler regime

#: Aggregate-throughput floor for the precise-sigmoid scenario (the PR
#: acceptance criterion).  Measured ~8x on the reference machine; 5x
#: leaves CI headroom while still catching any real regression (losing
#: the block sampler or the feedback dedup lands well below 5x).
BATCHED_SPEEDUP_FLOOR = 5.0
#: Ant floor: join-kernel misses dominate both engines at k = 256, so
#: batching's ceiling is ~2x here (measured ~2.2x); the floor only
#: guards against the batched path becoming a pessimization.
ANT_SPEEDUP_FLOOR = 1.5

PS_ROUNDS = 1000
ANT_ROUNDS = 400
REPEATS = 3


def _seeds() -> list[int]:
    """Trial seeds exactly as ``run_trials(seed=0)`` derives them."""
    root = np.random.SeedSequence(0)
    return [int(s.generate_state(1)[0]) for s in root.spawn(BATCH)]


def _ps_factory(seed: int) -> CountingSimulator:
    demand = uniform_demands(n=N, k=K)
    lam = lambda_for_critical_value(demand, gamma_star=0.01)
    return CountingSimulator(
        PreciseSigmoidAlgorithm(gamma=0.05, eps=0.5), demand, SigmoidFeedback(lam), seed=seed
    )


def _ant_factory(seed: int) -> CountingSimulator:
    demand = uniform_demands(n=N, k=K)
    lam = lambda_for_critical_value(demand, gamma_star=0.01)
    return CountingSimulator(AntAlgorithm(gamma=0.025), demand, SigmoidFeedback(lam), seed=seed)


def _comparison(factory, rounds: int, floor: float, label: str) -> dict:
    """Serial vs batched wall time over the same ``BATCH`` trials.

    Fresh simulators every repetition (cold per-run caches on both
    paths, so the comparison is fair), interleaved best-of-``REPEATS``
    so a descheduled repetition cannot flip the ratio, and a bit-
    identity assertion on the per-trial statistics.
    """
    seeds = _seeds()

    def serial():
        return [factory(s).run(rounds) for s in seeds]

    def batched():
        return BatchedCountingSimulator([factory(s) for s in seeds]).run(rounds)

    # Warm-up: imports, scipy machinery, demand/lambda construction.
    warm = min(rounds, 64)
    factory(seeds[0]).run(warm)
    BatchedCountingSimulator([factory(s) for s in seeds[:2]]).run(warm)

    t_serial = t_batched = float("inf")
    serial_out = batched_out = None
    for _ in range(REPEATS):
        t0 = obs_monotonic()
        serial_out = serial()
        t_serial = min(t_serial, obs_monotonic() - t0)
        t0 = obs_monotonic()
        batched_out = batched()
        t_batched = min(t_batched, obs_monotonic() - t0)

    for lane_serial, lane_batched in zip(serial_out, batched_out):
        assert lane_serial.metrics.cumulative_regret == lane_batched.metrics.cumulative_regret
        assert np.array_equal(lane_serial.metrics.final_loads, lane_batched.metrics.final_loads)

    aggregate = BATCH * rounds
    speedup = t_serial / t_batched
    assert speedup >= floor, (
        f"batched {label} engine only {speedup:.2f}x over serial at "
        f"B={BATCH}, k={K} (floor {floor}x)"
    )
    return {
        "batch": BATCH,
        "k": K,
        "n": N,
        "rounds": rounds,
        "serial_seconds": t_serial,
        "batched_seconds": t_batched,
        "serial_rounds_per_second": aggregate / t_serial,
        "batched_rounds_per_second": aggregate / t_batched,
        "speedup": speedup,
    }


# ----------------------------------------------------------------------
# pytest cases


def test_batched_precise_sigmoid_speedup_k256():
    """The acceptance criterion: >= 5x aggregate rounds/s at B=16, k=256."""
    _comparison(_ps_factory, PS_ROUNDS, BATCHED_SPEEDUP_FLOOR, "precise_sigmoid")


def test_batched_ant_speedup_k256():
    """Ant is kernel-miss-bound at k=256; batching must still clearly win."""
    _comparison(_ant_factory, ANT_ROUNDS, ANT_SPEEDUP_FLOOR, "ant")


# ----------------------------------------------------------------------
# Standalone recorder (CI merges this into the fresh benchmark record)


def collect() -> dict:
    """The ``batched_engine`` section and its regression floors."""
    ps = _comparison(_ps_factory, PS_ROUNDS, BATCHED_SPEEDUP_FLOOR, "precise_sigmoid")
    ant = _comparison(_ant_factory, ANT_ROUNDS, ANT_SPEEDUP_FLOOR, "ant")
    return {
        "batched_engine": {
            "batch": BATCH,
            "precise_sigmoid": {f"k={K}": ps},
            "ant": {f"k={K}": ant},
        },
        "floors": {
            f"batched_engine.precise_sigmoid.k={K}.speedup": BATCHED_SPEEDUP_FLOOR,
            f"batched_engine.ant.k={K}.speedup": ANT_SPEEDUP_FLOOR,
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json",
        default="BENCH_counting.json",
        help="benchmark record to merge the batched_engine section into",
    )
    args = parser.parse_args(argv)
    fresh = collect()

    # Merge, don't overwrite: CI runs bench_join_kernel.py into the same
    # file first, and check_regression.py requires every baseline path to
    # exist in the one fresh record.
    record: dict = {}
    if os.path.exists(args.json):
        with open(args.json, encoding="utf-8") as f:
            record = json.load(f)
    record["batched_engine"] = fresh["batched_engine"]
    record.setdefault("floors", {}).update(fresh["floors"])
    with open(args.json, "w", encoding="utf-8") as f:
        json.dump(record, f, indent=2, sort_keys=True)

    for label in ("precise_sigmoid", "ant"):
        row = fresh["batched_engine"][label][f"k={K}"]
        print(
            f"batched {label} engine at B={BATCH}, k={K}: "
            f"serial {row['serial_rounds_per_second']:.0f} rounds/s, "
            f"batched {row['batched_rounds_per_second']:.0f} rounds/s "
            f"({row['speedup']:.2f}x)"
        )
    print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
