"""Benchmark E4 — Theorem 3.1: self-stabilization from adversarial starts.

Times the quick-scale regeneration of this paper artifact and asserts
every measured-vs-theory claim passes (see DESIGN.md experiment index).
"""

from benchmarks._common import run_experiment_benchmark


def test_thm31_self_stabilization(benchmark):
    run_experiment_benchmark(benchmark, "E4")
