"""Shared helpers for the per-experiment benchmarks.

Each benchmark runs one experiment at quick scale under
pytest-benchmark (timing the full regeneration) and asserts that every
claim of the experiment passes — so ``pytest benchmarks/
--benchmark-only`` both times the reproduction and gates its
correctness.  Experiments are stochastic multi-second simulations, so
each is timed as a single pedantic round.

Engine-level benchmarks use the declarative scenario API instead:
:func:`scenario_spec` builds a standard colony spec and
:func:`run_scenario_benchmark` times one ``run_scenario`` call.
"""

from __future__ import annotations

from typing import Any

from repro.experiments.base import ExperimentResult, get_experiment
from repro.scenario import ScenarioSpec, run_scenario
from repro.sim.engine import SimulationResult


def run_experiment_benchmark(benchmark, experiment_id: str, seed: int = 0) -> ExperimentResult:
    """Benchmark one experiment at quick scale and assert its claims."""
    fn = get_experiment(experiment_id)
    result = benchmark.pedantic(
        fn, kwargs={"scale": "quick", "seed": seed}, rounds=1, iterations=1
    )
    assert isinstance(result, ExperimentResult)
    assert result.all_ok, f"\n{result.report()}"
    return result


def scenario_spec(
    *,
    n: int,
    k: int = 4,
    engine: str = "agent",
    gamma: float = 0.025,
    gamma_star: float = 0.01,
    rounds: int = 500,
    seed: int = 0,
    **engine_params: Any,
) -> ScenarioSpec:
    """The benchmarks' standard colony as a declarative spec."""
    return ScenarioSpec(
        algorithm={"name": "ant", "params": {"gamma": gamma}},
        demand={"name": "uniform", "params": {"n": n, "k": k}},
        feedback={"name": "calibrated_sigmoid", "params": {"gamma_star": gamma_star}},
        engine={"name": engine, "params": engine_params},
        rounds=rounds,
        seed=seed,
        gamma_star=gamma_star,
        label=f"{engine}(n={n}, k={k})",
    )


def run_scenario_benchmark(benchmark, spec: ScenarioSpec, **run_kwargs: Any) -> SimulationResult:
    """Benchmark one single-trial ``run_scenario`` call on ``spec``."""
    result = benchmark(run_scenario, spec, **run_kwargs)
    assert isinstance(result, SimulationResult)
    assert result.rounds == run_kwargs.get("rounds", spec.rounds)
    return result
