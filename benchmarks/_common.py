"""Shared helper for the per-experiment benchmarks.

Each benchmark runs one experiment at quick scale under
pytest-benchmark (timing the full regeneration) and asserts that every
claim of the experiment passes — so ``pytest benchmarks/
--benchmark-only`` both times the reproduction and gates its
correctness.  Experiments are stochastic multi-second simulations, so
each is timed as a single pedantic round.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, get_experiment


def run_experiment_benchmark(benchmark, experiment_id: str, seed: int = 0) -> ExperimentResult:
    """Benchmark one experiment at quick scale and assert its claims."""
    fn = get_experiment(experiment_id)
    result = benchmark.pedantic(
        fn, kwargs={"scale": "quick", "seed": seed}, rounds=1, iterations=1
    )
    assert isinstance(result, ExperimentResult)
    assert result.all_ok, f"\n{result.report()}"
    return result
