"""Benchmark E9 — Theorem 3.6: Precise Adversarial closeness and switch cost.

Times the quick-scale regeneration of this paper artifact and asserts
every measured-vs-theory claim passes (see DESIGN.md experiment index).
"""

from benchmarks._common import run_experiment_benchmark


def test_thm36_precise_adversarial(benchmark):
    run_experiment_benchmark(benchmark, "E9")
