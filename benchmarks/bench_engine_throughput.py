"""Engine throughput benchmarks (not tied to a paper artifact).

Measures rounds/second of the engines so performance regressions in the
hot paths (the ``(n, k)`` Bernoulli draw + mask updates, and the O(k)
binomial/multinomial transition) are caught.  The counting engine
should be orders of magnitude faster per round and independent of n.

Engines are built through the declarative scenario API (the spec layer
adds one constant-cost construction per run, which the pedantic timing
amortizes over ``ROUNDS`` rounds).
"""

from __future__ import annotations

import pytest

from benchmarks._common import run_scenario_benchmark, scenario_spec

ROUNDS = 500


@pytest.mark.parametrize("n", [2000, 8000])
def test_agent_engine_throughput(benchmark, n):
    spec = scenario_spec(n=n, engine="agent", rounds=ROUNDS)
    run_scenario_benchmark(benchmark, spec)


@pytest.mark.parametrize("n", [8000, 512000])
def test_counting_engine_throughput(benchmark, n):
    spec = scenario_spec(n=n, engine="counting", rounds=ROUNDS)
    run_scenario_benchmark(benchmark, spec)
