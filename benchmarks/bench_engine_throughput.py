"""Engine throughput benchmarks (not tied to a paper artifact).

Measures rounds/second of the two engines so performance regressions in
the hot paths (the ``(n, k)`` Bernoulli draw + mask updates, and the
O(k) binomial/multinomial transition) are caught.  The counting engine
should be orders of magnitude faster per round and independent of n.
"""

from __future__ import annotations

import pytest

from repro.core.ant import AntAlgorithm
from repro.env.critical import lambda_for_critical_value
from repro.env.demands import uniform_demands
from repro.env.feedback import SigmoidFeedback
from repro.sim.counting import CountingSimulator
from repro.sim.engine import Simulator

ROUNDS = 500


def _setup(n: int):
    demand = uniform_demands(n=n, k=4)
    lam = lambda_for_critical_value(demand, gamma_star=0.01)
    return demand, SigmoidFeedback(lam)


@pytest.mark.parametrize("n", [2000, 8000])
def test_agent_engine_throughput(benchmark, n):
    demand, fb = _setup(n)

    def run():
        return Simulator(AntAlgorithm(gamma=0.025), demand, fb, seed=0).run(ROUNDS)

    result = benchmark(run)
    assert result.rounds == ROUNDS


@pytest.mark.parametrize("n", [8000, 512000])
def test_counting_engine_throughput(benchmark, n):
    demand, fb = _setup(n)

    def run():
        return CountingSimulator(AntAlgorithm(gamma=0.025), demand, fb, seed=0).run(ROUNDS)

    result = benchmark(run)
    assert result.rounds == ROUNDS
