"""Benchmark E5 — Theorem 3.2: Precise Sigmoid eps-linearity of the regret rate.

Times the quick-scale regeneration of this paper artifact and asserts
every measured-vs-theory claim passes (see DESIGN.md experiment index).
"""

from benchmarks._common import run_experiment_benchmark


def test_thm32_precise_sigmoid(benchmark):
    run_experiment_benchmark(benchmark, "E5")
