"""Distributed sweep scheduler benchmarks: N-worker scaling efficiency.

Two entry points, like ``bench_join_kernel.py``:

* under pytest (``pytest benchmarks/bench_scheduler.py``) the cases
  assert the scheduler's contract directly;
* as a script (``python benchmarks/bench_scheduler.py --json
  BENCH_scheduler.json``) it times a 100-point grid drained serially
  and by 2- and 4-worker fleets, records the scaling ratios, and
  writes the ``floors`` table the CI regression gate
  (``benchmarks/check_regression.py --baseline BENCH_scheduler.json``)
  enforces.

What the floors measure — and deliberately do not measure: a grid
point's cost in production is dominated by the simulation itself
(tens of thousands of rounds, large ``k``), so the scheduler's job is
to keep N workers' *point latencies overlapped* while paying for lease
claims, heartbeats, frontier scans, and the final partial wave.  That
overlap efficiency is a property of the scheduler; how far CPU-bound
points scale is a property of the host's core count, which CI runners
do not guarantee (some expose a single core, where a compute-bound
4-worker drain can never beat serial).  The benchmark therefore paces
every point with a fixed deterministic latency around a real — but
tiny — counting run: the science stays real and byte-comparable, the
wall-time is dominated by the pacing, and the measured speedup is the
scheduler's overlap efficiency on any host.  A 4-worker fleet must
drain the 100-point grid >= 2.5x faster than the serial path and 2
workers >= 1.3x (ideal: 4x / 2x; the gap is lease traffic plus the
final wave).  If the scheduler ever serializes its workers — a lease
bottleneck, a global lock, workers scanning instead of executing —
these ratios collapse to ~1 and the gate fails.

Every drain happens in a *fresh* store, and the benchmark asserts the
stores' ``results/`` trees are byte-identical before reporting any
timing: parallelism that changed the science would be worse than no
parallelism.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import tempfile
import time
from pathlib import Path

from repro.obs import monotonic as obs_monotonic
from repro.scenario import ScenarioSpec, register_engine
from repro.scenario.engines import ENGINES
from repro.sched import GridSpec, run_grid
from repro.store import ResultStore

GRID_K = 8
GRID_N = 8_000
GRID_ROUNDS = 25
GRID_TRIALS = 1
#: Wall-clock stand-in for a production-scale point (a k = 8192 point
#: runs for minutes; 80 ms keeps the whole benchmark under ~20 s while
#: still dwarfing the per-point scheduler overhead being measured).
POINT_LATENCY = 0.08
GAMMA_VALUES = [round(0.01 + 0.004 * i, 3) for i in range(10)]
ALPHA_VALUES = [round(0.5 + 0.1 * i, 1) for i in range(10)]

#: Required drain speedups over the serial (workers=0) path on the same
#: machine.  Ideal is the worker count; the floors leave room for lease
#: traffic, process start-up, and the final partial wave while still
#: failing if the scheduler ever serializes its workers.
TWO_WORKER_SPEEDUP_FLOOR = 1.3
FOUR_WORKER_SPEEDUP_FLOOR = 2.5

WORKER_COUNTS = (2, 4)
#: Short TTL keeps the benchmark honest about heartbeat traffic; no
#: lease ever actually goes stale here (points take ~100 ms).
BENCH_TTL = 10.0
BENCH_POLL = 0.02


class _PacedSimulator:
    """A counting simulator that takes a fixed wall-time per run.

    The sleep happens *before* the delegated run and touches no RNG, so
    results are bit-identical to the unpaced engine — only the wall
    clock (what a scheduler benchmark needs) changes.
    """

    def __init__(self, inner, latency: float) -> None:
        self._inner = inner
        self._latency = latency

    def run(self, rounds: int, **run_kwargs):
        time.sleep(self._latency)
        return self._inner.run(rounds, **run_kwargs)


def _build_paced_counting(algorithm, demand, feedback, *, latency: float = POINT_LATENCY, **kwargs):
    return _PacedSimulator(ENGINES.make("counting", algorithm=algorithm, demand=demand,
                                        feedback=feedback, **kwargs), latency)


# Registered at import time: the orchestrator forks its workers, so the
# registration is inherited (this bench, like multi-machine use of a
# custom engine, relies on every worker importing the same plugins).
register_engine("paced_counting", _build_paced_counting, allow_overwrite=True)


def _base_spec() -> ScenarioSpec:
    return ScenarioSpec(
        algorithm={"name": "ant", "params": {"gamma": 0.025}},
        demand={"name": "powerlaw", "params": {"n": GRID_N, "k": GRID_K, "alpha": 1.0}},
        feedback={"name": "exact"},
        engine={"name": "paced_counting"},
        rounds=GRID_ROUNDS,
        seed=7,
        label="sched-bench",
    )


def _bench_grid(gammas=GAMMA_VALUES, alphas=ALPHA_VALUES) -> GridSpec:
    return GridSpec(
        spec=_base_spec(),
        axes=[
            {"parameter": "algorithm.gamma", "values": list(gammas)},
            {"parameter": "demand.alpha", "values": list(alphas)},
        ],
        trials=GRID_TRIALS,
    )


def _results_tree_hashes(store: ResultStore) -> dict[str, str]:
    """``relative path -> sha256`` of every file under ``results/``."""
    hashes = {}
    for path in sorted(store.results_dir.rglob("*")):
        if path.is_file():
            rel = str(path.relative_to(store.results_dir))
            hashes[rel] = hashlib.sha256(path.read_bytes()).hexdigest()
    return hashes


def _drain(grid: GridSpec, root: Path, workers: int) -> tuple[float, ResultStore]:
    """Drain ``grid`` into a fresh store; returns (seconds, store)."""
    store = ResultStore(root)
    t0 = obs_monotonic()
    status = run_grid(
        store, grid, workers=workers, ttl=BENCH_TTL, poll=BENCH_POLL
    )
    elapsed = obs_monotonic() - t0
    assert status["done"], f"{workers}-worker drain left the grid unfinished: {status}"
    return elapsed, store


def _scaling_comparison(grid: GridSpec | None = None) -> dict:
    """Serial vs 2- and 4-worker drains of the same grid in fresh stores.

    Asserts byte-identical ``results/`` trees across every drain before
    reporting timings, then asserts the scaling floors.
    """
    if grid is None:
        grid = _bench_grid()
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        t_serial, serial_store = _drain(grid, tmp / "serial", workers=0)
        reference = _results_tree_hashes(serial_store)
        assert reference, "serial drain committed nothing"
        row = {
            "points": grid.n_points,
            "trials_per_point": grid.trials,
            "rounds": grid.rounds,
            "point_latency_seconds_floor": POINT_LATENCY,
            "serial_seconds": t_serial,
        }
        for workers in WORKER_COUNTS:
            t_n, store_n = _drain(grid, tmp / f"w{workers}", workers=workers)
            assert _results_tree_hashes(store_n) == reference, (
                f"{workers}-worker drain produced a results/ tree that is not "
                "byte-identical to the serial drain"
            )
            speedup = t_serial / t_n
            row[f"workers{workers}_seconds"] = t_n
            row[f"speedup_{workers}workers"] = speedup
            row[f"efficiency_{workers}workers"] = speedup / workers
    assert row["speedup_2workers"] >= TWO_WORKER_SPEEDUP_FLOOR, (
        f"2-worker drain only {row['speedup_2workers']:.2f}x over serial"
    )
    assert row["speedup_4workers"] >= FOUR_WORKER_SPEEDUP_FLOOR, (
        f"4-worker drain only {row['speedup_4workers']:.2f}x over serial"
    )
    return row


# ----------------------------------------------------------------------
# pytest cases


def test_parallel_drain_is_byte_identical_to_serial():
    """Small grid: a 2-worker drain must byte-match the serial one."""
    grid = _bench_grid(gammas=GAMMA_VALUES[:2], alphas=ALPHA_VALUES[:3])
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        _, serial_store = _drain(grid, tmp / "serial", workers=0)
        _, par_store = _drain(grid, tmp / "par", workers=2)
        assert _results_tree_hashes(par_store) == _results_tree_hashes(serial_store)


def test_four_worker_scaling_floor():
    """The full 100-point grid meets the committed scaling floors."""
    _scaling_comparison()


# ----------------------------------------------------------------------
# Standalone recorder (CI writes the benchmark record with this)


def collect() -> dict:
    record: dict = {"scheduler": {"grid100": _scaling_comparison()}}
    record["floors"] = {
        "scheduler.grid100.speedup_2workers": TWO_WORKER_SPEEDUP_FLOOR,
        "scheduler.grid100.speedup_4workers": FOUR_WORKER_SPEEDUP_FLOOR,
    }
    return record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", default="BENCH_scheduler.json",
                        help="output path for the benchmark record")
    args = parser.parse_args(argv)
    record = collect()
    with open(args.json, "w", encoding="utf-8") as f:
        json.dump(record, f, indent=2, sort_keys=True)
    row = record["scheduler"]["grid100"]
    print(
        f"{row['points']}-point grid: serial {row['serial_seconds']:.2f}s, "
        f"2 workers {row['speedup_2workers']:.2f}x, "
        f"4 workers {row['speedup_4workers']:.2f}x "
        f"({100 * row['efficiency_4workers']:.0f}% efficiency)"
    )
    print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
