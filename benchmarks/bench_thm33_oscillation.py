"""Benchmark E7 — Theorem 3.3: oscillation blow-up when the deficit is pinned at 0.

Times the quick-scale regeneration of this paper artifact and asserts
every measured-vs-theory claim passes (see DESIGN.md experiment index).
"""

from benchmarks._common import run_experiment_benchmark


def test_thm33_oscillation(benchmark):
    run_experiment_benchmark(benchmark, "E7")
