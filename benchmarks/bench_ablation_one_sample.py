"""Benchmark E14 — Ablation: spaced two-sample rule vs one-sample variant.

Times the quick-scale regeneration of this paper artifact and asserts
every measured-vs-theory claim passes (see DESIGN.md experiment index).
"""

from benchmarks._common import run_experiment_benchmark


def test_ablation_one_sample(benchmark):
    run_experiment_benchmark(benchmark, "E14")
