"""Benchmark E11 — Appendix D.2: synchronous trivial algorithm oscillates at Theta(n).

Times the quick-scale regeneration of this paper artifact and asserts
every measured-vs-theory claim passes (see DESIGN.md experiment index).
"""

from benchmarks._common import run_experiment_benchmark


def test_trivial_synchronous(benchmark):
    run_experiment_benchmark(benchmark, "E11")
