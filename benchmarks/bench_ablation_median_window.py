"""Benchmark E15 — Remark 3.4: correlated-feedback robustness.

Times the quick-scale regeneration of this paper artifact and asserts
every measured-vs-theory claim passes (see DESIGN.md experiment index).
"""

from benchmarks._common import run_experiment_benchmark


def test_ablation_median_window(benchmark):
    run_experiment_benchmark(benchmark, "E15")
