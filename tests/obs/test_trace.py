"""Tracer semantics: deterministic JSONL under a FakeClock, null switch."""

from __future__ import annotations

import json

from repro.obs import (
    FakeClock,
    Tracer,
    complete_span,
    current_tracer,
    event,
    install_tracer,
    span,
    trace_to,
    uninstall_tracer,
)


def _lines(path) -> list[dict]:
    return [json.loads(line) for line in path.read_text(encoding="utf-8").splitlines()]


class TestTracer:
    def test_span_line_schema(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Tracer(path, clock=FakeClock(start=100.0, tick=0.25)) as tracer:
            with tracer.span("work", method="dp", k=8):
                pass
        (line,) = _lines(path)
        # origin read consumes the first tick: start at t=0.25, one more
        # tick for the end read.
        assert line == {
            "attrs": {"k": 8, "method": "dp"},
            "dur": 0.25,
            "kind": "span",
            "name": "work",
            "seq": 0,
            "t": 0.25,
        }

    def test_event_line_has_no_dur(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Tracer(path, clock=FakeClock(tick=1.0)) as tracer:
            tracer.event("mark", ok=True)
        (line,) = _lines(path)
        assert line["kind"] == "event" and "dur" not in line

    def test_complete_reconstructs_start(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Tracer(path, clock=FakeClock(start=0.0, tick=1.0)) as tracer:
            tracer.complete("work", 0.5)
        (line,) = _lines(path)
        # origin=0, the complete() read returns 1.0 -> t = 1.0 - 0.5 - origin
        assert line["t"] == 0.5 and line["dur"] == 0.5

    def test_seq_is_a_total_order(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Tracer(path, clock=FakeClock(tick=0.1)) as tracer:
            for _ in range(3):
                tracer.event("e")
            with tracer.span("s"):
                tracer.event("inner")
        assert [line["seq"] for line in _lines(path)] == [0, 1, 2, 3, 4]

    def test_two_identical_runs_are_byte_identical(self, tmp_path):
        def run(path):
            with Tracer(path, clock=FakeClock(start=5.0, tick=0.125)) as tracer:
                with tracer.span("outer", label="x"):
                    tracer.event("mark", n=3)
                    with tracer.span("inner"):
                        pass
                tracer.complete("post", 0.5, digest="abc")

        run(tmp_path / "a.jsonl")
        run(tmp_path / "b.jsonl")
        a = (tmp_path / "a.jsonl").read_bytes()
        assert a == (tmp_path / "b.jsonl").read_bytes()
        assert a  # non-empty: the comparison proves something

    def test_close_is_idempotent_and_silences_emits(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(path, clock=FakeClock())
        tracer.event("before")
        tracer.close()
        tracer.close()
        tracer.event("after")  # no-op, no error
        assert [line["name"] for line in _lines(path)] == ["before"]


class TestModuleSwitch:
    def test_noop_without_tracer(self, tmp_path):
        assert current_tracer() is None
        event("e", x=1)
        complete_span("c", 0.1)
        with span("s", y=2):
            pass  # nothing raises, nothing is written anywhere

    def test_trace_to_installs_and_uninstalls(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with trace_to(path, clock=FakeClock(tick=0.5)) as tracer:
            assert current_tracer() is tracer
            event("e")
            with span("s", k=1):
                pass
            complete_span("c", 0.25)
        assert current_tracer() is None
        names = [line["name"] for line in _lines(path)]
        assert names == ["e", "s", "c"]

    def test_install_closes_previous(self, tmp_path):
        first = install_tracer(tmp_path / "a.jsonl", clock=FakeClock())
        try:
            install_tracer(tmp_path / "b.jsonl", clock=FakeClock())
            first.event("late")  # first was closed: silently dropped
            event("kept")
        finally:
            uninstall_tracer()
        assert (tmp_path / "a.jsonl").read_bytes() == b""
        assert [line["name"] for line in _lines(tmp_path / "b.jsonl")] == ["kept"]

    def test_span_survives_mid_span_uninstall(self, tmp_path):
        path = tmp_path / "t.jsonl"
        install_tracer(path, clock=FakeClock(tick=0.1))
        try:
            with span("s"):
                uninstall_tracer()  # the open span still completes
        finally:
            uninstall_tracer()
        # the file was closed before the span could be written; no crash,
        # and the next span after uninstall is a clean no-op
        with span("after"):
            pass
        assert _lines(path) == []

    def test_appends_across_installs(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with trace_to(path, clock=FakeClock()):
            event("one")
        with trace_to(path, clock=FakeClock()):
            event("two")
        assert [line["name"] for line in _lines(path)] == ["one", "two"]
