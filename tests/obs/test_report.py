"""Trace reports: aggregation, byte-stable JSON, torn-tail tolerance."""

from __future__ import annotations

import pytest

from repro.obs import FakeClock, Tracer
from repro.obs.report import load_trace, render_json, render_text, report_payload, trace_report


@pytest.fixture
def trace_path(tmp_path):
    path = tmp_path / "trace.jsonl"
    with Tracer(path, clock=FakeClock(tick=0.5)) as tracer:
        tracer.complete("join_kernel", 2.0, method="dp", k=8)
        tracer.complete("join_kernel", 1.0, method="dp", k=8)
        tracer.complete("join_kernel", 4.0, method="fft", k=4096)
        with tracer.span("counting_run", engine="counting"):
            pass
        tracer.event("pi_cache_stats", local_hits=90, shared_hits=6, disk_hits=0, misses=4)
        tracer.event("pi_cache_stats", local_hits=10, shared_hits=0, disk_hits=4, misses=6)
    return path


class TestAggregation:
    def test_span_rows_sorted_by_total(self, trace_path):
        payload = trace_report(trace_path)
        assert payload["events"] == 6 and payload["torn_lines"] == 0
        names = [row["name"] for row in payload["spans"]]
        assert names == ["join_kernel", "counting_run"]
        kernel_row = payload["spans"][0]
        assert kernel_row["count"] == 3
        assert kernel_row["total_seconds"] == pytest.approx(7.0)
        assert kernel_row["max_seconds"] == pytest.approx(4.0)

    def test_kernel_breakdown_by_method(self, trace_path):
        payload = trace_report(trace_path)
        assert payload["kernel"] == [
            {"method": "dp", "count": 2, "total_seconds": pytest.approx(3.0)},
            {"method": "fft", "count": 1, "total_seconds": pytest.approx(4.0)},
        ]

    def test_cache_summary_sums_runs(self, trace_path):
        cache = trace_report(trace_path)["cache"]
        assert cache["runs"] == 2
        assert cache["lookups"] == 120
        assert cache["misses"] == 10
        assert cache["hit_ratio"] == pytest.approx(110 / 120)

    def test_top_truncates_span_rows(self, trace_path):
        payload = trace_report(trace_path, top=1)
        assert len(payload["spans"]) == 1
        assert payload["span_names"] == 2  # the full count survives truncation


class TestRendering:
    def test_json_byte_stable_across_renders(self, trace_path):
        a = render_json(trace_report(trace_path))
        b = render_json(trace_report(trace_path))
        assert a == b
        assert a.startswith("{") and "\n" not in a

    def test_text_mentions_every_section(self, trace_path):
        text = render_text(trace_report(trace_path))
        assert "top spans by total time:" in text
        assert "join_kernel" in text and "counting_run" in text
        assert "join-kernel time by method:" in text
        assert "hit_ratio=0.9167" in text

    def test_empty_trace_renders(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("", encoding="utf-8")
        payload = trace_report(path)
        assert payload["events"] == 0
        assert "(no spans)" in render_text(payload)
        assert render_json(payload) == render_json(trace_report(path))


class TestTornLines:
    def test_torn_tail_counted_not_fatal(self, trace_path):
        with open(trace_path, "a", encoding="utf-8") as handle:
            handle.write('{"kind":"span","name":"killed-mid-wr')
        events, torn = load_trace(trace_path)
        assert torn == 1 and len(events) == 6
        payload = report_payload(events, torn=torn)
        assert payload["torn_lines"] == 1

    def test_non_dict_lines_count_as_torn(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('[1,2]\n"str"\n\n', encoding="utf-8")
        events, torn = load_trace(path)
        assert events == [] and torn == 2  # the blank line is simply skipped
