"""The clock seam: deterministic FakeClock, swappable process default."""

from __future__ import annotations

import pytest

from repro.obs import FakeClock, SystemClock, get_clock, monotonic, set_clock, use_clock


class TestFakeClock:
    def test_monotonic_returns_then_ticks(self):
        clock = FakeClock(start=10.0, tick=0.5)
        assert clock.monotonic() == 10.0
        assert clock.monotonic() == 10.5
        assert clock.monotonic() == 11.0

    def test_zero_tick_is_frozen(self):
        clock = FakeClock(start=3.0)
        assert clock.monotonic() == clock.monotonic() == 3.0

    def test_advance_moves_forward(self):
        clock = FakeClock(start=0.0, tick=0.0)
        clock.advance(2.5)
        assert clock.monotonic() == 2.5

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError, match="forward"):
            FakeClock().advance(-1.0)

    def test_wall_tracks_monotonic_offset(self):
        clock = FakeClock(start=100.0, tick=1.0, wall_start=1_700_000_000.0)
        assert clock.wall() == 1_700_000_000.0
        clock.advance(5.0)
        assert clock.wall() == 1_700_000_005.0
        clock.monotonic()  # consumes a tick
        assert clock.wall() == 1_700_000_006.0


class TestSystemClock:
    def test_monotonic_never_goes_backwards(self):
        clock = SystemClock()
        readings = [clock.monotonic() for _ in range(5)]
        assert readings == sorted(readings)

    def test_wall_is_epoch_scale(self):
        assert SystemClock().wall() > 1_500_000_000.0


class TestProcessDefault:
    def test_set_clock_returns_previous(self):
        fake = FakeClock(start=7.0)
        previous = set_clock(fake)
        try:
            assert get_clock() is fake
            assert monotonic() == 7.0
        finally:
            set_clock(previous)
        assert get_clock() is previous

    def test_use_clock_restores_on_exit(self):
        before = get_clock()
        with use_clock(FakeClock(start=1.0)) as fake:
            assert get_clock() is fake
            assert monotonic() == 1.0
        assert get_clock() is before

    def test_use_clock_restores_on_error(self):
        before = get_clock()
        with pytest.raises(RuntimeError):
            with use_clock(FakeClock()):
                raise RuntimeError("boom")
        assert get_clock() is before
