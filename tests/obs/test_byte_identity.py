"""The null-overhead invariant: obs never changes a byte of the store.

The observability spine is read-only on determinism — no clock reading,
metric value, or trace state may flow into digests, manifests, or
records (lint rule RPR007 bans it statically; these tests prove it
dynamically).  Every committed byte must be identical with tracing on,
off, or switched off mid-run, serial or through the process pool.

Separately, the *trace files themselves* become deterministic under an
injected FakeClock: two identical runs write byte-identical JSONL.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.exceptions import SweepInterrupted
from repro.obs import FakeClock, trace_to, uninstall_tracer, use_clock
from repro.scenario import ScenarioSpec, run_scenario, sweep_scenario

VALUES = [0.02, 0.03]


def binary_spec() -> ScenarioSpec:
    return ScenarioSpec(
        algorithm={"name": "ant", "params": {"gamma": 0.025}},
        demand={"name": "uniform", "params": {"n": 2000, "k": 4}},
        feedback={"name": "exact"},
        engine={"name": "counting"},
        rounds=120,
        seed=11,
    )


def store_bytes(root: Path) -> dict[str, bytes]:
    """Every committed record/manifest file, keyed by relative path."""
    results = Path(root) / "results"
    return {
        str(path.relative_to(results)): path.read_bytes()
        for path in sorted(results.rglob("*"))
        if path.is_file()
    }


def sweep_into(store: Path, *, trials: int = 2, parallel: int = 0, **kwargs):
    return sweep_scenario(
        binary_spec(),
        "algorithm.gamma",
        VALUES,
        trials=trials,
        parallel=parallel,
        store=store,
        **kwargs,
    )


class TestStoreByteIdentity:
    def test_traced_serial_sweep_commits_identical_bytes(self, tmp_path):
        with trace_to(tmp_path / "trace.jsonl"):
            sweep_into(tmp_path / "traced")
        sweep_into(tmp_path / "bare")
        traced = store_bytes(tmp_path / "traced")
        assert traced == store_bytes(tmp_path / "bare")
        assert traced  # the sweep committed something to compare
        assert (tmp_path / "trace.jsonl").stat().st_size > 0

    def test_traced_process_pool_sweep_commits_identical_bytes(self, tmp_path):
        with trace_to(tmp_path / "trace.jsonl"):
            sweep_into(tmp_path / "traced", trials=4, parallel=2)
        sweep_into(tmp_path / "bare", trials=4, parallel=0)
        assert store_bytes(tmp_path / "traced") == store_bytes(tmp_path / "bare")

    def test_tracing_disabled_mid_run_commits_identical_bytes(self, tmp_path):
        # Interrupt a traced sweep after its first committed point, drop
        # the tracer, resume bare: the store must equal one written by
        # an uninterrupted never-traced sweep.
        try:
            with pytest.raises(SweepInterrupted):
                with trace_to(tmp_path / "trace.jsonl"):
                    sweep_into(tmp_path / "mixed", max_new_points=1)
        finally:
            uninstall_tracer()
        sweep_into(tmp_path / "mixed", resume=True)
        sweep_into(tmp_path / "bare")
        assert store_bytes(tmp_path / "mixed") == store_bytes(tmp_path / "bare")

    def test_fake_clock_does_not_change_results(self, tmp_path):
        # Even with a fake clock feeding every duration measurement, the
        # simulation trajectory is untouched: clock readings are
        # observations, never inputs.
        with use_clock(FakeClock(tick=0.001)):
            sweep_into(tmp_path / "faked")
        sweep_into(tmp_path / "bare")
        assert store_bytes(tmp_path / "faked") == store_bytes(tmp_path / "bare")


class TestTraceDeterminism:
    def test_two_identical_engine_runs_write_identical_traces(self, tmp_path):
        def traced_run(path: Path) -> None:
            # A fresh FakeClock per run: both the tracer origin and the
            # engine's duration reads go through it, so every t/dur in
            # the file is reproducible.
            with use_clock(FakeClock(start=0.0, tick=0.001)):
                with trace_to(path):
                    run_scenario(binary_spec())

        traced_run(tmp_path / "a.jsonl")
        traced_run(tmp_path / "b.jsonl")
        a = (tmp_path / "a.jsonl").read_bytes()
        assert a == (tmp_path / "b.jsonl").read_bytes()
        assert b"join_kernel" in a and b"pi_cache_stats" in a
