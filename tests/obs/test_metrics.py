"""Metrics registry: get-or-create, conflicts, deterministic renderings."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.obs import MetricsRegistry, get_registry, set_registry


class TestCounters:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", tier="local")
        b = registry.counter("x_total", tier="local")
        assert a is b
        a.inc()
        assert b.value == 1.0

    def test_distinct_labels_are_distinct_instruments(self):
        registry = MetricsRegistry()
        registry.counter("x_total", tier="local").inc(3)
        assert registry.counter("x_total", tier="disk").value == 0.0

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", a="1", b="2")
        b = registry.counter("x_total", b="2", a="1")
        assert a is b

    def test_negative_inc_rejected(self):
        with pytest.raises(ConfigurationError, match="only go up"):
            MetricsRegistry().counter("x_total").inc(-1)

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError, match="invalid metric name"):
            registry.counter("X-Total")
        with pytest.raises(ConfigurationError, match="invalid metric label"):
            registry.counter("x_total", **{"Bad-Label": "v"})


class TestGauges:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec(4)
        assert gauge.value == 3.0


class TestHistograms:
    def test_bucketing_and_overflow(self):
        hist = MetricsRegistry().histogram("lat_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.1, 0.5, 2.0, 100.0):
            hist.observe(value)
        # counts: <=0.1 | <=1.0 | +Inf
        assert hist.bucket_counts() == (2, 1, 2)
        assert hist.count == 5
        assert hist.total == pytest.approx(102.65)

    def test_buckets_must_increase(self):
        with pytest.raises(ConfigurationError, match="strictly increasing"):
            MetricsRegistry().histogram("lat_seconds", buckets=(1.0, 1.0))
        with pytest.raises(ConfigurationError, match="strictly increasing"):
            MetricsRegistry().histogram("lat_seconds", buckets=())

    def test_same_name_different_buckets_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("lat_seconds", buckets=(0.1, 1.0))
        with pytest.raises(ConfigurationError, match="already registered with buckets"):
            registry.histogram("lat_seconds", buckets=(0.2, 1.0))


class TestKindConflicts:
    def test_name_means_one_kind_per_process(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ConfigurationError, match="already registered as a counter"):
            registry.gauge("x_total")
        with pytest.raises(ConfigurationError, match="already registered as a counter"):
            registry.histogram("x_total")


def _populated() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("b_total", tier="disk").inc(2)
    registry.counter("b_total", tier="local").inc(5)
    registry.counter("a_total").inc()
    registry.gauge("depth").set(3)
    hist = registry.histogram("lat_seconds", buckets=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(0.5)
    hist.observe(7.0)
    return registry


class TestRenderings:
    def test_snapshot_sorted_and_complete(self):
        snap = _populated().snapshot()
        assert [c["name"] for c in snap["counters"]] == ["a_total", "b_total", "b_total"]
        assert [c["labels"] for c in snap["counters"]][1:] == [
            {"tier": "disk"},
            {"tier": "local"},
        ]
        (hist,) = snap["histograms"]
        assert hist["buckets"] == [0.1, 1.0]
        assert hist["counts"] == [1, 1, 1]
        assert hist["sum"] == pytest.approx(7.55)

    def test_to_json_byte_stable(self):
        registry = _populated()
        assert registry.to_json() == registry.to_json()
        # independently built identical registries render identically
        assert registry.to_json() == _populated().to_json()

    def test_prometheus_rendering(self):
        text = _populated().render_prometheus()
        assert text == (
            "# TYPE a_total counter\n"
            "a_total 1\n"
            "# TYPE b_total counter\n"
            'b_total{tier="disk"} 2\n'
            'b_total{tier="local"} 5\n'
            "# TYPE depth gauge\n"
            "depth 3\n"
            "# TYPE lat_seconds histogram\n"
            'lat_seconds_bucket{le="0.1"} 1\n'
            'lat_seconds_bucket{le="1"} 2\n'
            'lat_seconds_bucket{le="+Inf"} 3\n'
            "lat_seconds_sum 7.55\n"
            "lat_seconds_count 3\n"
        )


class TestProcessDefault:
    def test_set_registry_swaps_and_restores(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(previous)
        assert get_registry() is previous
