"""Cross-module integration and invariant tests.

These exercise full simulations through the public API and assert the
paper's global invariants hold along entire trajectories.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro import (
    AdversarialFeedback,
    AntAlgorithm,
    CountingSimulator,
    PreciseAdversarialAlgorithm,
    SigmoidFeedback,
    Simulator,
    lambda_for_critical_value,
    make_adversary,
    make_algorithm,
    uniform_demands,
)
from repro.types import IDLE


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_docstring_flow(self):
        demand = uniform_demands(n=2000, k=4)
        lam = lambda_for_critical_value(demand, gamma_star=0.02)
        sim = Simulator(AntAlgorithm(gamma=0.02), demand, SigmoidFeedback(lam), seed=0)
        result = sim.run(4000, burn_in=2000)
        assert result.metrics.closeness(0.02, demand.total) < 5.0


class TestTrajectoryInvariants:
    @pytest.mark.parametrize(
        "alg_name,kwargs",
        [
            ("ant", {"gamma": 0.05}),
            ("ant_one_sample", {"gamma": 0.05}),
            ("trivial", {}),
            ("precise_sigmoid", {"gamma": 0.05, "eps": 0.9}),
            ("precise_adversarial", {"gamma": 0.05, "eps": 0.9}),
        ],
    )
    def test_conservation_all_algorithms(self, alg_name, kwargs):
        demand = uniform_demands(n=500, k=3, strict=False)
        lam = lambda_for_critical_value(demand, gamma_star=0.05)
        alg = make_algorithm(alg_name, **kwargs)
        sim = Simulator(
            alg, demand, SigmoidFeedback(lam), seed=0, check_invariants_every=1
        )
        out = sim.run(max(3 * alg.phase_length, 50), trace_stride=1)
        loads = out.trace.loads
        assert np.all(loads >= 0)
        assert np.all(loads.sum(axis=1) <= demand.n)

    @pytest.mark.slow
    def test_ant_loads_never_negative_long_run(self):
        demand = uniform_demands(n=1000, k=2)
        lam = lambda_for_critical_value(demand, gamma_star=0.05)
        sim = CountingSimulator(
            AntAlgorithm(gamma=0.05), demand, SigmoidFeedback(lam), seed=0
        )
        out = sim.run(20_000, trace_stride=7)
        assert np.all(out.trace.loads >= 0)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_random_seed_property_conservation(self, seed):
        demand = uniform_demands(n=300, k=2, strict=False)
        lam = lambda_for_critical_value(demand, gamma_star=0.1)
        sim = Simulator(
            AntAlgorithm(gamma=0.0625),
            demand,
            SigmoidFeedback(lam),
            seed=seed,
            initial_assignment="random",
            check_invariants_every=1,
        )
        out = sim.run(40)
        idle = int((out.final_assignment == IDLE).sum())
        assert idle + int(out.final_loads.sum()) == demand.n


class TestCrossNoiseModels:
    @pytest.mark.slow
    def test_ant_bounded_under_every_adversary(self):
        demand = uniform_demands(n=4000, k=2)
        gamma_ad = 0.01
        strategies = (
            "correct", "random", "inverted", "always_lack", "always_overload", "push_away"
        )
        for strat in strategies:
            fb = AdversarialFeedback(gamma_ad=gamma_ad, strategy=make_adversary(strat))
            sim = Simulator(AntAlgorithm(gamma=0.025), demand, fb, seed=0)
            out = sim.run(6000, burn_in=3000)
            c = out.metrics.closeness(gamma_ad, demand.total)
            assert c <= 12.5, f"strategy {strat} broke the Theorem 3.1 bound: {c}"

    @pytest.mark.slow
    def test_precise_adversarial_beats_ant_on_switches(self):
        demand = uniform_demands(n=4000, k=2)
        def fb():
            return AdversarialFeedback(gamma_ad=0.01, strategy=make_adversary("random"))
        pa = PreciseAdversarialAlgorithm(gamma=0.025, eps=0.5)
        out_pa = Simulator(pa, demand, fb(), seed=0).run(6000, burn_in=3000)
        out_ant = Simulator(AntAlgorithm(gamma=0.025), demand, fb(), seed=0).run(
            6000, burn_in=3000
        )
        assert out_pa.metrics.switches_per_round < out_ant.metrics.switches_per_round


class TestPopulationShock:
    def test_recovery_after_worker_die_off(self):
        """Conclusion claim: resilience to changes in the number of ants.

        Run to steady state, kill 30% of the workers (restart from the
        thinned load vector with a smaller colony), and verify the colony
        re-converges to the Theorem 3.1 band.
        """
        from repro.env.demands import DemandVector

        demand = uniform_demands(n=8000, k=4)
        gs = 0.01
        lam = lambda_for_critical_value(demand, gamma_star=gs)
        first = CountingSimulator(
            AntAlgorithm(gamma=0.025), demand, SigmoidFeedback(lam), seed=0
        ).run(6000)
        survivors = np.floor(first.final_loads * 0.7).astype(np.int64)
        shrunk = DemandVector(demand.as_array(), n=6000, strict=False)
        second = CountingSimulator(
            AntAlgorithm(gamma=0.025),
            shrunk,
            SigmoidFeedback(lam),
            seed=1,
            initial_loads=survivors,
        ).run(8000, burn_in=4000)
        assert second.metrics.closeness(gs, shrunk.total) <= 12.5

    def test_recovery_after_task_added(self):
        """A new task appearing mid-run (demands re-shaped) is absorbed."""
        demand4 = uniform_demands(n=8000, k=4)
        gs = 0.01
        lam = lambda_for_critical_value(demand4, gamma_star=gs)
        # Steady state with only 3 tasks demanded (4th demand minimal).
        from repro.env.demands import DemandVector, StepDemandSchedule

        light = DemandVector(np.array([1300, 1300, 1300, 100]), n=8000, strict=False)
        schedule = StepDemandSchedule(steps=((0, light), (4000, demand4)))
        out = CountingSimulator(
            AntAlgorithm(gamma=0.025), schedule, SigmoidFeedback(lam), seed=0
        ).run(12000, burn_in=8000)
        assert out.metrics.closeness(gs, demand4.total) <= 12.5


class TestSelfStabilization:
    @pytest.mark.parametrize(
        "start", ["all_idle", "all_on_first_task", "random", "demand_matched"]
    )
    @pytest.mark.slow
    def test_ant_converges_from_any_start(self, start):
        demand = uniform_demands(n=8000, k=4)
        lam = lambda_for_critical_value(demand, gamma_star=0.01)
        sim = Simulator(
            AntAlgorithm(gamma=0.025),
            demand,
            SigmoidFeedback(lam),
            seed=3,
            initial_assignment=start,
        )
        out = sim.run(8000, burn_in=4000)
        assert out.metrics.closeness(0.01, demand.total) <= 12.5
