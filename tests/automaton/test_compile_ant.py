"""Tests for Algorithm Ant compiled to an explicit automaton."""

from __future__ import annotations

import numpy as np
import pytest

from repro.automaton.compile_ant import compile_ant_automaton
from repro.automaton.fsm import FSMColonyAlgorithm
from repro.core.ant import AntAlgorithm
from repro.env.critical import lambda_for_critical_value
from repro.env.demands import DemandVector
from repro.env.feedback import SigmoidFeedback
from repro.exceptions import ConfigurationError
from repro.sim.engine import Simulator


class TestCompilation:
    def test_state_count(self):
        a, _ = compile_ant_automaton(k=2, gamma=0.02)
        # (k+1) A-states + 2^k B_idle + 4k B_work = 3 + 4 + 8 = 15.
        assert a.num_states == 15

    def test_satisfies_assumption_2_2(self):
        for k in (1, 2, 3):
            a, _ = compile_ant_automaton(k=k, gamma=0.02)
            assert a.check_reachability(), f"Ant automaton (k={k}) not strongly connected"

    def test_initial_mapping_complete(self):
        _, init = compile_ant_automaton(k=3, gamma=0.02)
        assert set(init) == {-1, 0, 1, 2}

    def test_rejects_large_k(self):
        with pytest.raises(ConfigurationError):
            compile_ant_automaton(k=7, gamma=0.02)

    def test_rejects_bad_gamma(self):
        with pytest.raises(ConfigurationError):
            compile_ant_automaton(k=2, gamma=0.2)

    def test_memory_constant(self):
        a, _ = compile_ant_automaton(k=2, gamma=0.02)
        assert a.memory_bits < 5  # 15 states ~ 3.9 bits, independent of n


@pytest.mark.slow
class TestEquivalenceWithVectorized:
    def test_trajectory_moments_match(self):
        """The compiled automaton and the hand-vectorized AntAlgorithm
        must induce the same load-trajectory distribution."""
        demand = DemandVector(np.array([300, 300]), n=1200, strict=False)
        lam = lambda_for_critical_value(demand, gamma_star=0.05)
        gamma = 0.0625
        rounds, trials = 30, 50
        probes = [2, 6, 14, 30]

        automaton, init = compile_ant_automaton(k=2, gamma=gamma)
        fsm_alg = FSMColonyAlgorithm(automaton, initial_state_for_action=init)

        def collect(factory):
            vals = []
            for trial in range(trials):
                out = factory(trial).run(rounds, trace_stride=1)
                vals.append([out.trace.loads[t - 1] for t in probes])
            return np.asarray(vals, dtype=float)

        fsm = collect(
            lambda s: Simulator(
                fsm_alg, demand, SigmoidFeedback(lam), seed=5000 + s
            )
        )
        vec = collect(
            lambda s: Simulator(
                AntAlgorithm(gamma=gamma), demand, SigmoidFeedback(lam), seed=6000 + s
            )
        )
        sem = (fsm.std(axis=0) + vec.std(axis=0)) / np.sqrt(trials) + 1e-9
        assert np.all(np.abs(fsm.mean(axis=0) - vec.mean(axis=0)) <= 4 * sem + 2.0)
