"""Tests for the finite-automaton substrate (Assumptions 2.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.automaton.fsm import FiniteAntAutomaton, FSMColonyAlgorithm
from repro.exceptions import ConfigurationError
from repro.types import IDLE


def two_state_automaton(p_flip: float = 0.5) -> FiniteAntAutomaton:
    """Idle <-> working-on-task-0 with flip probability on any symbol."""
    k = 1
    T = np.zeros((2, 2, 2))
    for f in range(2):
        T[0, f] = [1 - p_flip, p_flip]
        T[1, f] = [p_flip, 1 - p_flip]
    outputs = np.array([IDLE, 0])
    return FiniteAntAutomaton(T, outputs, k)


class TestValidation:
    def test_accepts_valid(self):
        two_state_automaton()

    def test_rejects_bad_shape(self):
        with pytest.raises(ConfigurationError):
            FiniteAntAutomaton(np.ones((2, 2, 3)) / 3, np.array([IDLE, 0]), 1)

    def test_rejects_wrong_alphabet(self):
        with pytest.raises(ConfigurationError, match="alphabet"):
            FiniteAntAutomaton(np.ones((2, 3, 2)) / 2, np.array([IDLE, 0]), 1)

    def test_rejects_unnormalized_rows(self):
        T = np.zeros((2, 2, 2))
        T[:, :, 0] = 0.7
        T[:, :, 1] = 0.7
        with pytest.raises(ConfigurationError, match="sum to 1"):
            FiniteAntAutomaton(T, np.array([IDLE, 0]), 1)

    def test_rejects_negative_probs(self):
        T = np.zeros((2, 2, 2))
        T[:, :, 0] = 1.5
        T[:, :, 1] = -0.5
        with pytest.raises(ConfigurationError):
            FiniteAntAutomaton(T, np.array([IDLE, 0]), 1)

    def test_rejects_bad_outputs(self):
        T = np.zeros((2, 2, 2))
        T[:, :, 0] = 1.0
        with pytest.raises(ConfigurationError):
            FiniteAntAutomaton(T, np.array([IDLE, 5]), 1)

    def test_memory_bits(self):
        assert two_state_automaton().memory_bits == pytest.approx(1.0)


class TestReachability:
    def test_strongly_connected_passes(self):
        a = two_state_automaton()
        assert a.check_reachability()
        a.validate_assumption_2_2()

    def test_sink_state_fails(self):
        # State 1 never leaves: Assumption 2.2 violated.
        T = np.zeros((2, 2, 2))
        T[0, :, 1] = 1.0  # 0 -> 1 always
        T[1, :, 1] = 1.0  # 1 -> 1 always (sink)
        a = FiniteAntAutomaton(T, np.array([IDLE, 0]), 1)
        assert not a.check_reachability()
        with pytest.raises(ConfigurationError, match="Assumptions 2.2"):
            a.validate_assumption_2_2()

    def test_support_digraph_edges(self):
        g = two_state_automaton().support_digraph()
        assert g.has_edge(0, 1) and g.has_edge(1, 0)


class TestPopulationStep:
    def test_deterministic_transition(self, rng):
        T = np.zeros((2, 2, 2))
        # On symbol 0 go to state 0; on symbol 1 go to state 1.
        T[:, 0, 0] = 1.0
        T[:, 1, 1] = 1.0
        a = FiniteAntAutomaton(T, np.array([IDLE, 0]), 1)
        states = np.array([0, 1, 0])
        lack = np.array([[True], [False], [False]])
        out = a.step_population(states, lack, rng)
        np.testing.assert_array_equal(out, [1, 0, 0])

    def test_stochastic_rates(self):
        a = two_state_automaton(p_flip=0.3)
        gen = np.random.default_rng(0)
        states = np.zeros(100_000, dtype=np.int64)
        lack = np.zeros((100_000, 1), dtype=bool)
        out = a.step_population(states, lack, gen)
        assert (out == 1).mean() == pytest.approx(0.3, abs=0.01)

    def test_symbol_packing_multi_task(self, rng):
        k = 2
        S = 4
        T = np.zeros((S, 4, S))
        # Next state = symbol index (deterministic).
        for f in range(4):
            T[:, f, f] = 1.0
        outputs = np.array([IDLE, 0, 1, IDLE])
        a = FiniteAntAutomaton(T, outputs, k)
        lack = np.array([[False, False], [True, False], [False, True], [True, True]])
        out = a.step_population(np.zeros(4, dtype=np.int64), lack, rng)
        np.testing.assert_array_equal(out, [0, 1, 2, 3])

    def test_actions_map(self):
        a = two_state_automaton()
        np.testing.assert_array_equal(a.actions(np.array([0, 1, 0])), [IDLE, 0, IDLE])


class TestFSMColonyAlgorithm:
    def test_runs_under_engine(self):
        from repro.env.demands import DemandVector
        from repro.env.feedback import SigmoidFeedback
        from repro.sim.engine import Simulator

        a = two_state_automaton()
        alg = FSMColonyAlgorithm(a)
        demand = DemandVector(np.array([100]), n=400, strict=False)
        sim = Simulator(alg, demand, SigmoidFeedback(0.5), seed=0)
        out = sim.run(50)
        assert out.final_loads.sum() <= 400

    def test_check_assumptions_rejected_for_sink(self):
        T = np.zeros((2, 2, 2))
        T[:, :, 1] = 1.0
        a = FiniteAntAutomaton(T, np.array([IDLE, 0]), 1)
        with pytest.raises(ConfigurationError):
            FSMColonyAlgorithm(a)
        FSMColonyAlgorithm(a, check_assumptions=False)  # explicit override OK

    def test_initial_state_mapping(self, rng):
        a = two_state_automaton()
        alg = FSMColonyAlgorithm(a)
        state = alg.create_state(4, 1, np.array([IDLE, 0, IDLE, 0]))
        np.testing.assert_array_equal(state["states"], [0, 1, 0, 1])

    def test_k_mismatch(self):
        a = two_state_automaton()
        alg = FSMColonyAlgorithm(a)
        with pytest.raises(ConfigurationError, match="k="):
            alg.create_state(4, 3, np.full(4, IDLE, dtype=np.int64))
