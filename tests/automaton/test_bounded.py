"""Tests for the Theorem 3.3 memory-bounded algorithm family."""

from __future__ import annotations

import pytest

from repro.automaton.bounded import bounded_memory_family
from repro.core.ant import AntAlgorithm
from repro.core.precise_sigmoid import PreciseSigmoidAlgorithm


class TestBoundedMemoryFamily:
    def test_small_budget_falls_back_to_ant(self):
        specs = bounded_memory_family(0.04, counter_bits=(1, 2, 4))
        assert all(isinstance(s.algorithm, AntAlgorithm) for s in specs)
        assert all(s.window == 1 for s in specs)

    def test_large_budget_uses_precise_sigmoid(self):
        specs = bounded_memory_family(0.04, counter_bits=(5, 6, 7))
        assert all(isinstance(s.algorithm, PreciseSigmoidAlgorithm) for s in specs)
        assert [s.window for s in specs] == [31, 63, 127]

    def test_window_matches_bits(self):
        (spec,) = bounded_memory_family(0.04, counter_bits=(6,))
        assert spec.window == 2**6 - 1
        assert spec.algorithm.m == spec.window

    def test_eps_halves_per_bit(self):
        specs = bounded_memory_family(0.04, counter_bits=(6, 7))
        ratio = specs[0].eps_effective / specs[1].eps_effective
        assert ratio == pytest.approx(2.0, rel=0.05)

    def test_predicted_scale_clipped(self):
        (ant_spec,) = bounded_memory_family(0.04, counter_bits=(1,))
        assert ant_spec.predicted_closeness_scale == 1.0

    def test_rejects_zero_bits(self):
        with pytest.raises(Exception):
            bounded_memory_family(0.04, counter_bits=(0,))
