"""Tests for the backoff binary-feedback baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.cornejo import BackoffBinaryAlgorithm
from repro.env.demands import uniform_demands
from repro.env.feedback import ExactBinaryFeedback
from repro.exceptions import ConfigurationError
from repro.sim.engine import Simulator
from repro.types import IDLE


def make_state(alg, assignment, k=2):
    assignment = np.asarray(assignment, dtype=np.int64)
    return alg.create_state(assignment.shape[0], k, assignment)


class TestBackoffMechanics:
    def test_leaver_backs_off(self):
        alg = BackoffBinaryAlgorithm()
        n = 50_000
        gen = np.random.default_rng(0)
        st = make_state(alg, np.zeros(n, dtype=np.int64))
        alg.step(st, 1, np.zeros((n, 2), dtype=bool), gen)
        left = st.assignment == IDLE
        assert left.mean() == pytest.approx(0.5, abs=0.01)
        assert (st.backoff[left] == 1).all()
        assert (st.backoff[~left] == 0).all()

    def test_join_gated_by_backoff(self):
        alg = BackoffBinaryAlgorithm()
        n = 50_000
        gen = np.random.default_rng(1)
        st = make_state(alg, np.full(n, IDLE, dtype=np.int64))
        st.backoff[:] = 2  # join probability 1/4
        alg.step(st, 1, np.ones((n, 2), dtype=bool), gen)
        assert (st.assignment != IDLE).mean() == pytest.approx(0.25, abs=0.01)

    def test_backoff_capped(self, rng):
        alg = BackoffBinaryAlgorithm(max_backoff=3)
        st = make_state(alg, [0] * 100)
        st.backoff[:] = 3
        for t in range(5):
            st.assignment[:] = 0  # force back to work
            alg.step(st, t + 1, np.zeros((100, 2), dtype=bool), rng)
        assert st.backoff.max() <= 3

    def test_rejects_bad_params(self):
        with pytest.raises(Exception):
            BackoffBinaryAlgorithm(max_backoff=0)
        with pytest.raises(ConfigurationError):
            BackoffBinaryAlgorithm(recovery_rate=2.0)


class TestBackoffBehaviour:
    def test_damps_herding_vs_trivial(self):
        """Backoff must beat the plain trivial algorithm's Theta(n)
        oscillation under exact feedback."""
        from repro.core.trivial import TrivialAlgorithm

        demand = uniform_demands(n=4000, k=2)
        fb = ExactBinaryFeedback()
        rounds = 3000
        out_b = Simulator(BackoffBinaryAlgorithm(), demand, fb, seed=0).run(
            rounds, burn_in=rounds // 2
        )
        out_t = Simulator(TrivialAlgorithm(), demand, fb, seed=0).run(
            rounds, burn_in=rounds // 2
        )
        assert out_b.metrics.average_regret < 0.4 * out_t.metrics.average_regret

    def test_eventually_occupies_tasks(self):
        demand = uniform_demands(n=2000, k=2)
        out = Simulator(
            BackoffBinaryAlgorithm(), demand, ExactBinaryFeedback(), seed=0
        ).run(2000)
        assert np.all(out.final_loads > 0.3 * demand.as_array())
