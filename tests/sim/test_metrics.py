"""Tests for the regret metric machinery (Section 2.3 / Section 4 split)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import AnalysisError
from repro.sim.metrics import (
    RegretTracker,
    average_regret,
    closeness,
    count_switches,
    regret_from_loads,
    split_regret,
)


class TestRegretFromLoads:
    def test_zero_at_demand(self):
        assert regret_from_loads(np.array([10, 20]), np.array([10, 20])) == 0.0

    def test_symmetric_penalty(self):
        d = np.array([10.0])
        assert regret_from_loads(d, np.array([15.0])) == regret_from_loads(d, np.array([5.0]))

    def test_matrix_input(self):
        d = np.array([10, 20])
        loads = np.array([[10, 20], [5, 25]])
        np.testing.assert_allclose(regret_from_loads(d, loads), [0.0, 10.0])

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=5),
        st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=5),
    )
    def test_nonnegative_and_triangle(self, d, w):
        k = min(len(d), len(w))
        d, w = np.array(d[:k]), np.array(w[:k])
        r = regret_from_loads(d, w)
        assert r >= 0
        # Regret equals L1 distance.
        assert r == pytest.approx(np.abs(d - w).sum())


class TestSplitRegret:
    def test_partition_sums_to_regret(self):
        d = np.array([100.0, 100.0])
        w = np.array([150.0, 40.0])
        plus, near, minus = split_regret(d, w, gamma=0.05, c_plus=3.0, c_minus=4.0)
        assert plus + near + minus == pytest.approx(regret_from_loads(d, w))

    def test_overload_component(self):
        d = np.array([100.0])
        # Threshold: (1 + 3*0.05)*100 = 115; load 150 -> r+ = 35.
        plus, _, minus = split_regret(d, np.array([150.0]), 0.05, 3.0, 4.0)
        assert plus == pytest.approx(35.0)
        assert minus == 0.0

    def test_lack_component(self):
        d = np.array([100.0])
        # Threshold: (1 - 4*0.05)*100 = 80; load 40 -> r- = 40.
        plus, _, minus = split_regret(d, np.array([40.0]), 0.05, 3.0, 4.0)
        assert minus == pytest.approx(40.0)
        assert plus == 0.0

    def test_near_zone_only(self):
        d = np.array([100.0])
        plus, near, minus = split_regret(d, np.array([105.0]), 0.05, 3.0, 4.0)
        assert plus == 0.0 and minus == 0.0 and near == pytest.approx(5.0)


class TestClosenessHelpers:
    def test_average_regret(self):
        assert average_regret(100.0, 10) == 10.0

    def test_average_regret_rejects_zero(self):
        with pytest.raises(AnalysisError):
            average_regret(100.0, 0)

    def test_closeness(self):
        assert closeness(50.0, 0.05, 1000.0) == pytest.approx(1.0)

    def test_closeness_rejects_degenerate(self):
        with pytest.raises(AnalysisError):
            closeness(1.0, 0.0, 100.0)


class TestCountSwitches:
    def test_no_change(self):
        a = np.array([0, 1, -1])
        assert count_switches(a, a.copy()) == 0

    def test_counts_all_kinds(self):
        prev = np.array([0, 1, -1, 2])
        cur = np.array([1, 1, 0, -1])  # task switch, same, join, leave
        assert count_switches(prev, cur) == 3


class TestRegretTracker:
    def test_accumulates(self):
        tr = RegretTracker(gamma=0.05)
        d = np.array([10.0])
        tr.observe(1, d, np.array([8.0]))
        tr.observe(2, d, np.array([12.0]))
        m = tr.finalize()
        assert m.cumulative_regret == pytest.approx(4.0)
        assert m.average_regret == pytest.approx(2.0)

    def test_burn_in_excluded(self):
        tr = RegretTracker(gamma=0.05, burn_in=1)
        d = np.array([10.0])
        tr.observe(1, d, np.array([0.0]))  # burn-in round, huge regret
        tr.observe(2, d, np.array([10.0]))
        m = tr.finalize()
        assert m.cumulative_regret == 0.0
        assert m.rounds == 1

    def test_switches_tracked(self):
        tr = RegretTracker()
        d = np.array([10.0])
        tr.observe(1, d, np.array([10.0]), switches=7)
        m = tr.finalize()
        assert m.total_switches == 7
        assert m.switches_per_round == 7.0

    def test_band_counting(self):
        tr = RegretTracker(gamma=0.01, band_coefficient=5.0)
        d = np.array([100.0])
        tr.observe(1, d, np.array([99.0]))  # |deficit|=1 <= 5*0.01*100+3=8
        tr.observe(2, d, np.array([80.0]))  # |deficit|=20 > 8
        m = tr.finalize()
        assert m.rounds_outside_band == 1

    def test_finalize_empty_raises(self):
        with pytest.raises(AnalysisError):
            RegretTracker().finalize()

    def test_finalize_rejects_burn_in_swallowing_all_rounds(self):
        # Regression: this used to return average_regret == 0.0 over one
        # phantom "effective" round, silently reading as perfection.
        d = np.array([10.0])
        for burn_in in (2, 5):
            tr = RegretTracker(burn_in=burn_in)
            tr.observe(1, d, np.array([0.0]))
            tr.observe(2, d, np.array([0.0]))
            with pytest.raises(AnalysisError, match="burn_in"):
                tr.finalize()

    def test_finalize_ok_with_one_effective_round(self):
        tr = RegretTracker(burn_in=1)
        d = np.array([10.0])
        tr.observe(1, d, np.array([0.0]))
        tr.observe(2, d, np.array([4.0]))
        m = tr.finalize()
        assert m.rounds == 1
        assert m.average_regret == pytest.approx(6.0)

    def test_split_components_sum(self):
        tr = RegretTracker(gamma=0.05, c_plus=3.0, c_minus=4.0)
        d = np.array([100.0, 100.0])
        tr.observe(1, d, np.array([150.0, 40.0]))
        m = tr.finalize()
        assert m.regret_plus + m.regret_near + m.regret_minus == pytest.approx(
            m.cumulative_regret
        )

    def test_metrics_closeness_method(self):
        tr = RegretTracker()
        d = np.array([100.0])
        tr.observe(1, d, np.array([95.0]))
        m = tr.finalize()
        assert m.closeness(0.05, 100.0) == pytest.approx(1.0)
