"""Regression tests for the counting engine's join-distribution cache.

The cache is content-addressed by the mark-probability vector ``u`` (the
deficit/feedback signature), so correctness splits into three claims:

* a round whose signature repeats reuses the cached distribution (the
  kernel is *not* called again);
* a demand or population change alters the signature and forces a
  recompute — no stale reuse;
* caching is observationally invisible: cached and uncached runs of the
  same scenario produce bit-identical traces.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.sim.counting as counting_mod
from repro.core.ant import AntAlgorithm
from repro.env.critical import lambda_for_critical_value
from repro.env.demands import DemandVector, StepDemandSchedule, uniform_demands
from repro.env.feedback import ExactBinaryFeedback, SigmoidFeedback
from repro.env.population import StepPopulation
from repro.sim.counting import PI_CACHE_MAX_ENTRIES, CountingSimulator


class KernelCallCounter:
    """Monkeypatch wrapper counting exact_join_probabilities calls."""

    def __init__(self, monkeypatch):
        self.calls = 0
        self.keys: list[bytes] = []
        real = counting_mod.exact_join_probabilities

        def counted(u, **kwargs):
            self.calls += 1
            self.keys.append(np.asarray(u).tobytes())
            return real(u, **kwargs)

        monkeypatch.setattr(counting_mod, "exact_join_probabilities", counted)


def _binary_sim(**kwargs) -> CountingSimulator:
    # Exact-binary feedback on integer deficits: the signature repeats as
    # soon as the load vector does, which it reliably does mid-run.
    return CountingSimulator(
        AntAlgorithm(gamma=0.025),
        uniform_demands(n=2000, k=4),
        ExactBinaryFeedback(),
        seed=11,
        **kwargs,
    )


class TestCacheReuse:
    def test_repeated_signature_skips_the_kernel(self, monkeypatch):
        counter = KernelCallCounter(monkeypatch)
        sim = _binary_sim()
        sim.run(200)
        join_rounds = sim.pi_cache_hits + sim.pi_cache_misses
        assert sim.pi_cache_hits > 0, "scenario never repeated a signature"
        # The kernel ran once per *distinct* signature, not once per round.
        assert counter.calls == sim.pi_cache_misses
        assert counter.calls < join_rounds
        assert counter.calls == len(set(counter.keys))

    def test_cache_disabled_calls_kernel_every_round(self, monkeypatch):
        counter = KernelCallCounter(monkeypatch)
        sim = _binary_sim(pi_cache=False)
        sim.run(200)
        assert sim.pi_cache_hits == 0 and sim.pi_cache_misses == 0
        # One kernel call per join round (every second round has joins,
        # minus rounds with an empty idle pool).
        assert counter.calls > len(set(counter.keys))

    def test_counters_reset_between_runs(self):
        sim = _binary_sim()
        sim.run(100)
        first_total = sim.pi_cache_hits + sim.pi_cache_misses
        sim.run(100)
        # Counters cover only the second run (the cache itself stays warm,
        # so at most the first run's count of join rounds can accumulate).
        second_total = sim.pi_cache_hits + sim.pi_cache_misses
        assert 0 < second_total <= first_total

    def test_capacity_is_bounded(self, monkeypatch):
        monkeypatch.setattr(counting_mod, "PI_CACHE_MAX_ENTRIES", 3)
        sim = _binary_sim()
        sim.run(400)
        assert len(sim._pi_cache) <= 3


class TestCacheInvalidation:
    """The cache key IS the mark-probability vector, so 'invalidation'
    means: any demand/population change that alters the deficits alters
    the signature and forces a recompute, and a change that happens to
    reproduce an already-seen signature is *correct* to serve from cache
    (the join distribution depends on the signature alone)."""

    def test_changed_signature_recomputes_unchanged_reuses(self, monkeypatch):
        counter = KernelCallCounter(monkeypatch)
        sim = _binary_sim()
        feedback = ExactBinaryFeedback()
        d1 = uniform_demands(n=2000, k=4).as_array()
        d2 = np.array([400, 300, 200, 100])
        loads = np.array([260, 260, 240, 240])
        u1 = feedback.lack_probabilities(d1 - loads)
        sim._join_distribution(u1)
        sim._join_distribution(u1)  # unchanged deficits: served from cache
        assert counter.calls == 1
        u2 = feedback.lack_probabilities(d2 - loads)  # demand changed
        assert not np.array_equal(u1, u2)
        sim._join_distribution(u2)
        assert counter.calls == 2

    def test_demand_step_never_served_stale(self):
        # The deterministic staleness check: a run across a demand change
        # must be bit-identical with and without the cache.
        d1 = uniform_demands(n=2000, k=4)
        d2 = DemandVector(np.array([400, 300, 200, 100]), n=2000)
        schedule = StepDemandSchedule(((0, d1), (101, d2)))

        def run(pi_cache):
            sim = CountingSimulator(
                AntAlgorithm(gamma=0.025),
                schedule,
                SigmoidFeedback(lambda_for_critical_value(d1, gamma_star=0.05)),
                seed=11,
                pi_cache=pi_cache,
            )
            out = sim.run(300, trace_stride=1)
            return sim, out.trace.loads

        cached_sim, cached = run(True)
        _, uncached = run(False)
        assert np.array_equal(cached, uncached)
        assert cached_sim.pi_cache_misses > 0

    def test_population_step_never_served_stale(self, monkeypatch):
        counter = KernelCallCounter(monkeypatch)

        def run(pi_cache):
            sim = CountingSimulator(
                AntAlgorithm(gamma=0.025),
                uniform_demands(n=2000, k=4),
                ExactBinaryFeedback(),
                seed=11,
                population=StepPopulation(((0, 2000), (101, 1200))),
                pi_cache=pi_cache,
            )
            return sim, sim.run(400, trace_stride=1).trace.loads

        cached_sim, cached = run(True)
        _, uncached = run(False)
        assert np.array_equal(cached, uncached)
        # The die-off perturbs the loads, so several distinct signatures
        # (not just the all-LACK start vector) must have been computed.
        assert cached_sim.pi_cache_misses == len(
            {k for k in counter.keys}
        ) > 1


class TestCacheTransparency:
    @pytest.mark.parametrize("feedback_factory", [
        lambda d: ExactBinaryFeedback(),
        lambda d: SigmoidFeedback(lambda_for_critical_value(d, gamma_star=0.02)),
    ])
    def test_traces_bit_identical_with_and_without_cache(self, feedback_factory):
        demand = uniform_demands(n=2000, k=4)

        def run(pi_cache: bool, method: str):
            sim = CountingSimulator(
                AntAlgorithm(gamma=0.05),
                demand,
                feedback_factory(demand),
                seed=77,
                pi_cache=pi_cache,
                join_kernel_method=method,
            )
            return sim.run(150, trace_stride=1).trace.loads

        baseline = run(False, "dp")
        assert np.array_equal(baseline, run(True, "dp"))
        # Same-method determinism holds for the FFT kernel too.
        assert np.array_equal(run(False, "fft"), run(True, "fft"))

    def test_prewarmed_cache_does_not_perturb_the_run(self):
        # Manually priming cache entries must not change the trajectory:
        # the rng stream is consumed only by the draws, never the kernel.
        fresh = _binary_sim().run(120, trace_stride=1).trace.loads
        warmed_sim = _binary_sim()
        for p in (0.1, 0.5, 0.9):
            warmed_sim._join_distribution(np.full(4, p))
        warmed = warmed_sim.run(120, trace_stride=1).trace.loads
        assert np.array_equal(fresh, warmed)

    def test_rejects_unknown_kernel_method(self):
        with pytest.raises(Exception, match="join_kernel_method"):
            _binary_sim(join_kernel_method="nope")


class TestSharedPiCacheObject:
    """Unit behaviour of the cross-trial cache store itself."""

    def test_put_get_roundtrip_readonly(self):
        from repro.sim.pi_cache import SharedPiCache

        cache = SharedPiCache()
        pi = np.array([0.25, 0.25, 0.5])
        key = SharedPiCache.key("dp", np.array([0.1, 0.2]))
        stored = cache.put(key, pi)
        assert not stored.flags.writeable
        assert cache.get(key) is stored
        np.testing.assert_array_equal(stored, pi)
        # The stored entry is a copy: mutating the source cannot reach it.
        pi[0] = 99.0
        np.testing.assert_array_equal(cache.get(key), [0.25, 0.25, 0.5])

    def test_hit_miss_counters(self):
        from repro.sim.pi_cache import SharedPiCache

        cache = SharedPiCache()
        key = SharedPiCache.key("fft", np.array([0.5]))
        assert cache.get(key) is None
        cache.put(key, np.array([0.5, 0.5]))
        assert cache.get(key) is not None
        assert (cache.hits, cache.misses) == (1, 1)
        cache.clear()
        assert (cache.hits, cache.misses) == (0, 0) and len(cache) == 0

    def test_fifo_eviction_bounds_capacity(self):
        from repro.sim.pi_cache import SharedPiCache

        cache = SharedPiCache(max_entries=2)
        keys = [SharedPiCache.key("dp", np.array([p])) for p in (0.1, 0.2, 0.3)]
        for key in keys:
            cache.put(key, np.array([0.5, 0.5]))
        assert len(cache) == 2
        assert cache.get(keys[0]) is None  # oldest evicted
        assert cache.get(keys[2]) is not None

    def test_key_embeds_method_and_signature(self):
        from repro.sim.pi_cache import SharedPiCache

        u = np.array([0.3, 0.7])
        assert SharedPiCache.key("dp", u) != SharedPiCache.key("fft", u)
        assert SharedPiCache.key("dp", u) != SharedPiCache.key("dp", u + 1e-16)
        assert SharedPiCache.key("dp", u) == SharedPiCache.key("dp", u.copy())

    def test_pickle_resolves_to_same_instance_in_process(self):
        import pickle

        from repro.sim.pi_cache import SharedPiCache

        cache = SharedPiCache()
        key = SharedPiCache.key("dp", np.array([0.4]))
        cache.put(key, np.array([0.4, 0.6]))
        revived = pickle.loads(pickle.dumps(cache))
        assert revived is cache  # same live object, contents intact

    def test_unknown_token_builds_fresh_process_local_cache(self):
        # What a ProcessPoolExecutor worker does on first unpickle: no
        # registered instance for the token, so a fresh empty cache is
        # created and registered under it for the *next* trial.
        from repro.sim import pi_cache as pc

        first = pc._resolve_token("feedbeef" * 4, 128)
        again = pc._resolve_token("feedbeef" * 4, 128)
        assert first is again
        assert len(first) == 0 and first.max_entries == 128

    def test_worker_side_cache_survives_between_trials(self):
        # Regression: between two pool.map trials a worker holds NO
        # strong reference to the cache (the executor drops the factory
        # once the trial returns).  A cache materialized from a token
        # must therefore be pinned for the process lifetime, or every
        # trial would start cold and amortization would silently vanish.
        import gc

        from repro.sim import pi_cache as pc
        from repro.sim.pi_cache import SharedPiCache

        token = "cafef00d" * 4
        first = pc._resolve_token(token, 64)  # trial 1 unpickles
        key = SharedPiCache.key("dp", np.array([0.3]))
        first.put(key, np.array([0.3, 0.7]))
        del first  # trial 1 finished; worker drops everything
        gc.collect()
        again = pc._resolve_token(token, 64)  # trial 2 unpickles
        assert again.get(key) is not None, "worker cache was garbage-collected between trials"

    def test_home_process_cache_is_not_leaked_by_the_registry(self):
        # In the constructing process the registry must stay weak: once
        # the owner drops the cache, its entries are freed.
        import gc
        import weakref

        from repro.sim.pi_cache import SharedPiCache

        cache = SharedPiCache()
        ref = weakref.ref(cache)
        del cache
        gc.collect()
        assert ref() is None

    def test_rejects_bad_capacity(self):
        from repro.sim.pi_cache import SharedPiCache

        with pytest.raises(Exception, match="max_entries"):
            SharedPiCache(max_entries=0)


class TestPerRunCounterReset:
    """Every cache counter — local, shared, disk, miss — must rewind at
    :meth:`run` so back-to-back runs on ONE simulator report per-run
    stats while the caches themselves stay warm."""

    def test_local_tier_misses_count_only_the_current_run(self, monkeypatch):
        counter = KernelCallCounter(monkeypatch)
        sim = _binary_sim()
        sim.run(150)
        assert sim.pi_cache_local_hits > 0 and sim.pi_cache_misses > 0
        calls_before = counter.calls
        sim.run(150)
        # Misses now equal exactly the kernel calls of the *second* run;
        # stale accumulation would add the first run's count on top.
        assert sim.pi_cache_misses == counter.calls - calls_before
        assert sim.pi_cache_hits == sim.pi_cache_local_hits

    def test_shared_tier_hits_rewind(self):
        from repro.sim.pi_cache import SharedPiCache

        cache = SharedPiCache()
        make = lambda: _binary_sim(shared_pi_cache=cache)  # noqa: E731
        make().run(200)
        sim2 = make()
        sim2.run(200)
        assert sim2.pi_cache_shared_hits > 0 and sim2.pi_cache_misses == 0
        sim2.run(200)
        # Every shared entry is by now also in sim2's local cache, so the
        # second run cannot touch the shared tier at all; a stale counter
        # would still show the first run's hits.
        assert sim2.pi_cache_shared_hits == 0
        assert sim2.pi_cache_hits == (
            sim2.pi_cache_local_hits
            + sim2.pi_cache_shared_hits
            + sim2.pi_cache_disk_hits
        )

    def test_disk_tier_hits_rewind(self, tmp_path):
        from repro.sim.pi_cache import SharedPiCache

        _binary_sim(shared_pi_cache=SharedPiCache(disk=str(tmp_path))).run(200)
        # Fresh memory tiers over the warmed disk root: the first run is
        # served from disk, the rerun entirely from the local cache.
        sim = _binary_sim(shared_pi_cache=SharedPiCache(disk=str(tmp_path)))
        sim.run(200)
        assert sim.pi_cache_disk_hits > 0 and sim.pi_cache_misses == 0
        sim.run(200)
        assert sim.pi_cache_disk_hits == 0
        assert sim.pi_cache_hits + sim.pi_cache_misses > 0


class TestSharedPiCacheInSimulator:
    """The counting engine reading through a cross-trial cache."""

    def _shared_pair(self, **kwargs):
        from repro.sim.pi_cache import SharedPiCache

        cache = SharedPiCache()
        make = lambda: _binary_sim(shared_pi_cache=cache, **kwargs)  # noqa: E731
        return cache, make

    def test_second_simulator_reuses_first_ones_kernel_work(self, monkeypatch):
        counter = KernelCallCounter(monkeypatch)
        cache, make = self._shared_pair()
        make().run(200)
        first_calls = counter.calls
        assert first_calls > 0
        sim2 = make()
        sim2.run(200)
        # Identical seed -> identical signatures -> every lookup that the
        # local cache misses is served by the shared cache, zero recompute.
        assert counter.calls == first_calls
        assert sim2.pi_cache_misses == 0
        assert sim2.pi_cache_shared_hits > 0

    def test_stats_distinguish_shared_from_local_hits(self):
        cache, make = self._shared_pair()
        sim1 = make()
        sim1.run(200)
        assert sim1.pi_cache_shared_hits == 0  # nothing to share yet
        assert sim1.pi_cache_local_hits > 0
        assert sim1.pi_cache_hits == sim1.pi_cache_local_hits
        sim2 = make()
        sim2.run(200)
        assert sim2.pi_cache_shared_hits > 0
        assert sim2.pi_cache_hits == (
            sim2.pi_cache_local_hits + sim2.pi_cache_shared_hits
        )

    def test_shared_cache_run_bit_identical_to_unshared(self):
        cache, make = self._shared_pair()
        make().run(150)  # warm the shared cache
        warmed = make().run(150, trace_stride=1).trace.loads
        plain = _binary_sim().run(150, trace_stride=1).trace.loads
        assert np.array_equal(warmed, plain)

    def test_pi_cache_false_disables_shared_layer_too(self, monkeypatch):
        counter = KernelCallCounter(monkeypatch)
        cache, make = self._shared_pair(pi_cache=False)
        make().run(100)
        make().run(100)
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0
        assert counter.calls > 0

    def test_methods_do_not_share_entries(self, monkeypatch):
        from repro.sim.pi_cache import SharedPiCache

        counter = KernelCallCounter(monkeypatch)
        cache = SharedPiCache()
        _binary_sim(shared_pi_cache=cache, join_kernel_method="dp").run(100)
        dp_calls = counter.calls
        _binary_sim(shared_pi_cache=cache, join_kernel_method="fft").run(100)
        # The fft simulator saw the same signatures but must not consume
        # dp-computed entries: its misses recompute under its own keys.
        assert counter.calls > dp_calls

    def test_quadrature_method_accepted_end_to_end(self):
        out = _binary_sim(join_kernel_method="quadrature").run(80)
        assert out.rounds == 80

    def test_rejects_non_cache_object(self):
        with pytest.raises(Exception, match="shared_pi_cache"):
            _binary_sim(shared_pi_cache={"not": "a cache"})
