"""Cross-engine equivalence at k = 64: distribution-level agreement.

PR 2 made exact joins available at large k; this suite pins down the
claim that the counting engine's per-round *action distribution* is the
same law the per-ant engines realize, in the spirit of
distribution-based bisimulation for labelled Markov processes: two
engines are equivalent when, from matched states, they induce the same
distribution over the next observable (here, the joint join action of
the idle pool).  Concretely, at k = 64:

* the exact kernel's action distribution matches per-ant Monte Carlo in
  total-variation distance (the MC error bound scales as
  ``~0.4 * sqrt((k+1)/M)``, and thresholds leave 2x headroom);
* the agent-level ``Simulator``'s first join wave — n real simulated
  ants — pools to the same distribution;
* full trajectories of the ``exact`` and ``per_ant`` join strategies
  agree in their first two moments (heavy, marked ``slow``).

All comparisons run under matched seeds (trial i of every engine uses
the same root seed) across sigmoid and exact-binary feedback.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ant import AntAlgorithm
from repro.env.critical import lambda_for_critical_value
from repro.env.demands import uniform_demands
from repro.env.feedback import ExactBinaryFeedback, SigmoidFeedback
from repro.sim.counting import CountingSimulator
from repro.sim.engine import Simulator
from repro.util.mathx import exact_join_probabilities

K = 64


def tv_distance(p: np.ndarray, q: np.ndarray) -> float:
    """Total-variation distance between two distributions on the same support."""
    return 0.5 * float(np.abs(np.asarray(p) - np.asarray(q)).sum())


def per_ant_action_distribution(
    u: np.ndarray, trials: int, rng: np.random.Generator
) -> np.ndarray:
    """Empirical action distribution of ``trials`` independent idle ants."""
    k = u.shape[0]
    counts = np.zeros(k + 1)
    marks = rng.random((trials, k)) < u
    rows_any = marks.any(axis=1)
    counts[k] = (~rows_any).sum()
    idx = np.nonzero(rows_any)[0]
    if idx.size:
        row_counts = marks[idx].sum(axis=1)
        r = rng.integers(0, row_counts)
        csum = np.cumsum(marks[idx], axis=1)
        chosen = np.argmax(csum > r[:, None], axis=1)
        counts[:k] = np.bincount(chosen, minlength=k)
    return counts / trials


def _sigmoid_signature() -> np.ndarray:
    """A representative mid-run mark-probability vector at k = 64."""
    demand = uniform_demands(n=1000 * K, k=K)
    lam = lambda_for_critical_value(demand, gamma_star=0.05)
    loads = demand.as_array() + np.linspace(-40, 40, K).astype(np.int64)
    p = SigmoidFeedback(lam).lack_probabilities(demand.as_array() - loads)
    return p * p  # two-sample conjunction, as in an Ant phase


def _binary_signature() -> np.ndarray:
    """A mixed over/underloaded exact-binary signature at k = 64."""
    demand = uniform_demands(n=1000 * K, k=K)
    loads = demand.as_array().copy()
    loads[::2] += 1  # every second task overloaded by one ant
    p = ExactBinaryFeedback().lack_probabilities(demand.as_array() - loads)
    return p * p


class TestKernelVsPerAntMonteCarlo:
    """The kernel's pi against brute-force per-ant sampling, in TV."""

    M = 400_000  # MC error ~0.4*sqrt(65/M) ~ 0.005; threshold leaves 2x

    @pytest.mark.parametrize(
        "signature", [_sigmoid_signature, _binary_signature],
        ids=["sigmoid", "exact_binary"],
    )
    def test_tv_within_mc_error(self, signature):
        u = signature()
        pi = exact_join_probabilities(u)
        mc = per_ant_action_distribution(u, self.M, np.random.default_rng(1234))
        assert tv_distance(pi, mc) <= 0.01

    @pytest.mark.slow
    @pytest.mark.parametrize(
        "signature", [_sigmoid_signature, _binary_signature],
        ids=["sigmoid", "exact_binary"],
    )
    def test_tv_tight_with_large_sample(self, signature):
        u = signature()
        pi = exact_join_probabilities(u)
        mc = per_ant_action_distribution(u, 4_000_000, np.random.default_rng(99))
        assert tv_distance(pi, mc) <= 0.003


class TestCountingVsAgentJoinWave:
    """First-phase join wave: n real agent-engine ants vs the kernel.

    From the all-idle start the whole idle pool decides in round 2 with a
    known signature ``u = s(lambda * d)^2`` (no pauses can thin empty
    loads), so the agent engine's round-2 loads pooled over trials are
    M = trials * n i.i.d. samples from the action distribution — directly
    comparable, in TV, to the counting engine's pooled multinomial and to
    the exact pi.
    """

    TRIALS = 30
    N = 2000

    def _pooled(self, engine_factory) -> np.ndarray:
        counts = np.zeros(K + 1)
        for trial in range(self.TRIALS):
            out = engine_factory(trial).run(2, trace_stride=1)
            loads = out.trace.loads[1]
            counts[:K] += loads
            counts[K] += self.N - loads.sum()
        return counts / (self.TRIALS * self.N)

    @pytest.mark.parametrize("feedback_name", ["sigmoid", "exact_binary"])
    def test_pooled_join_wave_matches_kernel(self, feedback_name):
        demand = uniform_demands(n=self.N, k=K)
        if feedback_name == "sigmoid":
            lam = lambda_for_critical_value(demand, gamma_star=0.05)
            feedback = lambda: SigmoidFeedback(lam)  # noqa: E731
            p = SigmoidFeedback(lam).lack_probabilities(demand.as_array())
        else:
            feedback = ExactBinaryFeedback
            p = ExactBinaryFeedback().lack_probabilities(demand.as_array())
        pi = exact_join_probabilities(p * p)

        agent = self._pooled(
            lambda s: Simulator(
                AntAlgorithm(gamma=0.05), demand, feedback(), seed=s
            )
        )
        counting = self._pooled(
            lambda s: CountingSimulator(
                AntAlgorithm(gamma=0.05), demand, feedback(), seed=s
            )
        )
        # M = 60_000 pooled samples -> MC error ~0.013; threshold 2x.
        assert tv_distance(agent, pi) <= 0.026
        assert tv_distance(counting, pi) <= 0.026
        assert tv_distance(agent, counting) <= 0.04


@pytest.mark.slow
class TestExactVsPerAntStrategyTrajectories:
    """Whole-trajectory agreement of the two counting join strategies.

    Both are exact in distribution, so per-round load means must agree
    within Monte-Carlo error at every probe; run across sigmoid and
    exact-binary feedback under matched seeds.
    """

    TRIALS = 40
    ROUNDS = 40
    PROBES = (2, 6, 20, 40)

    def _stats(self, join_strategy: str, feedback_factory, demand):
        samples = []
        for trial in range(self.TRIALS):
            sim = CountingSimulator(
                AntAlgorithm(gamma=0.05),
                demand,
                feedback_factory(),
                seed=5000 + trial,
                join_strategy=join_strategy,
            )
            loads = sim.run(self.ROUNDS, trace_stride=1).trace.loads
            samples.append([loads[t - 1] for t in self.PROBES])
        arr = np.asarray(samples, dtype=float)
        return arr.mean(axis=0), arr.std(axis=0)

    @pytest.mark.parametrize("feedback_name", ["sigmoid", "exact_binary"])
    def test_moments_match(self, feedback_name):
        demand = uniform_demands(n=1000 * K, k=K)
        if feedback_name == "sigmoid":
            lam = lambda_for_critical_value(demand, gamma_star=0.05)
            feedback_factory = lambda: SigmoidFeedback(lam)  # noqa: E731
        else:
            feedback_factory = ExactBinaryFeedback
        mean_e, std_e = self._stats("exact", feedback_factory, demand)
        mean_p, std_p = self._stats("per_ant", feedback_factory, demand)
        sem = (std_e + std_p) / np.sqrt(self.TRIALS) + 1e-9
        assert np.all(np.abs(mean_e - mean_p) <= 4.0 * sem + 2.0)
