"""Tests for the multi-trial runner and sweeps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ant import AntAlgorithm
from repro.env.critical import lambda_for_critical_value
from repro.env.demands import uniform_demands
from repro.env.feedback import SigmoidFeedback
from repro.exceptions import ConfigurationError
from repro.sim.counting import CountingSimulator
from repro.sim.engine import Simulator
from repro.sim.runner import TrialRunner, run_trials, sweep

_DEMAND = uniform_demands(n=1000, k=2)
_LAM = lambda_for_critical_value(_DEMAND, gamma_star=0.05)


def _factory(seed):
    return Simulator(AntAlgorithm(gamma=0.05), _DEMAND, SigmoidFeedback(_LAM), seed=seed)


def _counting_factory(seed):
    return CountingSimulator(
        AntAlgorithm(gamma=0.05), _DEMAND, SigmoidFeedback(_LAM), seed=seed
    )


def _factory_for_gamma(gamma):
    def make(seed):
        return Simulator(
            AntAlgorithm(gamma=gamma), _DEMAND, SigmoidFeedback(_LAM), seed=seed
        )

    return make


class TestRunTrials:
    def test_summary_shape(self):
        s = run_trials(_factory, rounds=100, trials=3, seed=0)
        assert s.trials == 3
        assert s.average_regrets.shape == (3,)
        assert len(s.results) == 3

    def test_closeness_computed_when_given(self):
        s = run_trials(
            _factory, rounds=100, trials=2, seed=0,
            gamma_star=0.05, total_demand=_DEMAND.total,
        )
        assert s.closenesses is not None
        assert s.mean_closeness > 0

    def test_closeness_unavailable_raises(self):
        s = run_trials(_factory, rounds=50, trials=2, seed=0)
        with pytest.raises(ConfigurationError):
            _ = s.mean_closeness

    def test_reproducible(self):
        a = run_trials(_factory, rounds=60, trials=2, seed=4).average_regrets
        b = run_trials(_factory, rounds=60, trials=2, seed=4).average_regrets
        np.testing.assert_array_equal(a, b)

    def test_trials_independent(self):
        s = run_trials(_factory, rounds=61, trials=3, seed=0)
        assert len(set(s.average_regrets.tolist())) > 1

    def test_keep_results_false(self):
        s = run_trials(_factory, rounds=50, trials=2, seed=0, keep_results=False)
        assert s.results == []

    def test_describe(self):
        s = run_trials(_factory, rounds=50, trials=2, seed=0, label="abc")
        assert "abc" in s.describe()

    def test_multiprocess(self):
        s = run_trials(_factory, rounds=60, trials=2, seed=4, processes=2)
        b = run_trials(_factory, rounds=60, trials=2, seed=4)
        np.testing.assert_allclose(s.average_regrets, b.average_regrets)

    def test_rejects_zero_trials(self):
        with pytest.raises(ConfigurationError):
            run_trials(_factory, rounds=10, trials=0)


class TestBatchedDispatch:
    """``run_trials(batch=...)`` chunks trials through the batched engine."""

    def test_batch_bit_identical_to_serial_with_partial_chunk(self):
        # 7 trials at batch=3 exercises full chunks AND the trailing
        # partial one; every trial must match the serial path exactly.
        kwargs = dict(rounds=80, trials=7, seed=3)
        batched = run_trials(_counting_factory, batch=3, **kwargs)
        serial = run_trials(_counting_factory, batch=0, **kwargs)
        np.testing.assert_array_equal(batched.average_regrets, serial.average_regrets)
        for rb, rs in zip(batched.results, serial.results):
            assert rb.metrics.cumulative_regret == rs.metrics.cumulative_regret
            np.testing.assert_array_equal(rb.metrics.final_loads, rs.metrics.final_loads)

    def test_batch_larger_than_trials_is_fine(self):
        s = run_trials(_counting_factory, rounds=50, trials=2, seed=0, batch=16)
        assert s.trials == 2 and len(s.results) == 2

    def test_batch_rejects_non_counting_factory(self):
        # The plain Simulator has no batched lane protocol; the engine's
        # own validation surfaces with a clear type message.
        with pytest.raises(ConfigurationError, match="CountingSimulator"):
            run_trials(_factory, rounds=10, trials=2, seed=0, batch=2)

    def test_batch_and_processes_are_mutually_exclusive(self):
        with pytest.raises(ConfigurationError, match="mutually exclusive"):
            run_trials(
                _counting_factory, rounds=10, trials=2, seed=0, batch=2, processes=2
            )

    def test_batch_must_be_nonnegative(self):
        with pytest.raises(ConfigurationError, match="batch"):
            run_trials(_counting_factory, rounds=10, trials=2, seed=0, batch=-1)


class TestPicklableProbe:
    """Unpicklable factories fail fast with a registry-factory hint, not
    deep inside the worker pool."""

    def test_lambda_factory_raises_configuration_error(self):
        factory = lambda seed: _counting_factory(seed)  # noqa: E731
        with pytest.raises(
            ConfigurationError, match="picklable simulator factory"
        ) as excinfo:
            run_trials(factory, rounds=10, trials=2, seed=0, processes=2)
        # The message points at the workarounds, including the spec route.
        assert "module-level" in str(excinfo.value)
        assert "ScenarioFactory" in str(excinfo.value)

    def test_closure_over_live_components_raises_too(self):
        demand = uniform_demands(n=1000, k=2)

        def factory(seed):
            return _counting_factory(seed) if demand else None

        with pytest.raises(ConfigurationError, match="picklable"):
            run_trials(factory, rounds=10, trials=2, seed=0, processes=2)

    def test_module_level_factory_passes_the_probe(self):
        s = run_trials(_counting_factory, rounds=30, trials=2, seed=1, processes=2)
        assert s.trials == 2


class TestSweep:
    def test_series_and_table(self):
        result = sweep(
            "gamma",
            [0.03, 0.0625],
            _factory_for_gamma,
            rounds=200,
            trials=2,
            seed=0,
            gamma_star_for=lambda g: 0.05,
            total_demand=_DEMAND.total,
        )
        assert result.series().shape == (2,)
        assert "gamma" in result.table()
        assert result.summaries[0].params == {"gamma": 0.03}

    def test_rejects_empty_values(self):
        with pytest.raises(ConfigurationError):
            sweep("x", [], _factory_for_gamma, rounds=10, trials=1)

    def test_sweep_reproducible(self):
        kwargs = dict(rounds=60, trials=2, seed=7)
        a = sweep("gamma", [0.03, 0.0625], _factory_for_gamma, **kwargs)
        b = sweep("gamma", [0.03, 0.0625], _factory_for_gamma, **kwargs)
        np.testing.assert_array_equal(a.series(), b.series())

    def test_no_seed_aliasing_across_sweep_roots(self):
        # Regression: with the old ``seed + i`` derivation, point i of a
        # seed-s sweep shared every trial seed with point i-1 of a
        # seed-(s+1) sweep, so the same swept value produced identical
        # trials in supposedly independent sweeps.
        value = [0.0625, 0.0625]  # same config at every point
        s0 = sweep("gamma", value, _factory_for_gamma, rounds=60, trials=2, seed=0)
        s1 = sweep("gamma", value, _factory_for_gamma, rounds=60, trials=2, seed=1)
        # Old scheme: s1 point 0 == s0 point 1 exactly.  Now independent.
        assert not np.array_equal(
            s1.summaries[0].average_regrets, s0.summaries[1].average_regrets
        )
        # And distinct points within one sweep stay distinct too.
        assert not np.array_equal(
            s0.summaries[0].average_regrets, s0.summaries[1].average_regrets
        )


class TestTrialRunner:
    def test_run_with_overrides(self):
        r = TrialRunner(_factory, rounds=50, trials=2, seed=0)
        s = r.run(rounds=30, label="short")
        assert s.rounds == 30 and s.label == "short"
