"""Distributional equivalence of the Precise Sigmoid counting reduction.

The counting engine simulates Algorithm Precise Sigmoid at the *phase*
level using binomially amplified median probabilities (the Theorem 3.2
reduction).  This compares phase-boundary load moments against the
agent-level engine, which executes every round literally.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.precise_sigmoid import PreciseSigmoidAlgorithm
from repro.env.critical import lambda_for_critical_value
from repro.env.demands import DemandVector
from repro.env.feedback import SigmoidFeedback
from repro.sim.counting import CountingSimulator
from repro.sim.engine import Simulator
from repro.types import assignment_from_loads


@pytest.mark.slow
class TestPreciseSigmoidEquivalence:
    def test_phase_boundary_moments_match(self):
        demand = DemandVector(np.array([300, 300]), n=1200, strict=False)
        lam = lambda_for_critical_value(demand, gamma_star=0.05)
        # Large gamma/eps so joins/leaves have visible rates in few phases.
        alg = PreciseSigmoidAlgorithm(gamma=0.4, eps=0.9)
        phases = 3
        rounds = phases * alg.phase_length
        trials = 40
        start_loads = demand.as_array() + 60  # overloaded: leaves happen
        probe_rounds = [p * alg.phase_length for p in range(1, phases + 1)]

        def collect(make_sim):
            vals = []
            for trial in range(trials):
                out = make_sim(trial).run(rounds, trace_stride=1)
                vals.append([out.trace.loads[t - 1] for t in probe_rounds])
            return np.asarray(vals, dtype=float)

        agent = collect(
            lambda s: Simulator(
                alg,
                demand,
                SigmoidFeedback(lam),
                seed=7000 + s,
                initial_assignment=assignment_from_loads(start_loads, demand.n),
            )
        )
        counting = collect(
            lambda s: CountingSimulator(
                alg,
                demand,
                SigmoidFeedback(lam),
                seed=8000 + s,
                initial_loads=start_loads,
            )
        )
        sem = (agent.std(axis=0) + counting.std(axis=0)) / np.sqrt(trials) + 1e-9
        diff = np.abs(agent.mean(axis=0) - counting.mean(axis=0))
        assert np.all(diff <= 4.0 * sem + 2.0), (diff, sem)

    def test_pause_depth_matches(self):
        """The mid-phase (post-pause) load distribution agrees too."""
        demand = DemandVector(np.array([400]), n=800, strict=False)
        lam = lambda_for_critical_value(demand, gamma_star=0.05)
        alg = PreciseSigmoidAlgorithm(gamma=0.4, eps=0.9)
        trials = 40
        start_loads = demand.as_array().copy()
        probe = alg.m  # the pause round

        def mid_loads(make_sim):
            out = []
            for trial in range(trials):
                r = make_sim(trial).run(probe, trace_stride=1)
                out.append(float(r.trace.loads[probe - 1, 0]))
            return np.asarray(out)

        a = mid_loads(
            lambda s: Simulator(
                alg,
                demand,
                SigmoidFeedback(lam),
                seed=9000 + s,
                initial_assignment=assignment_from_loads(start_loads, demand.n),
            )
        )
        c = mid_loads(
            lambda s: CountingSimulator(
                alg, demand, SigmoidFeedback(lam), seed=9500 + s, initial_loads=start_loads
            )
        )
        sem = (a.std() + c.std()) / np.sqrt(trials) + 1e-9
        assert abs(a.mean() - c.mean()) <= 4.0 * sem + 1.0
