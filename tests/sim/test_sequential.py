"""Tests for the sequential (one-ant-per-round) scheduler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ant import AntAlgorithm
from repro.core.trivial import TrivialAlgorithm
from repro.env.critical import lambda_for_critical_value
from repro.env.demands import DemandVector
from repro.env.feedback import SigmoidFeedback
from repro.exceptions import ConfigurationError
from repro.sim.sequential import SequentialSimulator


@pytest.fixture
def single_task():
    return DemandVector(np.array([500]), n=2000, strict=False)


class TestSequentialSimulator:
    def test_requires_step_single(self, single_task):
        with pytest.raises(ConfigurationError, match="step_single"):
            SequentialSimulator(
                AntAlgorithm(gamma=0.01), single_task, SigmoidFeedback(1.0)
            )

    def test_one_ant_moves_per_round(self, single_task):
        lam = lambda_for_critical_value(single_task, gamma_star=0.1)
        sim = SequentialSimulator(
            TrivialAlgorithm(), single_task, SigmoidFeedback(lam), seed=0
        )
        out = sim.run(100, trace_stride=1)
        loads = out.trace.loads[:, 0]
        diffs = np.abs(np.diff(np.concatenate([[0], loads])))
        assert np.all(diffs <= 1)

    @pytest.mark.slow
    def test_converges_to_small_regret(self, single_task):
        lam = lambda_for_critical_value(single_task, gamma_star=0.1)
        sim = SequentialSimulator(
            TrivialAlgorithm(), single_task, SigmoidFeedback(lam), seed=0
        )
        out = sim.run(40_000, burn_in=20_000)
        # Appendix D.1: regret stays at the gamma* * d scale, not Theta(n).
        assert out.metrics.average_regret <= 0.1 * single_task.min_demand

    def test_reproducible(self, single_task):
        lam = lambda_for_critical_value(single_task, gamma_star=0.1)

        def run():
            return SequentialSimulator(
                TrivialAlgorithm(), single_task, SigmoidFeedback(lam), seed=11
            ).run(500).final_loads

        np.testing.assert_array_equal(run(), run())

    def test_burn_in(self, single_task):
        lam = lambda_for_critical_value(single_task, gamma_star=0.1)
        sim = SequentialSimulator(
            TrivialAlgorithm(), single_task, SigmoidFeedback(lam), seed=0
        )
        out = sim.run(100, burn_in=50)
        assert out.metrics.rounds == 50

    def test_burn_in_must_be_below_rounds(self, single_task):
        from repro.exceptions import ConfigurationError

        lam = lambda_for_critical_value(single_task, gamma_star=0.1)
        sim = SequentialSimulator(
            TrivialAlgorithm(), single_task, SigmoidFeedback(lam), seed=0
        )
        with pytest.raises(ConfigurationError, match="burn_in"):
            sim.run(100, burn_in=100)
