"""Distributional equivalence of the agent-level and counting engines.

The counting engine claims to be *exact in distribution* for Algorithm
Ant and the trivial algorithm under i.i.d. noise.  These tests compare
moments of the load trajectories across many trials of both engines.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ant import AntAlgorithm
from repro.core.trivial import TrivialAlgorithm
from repro.env.critical import lambda_for_critical_value
from repro.env.demands import uniform_demands
from repro.env.feedback import SigmoidFeedback
from repro.sim.counting import CountingSimulator
from repro.sim.engine import Simulator
from repro.types import assignment_from_loads


def _trajectory_stats(engine_factory, trials: int, rounds: int, probe_rounds):
    """Mean and std of loads at probe rounds over independent trials."""
    samples = []
    for trial in range(trials):
        out = engine_factory(trial).run(rounds, trace_stride=1)
        loads = out.trace.loads
        samples.append([loads[t - 1] for t in probe_rounds])
    arr = np.asarray(samples, dtype=float)  # (trials, probes, k)
    return arr.mean(axis=0), arr.std(axis=0)


@pytest.mark.slow
class TestAntEquivalence:
    def test_moments_match(self):
        demand = uniform_demands(n=2000, k=3)
        gs = 0.02
        lam = lambda_for_critical_value(demand, gamma_star=gs)
        gamma = 0.05
        rounds, trials = 60, 60
        probes = [2, 10, 30, 60]
        start_loads = demand.as_array() + 80  # overloaded start: drains

        def agent(seed):
            return Simulator(
                AntAlgorithm(gamma=gamma),
                demand,
                SigmoidFeedback(lam),
                seed=1000 + seed,
                initial_assignment=assignment_from_loads(start_loads, demand.n),
            )

        def counting(seed):
            return CountingSimulator(
                AntAlgorithm(gamma=gamma),
                demand,
                SigmoidFeedback(lam),
                seed=2000 + seed,
                initial_loads=start_loads,
            )

        mean_a, std_a = _trajectory_stats(agent, trials, rounds, probes)
        mean_c, std_c = _trajectory_stats(counting, trials, rounds, probes)
        # Means within 4 standard errors of each other.
        sem = (std_a + std_c) / np.sqrt(trials) + 1e-9
        assert np.all(np.abs(mean_a - mean_c) <= 4.0 * sem + 2.0)

    def test_join_blowup_magnitude_matches(self):
        """From all-idle, the first phase's join wave must have the same
        expected size in both engines."""
        demand = uniform_demands(n=2000, k=3)
        lam = lambda_for_critical_value(demand, gamma_star=0.02)
        gamma = 0.05
        trials = 40
        joins_agent, joins_counting = [], []
        for trial in range(trials):
            a = Simulator(
                AntAlgorithm(gamma=gamma), demand, SigmoidFeedback(lam), seed=trial
            ).run(2, trace_stride=1)
            joins_agent.append(a.trace.loads[1].sum())
            c = CountingSimulator(
                AntAlgorithm(gamma=gamma), demand, SigmoidFeedback(lam), seed=trial
            ).run(2, trace_stride=1)
            joins_counting.append(c.trace.loads[1].sum())
        assert np.mean(joins_agent) == pytest.approx(np.mean(joins_counting), rel=0.02)


@pytest.mark.slow
class TestTrivialEquivalence:
    def test_oscillation_envelope_matches(self):
        from repro.env.demands import DemandVector

        demand = DemandVector(np.array([500, 500]), n=2000, strict=False)
        lam = lambda_for_critical_value(demand, gamma_star=0.05)
        rounds, trials = 40, 40
        probes = [1, 2, 3, 10, 40]

        def agent(seed):
            return Simulator(
                TrivialAlgorithm(), demand, SigmoidFeedback(lam), seed=3000 + seed
            )

        def counting(seed):
            return CountingSimulator(
                TrivialAlgorithm(), demand, SigmoidFeedback(lam), seed=4000 + seed
            )

        mean_a, std_a = _trajectory_stats(agent, trials, rounds, probes)
        mean_c, std_c = _trajectory_stats(counting, trials, rounds, probes)
        sem = (std_a + std_c) / np.sqrt(trials) + 1e-9
        assert np.all(np.abs(mean_a - mean_c) <= 4.0 * sem + 2.0)
