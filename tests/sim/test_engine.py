"""Integration tests for the agent-level simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ant import AntAlgorithm
from repro.core.trivial import TrivialAlgorithm
from repro.env.demands import StepDemandSchedule
from repro.env.feedback import ExactBinaryFeedback, SigmoidFeedback
from repro.env.critical import lambda_for_critical_value
from repro.exceptions import ConfigurationError
from repro.sim.engine import Simulator
from repro.types import IDLE, assignment_from_loads


class TestSimulatorBasics:
    def test_result_shape(self, small_demand):
        sim = Simulator(
            AntAlgorithm(gamma=0.05), small_demand, SigmoidFeedback(1.0), seed=0
        )
        out = sim.run(10, trace_stride=1)
        assert out.rounds == 10
        assert out.n == small_demand.n and out.k == small_demand.k
        assert out.final_assignment.shape == (small_demand.n,)
        assert len(out.trace) == 10

    def test_reproducible_with_seed(self, small_demand):
        def run():
            sim = Simulator(
                AntAlgorithm(gamma=0.05), small_demand, SigmoidFeedback(1.0), seed=99
            )
            return sim.run(50).final_loads

        np.testing.assert_array_equal(run(), run())

    def test_different_seeds_differ(self, small_demand):
        outs = []
        for seed in (1, 2):
            sim = Simulator(
                AntAlgorithm(gamma=0.05), small_demand, SigmoidFeedback(1.0), seed=seed
            )
            outs.append(sim.run(51).final_loads)
        assert not np.array_equal(outs[0], outs[1])

    def test_invariant_checking_enabled(self, small_demand):
        sim = Simulator(
            AntAlgorithm(gamma=0.05),
            small_demand,
            SigmoidFeedback(1.0),
            seed=0,
            check_invariants_every=1,
        )
        sim.run(20)  # must not raise

    def test_conservation_of_ants(self, small_demand):
        sim = Simulator(
            AntAlgorithm(gamma=0.05), small_demand, SigmoidFeedback(1.0), seed=0
        )
        out = sim.run(30)
        working = int(out.final_loads.sum())
        idle = int((out.final_assignment == IDLE).sum())
        assert working + idle == small_demand.n

    def test_rejects_bad_demand_type(self):
        with pytest.raises(ConfigurationError):
            Simulator(AntAlgorithm(gamma=0.05), "demands", SigmoidFeedback(1.0))

    def test_rejects_zero_rounds(self, small_demand):
        sim = Simulator(AntAlgorithm(gamma=0.05), small_demand, SigmoidFeedback(1.0))
        with pytest.raises(ConfigurationError):
            sim.run(0)

    def test_initial_assignment_array(self, small_demand):
        start = assignment_from_loads(small_demand.as_array(), small_demand.n)
        sim = Simulator(
            AntAlgorithm(gamma=0.05),
            small_demand,
            SigmoidFeedback(1.0),
            seed=0,
            initial_assignment=start,
        )
        out = sim.run(1, trace_stride=1)
        # After one (odd) round only pauses can occur: loads <= demands.
        assert np.all(out.trace.loads[0] <= small_demand.as_array())

    def test_burn_in_shrinks_accounted_rounds(self, small_demand):
        sim = Simulator(AntAlgorithm(gamma=0.05), small_demand, SigmoidFeedback(1.0), seed=0)
        out = sim.run(20, burn_in=10)
        assert out.metrics.rounds == 10

    def test_burn_in_must_be_below_rounds(self, small_demand):
        from repro.exceptions import ConfigurationError

        sim = Simulator(AntAlgorithm(gamma=0.05), small_demand, SigmoidFeedback(1.0), seed=0)
        for burn_in in (20, 25, -1):
            with pytest.raises(ConfigurationError, match="burn_in"):
                sim.run(20, burn_in=burn_in)

    def test_n_current_defaults_to_n(self, small_demand):
        sim = Simulator(AntAlgorithm(gamma=0.05), small_demand, SigmoidFeedback(1.0), seed=0)
        out = sim.run(5)
        assert out.n_current == out.n == small_demand.n


class TestSimulatorConvergence:
    @pytest.mark.slow
    def test_ant_converges_and_stays(self, stable_demand, sigmoid, ant, gamma_star):
        sim = Simulator(ant, stable_demand, sigmoid, seed=0)
        out = sim.run(8000, burn_in=4000)
        c = out.metrics.closeness(gamma_star, stable_demand.total)
        assert c <= 5.0 * ant.gamma / gamma_star

    @pytest.mark.slow
    def test_deficit_band_theorem_3_1(self, stable_demand, sigmoid, ant, gamma_star):
        """Theorem 3.1's second claim: |deficit| <= 5*gamma*d + 3 in all
        but O(k log n / gamma) rounds."""
        sim = Simulator(ant, stable_demand, sigmoid, seed=1)
        rounds = 8000
        out = sim.run(rounds, burn_in=0)
        k, n, gamma = stable_demand.k, stable_demand.n, ant.gamma
        budget = 40.0 * k * np.log(n) / gamma  # generous constant
        assert out.metrics.rounds_outside_band <= budget

    @pytest.mark.slow
    def test_dynamic_demands(self, stable_demand, sigmoid):
        shifted = stable_demand.with_demands(stable_demand.as_array() + [200, -200, 0, 0])
        schedule = StepDemandSchedule(steps=((0, stable_demand), (2000, shifted)))
        sim = Simulator(AntAlgorithm(gamma=0.025), schedule, sigmoid, seed=0)
        out = sim.run(6000)
        final_deficit = np.abs(shifted.as_array() - out.final_loads)
        assert np.all(final_deficit <= 5 * 0.025 * shifted.as_array() + 3)

    def test_trivial_synchronous_oscillates(self):
        from repro.env.demands import DemandVector

        demand = DemandVector(np.array([500]), n=2000, strict=False)
        lam = lambda_for_critical_value(demand, gamma_star=0.1)
        sim = Simulator(TrivialAlgorithm(), demand, SigmoidFeedback(lam), seed=0)
        out = sim.run(200, trace_stride=1)
        loads = out.trace.loads[:, 0]
        assert loads.max() - loads.min() >= 1000  # Theta(n) swing

    def test_exact_feedback_one_sided(self, small_demand):
        # With exact feedback and all ants on one task, everyone leaves.
        start = np.zeros(small_demand.n, dtype=np.int64)
        sim = Simulator(
            TrivialAlgorithm(),
            small_demand,
            ExactBinaryFeedback(),
            seed=0,
            initial_assignment=start,
        )
        out = sim.run(1, trace_stride=1)
        # Overloaded task 0 sheds everyone; idle ants were none.
        assert out.trace.loads[0, 0] == 0
