"""Tests for the O(k)-per-round counting engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ant import AntAlgorithm, OneSampleAntAlgorithm
from repro.core.precise_sigmoid import PreciseSigmoidAlgorithm
from repro.core.trivial import TrivialAlgorithm
from repro.env.critical import lambda_for_critical_value
from repro.env.demands import uniform_demands
from repro.env.feedback import AdversarialFeedback, SigmoidFeedback
from repro.env.population import StepPopulation
from repro.exceptions import ConfigurationError
from repro.sim.counting import CountingSimulator


class TestConstruction:
    def test_rejects_unsupported_algorithm(self, small_demand):
        with pytest.raises(ConfigurationError, match="CountingSimulator supports"):
            CountingSimulator(
                OneSampleAntAlgorithm(gamma=0.01), small_demand, SigmoidFeedback(1.0)
            )

    def test_rejects_non_iid_feedback(self, small_demand):
        with pytest.raises(ConfigurationError, match="i.i.d"):
            CountingSimulator(
                AntAlgorithm(gamma=0.01), small_demand, AdversarialFeedback(0.1)
            )

    def test_rejects_unknown_join_strategy(self, small_demand):
        with pytest.raises(ConfigurationError, match="join_strategy"):
            CountingSimulator(
                AntAlgorithm(gamma=0.01),
                small_demand,
                SigmoidFeedback(1.0),
                join_strategy="enumerate",
            )

    def test_rejects_bad_initial_loads(self, small_demand):
        with pytest.raises(ConfigurationError):
            CountingSimulator(
                AntAlgorithm(gamma=0.01),
                small_demand,
                SigmoidFeedback(1.0),
                initial_loads=np.array([-1, 0, 0, 0]),
            )
        with pytest.raises(ConfigurationError):
            CountingSimulator(
                AntAlgorithm(gamma=0.01),
                small_demand,
                SigmoidFeedback(1.0),
                initial_loads=np.full(4, small_demand.n),
            )


class TestAntCounting:
    def test_runs_and_conserves(self, stable_demand, sigmoid):
        sim = CountingSimulator(AntAlgorithm(gamma=0.025), stable_demand, sigmoid, seed=0)
        out = sim.run(2000, trace_stride=1)
        loads = out.trace.loads
        assert np.all(loads >= 0)
        assert np.all(loads.sum(axis=1) <= stable_demand.n)

    def test_reproducible(self, stable_demand, sigmoid):
        runs = [
            CountingSimulator(AntAlgorithm(gamma=0.025), stable_demand, sigmoid, seed=5)
            .run(500)
            .final_loads
            for _ in range(2)
        ]
        np.testing.assert_array_equal(runs[0], runs[1])

    def test_converges(self, stable_demand, sigmoid, gamma_star):
        sim = CountingSimulator(AntAlgorithm(gamma=0.025), stable_demand, sigmoid, seed=0)
        out = sim.run(8000, burn_in=4000)
        assert out.metrics.closeness(gamma_star, stable_demand.total) <= 12.5

    def test_final_assignment_consistent(self, stable_demand, sigmoid):
        sim = CountingSimulator(AntAlgorithm(gamma=0.025), stable_demand, sigmoid, seed=0)
        out = sim.run(100)
        from repro.types import loads_from_assignment

        np.testing.assert_array_equal(
            loads_from_assignment(out.final_assignment, stable_demand.k),
            out.final_loads.astype(np.int64),
        )


class TestManyTasks:
    """Exact counting runs at task counts the subset enumerator could
    never reach (the O(k^2) kernel's raison d'etre)."""

    def test_k64_exact_run_completes(self):
        demand = uniform_demands(n=64000, k=64)
        lam = lambda_for_critical_value(demand, gamma_star=0.01)
        sim = CountingSimulator(
            AntAlgorithm(gamma=0.025), demand, SigmoidFeedback(lam), seed=0
        )
        out = sim.run(1000, burn_in=500)
        assert out.k == 64
        assert np.all(out.final_loads >= 0)
        assert int(out.final_loads.sum()) <= demand.n
        # After burn-in the colony is near demand, not stuck at zero.
        assert out.metrics.average_regret < 0.5 * demand.total

    def test_k256_run_completes(self):
        demand = uniform_demands(n=256000, k=256)
        lam = lambda_for_critical_value(demand, gamma_star=0.01)
        sim = CountingSimulator(
            AntAlgorithm(gamma=0.025), demand, SigmoidFeedback(lam), seed=1
        )
        out = sim.run(200)
        assert out.k == 256
        assert int(out.final_loads.sum()) <= demand.n

    def test_k1024_heterogeneous_run_completes(self):
        """k past the FFT dispatch threshold, power-law demands, per-task
        lambda — the PR 3 scenario surface end to end."""
        from repro.env.demands import powerlaw_demands

        demand = powerlaw_demands(n=102400, k=1024, alpha=1.0)
        # Equal relative grey zone: steeper lambda for lighter tasks.
        lam = 10.0 / demand.as_array().astype(float)
        sim = CountingSimulator(
            AntAlgorithm(gamma=0.025), demand, SigmoidFeedback(lam), seed=2
        )
        out = sim.run(30)
        assert out.k == 1024
        assert np.all(out.final_loads >= 0)
        assert int(out.final_loads.sum()) <= demand.n

    def test_kernel_methods_agree_on_engine_signatures(self, monkeypatch):
        """DP and FFT kernels agree (<=1e-12) on every mark-probability
        vector an actual run encounters — not just synthetic inputs."""
        import repro.sim.counting as counting_mod
        from repro.util.mathx import exact_join_probabilities as kernel

        seen: list[np.ndarray] = []

        def capturing(u, **kwargs):
            seen.append(np.array(u))
            return kernel(u, **kwargs)

        monkeypatch.setattr(counting_mod, "exact_join_probabilities", capturing)
        demand = uniform_demands(n=2000, k=4)
        lam = lambda_for_critical_value(demand, gamma_star=0.02)
        CountingSimulator(
            AntAlgorithm(gamma=0.05), demand, SigmoidFeedback(lam), seed=9
        ).run(60)
        assert seen, "run produced no join rounds"
        for u in seen:
            np.testing.assert_allclose(
                kernel(u, method="dp"), kernel(u, method="fft"), atol=1e-12
            )

    @pytest.mark.slow
    def test_exact_matches_per_ant_cross_check(self):
        """Same law for the multinomial-over-kernel and per-ant join
        strategies: load moments agree within Monte-Carlo error at a k
        beyond the retired enumeration limit."""
        demand = uniform_demands(n=4000, k=20)
        lam = lambda_for_critical_value(demand, gamma_star=0.02)
        rounds, trials = 40, 60
        probes = [2, 10, 40]

        def stats_for(strategy):
            samples = []
            for trial in range(trials):
                out = CountingSimulator(
                    AntAlgorithm(gamma=0.05),
                    demand,
                    SigmoidFeedback(lam),
                    seed=(5000 if strategy == "exact" else 6000) + trial,
                    join_strategy=strategy,
                ).run(rounds, trace_stride=1)
                samples.append([out.trace.loads[t - 1] for t in probes])
            arr = np.asarray(samples, dtype=float)
            return arr.mean(axis=0), arr.std(axis=0)

        mean_e, std_e = stats_for("exact")
        mean_p, std_p = stats_for("per_ant")
        sem = (std_e + std_p) / np.sqrt(trials) + 1e-9
        assert np.all(np.abs(mean_e - mean_p) <= 4.0 * sem + 2.0)


class TestBurnInValidation:
    def test_burn_in_equal_to_rounds_rejected(self, stable_demand, sigmoid):
        sim = CountingSimulator(AntAlgorithm(gamma=0.025), stable_demand, sigmoid, seed=0)
        with pytest.raises(ConfigurationError, match="burn_in"):
            sim.run(100, burn_in=100)

    def test_burn_in_exceeding_rounds_rejected(self, stable_demand, sigmoid):
        sim = CountingSimulator(AntAlgorithm(gamma=0.025), stable_demand, sigmoid, seed=0)
        with pytest.raises(ConfigurationError, match="burn_in"):
            sim.run(100, burn_in=150)

    def test_negative_burn_in_rejected(self, stable_demand, sigmoid):
        sim = CountingSimulator(AntAlgorithm(gamma=0.025), stable_demand, sigmoid, seed=0)
        with pytest.raises(ConfigurationError, match="burn_in"):
            sim.run(100, burn_in=-1)


class TestPopulationReporting:
    """After a shrink the result must describe the living colony, not
    pad dead ants as IDLE up to capacity."""

    def _shrunk_run(self):
        demand = uniform_demands(n=8000, k=4)
        lam = lambda_for_critical_value(demand, gamma_star=0.01)
        pop = StepPopulation(steps=((0, 8000), (100, 5600)))
        sim = CountingSimulator(
            AntAlgorithm(gamma=0.025),
            demand,
            SigmoidFeedback(lam),
            seed=0,
            population=pop,
        )
        return sim, sim.run(400)

    def test_n_current_reports_living_count(self):
        _, out = self._shrunk_run()
        assert out.n == 8000  # capacity is still reported as n
        assert out.n_current == 5600

    def test_final_assignment_sized_by_living_colony(self):
        _, out = self._shrunk_run()
        assert out.final_assignment.shape == (5600,)
        working = int((out.final_assignment >= 0).sum())
        idle = int((out.final_assignment == -1).sum())
        assert working == int(out.final_loads.sum())
        assert working + idle == out.n_current

    def test_static_population_n_current_equals_n(self, stable_demand, sigmoid):
        out = CountingSimulator(
            AntAlgorithm(gamma=0.025), stable_demand, sigmoid, seed=0
        ).run(50)
        assert out.n_current == out.n == stable_demand.n
        assert out.final_assignment.shape == (stable_demand.n,)

    def test_rerun_starts_from_initial_population(self):
        sim, first = self._shrunk_run()
        again = sim.run(50)  # shorter than the shrink round
        assert again.n_current == 8000
        assert again.final_assignment.shape == (8000,)

    def test_rerun_never_resizes_before_the_step(self, monkeypatch):
        # Sharper pin on the _n_current rewind: a second run shorter than
        # the shrink round must never call apply_population_change at all.
        # Stale _n_current from the first run (stuck at the shrunk size)
        # would force a spurious "resize" back to 8000 at round 1.
        sim, _ = self._shrunk_run()
        import repro.sim.counting as counting_mod

        calls: list[int] = []
        real = counting_mod.apply_population_change

        def spy(W, idle, n_new, rng):
            calls.append(n_new)
            return real(W, idle, n_new, rng)

        monkeypatch.setattr(counting_mod, "apply_population_change", spy)
        sim.run(50)
        assert calls == []


class TestTrivialCounting:
    def test_oscillates_like_agent_engine(self):
        from repro.env.demands import DemandVector

        demand = DemandVector(np.array([500]), n=2000, strict=False)
        lam = lambda_for_critical_value(demand, gamma_star=0.1)
        sim = CountingSimulator(TrivialAlgorithm(), demand, SigmoidFeedback(lam), seed=0)
        out = sim.run(200, trace_stride=1)
        loads = out.trace.loads[:, 0]
        assert loads.max() - loads.min() >= 1000

    def test_rate_limited_variant(self, stable_demand, sigmoid):
        alg = TrivialAlgorithm(leave_probability=0.002, join_probability=0.002)
        sim = CountingSimulator(alg, stable_demand, sigmoid, seed=0)
        out = sim.run(8000, burn_in=6000)
        # The damped variant holds a tight allocation.
        assert out.metrics.max_abs_deficit <= 0.1 * stable_demand.min_demand


class TestPreciseSigmoidCounting:
    def test_phase_structure_loads_piecewise_constant(self, stable_demand, sigmoid):
        alg = PreciseSigmoidAlgorithm(gamma=0.04, eps=0.5)
        start = stable_demand.as_array() + 50
        sim = CountingSimulator(alg, stable_demand, sigmoid, seed=0, initial_loads=start)
        out = sim.run(alg.phase_length, trace_stride=1)
        loads = out.trace.loads
        # Window 1 (rounds 1..m-1): loads frozen at the start value.
        assert np.all(loads[: alg.m - 1] == start)
        # Window 2 (rounds m..2m-1): frozen at the paused value.
        assert np.all(loads[alg.m : 2 * alg.m - 1] == loads[alg.m - 1])

    def test_converges_at_scale(self):
        n = 80000
        demand = uniform_demands(n=n, k=4)
        gs = 0.01
        lam = lambda_for_critical_value(demand, gamma_star=gs)
        alg = PreciseSigmoidAlgorithm(gamma=0.04, eps=0.5)
        start = np.round(demand.as_array() * (1 + 2 * alg.step_size)).astype(np.int64)
        sim = CountingSimulator(alg, demand, SigmoidFeedback(lam), seed=0, initial_loads=start)
        out = sim.run(40000, burn_in=8000)
        # Theorem 3.2 rate: eps * gamma * sum_d.
        assert out.metrics.average_regret <= 0.5 * 0.04 * demand.total
