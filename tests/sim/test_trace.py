"""Tests for trace recording."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import AnalysisError
from repro.sim.trace import Trace


class TestTrace:
    def test_dense_recording(self):
        tr = Trace(stride=1)
        for t in range(1, 6):
            tr.record(t, np.array([t, 2 * t]), float(t))
        assert len(tr) == 5
        np.testing.assert_array_equal(tr.rounds, [1, 2, 3, 4, 5])
        assert tr.loads.shape == (5, 2)
        np.testing.assert_allclose(tr.regrets, [1, 2, 3, 4, 5])

    def test_stride(self):
        tr = Trace(stride=10)
        for t in range(1, 31):
            tr.record(t, np.array([t]), 0.0)
        np.testing.assert_array_equal(tr.rounds, [10, 20, 30])

    def test_deficits(self):
        tr = Trace(stride=1)
        tr.record(1, np.array([8, 15]), 0.0)
        d = tr.deficits(np.array([10, 20]))
        np.testing.assert_array_equal(d, [[2, 5]])

    def test_deficits_shape_mismatch(self):
        tr = Trace(stride=1)
        tr.record(1, np.array([8, 15]), 0.0)
        with pytest.raises(AnalysisError):
            tr.deficits(np.array([10]))

    def test_tail_window(self):
        tr = Trace(stride=100, tail_window=3)
        for t in range(1, 11):
            tr.record(t, np.array([t]), float(t))
        ts, loads, rs = tr.tail()
        np.testing.assert_array_equal(ts, [8, 9, 10])
        np.testing.assert_array_equal(loads[:, 0], [8, 9, 10])

    def test_tail_without_window_raises(self):
        tr = Trace(stride=1)
        tr.record(1, np.array([1]), 0.0)
        with pytest.raises(AnalysisError):
            tr.tail()

    def test_loads_copied(self):
        tr = Trace(stride=1)
        arr = np.array([5])
        tr.record(1, arr, 0.0)
        arr[0] = 99
        assert tr.loads[0, 0] == 5

    def test_empty_loads_shape(self):
        tr = Trace(stride=1)
        assert tr.loads.shape == (0, 0)

    def test_rejects_bad_stride(self):
        with pytest.raises(Exception):
            Trace(stride=0)
