"""Batched-vs-serial equivalence: bit-identity per lane, same law overall.

The batched engine's contract is strictly stronger than distributional
bisimulation: trial i of a :class:`BatchedCountingSimulator` run must be
**bit-identical** to trial i of the serial :class:`CountingSimulator` —
same loads every traced round, same regret sequence, same metrics, same
final assignment — because both consume the identical per-trial RNG
substream with identical call arguments.  The suite pins that for every
supported algorithm (ant / precise sigmoid / trivial, sigmoid and
exact-binary feedback, static and stepped populations, both join
strategies), and cross-checks the batch-level action distribution
against the per-ant Monte Carlo oracle at k = 64 in total-variation
distance, reusing the cross-engine suite's oracle.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ant import AntAlgorithm
from repro.core.precise_sigmoid import PreciseSigmoidAlgorithm
from repro.core.trivial import TrivialAlgorithm
from repro.env.critical import lambda_for_critical_value
from repro.env.demands import uniform_demands
from repro.env.feedback import ExactBinaryFeedback, SigmoidFeedback
from repro.env.population import StepPopulation
from repro.exceptions import ConfigurationError
from repro.sim.batched import DEFAULT_BATCH, BatchedCountingSimulator
from repro.sim.counting import CountingSimulator
from repro.util.mathx import exact_join_probabilities

from tests.sim.test_cross_engine_equivalence import (
    per_ant_action_distribution,
    tv_distance,
)

N, K = 800, 8
ROUNDS = 200  # covers a full precise-sigmoid phase (m=41 -> 2m=82) twice
SEEDS = tuple(range(905, 905 + 5))


def _components(feedback: str = "sigmoid"):
    demand = uniform_demands(n=N, k=K)
    if feedback == "sigmoid":
        fb = SigmoidFeedback(lambda_for_critical_value(demand, gamma_star=0.01))
    else:
        fb = ExactBinaryFeedback()
    return demand, fb


def _factory(algorithm_factory, feedback="sigmoid", population=None, **engine_kwargs):
    def build(seed: int) -> CountingSimulator:
        demand, fb = _components(feedback)
        return CountingSimulator(
            algorithm_factory(), demand, fb, seed=seed, population=population, **engine_kwargs
        )

    return build


CONFIGS = {
    "ant": _factory(lambda: AntAlgorithm(gamma=0.05)),
    "ant_exact_binary": _factory(lambda: AntAlgorithm(gamma=0.05), feedback="binary"),
    "ant_per_ant_joins": _factory(
        lambda: AntAlgorithm(gamma=0.05), join_strategy="per_ant"
    ),
    "ant_step_population": _factory(
        lambda: AntAlgorithm(gamma=0.05),
        population=StepPopulation(steps=((0, N), (21, int(N * 0.85)), (61, N))),
    ),
    "ant_cache_off": _factory(lambda: AntAlgorithm(gamma=0.05), pi_cache=False),
    "precise_sigmoid": _factory(lambda: PreciseSigmoidAlgorithm(gamma=0.05, eps=0.5)),
    "trivial": _factory(lambda: TrivialAlgorithm()),
    "trivial_partial_join": _factory(
        lambda: TrivialAlgorithm(leave_probability=0.6, join_probability=0.7)
    ),
}


def _assert_results_bit_identical(serial, batched):
    ms, mb = serial.metrics, batched.metrics
    assert ms.rounds == mb.rounds
    assert ms.cumulative_regret == mb.cumulative_regret
    assert ms.regret_plus == mb.regret_plus
    assert ms.regret_near == mb.regret_near
    assert ms.regret_minus == mb.regret_minus
    assert ms.total_switches == mb.total_switches
    assert ms.max_abs_deficit == mb.max_abs_deficit
    assert ms.rounds_outside_band == mb.rounds_outside_band
    np.testing.assert_array_equal(ms.final_loads, mb.final_loads)
    np.testing.assert_array_equal(ms.final_deficits, mb.final_deficits)
    np.testing.assert_array_equal(serial.final_assignment, batched.final_assignment)
    assert serial.n_current == batched.n_current
    np.testing.assert_array_equal(serial.trace.rounds, batched.trace.rounds)
    np.testing.assert_array_equal(serial.trace.loads, batched.trace.loads)
    np.testing.assert_array_equal(serial.trace.regrets, batched.trace.regrets)


class TestBitIdentity:
    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_every_lane_matches_its_serial_trial(self, name):
        factory = CONFIGS[name]
        run_kwargs = dict(trace_stride=7, tail_window=13, burn_in=20)
        serial = [factory(s).run(ROUNDS, **run_kwargs) for s in SEEDS]
        batched = BatchedCountingSimulator([factory(s) for s in SEEDS]).run(
            ROUNDS, **run_kwargs
        )
        assert len(batched) == len(SEEDS)
        for lane_serial, lane_batched in zip(serial, batched):
            _assert_results_bit_identical(lane_serial, lane_batched)

    def test_single_lane_batch_matches(self):
        factory = CONFIGS["ant"]
        serial = factory(17).run(120)
        (batched,) = BatchedCountingSimulator([factory(17)]).run(120)
        _assert_results_bit_identical(serial, batched)

    def test_repeated_runs_are_reproducible(self):
        # Fresh lanes each time: the engine consumes the lanes' streams,
        # so reproducibility means rebuilding, not rerunning.
        factory = CONFIGS["precise_sigmoid"]
        first = BatchedCountingSimulator([factory(s) for s in SEEDS[:3]]).run(ROUNDS)
        second = BatchedCountingSimulator([factory(s) for s in SEEDS[:3]]).run(ROUNDS)
        for a, b in zip(first, second):
            _assert_results_bit_identical(a, b)


class TestActionDistributionOracle:
    def test_tv_distance_to_per_ant_oracle_at_k64(self):
        # The batch-level cache resolves each distinct signature through
        # the same exact kernel as the serial engine; its distribution
        # must match the per-ant Monte Carlo oracle in TV distance.
        k = 64
        demand = uniform_demands(n=1000 * k, k=k)
        lam = lambda_for_critical_value(demand, gamma_star=0.05)
        loads = demand.as_array() + np.linspace(-40, 40, k).astype(np.int64)
        p = SigmoidFeedback(lam).lack_probabilities(demand.as_array() - loads)
        u = np.asarray(p * p, dtype=np.float64)

        engine = BatchedCountingSimulator(
            [
                CountingSimulator(
                    AntAlgorithm(gamma=0.025), demand, SigmoidFeedback(lam), seed=s
                )
                for s in range(3)
            ]
        )
        pi = engine._join_cache.distribution(u)
        np.testing.assert_allclose(pi, exact_join_probabilities(u), atol=1e-12)
        trials = 200_000
        mc = per_ant_action_distribution(u, trials, np.random.default_rng(64))
        bound = 2 * 0.4 * np.sqrt((k + 1) / trials)
        assert tv_distance(pi, mc) < bound


class TestBatchCache:
    def test_cross_lane_dedup_beats_per_lane_caches(self):
        factory = CONFIGS["ant_exact_binary"]  # integer signatures repeat
        serial_misses = sum(
            (lambda sim: (sim.run(ROUNDS), sim.pi_cache_misses)[1])(factory(s))
            for s in SEEDS
        )
        engine = BatchedCountingSimulator([factory(s) for s in SEEDS])
        engine.run(ROUNDS)
        assert engine.pi_cache_misses > 0
        # One batch-level cache sees every lane's signatures: it can only
        # miss on the *distinct* ones, so B per-lane caches miss at least
        # as often.
        assert engine.pi_cache_misses <= serial_misses
        assert engine.pi_cache_hits > 0

    def test_stats_reset_between_runs(self):
        factory = CONFIGS["ant_exact_binary"]
        engine = BatchedCountingSimulator([factory(s) for s in SEEDS[:3]])
        engine.run(100)
        first = engine.pi_cache_hits + engine.pi_cache_misses
        engine.run(100)
        second = engine.pi_cache_hits + engine.pi_cache_misses
        assert 0 < second <= first

    def test_cache_off_still_dedups_within_a_round(self):
        factory = CONFIGS["ant_cache_off"]
        engine = BatchedCountingSimulator([factory(s) for s in SEEDS])
        out = engine.run(60)
        assert engine.pi_cache_hits == 0 and engine.pi_cache_misses == 0
        assert len(out) == len(SEEDS)


class TestValidation:
    def test_rejects_empty_batch(self):
        with pytest.raises(ConfigurationError, match="at least one lane"):
            BatchedCountingSimulator([])

    def test_rejects_non_counting_lane(self):
        with pytest.raises(ConfigurationError, match="CountingSimulator"):
            BatchedCountingSimulator([object()])

    def test_rejects_mixed_configurations(self):
        demand, fb = _components()
        lanes = [
            CountingSimulator(AntAlgorithm(gamma=0.05), demand, fb, seed=0),
            CountingSimulator(AntAlgorithm(gamma=0.025), demand, fb, seed=1),
        ]
        with pytest.raises(ConfigurationError, match="share one configuration"):
            BatchedCountingSimulator(lanes)

    def test_rejects_unknown_backend(self):
        factory = CONFIGS["ant"]
        with pytest.raises(ConfigurationError, match="unknown array backend"):
            BatchedCountingSimulator([factory(0)], backend="jax")

    def test_rejects_burn_in_swallowing_the_run(self):
        factory = CONFIGS["ant"]
        engine = BatchedCountingSimulator([factory(0)])
        with pytest.raises(ConfigurationError, match="burn_in"):
            engine.run(10, burn_in=10)

    def test_default_batch_constant(self):
        assert DEFAULT_BATCH == 16
