"""Tests for the noise models (Section 2.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.env.adversary import (
    AlwaysLackInGreyZone,
    AlwaysOverloadInGreyZone,
    CorrectInGreyZone,
    IndistinguishableDemandAdversary,
    InvertedInGreyZone,
    PushAwayFromDemand,
    RandomInGreyZone,
    make_adversary,
)
from repro.env.feedback import (
    AdversarialFeedback,
    CorrelatedSigmoidFeedback,
    ExactBinaryFeedback,
    SigmoidFeedback,
    ThresholdFeedback,
)
from repro.exceptions import ConfigurationError
from repro.types import NoiseKind


class TestSigmoidFeedback:
    def test_probabilities_at_zero(self):
        fb = SigmoidFeedback(2.0)
        assert fb.lack_probabilities(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_sample_shape(self, rng):
        fb = SigmoidFeedback(2.0)
        m = fb.sample_lack_matrix(np.array([0.0, 10.0, -10.0]), 100, rng)
        assert m.shape == (100, 3) and m.dtype == bool

    def test_extreme_deficits_deterministic(self, rng):
        fb = SigmoidFeedback(2.0)
        m = fb.sample_lack_matrix(np.array([100.0, -100.0]), 50, rng)
        assert m[:, 0].all() and not m[:, 1].any()

    def test_empirical_rate_matches(self, rng):
        fb = SigmoidFeedback(0.5)
        deficit = np.array([1.0])
        p = fb.lack_probabilities(deficit)[0]
        m = fb.sample_lack_matrix(deficit, 100_000, rng)
        assert m.mean() == pytest.approx(p, abs=0.01)

    def test_rejects_nonpositive_lambda(self):
        with pytest.raises(ConfigurationError):
            SigmoidFeedback(0.0)

    def test_kind_and_iid(self):
        fb = SigmoidFeedback(1.0)
        assert fb.kind is NoiseKind.SIGMOID and fb.iid_across_ants


class TestPerTaskLambda:
    """Scalar-or-vector steepness on the sigmoid models."""

    def test_vector_lambda_each_task_its_own_steepness(self):
        fb = SigmoidFeedback([0.5, 1.0, 4.0])
        p = fb.lack_probabilities(np.array([1.0, 1.0, 1.0]))
        assert p[0] < p[1] < p[2]
        np.testing.assert_allclose(
            fb.lack_probabilities(np.zeros(3)), 0.5
        )

    def test_vector_lambda_matches_scalar_models_per_task(self):
        lam = np.array([0.3, 2.0, 0.9, 5.0])
        deficits = np.array([-2.0, 0.5, 3.0, -0.25])
        vec = SigmoidFeedback(lam).lack_probabilities(deficits)
        scal = [
            SigmoidFeedback(float(la)).lack_probabilities(np.array([d]))[0]
            for la, d in zip(lam, deficits)
        ]
        np.testing.assert_allclose(vec, scal)

    def test_vector_lambda_sample_matrix_shape(self, rng):
        fb = SigmoidFeedback([1.0, 2.0, 3.0])
        m = fb.sample_lack_matrix(np.array([0.0, 5.0, -5.0]), 40, rng)
        assert m.shape == (40, 3) and m.dtype == bool

    def test_length_mismatch_raises_at_query(self):
        fb = SigmoidFeedback([1.0, 2.0])
        with pytest.raises(ConfigurationError, match="k=3"):
            fb.lack_probabilities(np.zeros(3))

    def test_rejects_bad_vectors(self):
        with pytest.raises(ConfigurationError):
            SigmoidFeedback([1.0, 0.0])
        with pytest.raises(ConfigurationError):
            SigmoidFeedback([1.0, -2.0])
        with pytest.raises(ConfigurationError):
            SigmoidFeedback([])
        with pytest.raises(ConfigurationError):
            SigmoidFeedback([[1.0, 2.0]])

    def test_correlated_sigmoid_accepts_vector(self, rng):
        fb = CorrelatedSigmoidFeedback([1.0, 2.0, 3.0], rho=0.5)
        p = fb.lack_probabilities(np.zeros(3))
        np.testing.assert_allclose(p, 0.5)
        m = fb.sample_lack_matrix(np.zeros(3), 20, rng)
        assert m.shape == (20, 3)

    def test_correlated_sigmoid_length_mismatch_raises_at_query(self):
        # Even a length-1 vector must not silently broadcast as a scalar.
        fb = CorrelatedSigmoidFeedback([2.0], rho=0.3)
        with pytest.raises(ConfigurationError, match="k=4"):
            fb.lack_probabilities(np.zeros(4))

    def test_registry_checks_lam_length_against_k(self):
        from repro.env.registry import make_feedback

        for name, params in (
            ("sigmoid", {"lam": [1.0, 2.0]}),
            ("correlated_sigmoid", {"lam": [1.0, 2.0], "rho": 0.2}),
        ):
            with pytest.raises(ConfigurationError, match="k=6"):
                make_feedback(name, k=6, **params)

    def test_vector_repr_is_compact(self):
        assert "per-task[3]" in repr(SigmoidFeedback([1.0, 2.0, 3.0]))


class TestExactBinaryFeedback:
    def test_lack_iff_deficit_nonnegative(self):
        fb = ExactBinaryFeedback()
        np.testing.assert_array_equal(
            fb.lack_probabilities(np.array([0.0, 1.0, -1.0])), [1.0, 1.0, 0.0]
        )

    def test_sample_deterministic(self, rng):
        fb = ExactBinaryFeedback()
        m = fb.sample_lack_matrix(np.array([5.0, -5.0]), 10, rng)
        assert m[:, 0].all() and not m[:, 1].any()


class TestAdversarialFeedback:
    def _fb(self, strategy):
        return AdversarialFeedback(gamma_ad=0.1, strategy=strategy)

    def test_correct_outside_grey(self, rng):
        fb = self._fb(RandomInGreyZone())
        demands = np.array([100.0, 100.0])
        # deficits 20 and -20 are outside the grey zone [-10, 10].
        m = fb.sample_lack_matrix(np.array([20.0, -20.0]), 50, rng, demands=demands)
        assert m[:, 0].all() and not m[:, 1].any()

    def test_grey_zone_strategy_controls(self, rng):
        demands = np.array([100.0])
        m = self._fb(AlwaysLackInGreyZone()).sample_lack_matrix(
            np.array([0.0]), 20, rng, demands=demands
        )
        assert m.all()
        m = self._fb(AlwaysOverloadInGreyZone()).sample_lack_matrix(
            np.array([0.0]), 20, rng, demands=demands
        )
        assert not m.any()

    def test_inverted_strategy(self, rng):
        demands = np.array([100.0])
        fb = self._fb(InvertedInGreyZone())
        # Deficit +5 (inside grey): inverted says OVERLOAD.
        m = fb.sample_lack_matrix(np.array([5.0]), 10, rng, demands=demands)
        assert not m.any()

    def test_correct_strategy(self, rng):
        demands = np.array([100.0])
        fb = self._fb(CorrectInGreyZone())
        m = fb.sample_lack_matrix(np.array([5.0]), 10, rng, demands=demands)
        assert m.all()

    def test_push_away(self, rng):
        demands = np.array([100.0])
        fb = self._fb(PushAwayFromDemand())
        # Overloaded (deficit -5) -> LACK to attract even more ants.
        m = fb.sample_lack_matrix(np.array([-5.0]), 10, rng, demands=demands)
        assert m.all()

    def test_random_strategy_per_ant(self, rng):
        demands = np.array([100.0])
        fb = self._fb(RandomInGreyZone())
        m = fb.sample_lack_matrix(np.array([0.0]), 10_000, rng, demands=demands)
        assert m.mean() == pytest.approx(0.5, abs=0.02)

    def test_requires_demands(self, rng):
        fb = self._fb(RandomInGreyZone())
        with pytest.raises(ConfigurationError):
            fb.sample_lack_matrix(np.array([0.0]), 10, rng)

    def test_no_iid_marginals(self):
        fb = self._fb(RandomInGreyZone())
        with pytest.raises(ConfigurationError):
            fb.lack_probabilities(np.array([0.0]))

    def test_boundary_is_grey(self, rng):
        demands = np.array([100.0])
        # Deficit exactly +/- gamma_ad*d is inside the (closed) grey zone.
        fb = self._fb(AlwaysOverloadInGreyZone())
        m = fb.sample_lack_matrix(np.array([10.0]), 5, rng, demands=demands)
        assert not m.any()

    def test_rejects_bad_gamma(self):
        with pytest.raises(ConfigurationError):
            AdversarialFeedback(gamma_ad=0.0)
        with pytest.raises(ConfigurationError):
            AdversarialFeedback(gamma_ad=1.0)


class TestIndistinguishableAdversary:
    def test_low_boundary(self, rng):
        fb = AdversarialFeedback(
            gamma_ad=0.1, strategy=IndistinguishableDemandAdversary(0.1, "low")
        )
        demands = np.array([100.0])
        # deficit -10 is on the low boundary: still LACK in the "low" world.
        m = fb.sample_lack_matrix(np.array([-10.0]), 5, rng, demands=demands)
        assert m.all()

    def test_high_boundary(self, rng):
        fb = AdversarialFeedback(
            gamma_ad=0.1, strategy=IndistinguishableDemandAdversary(0.1, "high")
        )
        demands = np.array([100.0])
        # deficit +5 < +10: below the high boundary -> OVERLOAD.
        m = fb.sample_lack_matrix(np.array([5.0]), 5, rng, demands=demands)
        assert not m.any()

    def test_rejects_bad_which(self):
        with pytest.raises(ConfigurationError):
            IndistinguishableDemandAdversary(0.1, "middle")


class TestMakeAdversary:
    @pytest.mark.parametrize(
        "name", ["correct", "inverted", "always_lack", "always_overload", "random", "push_away"]
    )
    def test_known(self, name):
        assert make_adversary(name) is not None

    def test_indistinguishable(self):
        s = make_adversary("indistinguishable", gamma_ad=0.1, which="high")
        assert isinstance(s, IndistinguishableDemandAdversary)

    def test_unknown(self):
        with pytest.raises(ConfigurationError, match="unknown adversary"):
            make_adversary("nonexistent")

    def test_rejects_extra_kwargs(self):
        with pytest.raises(ConfigurationError):
            make_adversary("random", foo=1)


class TestThresholdFeedback:
    def test_lack_iff_load_below_threshold(self):
        d = np.array([100.0, 100.0])
        fb = ThresholdFeedback(np.array([90.0, 90.0]), d)
        # Loads 80 and 95 -> deficits 20 and 5.
        p = fb.lack_probabilities(np.array([20.0, 5.0]))
        np.testing.assert_array_equal(p, [1.0, 0.0])

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            ThresholdFeedback(np.array([1.0]), np.array([1.0, 2.0]))

    def test_iid(self):
        fb = ThresholdFeedback(np.array([90.0]), np.array([100.0]))
        assert fb.iid_across_ants


class TestCorrelatedSigmoidFeedback:
    def test_marginal_preserved(self, rng):
        fb = CorrelatedSigmoidFeedback(0.5, rho=0.7)
        deficit = np.array([1.0])
        p = fb.lack_probabilities(deficit)[0]
        samples = [
            fb.sample_lack_matrix(deficit, 200, rng).mean() for _ in range(300)
        ]
        assert np.mean(samples) == pytest.approx(p, abs=0.02)

    def test_rho_one_fully_shared(self, rng):
        fb = CorrelatedSigmoidFeedback(0.5, rho=1.0)
        m = fb.sample_lack_matrix(np.array([0.0]), 500, rng)
        # All ants share one draw: the column is constant.
        assert m[:, 0].all() or not m[:, 0].any()

    def test_rho_zero_behaves_iid(self, rng):
        fb = CorrelatedSigmoidFeedback(0.5, rho=0.0)
        m = fb.sample_lack_matrix(np.array([0.0]), 10_000, rng)
        assert m.mean() == pytest.approx(0.5, abs=0.02)

    def test_not_counting_compatible(self):
        assert not CorrelatedSigmoidFeedback(1.0, 0.5).iid_across_ants

    def test_rejects_bad_rho(self):
        with pytest.raises(ConfigurationError):
            CorrelatedSigmoidFeedback(1.0, rho=1.5)
