"""Tests for the critical value and grey zone (Definition 2.3)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.env.critical import (
    critical_value_sigmoid,
    grey_zone,
    lambda_for_critical_value,
)
from repro.env.demands import uniform_demands
from repro.exceptions import ConfigurationError
from repro.util.mathx import sigmoid_lack_probability


class TestCriticalValue:
    def test_definition_holds_at_boundary(self):
        """s(-gamma* d_min) must equal p_fail at the computed gamma*."""
        demand = uniform_demands(n=2000, k=3)
        lam = 5.0
        p_fail = 1e-7
        gs = critical_value_sigmoid(demand, lam, p_fail=p_fail)
        p = sigmoid_lack_probability(np.array([-gs * demand.min_demand]), lam)[0]
        assert p == pytest.approx(p_fail, rel=1e-6)

    def test_default_p_fail_uses_n8(self):
        demand = uniform_demands(n=100, k=1, strict=False)
        lam = 10.0
        gs = critical_value_sigmoid(demand, lam)
        expected = np.log((1 - 100.0**-8) / 100.0**-8) / (lam * demand.min_demand)
        assert gs == pytest.approx(expected, rel=1e-9)

    def test_raw_array_needs_n_when_no_p_fail(self):
        with pytest.raises(ConfigurationError):
            critical_value_sigmoid(np.array([100]), 5.0)

    def test_raw_array_with_p_fail(self):
        gs = critical_value_sigmoid(np.array([100, 50]), 5.0, p_fail=1e-6)
        assert gs > 0

    def test_min_demand_controls(self):
        # Smaller min demand -> larger critical value.
        a = critical_value_sigmoid(np.array([100, 1000]), 5.0, p_fail=1e-6)
        b = critical_value_sigmoid(np.array([1000, 1000]), 5.0, p_fail=1e-6)
        assert a > b

    def test_too_flat_sigmoid_rejected(self):
        with pytest.raises(ConfigurationError, match="too"):
            critical_value_sigmoid(np.array([10]), 0.001, p_fail=1e-8)

    @settings(max_examples=40, deadline=None)
    @given(
        st.floats(min_value=0.5, max_value=50),
        st.floats(min_value=1e-10, max_value=0.01),
    )
    def test_monotone_in_lambda_and_pfail(self, lam, p_fail):
        d = np.array([500])
        gs = critical_value_sigmoid(d, lam, p_fail=p_fail)
        # Larger lambda shrinks gamma*.
        gs2 = critical_value_sigmoid(d, lam * 2, p_fail=p_fail)
        assert gs2 < gs
        # Larger allowed failure shrinks gamma* too.
        if p_fail * 10 < 0.5:
            gs3 = critical_value_sigmoid(d, lam, p_fail=p_fail * 10)
            assert gs3 < gs


class TestLambdaInversion:
    @settings(max_examples=40, deadline=None)
    @given(st.floats(min_value=0.001, max_value=0.4))
    def test_roundtrip(self, gamma_star):
        demand = uniform_demands(n=2000, k=2)
        lam = lambda_for_critical_value(demand, gamma_star=gamma_star, p_fail=1e-8)
        back = critical_value_sigmoid(demand, lam, p_fail=1e-8)
        assert back == pytest.approx(gamma_star, rel=1e-9)

    def test_rejects_bad_gamma(self):
        demand = uniform_demands(n=2000, k=2)
        with pytest.raises(ConfigurationError):
            lambda_for_critical_value(demand, gamma_star=0.0)
        with pytest.raises(ConfigurationError):
            lambda_for_critical_value(demand, gamma_star=1.0)


class TestGreyZone:
    def test_half_widths(self):
        gz = grey_zone(np.array([100, 200]), 0.1)
        np.testing.assert_allclose(gz.half_widths, [10.0, 20.0])

    def test_contains(self):
        gz = grey_zone(np.array([100, 200]), 0.1)
        np.testing.assert_array_equal(
            gz.contains(np.array([5.0, -25.0])), [True, False]
        )

    def test_boundary_inclusive(self):
        gz = grey_zone(np.array([100]), 0.1)
        assert gz.contains(np.array([10.0]))[0]
        assert gz.contains(np.array([-10.0]))[0]

    def test_signed_excess(self):
        gz = grey_zone(np.array([100]), 0.1)
        np.testing.assert_allclose(gz.signed_excess(np.array([15.0])), [5.0])
        np.testing.assert_allclose(gz.signed_excess(np.array([-15.0])), [-5.0])
        np.testing.assert_allclose(gz.signed_excess(np.array([5.0])), [0.0])

    def test_accepts_demand_vector(self):
        d = uniform_demands(n=1000, k=2)
        gz = grey_zone(d, 0.05)
        assert gz.half_widths.shape == (2,)

    def test_rejects_bad_gamma(self):
        with pytest.raises(ConfigurationError):
            grey_zone(np.array([100]), 0.0)
