"""Tests for demand vectors, Assumptions 2.1, and schedules."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.env.demands import (
    DemandVector,
    PeriodicDemandSchedule,
    StaticDemandSchedule,
    StepDemandSchedule,
    lognormal_demands,
    powerlaw_demands,
    proportional_demands,
    uniform_demands,
)
from repro.exceptions import AssumptionViolation, ConfigurationError


class TestDemandVector:
    def test_basic_properties(self):
        d = DemandVector(np.array([100, 200]), n=1000)
        assert d.k == 2
        assert d.total == 300
        assert d.min_demand == 100

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            DemandVector(np.array([], dtype=np.int64), n=10)

    def test_rejects_nonpositive_demand(self):
        with pytest.raises(ConfigurationError):
            DemandVector(np.array([0, 5]), n=100)

    def test_rejects_total_above_n(self):
        with pytest.raises(ConfigurationError):
            DemandVector(np.array([60, 60]), n=100, strict=False)

    def test_strict_log_floor(self):
        # d = 1 violates d = Omega(log n) for n = 1000.
        with pytest.raises(AssumptionViolation):
            DemandVector(np.array([1]), n=1000)

    def test_strict_slack(self):
        # Sum of demands > n/2 violates Assumptions 2.1.
        with pytest.raises(AssumptionViolation):
            DemandVector(np.array([300, 300]), n=1000)

    def test_non_strict_allows_out_of_model(self):
        d = DemandVector(np.array([600]), n=1000, strict=False)
        assert d.total == 600

    def test_deficits(self):
        d = DemandVector(np.array([100, 200]), n=1000)
        np.testing.assert_array_equal(d.deficits([90, 250]), [10, -50])

    def test_deficits_shape_mismatch(self):
        d = DemandVector(np.array([100, 200]), n=1000)
        with pytest.raises(ConfigurationError):
            d.deficits([1, 2, 3])

    def test_slack_ok_for_gamma(self):
        d = DemandVector(np.array([100, 100]), n=1000)
        assert d.slack_ok_for_gamma(0.5)
        assert not d.slack_ok_for_gamma(10.0)

    def test_with_demands(self):
        d = DemandVector(np.array([100, 200]), n=1000)
        d2 = d.with_demands([150, 150])
        assert d2.total == 300 and d2.n == 1000

    def test_frozen_demands_are_copied_out(self):
        d = DemandVector(np.array([100, 200]), n=1000)
        arr = d.as_array()
        arr[0] = 999
        assert d.min_demand == 100


class TestConstructors:
    def test_uniform(self):
        d = uniform_demands(n=1000, k=4)
        np.testing.assert_array_equal(d.as_array(), [125, 125, 125, 125])

    def test_uniform_rejects_starved(self):
        with pytest.raises(ConfigurationError):
            uniform_demands(n=10, k=20)

    def test_proportional_total(self):
        d = proportional_demands(2000, weights=[1, 2, 3], load_fraction=0.5)
        assert d.total == 1000

    def test_proportional_ordering(self):
        d = proportional_demands(2000, weights=[1, 2, 3])
        arr = d.as_array()
        assert arr[0] < arr[1] < arr[2]

    def test_proportional_rejects_bad_weights(self):
        with pytest.raises(ConfigurationError):
            proportional_demands(1000, weights=[1, -2])

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=400, max_value=100000),
        st.lists(st.floats(min_value=0.1, max_value=10), min_size=1, max_size=6),
    )
    def test_proportional_budget_property(self, n, weights):
        d = proportional_demands(n, weights=weights, strict=False)
        assert d.total == int(0.5 * n)
        assert d.min_demand >= 1


class TestDemandSpectra:
    """Power-law and log-normal spectrum generators (heterogeneous k)."""

    def test_powerlaw_decreasing_with_full_budget(self):
        d = powerlaw_demands(n=100_000, k=256, alpha=1.1)
        arr = d.as_array()
        assert d.k == 256
        assert d.total == 50_000
        assert np.all(arr[:-1] >= arr[1:])  # monotone spectrum
        assert arr[0] > 10 * arr[-1]  # genuinely skewed head/tail

    def test_powerlaw_alpha_zero_is_uniform(self):
        d = powerlaw_demands(n=8000, k=4, alpha=0.0)
        np.testing.assert_array_equal(
            d.as_array(), uniform_demands(n=8000, k=4, strict=False).as_array()
        )

    def test_powerlaw_rejects_negative_alpha(self):
        with pytest.raises(ConfigurationError):
            powerlaw_demands(n=1000, k=4, alpha=-0.5)

    def test_lognormal_deterministic_given_seed(self):
        a = lognormal_demands(n=50_000, k=64, sigma=1.0, seed=9)
        b = lognormal_demands(n=50_000, k=64, sigma=1.0, seed=9)
        np.testing.assert_array_equal(a.as_array(), b.as_array())
        c = lognormal_demands(n=50_000, k=64, sigma=1.0, seed=10)
        assert not np.array_equal(a.as_array(), c.as_array())

    def test_lognormal_sorted_and_budgeted(self):
        d = lognormal_demands(n=50_000, k=64, sigma=1.5, seed=0)
        arr = d.as_array()
        assert np.all(arr[:-1] >= arr[1:])
        assert d.total == 25_000
        assert d.min_demand >= 1

    def test_lognormal_sigma_zero_is_uniform(self):
        d = lognormal_demands(n=8000, k=4, sigma=0.0, seed=0)
        np.testing.assert_array_equal(
            d.as_array(), uniform_demands(n=8000, k=4, strict=False).as_array()
        )

    def test_spectra_reachable_from_registry(self):
        from repro.env.registry import make_demand

        d = make_demand("powerlaw", n=10_000, k=16, alpha=1.0)
        assert d.k == 16
        d = make_demand("lognormal", n=10_000, k=16, sigma=0.5, seed=2)
        assert d.k == 16


class TestSchedules:
    def test_static(self):
        d = uniform_demands(1000, 2)
        s = StaticDemandSchedule(d)
        assert s.demands_at(0) is d
        assert s.demands_at(10**9) is d
        assert s.change_points(100) == []

    def test_step_lookup(self):
        a = uniform_demands(1000, 2)
        b = a.with_demands([100, 300])
        s = StepDemandSchedule(steps=((0, a), (50, b)))
        assert s.demands_at(49) is a
        assert s.demands_at(50) is b
        assert s.change_points(100) == [50]

    def test_step_requires_zero_start(self):
        a = uniform_demands(1000, 2)
        with pytest.raises(ConfigurationError):
            StepDemandSchedule(steps=((5, a),))

    def test_step_requires_increasing(self):
        a = uniform_demands(1000, 2)
        with pytest.raises(ConfigurationError):
            StepDemandSchedule(steps=((0, a), (10, a), (10, a)))

    def test_step_requires_same_shape(self):
        a = uniform_demands(1000, 2)
        c = uniform_demands(1000, 4)
        with pytest.raises(ConfigurationError):
            StepDemandSchedule(steps=((0, a), (10, c)))

    def test_periodic_cycles(self):
        a = uniform_demands(1000, 2)
        b = a.with_demands([100, 300])
        s = PeriodicDemandSchedule(phases=(a, b), period=10)
        assert s.demands_at(0) is a
        assert s.demands_at(10) is b
        assert s.demands_at(20) is a

    def test_periodic_change_points(self):
        a = uniform_demands(1000, 2)
        b = a.with_demands([100, 300])
        s = PeriodicDemandSchedule(phases=(a, b), period=10)
        assert s.change_points(30) == [10, 20, 30]

    def test_periodic_single_phase_no_changes(self):
        a = uniform_demands(1000, 2)
        s = PeriodicDemandSchedule(phases=(a,), period=10)
        assert s.change_points(100) == []

    def test_schedule_k_n(self):
        a = uniform_demands(1000, 3)
        s = StaticDemandSchedule(a)
        assert s.k == 3 and s.n == 1000
