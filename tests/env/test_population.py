"""Tests for population schedules and dynamic colony sizes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ant import AntAlgorithm
from repro.env.critical import lambda_for_critical_value
from repro.env.demands import uniform_demands
from repro.env.feedback import SigmoidFeedback
from repro.env.population import (
    StaticPopulation,
    StepPopulation,
    apply_population_change,
)
from repro.exceptions import ConfigurationError
from repro.sim.counting import CountingSimulator


class TestSchedules:
    def test_static(self):
        p = StaticPopulation(100)
        assert p.population_at(0) == 100
        assert p.population_at(10**9) == 100
        assert p.max_population == 100

    def test_step_lookup(self):
        p = StepPopulation(steps=((0, 100), (50, 70), (80, 120)))
        assert p.population_at(49) == 100
        assert p.population_at(50) == 70
        assert p.population_at(80) == 120
        assert p.max_population == 120

    def test_step_validation(self):
        with pytest.raises(ConfigurationError):
            StepPopulation(steps=())
        with pytest.raises(ConfigurationError):
            StepPopulation(steps=((5, 10),))
        with pytest.raises(ConfigurationError):
            StepPopulation(steps=((0, 10), (0, 20)))


class TestApplyChange:
    def test_no_change(self, rng):
        loads = np.array([10, 20])
        out, idle = apply_population_change(loads, 5, 35, rng)
        np.testing.assert_array_equal(out, loads)
        assert idle == 5

    def test_growth_arrives_idle(self, rng):
        loads = np.array([10, 20])
        out, idle = apply_population_change(loads, 5, 50, rng)
        np.testing.assert_array_equal(out, loads)
        assert idle == 20

    def test_deaths_conserve_total(self, rng):
        loads = np.array([100, 200])
        out, idle = apply_population_change(loads, 50, 300, rng)
        assert int(out.sum()) + idle == 300
        assert np.all(out >= 0) and idle >= 0

    def test_deaths_proportional(self):
        gen = np.random.default_rng(0)
        losses = np.zeros(3)
        trials = 2000
        for _ in range(trials):
            out, idle = apply_population_change(np.array([100, 300]), 100, 250, gen)
            losses += [100 - out[0], 300 - out[1], 100 - idle]
        # 250 deaths from pools (100, 300, 100): expected 50/150/50.
        np.testing.assert_allclose(losses / trials, [50, 150, 50], rtol=0.05)

    def test_cannot_kill_more_than_colony(self, rng):
        with pytest.raises(ConfigurationError):
            apply_population_change(np.array([5]), 0, -1, rng)


class TestCountingEngineWithPopulation:
    def test_die_off_and_recovery(self):
        """Kill 30% of the colony mid-run; Algorithm Ant re-converges."""
        demand = uniform_demands(n=8000, k=4)
        gs = 0.01
        lam = lambda_for_critical_value(demand, gamma_star=gs)
        # Demands total 4000; after the die-off 5600 ants remain (enough).
        pop = StepPopulation(steps=((0, 8000), (6000, 5600)))
        sim = CountingSimulator(
            AntAlgorithm(gamma=0.025),
            demand,
            SigmoidFeedback(lam),
            seed=0,
            population=pop,
        )
        out = sim.run(16000, burn_in=12000, trace_stride=1)
        assert out.metrics.closeness(gs, demand.total) <= 12.5
        # The die-off round actually removed ants.
        loads = out.trace.loads
        totals = loads.sum(axis=1)
        assert totals.max() <= 8000
        assert totals[6100:].max() <= 5600

    def test_growth_wave(self):
        """A brood eclosion wave (25% more ants) is absorbed."""
        demand = uniform_demands(n=8000, k=4)
        gs = 0.01
        lam = lambda_for_critical_value(demand, gamma_star=gs)
        pop = StepPopulation(steps=((0, 6400), (6000, 8000)))
        sim = CountingSimulator(
            AntAlgorithm(gamma=0.025),
            demand,
            SigmoidFeedback(lam),
            seed=0,
            population=pop,
        )
        out = sim.run(14000, burn_in=10000)
        assert out.metrics.closeness(gs, demand.total) <= 12.5

    def test_schedule_exceeding_capacity_rejected(self):
        demand = uniform_demands(n=8000, k=4)
        lam = lambda_for_critical_value(demand, gamma_star=0.01)
        with pytest.raises(ConfigurationError, match="capacity"):
            CountingSimulator(
                AntAlgorithm(gamma=0.025),
                demand,
                SigmoidFeedback(lam),
                population=StepPopulation(steps=((0, 10000),)),
            )
