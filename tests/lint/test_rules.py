"""Good/bad fixture pairs for every AST rule (RPR001-RPR005).

Each rule gets at least one source that must be flagged and one minimal
edit of the same source that must be clean, so a rule can neither go
blind (false negatives on its canonical violation) nor rabid (false
positives on the sanctioned idiom next door).
"""

from __future__ import annotations

from tests.lint.conftest import rules_of


# ----------------------------------------------------------------------
# RPR001 — global-state RNG


def test_rpr001_flags_np_random_module_call(lint_source):
    findings = lint_source(
        """
        import numpy as np

        def draw():
            return np.random.random(3)
        """
    )
    assert rules_of(findings) == {"RPR001"}
    assert "numpy.random.random" in findings[0].message


def test_rpr001_flags_stdlib_random_import_and_from_import(lint_source):
    assert rules_of(lint_source("import random\n")) == {"RPR001"}
    assert rules_of(lint_source("from random import choice\n")) == {"RPR001"}


def test_rpr001_flags_unseeded_default_rng(lint_source):
    src = "import numpy as np\nrng = np.random.default_rng({})\n"
    assert rules_of(lint_source(src.format(""))) == {"RPR001"}
    assert rules_of(lint_source(src.format("None"))) == {"RPR001"}
    assert lint_source(src.format("42")) == []
    assert lint_source(src.format("seed=7")) == []


def test_rpr001_allows_explicit_state_constructors(lint_source):
    findings = lint_source(
        """
        import numpy as np

        ss = np.random.SeedSequence(7)
        rng = np.random.Generator(np.random.PCG64(ss))
        """
    )
    assert findings == []


def test_rpr001_sees_through_module_aliases(lint_source):
    findings = lint_source(
        """
        import numpy.random as npr

        x = npr.rand()
        """
    )
    assert rules_of(findings) == {"RPR001"}


def test_rpr001_exempts_the_rng_module(lint_source):
    src = "import numpy as np\nx = np.random.random()\n"
    assert rules_of(lint_source(src)) == {"RPR001"}
    assert lint_source(src, rel="repro/util/rng.py") == []


def test_rpr001_real_batched_modules_pass_without_exemption():
    # The batched engine and its block sampler derive every draw from
    # per-lane Generators (the serial engine's SeedSequence spawns) and
    # replay their streams explicitly, so both real modules must lint
    # clean with no exemption — a regression to global-RNG idiom in
    # either trips RPR001 here before CI does.
    from repro.lint.cli import lint_file

    from tests.lint.conftest import REPO_ROOT

    for rel in ("src/repro/sim/batched.py", "src/repro/util/rng_block.py"):
        path = REPO_ROOT / rel
        assert path.is_file(), rel
        assert [f for f in lint_file(path) if f.rule == "RPR001"] == [], rel


# ----------------------------------------------------------------------
# RPR002 — wall-clock quarantine


def test_rpr002_flags_wall_clock_in_quarantined_module(lint_source):
    src = "import time\nSTAMP = time.time()\n"
    for rel in ("repro/store/digest.py", "repro/store/records.py", "repro/sched/grid.py"):
        assert rules_of(lint_source(src, rel=rel)) == {"RPR002"}, rel


def test_rpr002_quarantine_covers_the_whole_serve_package(lint_source):
    # Response bodies are byte-compared by the service smoke, so every
    # module under repro/serve/ is quarantined — including new ones.
    src = "import time\nSTAMP = time.time()\n"
    for rel in ("repro/serve/http.py", "repro/serve/future_module.py"):
        assert rules_of(lint_source(src, rel=rel)) == {"RPR002"}, rel


def test_rpr002_quarantine_covers_datetime_now(lint_source):
    findings = lint_source(
        """
        from datetime import datetime

        WHEN = datetime.now()
        """,
        rel="repro/sched/leases.py",
    )
    assert rules_of(findings) == {"RPR002"}


def test_rpr002_ignores_wall_clock_outside_quarantine_and_manifests(lint_source):
    findings = lint_source(
        """
        import time

        def elapsed(t0):
            return time.time() - t0
        """
    )
    assert findings == []


def test_rpr002_flags_wall_clock_inside_manifest_dict_anywhere(lint_source):
    # The exact shape of the bug this rule was written against: a
    # timestamp smuggled into record meta (see test_self_lint.py for the
    # verbatim regression).
    findings = lint_source(
        """
        import time

        def meta():
            return {"kind": "sweep_point", "created_unix": time.time()}
        """
    )
    assert rules_of(findings) == {"RPR002"}
    assert "manifest" in findings[0].message


def test_rpr002_allows_wall_clock_in_plain_dicts(lint_source):
    findings = lint_source(
        """
        import time

        def stats():
            return {"elapsed_s": time.time()}
        """
    )
    assert findings == []


# ----------------------------------------------------------------------
# RPR003 — canonical JSON


def test_rpr003_flags_uncanonical_dumps_in_store_scope(lint_source):
    assert rules_of(
        lint_source("import json\ns = json.dumps({'a': 1})\n", rel="repro/store/x.py")
    ) == {"RPR003"}
    # sort_keys alone is not enough: whitespace must be pinned too.
    assert rules_of(
        lint_source(
            "import json\ns = json.dumps({'a': 1}, sort_keys=True)\n",
            rel="repro/sched/x.py",
        )
    ) == {"RPR003"}


def test_rpr003_accepts_canonical_and_pinned_indent_forms(lint_source):
    canonical = 'import json\ns = json.dumps(d, sort_keys=True, separators=(",", ":"))\n'
    pinned = "import json\ns = json.dumps(d, sort_keys=True, indent=2)\n"
    for src in (canonical, pinned):
        assert lint_source(src, rel="repro/store/x.py") == []


def test_rpr003_scope_is_store_sched_serve_and_cli_only(lint_source):
    src = "import json\ns = json.dumps({'a': 1})\n"
    assert lint_source(src, rel="scratch/tool.py") == []
    assert rules_of(lint_source(src, rel="repro/experiments/cli.py")) == {"RPR003"}
    # The service writes JSON response bodies that CI byte-compares, so
    # repro/serve/ is in scope alongside store and sched.
    assert rules_of(lint_source(src, rel="repro/serve/x.py")) == {"RPR003"}


# ----------------------------------------------------------------------
# RPR004 — atomic writes


def test_rpr004_flags_direct_writes_under_store_packages(lint_source):
    assert rules_of(
        lint_source("f = open('out.json', 'w')\n", rel="repro/store/newmod.py")
    ) == {"RPR004"}
    assert rules_of(
        lint_source("path.write_text('x')\n", rel="repro/sched/newmod.py")
    ) == {"RPR004"}
    assert rules_of(
        lint_source("f = open('out.json', 'w')\n", rel="repro/serve/newmod.py")
    ) == {"RPR004"}


def test_rpr004_allows_reads_and_out_of_scope_writes(lint_source):
    assert lint_source("f = open('in.json')\n", rel="repro/store/newmod.py") == []
    assert lint_source("f = open('in.json', 'rb')\n", rel="repro/store/newmod.py") == []
    assert lint_source("f = open('out.json', 'w')\n", rel="scratch/tool.py") == []


def test_rpr004_exempts_the_atomic_write_helper_modules(lint_source):
    src = "f = open('out.bin', 'wb')\n"
    for rel in (
        "repro/store/records.py",
        "repro/store/locks.py",
        "repro/store/pi_disk.py",
    ):
        assert lint_source(src, rel=rel) == [], rel


# ----------------------------------------------------------------------
# RPR005 — float equality


def test_rpr005_flags_float_comparisons(lint_source):
    assert rules_of(lint_source("ok = x == 1.5\n")) == {"RPR005"}
    assert rules_of(lint_source("ok = x != -3.5\n")) == {"RPR005"}
    assert rules_of(lint_source("ok = a == b * 2.0\n")) == {"RPR005"}


def test_rpr005_allows_zero_sentinel_and_int_compares(lint_source):
    assert lint_source("ok = x == 0.0\n") == []
    assert lint_source("ok = x == 1\n") == []
    assert lint_source("ok = x < 1.5\n") == []


# ----------------------------------------------------------------------
# RPR002 — the obs clock quarantine (monotonic calls included)


def test_rpr002_obs_package_bans_monotonic_clocks_too(lint_source):
    for call in ("time.perf_counter()", "time.monotonic()", "time.time()"):
        findings = lint_source(f"import time\nt = {call}\n", rel="repro/obs/newmod.py")
        assert rules_of(findings) == {"RPR002"}, call
        assert "repro.obs.clock" in findings[0].message


def test_rpr002_obs_clock_module_is_the_sanctioned_seam(lint_source):
    src = "import time\nt0 = time.perf_counter()\nw = time.time()\n"
    assert lint_source(src, rel="repro/obs/clock.py") == []


def test_rpr002_monotonic_stays_legal_outside_obs(lint_source):
    # Only wall clocks are quarantined elsewhere; perf_counter in a
    # scratch tool (or a benchmark) is not obs code.
    assert lint_source("import time\nt = time.perf_counter()\n", rel="scratch/tool.py") == []


# ----------------------------------------------------------------------
# RPR007 — obs isolation from digests/manifests/records


def test_rpr007_flags_obs_import_in_store_modules(lint_source):
    for src in (
        "from repro.obs import get_registry\n",
        "import repro.obs\n",
        "from repro.obs.metrics import MetricsRegistry\n",
    ):
        findings = lint_source(src, rel="repro/store/newmod.py")
        assert rules_of(findings) == {"RPR007"}, src
        assert "read-only on determinism" in findings[0].message


def test_rpr007_quarantines_the_record_builders(lint_source):
    src = "from repro.obs import monotonic\n"
    for rel in (
        "repro/sched/grid.py",
        "repro/serve/request.py",
        "repro/scenario/spec.py",
        "repro/scenario/runner.py",
    ):
        assert rules_of(lint_source(src, rel=rel)) == {"RPR007"}, rel


def test_rpr007_flags_obs_values_flowing_into_sinks(lint_source):
    findings = lint_source(
        """
        from repro.obs import monotonic

        def commit(store, arrays, meta):
            store.write_record(digest, arrays, {"took": monotonic()})
        """
    )
    assert rules_of(findings) == {"RPR007"}
    assert "write_record" in findings[0].message

    findings = lint_source(
        """
        from repro.obs import wall
        from repro.store import digest_hex

        token = digest_hex({"at": wall()})
        """
    )
    assert rules_of(findings) == {"RPR007"}


def test_rpr007_allows_obs_next_to_sinks_but_not_inside(lint_source):
    # The sanctioned idiom: measure around the sink call, never through it.
    findings = lint_source(
        """
        from repro.obs import monotonic

        def commit(store, digest, arrays, meta):
            t0 = monotonic()
            store.write_record(digest, arrays, meta)
            return monotonic() - t0
        """
    )
    assert findings == []


def test_rpr007_ignores_out_of_scope_imports_and_plain_calls(lint_source):
    assert lint_source("from repro.obs import get_registry\n", rel="scratch/tool.py") == []
    assert lint_source("from repro.obs import span\n", rel="repro/sim/newmod.py") == []
