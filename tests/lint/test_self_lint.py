"""The gate the CI job enforces: the repo's own tree lints clean.

Plus the two seeded regressions the linter was commissioned against:
the ``created_unix`` timestamp that used to leak into sweep-point
record meta (PR 6), and a global-state ``np.random.random()`` call
injected into a copy of a real source module.
"""

from __future__ import annotations

import shutil

from repro.lint.cli import lint_file, lint_paths
from tests.lint.conftest import REPO_ROOT, rules_of


def test_repo_tree_is_self_hosting():
    """``python -m repro.lint src benchmarks`` must exit 0 on this tree."""
    findings = lint_paths(
        [REPO_ROOT / "src", REPO_ROOT / "benchmarks"], registry=True
    )
    assert findings == [], "\n".join(f.render() for f in findings)


def test_seeded_regression_created_unix_in_record_meta(tmp_path):
    # Verbatim shape of the pre-PR-7 bug in scenario/runner.py: a wall
    # clock timestamp written into sweep-point record meta, which broke
    # byte-identical re-runs and forced `store ls --json` to strip it.
    runner = tmp_path / "repro" / "scenario" / "runner.py"
    runner.parent.mkdir(parents=True)
    runner.write_text(
        "import time\n"
        "\n"
        "\n"
        "def point_meta(spec_digest):\n"
        "    return {\n"
        '        "kind": "sweep_point",\n'
        '        "spec_digest": spec_digest,\n'
        '        "created_unix": time.time(),\n'
        "    }\n",
        encoding="utf-8",
    )
    findings = lint_file(runner)
    assert rules_of(findings) == {"RPR002"}
    assert findings[0].line == 8
    assert "time.time" in findings[0].message


def test_seeded_regression_injected_global_rng(tmp_path):
    # Copy a real source module and append a global-state RNG call: the
    # linter must localize the injected line, not drown it in noise
    # from the (clean) original content.
    original = REPO_ROOT / "src" / "repro" / "scenario" / "runner.py"
    assert lint_file(original) == []
    tainted = tmp_path / "runner.py"
    shutil.copyfile(original, tainted)
    n_lines = len(original.read_text(encoding="utf-8").splitlines())
    with tainted.open("a", encoding="utf-8") as fh:
        fh.write("\nimport numpy as np\n_BAD = np.random.random()\n")
    findings = lint_file(tainted)
    assert rules_of(findings) == {"RPR001"}
    assert findings[0].line == n_lines + 3
