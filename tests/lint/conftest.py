"""Shared helpers for the linter tests.

The module-scoped rules key off posix path suffixes (``repro/store/...``),
so fixtures are written under ``tmp_path`` at a caller-chosen relative
path — ``rel="repro/store/digest.py"`` makes a scratch file *be* a
quarantined module as far as the rules are concerned.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.lint.cli import lint_file
from repro.lint.findings import Finding


@pytest.fixture
def lint_source(tmp_path):
    """``lint_source(source, rel=...)`` -> findings for a scratch file."""

    def _lint(source: str, rel: str = "scratch/mod.py") -> list[Finding]:
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        return lint_file(path)

    return _lint


def rules_of(findings: list[Finding]) -> set[str]:
    return {f.rule for f in findings}


REPO_ROOT = Path(__file__).resolve().parents[2]
