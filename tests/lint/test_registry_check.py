"""RPR006: live registry consistency — resolvable, picklable, round-trip."""

from __future__ import annotations

import pytest

from repro.core.registry import ALGORITHMS, register_algorithm, unregister_algorithm
from repro.exceptions import ConfigurationError
from repro.lint.registry_check import check_registries
from repro.util.registry import Registry


def rpr006_messages(findings):
    assert all(f.rule == "RPR006" for f in findings)
    return [f.message for f in findings]


def test_builtin_registries_are_consistent():
    assert check_registries() == []


def test_lambda_factory_is_flagged_unpicklable_and_exampleless():
    register_algorithm("bad_lambda", lambda gamma: None)
    try:
        messages = rpr006_messages(check_registries())
        assert any("not picklable" in m and "bad_lambda" in m for m in messages)
        assert any("declares no example" in m and "bad_lambda" in m for m in messages)
    finally:
        unregister_algorithm("bad_lambda")
    assert check_registries() == []


def test_non_roundtripping_example_is_flagged():
    register_algorithm("bad_example", dict, example={"values": (1, 2)})
    try:
        messages = rpr006_messages(check_registries())
        assert any("round-trip" in m and "bad_example" in m for m in messages)
    finally:
        unregister_algorithm("bad_example")


def test_non_serializable_example_is_flagged():
    register_algorithm("nan_example", dict, example={"x": float("nan")})
    try:
        messages = rpr006_messages(check_registries())
        assert any("serializable" in m and "nan_example" in m for m in messages)
    finally:
        unregister_algorithm("nan_example")


def test_findings_locate_the_factory_source():
    assert check_registries() == []
    register_algorithm("located", dict, example={"x": (1,)})
    try:
        [finding] = check_registries()
        assert finding.path  # builtins fall back to the registry module
        assert finding.line >= 1
    finally:
        unregister_algorithm("located")


# ----------------------------------------------------------------------
# Registry.example plumbing


def test_example_accessor_returns_copy_or_none():
    registry = Registry("widget")
    registry.register("plain", dict)
    registry.register("documented", dict, example={"teeth": 12})
    assert registry.example("plain") is None
    example = registry.example("documented")
    assert example == {"teeth": 12}
    example["teeth"] = 99
    assert registry.example("documented") == {"teeth": 12}


def test_example_for_unknown_name_raises():
    registry = Registry("widget")
    with pytest.raises(ConfigurationError):
        registry.example("ghost")


def test_unregister_and_overwrite_drop_stale_examples():
    registry = Registry("widget")
    registry.register("cog", dict, example={"teeth": 12})
    registry.unregister("cog")
    registry.register("cog", dict)
    assert registry.example("cog") is None
    registry.register("cog", dict, example={"teeth": 5}, allow_overwrite=True)
    assert registry.example("cog") == {"teeth": 5}
    registry.register("cog", dict, allow_overwrite=True)
    assert registry.example("cog") is None


def test_non_mapping_example_is_rejected():
    registry = Registry("widget")
    with pytest.raises(ConfigurationError):
        registry.register("cog", dict, example=[1, 2])


def test_every_builtin_algorithm_example_constructs():
    # Examples are executable documentation: for the algorithm family the
    # factories take no injected context, so each example must actually
    # build the component it documents.
    for name in ALGORITHMS.names():
        example = ALGORITHMS.example(name)
        assert example is not None, name
        ALGORITHMS.make(name, **example)
