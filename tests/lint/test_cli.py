"""Linter CLI: exit codes, --json report, --list-rules, CLI passthrough."""

from __future__ import annotations

import json

import pytest

from repro.experiments.cli import main as experiments_main
from repro.lint.cli import iter_python_files, lint_paths, main
from repro.lint.findings import EXIT_CLEAN, EXIT_FINDINGS, PARSE_ERROR_ID
from repro.lint.rules import rule_table


@pytest.fixture
def tree(tmp_path):
    """A scratch tree with one clean and one violating module."""
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "clean.py").write_text("VALUE = 1\n", encoding="utf-8")
    (tmp_path / "pkg" / "dirty.py").write_text("import random\n", encoding="utf-8")
    return tmp_path


def test_exit_clean_on_clean_tree(tmp_path, capsys):
    (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
    assert main([str(tmp_path), "--no-registry"]) == EXIT_CLEAN
    assert "clean" in capsys.readouterr().out


def test_exit_findings_with_rule_id_and_location(tree, capsys):
    assert main([str(tree), "--no-registry"]) == EXIT_FINDINGS
    out = capsys.readouterr().out
    assert "dirty.py:1:1: RPR001" in out
    assert "clean.py" not in out


def test_unparsable_file_is_a_rpr000_finding(tmp_path, capsys):
    (tmp_path / "broken.py").write_text("def broken(:\n", encoding="utf-8")
    assert main([str(tmp_path), "--no-registry"]) == EXIT_FINDINGS
    assert PARSE_ERROR_ID in capsys.readouterr().out


def test_usage_error_exits_2():
    with pytest.raises(SystemExit) as excinfo:
        main([])
    assert excinfo.value.code == 2


def test_json_report_is_canonical_and_structured(tree, capsys):
    assert main([str(tree), "--no-registry", "--json"]) == EXIT_FINDINGS
    out = capsys.readouterr().out.strip()
    payload = json.loads(out)
    assert [f["rule"] for f in payload["findings"]] == ["RPR001"]
    assert payload["findings"][0]["path"].endswith("dirty.py")
    # Canonical form: re-serializing with sorted keys reproduces the bytes.
    assert out == json.dumps(payload, sort_keys=True, separators=(",", ":"))


def test_disable_filters_rules(tree):
    assert main([str(tree), "--no-registry", "--disable", "RPR001"]) == EXIT_CLEAN


def test_list_rules_covers_all_seven(capsys):
    assert main(["--list-rules"]) == EXIT_CLEAN
    out = capsys.readouterr().out
    for rule_id in ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006", "RPR007"):
        assert rule_id in out
    assert len(rule_table()) == 7


def test_iter_python_files_skips_caches_and_dedupes(tmp_path):
    (tmp_path / "__pycache__").mkdir()
    (tmp_path / "__pycache__" / "junk.py").write_text("x = 1\n", encoding="utf-8")
    real = tmp_path / "mod.py"
    real.write_text("x = 1\n", encoding="utf-8")
    found = list(iter_python_files([tmp_path, real]))
    assert found == [real]


def test_lint_paths_accepts_single_files(tree):
    findings = lint_paths([tree / "pkg" / "dirty.py"], registry=False)
    assert [f.rule for f in findings] == ["RPR001"]


def test_repro_experiments_lint_passthrough(tree, capsys):
    # Same pass, reachable from the main console entry point — including
    # a leading option, which argparse.REMAINDER alone would reject.
    assert experiments_main(["lint", "--list-rules"]) == EXIT_CLEAN
    capsys.readouterr()
    assert experiments_main(["lint", str(tree), "--no-registry"]) == EXIT_FINDINGS
    assert "RPR001" in capsys.readouterr().out
