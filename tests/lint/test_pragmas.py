"""Pragma suppression: line scope, file scope, comma lists, ``all``."""

from __future__ import annotations

from repro.lint.pragmas import parse_pragmas
from tests.lint.conftest import rules_of


def test_line_pragma_suppresses_named_rule_only(lint_source):
    assert lint_source("import random  # repro-lint: disable=RPR001\n") == []
    # A pragma naming a different rule does not help.
    findings = lint_source("import random  # repro-lint: disable=RPR002\n")
    assert rules_of(findings) == {"RPR001"}


def test_line_pragma_is_line_scoped(lint_source):
    findings = lint_source(
        """
        import random  # repro-lint: disable=RPR001

        ok = x == 1.5
        """
    )
    assert rules_of(findings) == {"RPR005"}


def test_comma_list_disables_several_rules(lint_source):
    src = "import random  # repro-lint: disable=RPR001,RPR005\n"
    assert lint_source(src) == []


def test_disable_all_suppresses_everything_on_the_line(lint_source):
    assert lint_source("import random  # repro-lint: disable=all\n") == []


def test_file_pragma_suppresses_rule_everywhere(lint_source):
    findings = lint_source(
        """
        # repro-lint: disable-file=RPR001
        import random

        x = random
        ok = y == 2.5
        """
    )
    # RPR001 silenced file-wide; RPR005 still reported.
    assert rules_of(findings) == {"RPR005"}


def test_pragma_text_inside_string_literal_is_inert(lint_source):
    findings = lint_source(
        """
        DOC = "# repro-lint: disable=RPR001"
        import random
        """
    )
    assert rules_of(findings) == {"RPR001"}


def test_parse_pragmas_reads_comment_tokens():
    pragmas = parse_pragmas(
        "x = 1  # repro-lint: disable=RPR003\n"
        "# repro-lint: disable-file = RPR004, RPR005\n"
    )
    assert pragmas.by_line == {1: {"RPR003"}}
    assert pragmas.file_wide == {"RPR004", "RPR005"}
    assert pragmas.suppresses("RPR003", 1)
    assert not pragmas.suppresses("RPR003", 2)
    assert pragmas.suppresses("RPR004", 99)


def test_parse_pragmas_survives_unfinished_source():
    # A torn file still yields the pragmas of its tokenizable prefix;
    # the syntax error itself is the caller's RPR000 finding.
    pragmas = parse_pragmas("# repro-lint: disable-file=RPR001\ndef broken(:\n")
    assert "RPR001" in pragmas.file_wide
