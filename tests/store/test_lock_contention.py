"""Concurrent stale-lock takeover: exactly one winner, live locks survive.

The rename-steal protocol of :func:`break_stale` has two safety claims
that only show under contention:

* when many waiters judge the same file stale, **exactly one** removes
  it (the rename is the arbiter);
* a **live** lock is never deleted, no matter how many waiters probe it.

Staleness is induced by backdating mtimes, so the thread races here are
real races on the takeover path — not sleeps hoping to line up timing.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import threading

import pytest

from repro.store import (
    FileLock,
    LockTimeout,
    break_stale,
    format_owner,
    owner_token,
    read_owner,
    write_owner_file,
)

N_THREADS = 8


def make_stale(path, *, age: float = 7200.0) -> None:
    write_owner_file(path, {"host": "elsewhere", "pid": 1, "acquired_unix": 0})
    old = path.stat().st_mtime - age
    os.utime(path, (old, old))


def race(n: int, fn) -> list:
    """Run ``fn(i)`` on n threads through a barrier; return the results."""
    barrier = threading.Barrier(n)
    results = [None] * n

    def runner(i: int) -> None:
        barrier.wait()
        results[i] = fn(i)

    threads = [threading.Thread(target=runner, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return results


class TestBreakStaleRaces:
    def test_exactly_one_waiter_breaks_a_stale_lock(self, tmp_path):
        path = tmp_path / "x.lock"
        make_stale(path)
        outcomes = race(N_THREADS, lambda i: break_stale(path, 3600.0))
        winners = [o for o in outcomes if o is not None]
        assert len(winners) == 1
        assert winners[0]["host"] == "elsewhere"  # the evicted owner's token
        assert not path.exists()
        assert list(tmp_path.glob("*.stale-*")) == []  # no debris

    def test_no_waiter_breaks_a_fresh_lock(self, tmp_path):
        path = tmp_path / "x.lock"
        holder = owner_token()
        write_owner_file(path, holder)
        outcomes = race(N_THREADS, lambda i: break_stale(path, 3600.0))
        assert outcomes == [None] * N_THREADS
        assert read_owner(path) == holder  # intact, byte-for-byte owner
        assert list(tmp_path.glob("*.stale-*")) == []

    def test_break_then_reacquire_under_contention(self, tmp_path):
        # The full FileLock path: N threads all find a stale lock and
        # fight for it; every one eventually holds it, one at a time.
        path = tmp_path / "x.lock"
        make_stale(path)
        in_critical = []
        lock_of_truth = threading.Lock()  # test-side referee only

        def contend(i: int):
            with FileLock(path, timeout=30.0, poll=0.001, stale_after=3600.0):
                with lock_of_truth:
                    in_critical.append(i)
                    assert len(in_critical) == 1, "two threads inside the lock"
                with lock_of_truth:
                    in_critical.remove(i)
            return True

        assert race(N_THREADS, contend) == [True] * N_THREADS
        assert not path.exists()


# ----------------------------------------------------------------------
# Cross-process exclusion


def _locked_increment(path, counter, rounds):
    for _ in range(rounds):
        with FileLock(path, timeout=60.0, poll=0.001):
            value = int(counter.read_text()) if counter.exists() else 0
            counter.write_text(str(value + 1))


class TestProcessContention:
    def test_file_counter_under_filelock(self, tmp_path):
        # 4 processes x 25 read-modify-write cycles on a plain file: any
        # lost update means the lock failed to exclude across processes.
        path = tmp_path / "counter.lock"
        counter = tmp_path / "counter.txt"
        ctx = multiprocessing.get_context("fork")
        procs = [
            ctx.Process(target=_locked_increment, args=(path, counter, 25))
            for _ in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120.0)
        assert all(p.exitcode == 0 for p in procs)
        assert int(counter.read_text()) == 100


# ----------------------------------------------------------------------
# Owner tokens in files and error messages


class TestOwnerTokens:
    def test_lockfile_carries_a_parsable_token(self, tmp_path):
        path = tmp_path / "x.lock"
        with FileLock(path):
            owner = json.loads(path.read_text(encoding="utf-8"))
            assert owner["pid"] == os.getpid()
            assert owner["host"]
            assert owner["acquired_unix"] > 0
            assert read_owner(path) == owner

    def test_timeout_message_names_the_holder(self, tmp_path):
        path = tmp_path / "x.lock"
        with FileLock(path):
            with pytest.raises(LockTimeout) as excinfo:
                FileLock(path, timeout=0.05, poll=0.01, stale_after=None).acquire()
        message = str(excinfo.value)
        assert f"pid {os.getpid()} on host " in message
        assert "since unix time" in message

    def test_read_owner_tolerates_every_format(self, tmp_path):
        path = tmp_path / "x.lock"
        path.write_text("4242\n")  # pre-token lockfile: bare pid
        assert read_owner(path) == {"pid": 4242}
        path.write_text("not json, not a pid")
        assert read_owner(path) is None
        path.write_text('["a","list"]')  # json, wrong shape
        assert read_owner(path) is None
        assert read_owner(tmp_path / "missing.lock") is None

    def test_format_owner_renderings(self):
        assert format_owner(None) == "unknown owner"
        assert format_owner({}) == "unknown owner"
        assert format_owner({"pid": 7}) == "pid 7 on host ?"
        rendered = format_owner({"host": "h", "pid": 7, "acquired_unix": 1.5})
        assert rendered == "pid 7 on host h since unix time 1.5"
