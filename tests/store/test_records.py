"""Record IO: atomic round trips and corruption tolerance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.store.records import (
    MANIFEST_SUFFIX,
    PAYLOAD_SUFFIX,
    TMP_PREFIX,
    atomic_write_bytes,
    delete_record,
    read_record,
    write_record,
)

DIGEST = "ab" * 32


def _write(tmp_path, digest=DIGEST, **extra_meta):
    arrays = {
        "average_regrets": np.array([1.25, 2.5]),
        "switches": np.arange(4, dtype=np.int64),
    }
    meta = {"kind": "sweep_point", "label": "p", **extra_meta}
    write_record(tmp_path, digest, arrays, meta)
    return arrays, meta


class TestRoundTrip:
    def test_arrays_and_meta_roundtrip_exactly(self, tmp_path):
        arrays, meta = _write(tmp_path)
        rec = read_record(tmp_path, DIGEST)
        assert rec is not None and rec.digest == DIGEST
        assert rec.meta["kind"] == "sweep_point" and rec.meta["label"] == "p"
        assert rec.meta["format"] == 1
        # float64 payloads round-trip bit-exactly — the resume guarantee.
        assert np.array_equal(rec.arrays["average_regrets"], arrays["average_regrets"])
        assert rec.arrays["average_regrets"].dtype == np.float64
        assert np.array_equal(rec.arrays["switches"], arrays["switches"])

    def test_missing_record_reads_none(self, tmp_path):
        assert read_record(tmp_path, "cd" * 32) is None

    def test_no_temp_files_left_behind(self, tmp_path):
        _write(tmp_path)
        assert not list(tmp_path.glob(f"{TMP_PREFIX}*"))

    def test_overwrite_is_clean(self, tmp_path):
        _write(tmp_path)
        arrays = {"average_regrets": np.array([9.0])}
        write_record(tmp_path, DIGEST, arrays, {"kind": "sweep_point", "label": "q"})
        rec = read_record(tmp_path, DIGEST)
        assert rec.meta["label"] == "q"
        assert np.array_equal(rec.arrays["average_regrets"], [9.0])

    def test_rejects_non_hex_digest(self, tmp_path):
        with pytest.raises(ConfigurationError, match="hex"):
            write_record(tmp_path, "../evil", {}, {})

    def test_delete_removes_both_files(self, tmp_path):
        _write(tmp_path)
        assert delete_record(tmp_path, DIGEST) == 2
        assert read_record(tmp_path, DIGEST) is None
        assert delete_record(tmp_path, DIGEST) == 0


class TestCorruptionTolerance:
    """Every partial / corrupt state must read as 'absent', not crash."""

    def test_truncated_payload_reads_none(self, tmp_path):
        _write(tmp_path)
        payload = tmp_path / f"{DIGEST}{PAYLOAD_SUFFIX}"
        payload.write_bytes(payload.read_bytes()[:20])
        assert read_record(tmp_path, DIGEST) is None

    def test_garbage_payload_reads_none(self, tmp_path):
        _write(tmp_path)
        (tmp_path / f"{DIGEST}{PAYLOAD_SUFFIX}").write_bytes(b"not an npz at all")
        assert read_record(tmp_path, DIGEST) is None

    def test_missing_payload_reads_none(self, tmp_path):
        # The state an interrupted delete (or a partially synced copy of
        # a store directory) leaves behind.
        _write(tmp_path)
        (tmp_path / f"{DIGEST}{PAYLOAD_SUFFIX}").unlink()
        assert read_record(tmp_path, DIGEST) is None

    def test_garbage_manifest_reads_none(self, tmp_path):
        _write(tmp_path)
        (tmp_path / f"{DIGEST}{MANIFEST_SUFFIX}").write_text("{not json", encoding="utf-8")
        assert read_record(tmp_path, DIGEST) is None

    def test_foreign_format_reads_none(self, tmp_path):
        _write(tmp_path)
        manifest = tmp_path / f"{DIGEST}{MANIFEST_SUFFIX}"
        manifest.write_text('{"format": 999, "kind": "sweep_point"}', encoding="utf-8")
        assert read_record(tmp_path, DIGEST) is None

    def test_orphan_payload_without_manifest_reads_none(self, tmp_path):
        # A writer killed between the payload rename and the manifest
        # rename: the record never became visible.
        _write(tmp_path)
        (tmp_path / f"{DIGEST}{MANIFEST_SUFFIX}").unlink()
        assert read_record(tmp_path, DIGEST) is None


class TestAtomicWrite:
    def test_publishes_content(self, tmp_path):
        target = tmp_path / "x.bin"
        atomic_write_bytes(target, b"hello")
        assert target.read_bytes() == b"hello"

    def test_replaces_existing(self, tmp_path):
        target = tmp_path / "x.bin"
        atomic_write_bytes(target, b"one")
        atomic_write_bytes(target, b"two")
        assert target.read_bytes() == b"two"
        assert not list(tmp_path.glob(f"{TMP_PREFIX}*"))
