"""Digest semantics: canonicalization, stability, seed derivation."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro.exceptions import ConfigurationError
from repro.store.digest import (
    canonical_json,
    digest_hex,
    digest_words,
    seed_from_digest,
)


class TestCanonicalJson:
    def test_key_order_is_irrelevant(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_compact_and_sorted(self):
        assert canonical_json({"b": [1, 2], "a": "x"}) == '{"a":"x","b":[1,2]}'

    def test_nested_structures(self):
        obj = {"spec": {"params": {"lam": [0.5, 1.0]}}, "value": 3}
        assert digest_hex(obj) == digest_hex({"value": 3, "spec": {"params": {"lam": [0.5, 1.0]}}})

    def test_rejects_nan(self):
        with pytest.raises(ConfigurationError, match="NaN"):
            canonical_json({"x": float("nan")})

    def test_rejects_non_json_values(self):
        with pytest.raises(ConfigurationError):
            canonical_json({"x": object()})


class TestDigest:
    def test_value_change_changes_digest(self):
        base = {"a": 1, "b": [1, 2, 3]}
        assert digest_hex(base) != digest_hex({"a": 1, "b": [1, 2, 4]})
        assert digest_hex(base) != digest_hex({"a": 2, "b": [1, 2, 3]})

    def test_digest_is_64_hex_chars(self):
        d = digest_hex({"a": 1})
        assert len(d) == 64 and all(c in "0123456789abcdef" for c in d)

    def test_stable_across_processes(self):
        # The resume contract: a digest computed today, in this process,
        # must equal the digest another interpreter computes for the same
        # key — otherwise records written by one sweep would be invisible
        # to the next.
        obj = {"spec": {"seed": 7, "rounds": 100}, "value": 0.25, "parameter": "algorithm.gamma"}
        here = digest_hex(obj)
        code = (
            "from repro.store.digest import digest_hex;"
            "print(digest_hex({'spec': {'seed': 7, 'rounds': 100}, 'value': 0.25,"
            " 'parameter': 'algorithm.gamma'}))"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONPATH": "src"},
            cwd=str(Path(__file__).resolve().parents[2]),
        )
        assert out.stdout.strip() == here


class TestSeedFromDigest:
    def test_deterministic(self):
        d = digest_hex({"a": 1})
        assert seed_from_digest(d, 7) == seed_from_digest(d, 7)

    def test_depends_on_digest_and_root(self):
        d1, d2 = digest_hex({"a": 1}), digest_hex({"a": 2})
        assert seed_from_digest(d1, 7) != seed_from_digest(d2, 7)
        assert seed_from_digest(d1, 7) != seed_from_digest(d1, 8)

    def test_accepts_no_root(self):
        d = digest_hex({"a": 1})
        assert seed_from_digest(d) == seed_from_digest(d)

    def test_words_roundtrip_shape(self):
        words = digest_words(digest_hex({"a": 1}))
        assert len(words) == 8
        assert all(0 <= w < 2**32 for w in words)

    def test_rejects_bad_digest(self):
        with pytest.raises(ConfigurationError):
            digest_words("abc")
        with pytest.raises(ConfigurationError):
            digest_words("z" * 64)
