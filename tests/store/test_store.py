"""ResultStore behaviour: records, maintenance, locks."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.store import FileLock, LockTimeout, ResultStore
from repro.store.records import MANIFEST_SUFFIX, PAYLOAD_SUFFIX, TMP_PREFIX

D1 = "aa" * 32
D2 = "bb" * 32


def _store_with_records(tmp_path) -> ResultStore:
    store = ResultStore(tmp_path / "root")
    for digest, label in ((D1, "one"), (D2, "two")):
        store.write_record(
            digest,
            {"average_regrets": np.array([1.0, 2.0])},
            {"kind": "sweep_point", "label": label, "parameter": "p", "value": 1},
        )
    return store


class TestRecords:
    def test_write_read_has(self, tmp_path):
        store = _store_with_records(tmp_path)
        assert store.has_record(D1) and store.has_record(D2)
        assert not store.has_record("cc" * 32)
        rec = store.read_record(D1)
        assert rec.meta["label"] == "one"
        assert np.array_equal(rec.arrays["average_regrets"], [1.0, 2.0])

    def test_sharded_layout(self, tmp_path):
        store = _store_with_records(tmp_path)
        assert (store.results_dir / D1[:2] / f"{D1}{MANIFEST_SUFFIX}").is_file()
        assert (store.results_dir / D1[:2] / f"{D1}{PAYLOAD_SUFFIX}").is_file()

    def test_iter_records_lists_committed_only(self, tmp_path):
        store = _store_with_records(tmp_path)
        # Break one record's manifest: it must drop out of the listing.
        (store.results_dir / D2[:2] / f"{D2}{MANIFEST_SUFFIX}").write_text("junk")
        listed = dict(store.iter_records())
        assert set(listed) == {D1}

    def test_read_only_store_touches_nothing(self, tmp_path):
        root = tmp_path / "never-created"
        store = ResultStore(root)
        assert not store.has_record(D1)
        assert store.read_record(D1) is None
        assert list(store.iter_records()) == []
        assert not root.exists()

    def test_coerce(self, tmp_path):
        store = ResultStore(tmp_path)
        assert ResultStore.coerce(store) is store
        assert ResultStore.coerce(str(tmp_path)).root == tmp_path
        with pytest.raises(ConfigurationError, match="store"):
            ResultStore.coerce(42)


class TestInfoAndGc:
    def test_info_counts(self, tmp_path):
        store = _store_with_records(tmp_path)
        info = store.info()
        assert info["records"] == 2
        assert info["record_bytes"] > 0
        assert info["pi_entries"] == 0
        assert info["format"] == 1

    def test_gc_on_clean_store_removes_nothing(self, tmp_path):
        store = _store_with_records(tmp_path)
        assert sum(store.gc().values()) == 0
        assert store.has_record(D1) and store.has_record(D2)

    def test_gc_sweeps_tmp_orphans_and_broken(self, tmp_path):
        store = _store_with_records(tmp_path)
        shard = store.results_dir / D1[:2]
        # 1. an abandoned temp file from a killed writer
        (shard / f"{TMP_PREFIX}deadbeef-x.npz").write_bytes(b"partial")
        # 2. an orphan payload whose manifest never landed
        orphan = "cc" * 32
        (store.results_dir / orphan[:2]).mkdir(parents=True, exist_ok=True)
        (store.results_dir / orphan[:2] / f"{orphan}{PAYLOAD_SUFFIX}").write_bytes(b"x")
        # 3. a committed record whose payload was corrupted afterwards
        (shard / f"{D1}{PAYLOAD_SUFFIX}").write_bytes(b"garbage")
        removed = store.gc(grace_seconds=0)
        assert removed["tmp"] == 1
        assert removed["orphan_payloads"] == 1
        assert removed["broken_records"] == 1
        # The broken record is fully gone; the healthy one survived.
        assert not store.has_record(D1)
        assert store.has_record(D2)
        assert store.read_record(D2) is not None

    def test_gc_grace_spares_inflight_writes(self, tmp_path):
        # A temp file / orphan payload younger than the grace period is
        # the normal transient state of an in-flight write: the default
        # gc must leave both alone so it can never race a live writer.
        store = _store_with_records(tmp_path)
        shard = store.results_dir / D1[:2]
        (shard / f"{TMP_PREFIX}young.npz").write_bytes(b"in flight")
        orphan = "cc" * 32
        (store.results_dir / orphan[:2]).mkdir(parents=True, exist_ok=True)
        young_orphan = store.results_dir / orphan[:2] / f"{orphan}{PAYLOAD_SUFFIX}"
        young_orphan.write_bytes(b"x")
        removed = store.gc()
        assert removed["tmp"] == 0 and removed["orphan_payloads"] == 0
        assert young_orphan.exists()
        # Backdate them past the grace period: now they are debris.
        for path in (shard / f"{TMP_PREFIX}young.npz", young_orphan):
            old = path.stat().st_mtime - 2 * store.GC_GRACE_SECONDS
            os.utime(path, (old, old))
        removed = store.gc()
        assert removed["tmp"] == 1 and removed["orphan_payloads"] == 1

    def test_maintenance_tolerates_foreign_files(self, tmp_path):
        # Editor backups / OS metadata inside the store must be skipped
        # by ls, info, and gc — never crashed on, never deleted.
        store = _store_with_records(tmp_path)
        shard = store.results_dir / D1[:2]
        foreign = [shard / "NOTES.json", shard / "backup.npz", shard / "README.txt"]
        for path in foreign:
            path.write_text("not a record")
        assert set(dict(store.iter_records())) == {D1, D2}
        assert store.info()["records"] == 2
        assert sum(store.gc(grace_seconds=0).values()) == 0
        assert all(path.exists() for path in foreign)

    def test_gc_then_recompute_path(self, tmp_path):
        # End-to-end recovery: corrupt -> unreadable -> gc -> rewrite.
        store = _store_with_records(tmp_path)
        (store.results_dir / D1[:2] / f"{D1}{PAYLOAD_SUFFIX}").write_bytes(b"garbage")
        assert store.read_record(D1) is None  # tolerated before gc too
        store.gc(grace_seconds=0)
        store.write_record(D1, {"a": np.array([3.0])}, {"kind": "sweep_point"})
        assert np.array_equal(store.read_record(D1).arrays["a"], [3.0])


class TestFileLock:
    def test_exclusion_and_release(self, tmp_path):
        path = tmp_path / "x.lock"
        with FileLock(path):
            assert path.exists()
            with pytest.raises(LockTimeout):
                FileLock(path, timeout=0.05, poll=0.01, stale_after=None).acquire()
        assert not path.exists()
        with FileLock(path):  # re-acquirable after release
            pass

    def test_stale_lock_is_broken(self, tmp_path):
        path = tmp_path / "x.lock"
        path.write_text("12345\n")
        old = path.stat().st_mtime - 7200
        os.utime(path, (old, old))
        with FileLock(path, timeout=1.0, poll=0.01, stale_after=3600):
            assert path.exists()
        # The rename-steal break leaves no .stale-* debris behind.
        assert list(tmp_path.glob("*.stale-*")) == []

    def test_fresh_lock_is_not_broken(self, tmp_path):
        path = tmp_path / "x.lock"
        path.write_text("12345\n")  # a live holder's lock, current mtime
        with pytest.raises(LockTimeout):
            FileLock(path, timeout=0.1, poll=0.02, stale_after=3600).acquire()
        assert path.exists()  # never stolen
