"""ResultStore behaviour: records, maintenance, locks."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.store import FileLock, LockTimeout, ResultStore
from repro.store.records import MANIFEST_SUFFIX, PAYLOAD_SUFFIX, TMP_PREFIX

D1 = "aa" * 32
D2 = "bb" * 32


def _store_with_records(tmp_path) -> ResultStore:
    store = ResultStore(tmp_path / "root")
    for digest, label in ((D1, "one"), (D2, "two")):
        store.write_record(
            digest,
            {"average_regrets": np.array([1.0, 2.0])},
            {"kind": "sweep_point", "label": label, "parameter": "p", "value": 1},
        )
    return store


class TestRecords:
    def test_write_read_has(self, tmp_path):
        store = _store_with_records(tmp_path)
        assert store.has_record(D1) and store.has_record(D2)
        assert not store.has_record("cc" * 32)
        rec = store.read_record(D1)
        assert rec.meta["label"] == "one"
        assert np.array_equal(rec.arrays["average_regrets"], [1.0, 2.0])

    def test_sharded_layout(self, tmp_path):
        store = _store_with_records(tmp_path)
        assert (store.results_dir / D1[:2] / f"{D1}{MANIFEST_SUFFIX}").is_file()
        assert (store.results_dir / D1[:2] / f"{D1}{PAYLOAD_SUFFIX}").is_file()

    def test_iter_records_lists_committed_only(self, tmp_path):
        store = _store_with_records(tmp_path)
        # Break one record's manifest: it must drop out of the listing.
        (store.results_dir / D2[:2] / f"{D2}{MANIFEST_SUFFIX}").write_text("junk")
        listed = dict(store.iter_records())
        assert set(listed) == {D1}

    def test_read_only_store_touches_nothing(self, tmp_path):
        root = tmp_path / "never-created"
        store = ResultStore(root)
        assert not store.has_record(D1)
        assert store.read_record(D1) is None
        assert list(store.iter_records()) == []
        assert not root.exists()

    def test_coerce(self, tmp_path):
        store = ResultStore(tmp_path)
        assert ResultStore.coerce(store) is store
        assert ResultStore.coerce(str(tmp_path)).root == tmp_path
        with pytest.raises(ConfigurationError, match="store"):
            ResultStore.coerce(42)


class TestInfoAndGc:
    def test_info_counts(self, tmp_path):
        store = _store_with_records(tmp_path)
        info = store.info()
        assert info["records"] == 2
        assert info["record_bytes"] > 0
        assert info["pi_entries"] == 0
        assert info["format"] == 1

    def test_gc_on_clean_store_removes_nothing(self, tmp_path):
        store = _store_with_records(tmp_path)
        assert sum(store.gc().values()) == 0
        assert store.has_record(D1) and store.has_record(D2)

    def test_gc_sweeps_tmp_orphans_and_broken(self, tmp_path):
        store = _store_with_records(tmp_path)
        shard = store.results_dir / D1[:2]
        # 1. an abandoned temp file from a killed writer
        (shard / f"{TMP_PREFIX}deadbeef-x.npz").write_bytes(b"partial")
        # 2. an orphan payload whose manifest never landed
        orphan = "cc" * 32
        (store.results_dir / orphan[:2]).mkdir(parents=True, exist_ok=True)
        (store.results_dir / orphan[:2] / f"{orphan}{PAYLOAD_SUFFIX}").write_bytes(b"x")
        # 3. a committed record whose payload was corrupted afterwards
        (shard / f"{D1}{PAYLOAD_SUFFIX}").write_bytes(b"garbage")
        removed = store.gc(grace_seconds=0)
        assert removed["tmp"] == 1
        assert removed["orphan_payloads"] == 1
        assert removed["broken_records"] == 1
        # The broken record is fully gone; the healthy one survived.
        assert not store.has_record(D1)
        assert store.has_record(D2)
        assert store.read_record(D2) is not None

    def test_gc_grace_spares_inflight_writes(self, tmp_path):
        # A temp file / orphan payload younger than the grace period is
        # the normal transient state of an in-flight write: the default
        # gc must leave both alone so it can never race a live writer.
        store = _store_with_records(tmp_path)
        shard = store.results_dir / D1[:2]
        (shard / f"{TMP_PREFIX}young.npz").write_bytes(b"in flight")
        orphan = "cc" * 32
        (store.results_dir / orphan[:2]).mkdir(parents=True, exist_ok=True)
        young_orphan = store.results_dir / orphan[:2] / f"{orphan}{PAYLOAD_SUFFIX}"
        young_orphan.write_bytes(b"x")
        removed = store.gc()
        assert removed["tmp"] == 0 and removed["orphan_payloads"] == 0
        assert young_orphan.exists()
        # Backdate them past the grace period: now they are debris.
        for path in (shard / f"{TMP_PREFIX}young.npz", young_orphan):
            old = path.stat().st_mtime - 2 * store.GC_GRACE_SECONDS
            os.utime(path, (old, old))
        removed = store.gc()
        assert removed["tmp"] == 1 and removed["orphan_payloads"] == 1

    def test_maintenance_tolerates_foreign_files(self, tmp_path):
        # Editor backups / OS metadata inside the store must be skipped
        # by ls, info, and gc — never crashed on, never deleted.
        store = _store_with_records(tmp_path)
        shard = store.results_dir / D1[:2]
        foreign = [shard / "NOTES.json", shard / "backup.npz", shard / "README.txt"]
        for path in foreign:
            path.write_text("not a record")
        assert set(dict(store.iter_records())) == {D1, D2}
        assert store.info()["records"] == 2
        assert sum(store.gc(grace_seconds=0).values()) == 0
        assert all(path.exists() for path in foreign)

    def test_gc_then_recompute_path(self, tmp_path):
        # End-to-end recovery: corrupt -> unreadable -> gc -> rewrite.
        store = _store_with_records(tmp_path)
        (store.results_dir / D1[:2] / f"{D1}{PAYLOAD_SUFFIX}").write_bytes(b"garbage")
        assert store.read_record(D1) is None  # tolerated before gc too
        store.gc(grace_seconds=0)
        store.write_record(D1, {"a": np.array([3.0])}, {"kind": "sweep_point"})
        assert np.array_equal(store.read_record(D1).arrays["a"], [3.0])


def _backdate(path, seconds: float) -> None:
    old = path.stat().st_mtime - seconds
    os.utime(path, (old, old))


class TestGcMaxAge:
    """Age-based eviction of the recomputable artifact classes."""

    def _pi_entry(self, store, name: str):
        shard = store.pi_dir / "quadrature" / "ab"
        shard.mkdir(parents=True, exist_ok=True)
        path = shard / name
        path.write_bytes(b"\x93NUMPY fake")
        return path

    def test_old_pi_entries_evicted_fresh_kept(self, tmp_path):
        store = _store_with_records(tmp_path)
        old = self._pi_entry(store, "old.npy")
        fresh = self._pi_entry(store, "fresh.npy")
        _backdate(old, 1000.0)
        removed = store.gc(max_age_seconds=100.0)
        assert removed["pi_evicted"] == 1
        assert not old.exists() and fresh.exists()

    def test_pi_tmp_files_are_not_age_evicted(self, tmp_path):
        # Temp files belong to the grace-governed tmp sweep, not the
        # age eviction pass — a young in-flight write stays untouched
        # even when max_age says "ancient".
        store = _store_with_records(tmp_path)
        tmp = self._pi_entry(store, f"{TMP_PREFIX}inflight.npy")
        removed = store.gc(max_age_seconds=0.0)
        assert removed["pi_evicted"] == 0 and removed["tmp"] == 0
        assert tmp.exists()

    def test_orphaned_leases_swept_live_ones_kept(self, tmp_path):
        from repro.store import LEASE_SUFFIX, read_owner, write_owner_file

        store = _store_with_records(tmp_path)
        lease_dir = store.sched_dir / "somegrid" / "leases"
        lease_dir.mkdir(parents=True)
        dead = lease_dir / f"{D1}{LEASE_SUFFIX}"
        write_owner_file(dead, {"host": "h", "pid": 1, "acquired_unix": 0})
        _backdate(dead, 1000.0)
        live = lease_dir / f"{D2}{LEASE_SUFFIX}"
        live_owner = {"host": "h", "pid": 2, "acquired_unix": 1}
        write_owner_file(live, live_owner)
        removed = store.gc(max_age_seconds=100.0)
        assert removed["stale_leases"] == 1
        assert not dead.exists()
        assert read_owner(live) == live_owner  # heartbeating worker untouched

    def test_committed_records_are_never_age_evicted(self, tmp_path):
        store = _store_with_records(tmp_path)
        for path in store.results_dir.glob("*/*"):
            _backdate(path, 10_000.0)
        removed = store.gc(grace_seconds=0, max_age_seconds=1.0)
        assert sum(removed.values()) == 0
        assert store.has_record(D1) and store.has_record(D2)

    def test_default_gc_leaves_caches_and_leases_alone(self, tmp_path):
        from repro.store import LEASE_SUFFIX, write_owner_file

        store = _store_with_records(tmp_path)
        old_pi = self._pi_entry(store, "old.npy")
        _backdate(old_pi, 10_000.0)
        lease_dir = store.sched_dir / "g" / "leases"
        lease_dir.mkdir(parents=True)
        lease = lease_dir / f"{D1}{LEASE_SUFFIX}"
        write_owner_file(lease, {"host": "h", "pid": 1, "acquired_unix": 0})
        _backdate(lease, 10_000.0)
        removed = store.gc()  # no max_age: eviction stays off
        assert removed["pi_evicted"] == 0 and removed["stale_leases"] == 0
        assert old_pi.exists() and lease.exists()


class TestFileLock:
    def test_exclusion_and_release(self, tmp_path):
        path = tmp_path / "x.lock"
        with FileLock(path):
            assert path.exists()
            with pytest.raises(LockTimeout):
                FileLock(path, timeout=0.05, poll=0.01, stale_after=None).acquire()
        assert not path.exists()
        with FileLock(path):  # re-acquirable after release
            pass

    def test_stale_lock_is_broken(self, tmp_path):
        path = tmp_path / "x.lock"
        path.write_text("12345\n")
        old = path.stat().st_mtime - 7200
        os.utime(path, (old, old))
        with FileLock(path, timeout=1.0, poll=0.01, stale_after=3600):
            assert path.exists()
        # The rename-steal break leaves no .stale-* debris behind.
        assert list(tmp_path.glob("*.stale-*")) == []

    def test_fresh_lock_is_not_broken(self, tmp_path):
        path = tmp_path / "x.lock"
        path.write_text("12345\n")  # a live holder's lock, current mtime
        with pytest.raises(LockTimeout):
            FileLock(path, timeout=0.1, poll=0.02, stale_after=3600).acquire()
        assert path.exists()  # never stolen
