"""DiskPiCache: persistence, mmap semantics, corruption, equivalence.

The load-bearing claim is equivalence: a distribution served by the disk
tier is byte-for-byte the array the in-memory
:class:`~repro.sim.pi_cache.SharedPiCache` (or the kernel itself) would
have produced, so disk-cached simulations stay bit-identical.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.pi_cache import SharedPiCache
from repro.store.pi_disk import DiskPiCache
from repro.util.mathx import exact_join_probabilities


def _key(u: np.ndarray, method: str = "dp"):
    return SharedPiCache.key(method, u)


class TestRoundTrip:
    def test_put_get_bit_exact(self, tmp_path):
        cache = DiskPiCache(tmp_path)
        u = np.random.default_rng(0).random(16)
        pi = exact_join_probabilities(u)
        cache.put(_key(u), pi)
        out = cache.get(_key(u))
        assert out is not None
        assert np.array_equal(np.asarray(out), pi)  # bit-exact round trip
        assert out.dtype == np.float64

    def test_get_is_readonly_mmap(self, tmp_path):
        cache = DiskPiCache(tmp_path)
        u = np.array([0.25, 0.5])
        cache.put(_key(u), np.array([0.3, 0.3, 0.4]))
        out = cache.get(_key(u))
        assert isinstance(out, np.memmap)
        assert not out.flags.writeable

    def test_non_mmap_mode(self, tmp_path):
        cache = DiskPiCache(tmp_path, mmap=False)
        u = np.array([0.25, 0.5])
        cache.put(_key(u), np.array([0.3, 0.3, 0.4]))
        out = cache.get(_key(u))
        assert not isinstance(out, np.memmap)
        assert not out.flags.writeable
        assert np.array_equal(out, [0.3, 0.3, 0.4])

    def test_miss_on_absent_key(self, tmp_path):
        cache = DiskPiCache(tmp_path)
        assert cache.get(_key(np.array([0.1]))) is None
        assert cache.misses == 1 and cache.hits == 0

    def test_methods_are_disjoint_namespaces(self, tmp_path):
        cache = DiskPiCache(tmp_path)
        u = np.array([0.25, 0.5])
        cache.put(_key(u, "dp"), np.array([0.3, 0.3, 0.4]))
        assert cache.get(_key(u, "fft")) is None

    def test_len_and_nbytes(self, tmp_path):
        cache = DiskPiCache(tmp_path)
        assert len(cache) == 0 and cache.nbytes() == 0
        for p in (0.1, 0.2):
            u = np.array([p])
            cache.put(_key(u), np.array([0.5, 0.5]))
        assert len(cache) == 2
        assert cache.nbytes() > 0

    def test_concurrent_style_double_put_is_harmless(self, tmp_path):
        # Two workers racing on one key write byte-identical files;
        # last-rename-wins must leave a valid entry and no temp debris.
        cache = DiskPiCache(tmp_path)
        u = np.array([0.4, 0.6])
        pi = np.array([0.2, 0.3, 0.5])
        cache.put(_key(u), pi)
        cache.put(_key(u), pi)
        assert np.array_equal(np.asarray(cache.get(_key(u))), pi)
        assert not list(tmp_path.rglob(".tmp-*"))


class TestCorruption:
    def test_truncated_entry_reads_as_miss(self, tmp_path):
        cache = DiskPiCache(tmp_path)
        u = np.array([0.25, 0.5])
        cache.put(_key(u), np.array([0.3, 0.3, 0.4]))
        path = cache.path_for(_key(u))
        path.write_bytes(path.read_bytes()[:8])
        assert cache.get(_key(u)) is None

    def test_wrong_shape_entry_reads_as_miss(self, tmp_path):
        # A foreign/garbled file that still parses as npy must fail the
        # shape validation (k + 1 recovered from the key) and be treated
        # as a miss, never served as data.
        cache = DiskPiCache(tmp_path)
        u = np.array([0.25, 0.5])
        key = _key(u)
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        np.save(path, np.zeros(17))
        assert cache.get(key) is None

    def test_recovery_is_rewrite(self, tmp_path):
        cache = DiskPiCache(tmp_path)
        u = np.array([0.25, 0.5])
        pi = np.array([0.3, 0.3, 0.4])
        cache.put(_key(u), pi)
        cache.path_for(_key(u)).write_bytes(b"junk")
        assert cache.get(_key(u)) is None
        cache.put(_key(u), pi)  # the caller recomputes and re-publishes
        assert np.array_equal(np.asarray(cache.get(_key(u))), pi)


class TestSharedCacheEquivalence:
    """DiskPiCache <-> SharedPiCache: the tiers serve identical bytes."""

    def test_disk_tier_serves_what_memory_tier_stored(self, tmp_path):
        u = np.random.default_rng(1).random(32)
        pi = exact_join_probabilities(u)
        key = SharedPiCache.key("dp", u)
        writer = SharedPiCache(disk=DiskPiCache(tmp_path))
        stored = writer.put(key, pi)
        # A *different* process/session: fresh memory tier, same disk.
        reader = SharedPiCache(disk=DiskPiCache(tmp_path))
        out, tier = reader.fetch(key)
        assert tier == "disk" and reader.disk_hits == 1
        assert np.array_equal(np.asarray(out), np.asarray(stored))
        assert np.array_equal(np.asarray(out), pi)
        # Second fetch is pinned in memory: no second disk read.
        out2, tier2 = reader.fetch(key)
        assert tier2 == "memory"
        assert np.array_equal(np.asarray(out2), pi)

    def test_disk_hits_are_pinned_as_plain_arrays(self, tmp_path):
        # Regression: pinning the memmap itself would hold one open file
        # mapping per entry for the cache's lifetime — thousands of
        # distinct signatures would exhaust the process fd limit.  The
        # memory tier must hold detached copies.
        writer = SharedPiCache(disk=DiskPiCache(tmp_path))
        key = SharedPiCache.key("dp", np.array([0.4, 0.6]))
        writer.put(key, np.array([0.2, 0.3, 0.5]))
        reader = SharedPiCache(disk=DiskPiCache(tmp_path))
        out, tier = reader.fetch(key)
        assert tier == "disk"
        assert not isinstance(out, np.memmap)
        assert not out.flags.writeable
        assert not isinstance(reader._entries[key], np.memmap)

    def test_memoryless_counters_without_disk(self, tmp_path):
        cache = SharedPiCache()
        key = SharedPiCache.key("dp", np.array([0.5]))
        assert cache.fetch(key) == (None, None)
        assert (cache.hits, cache.disk_hits, cache.misses) == (0, 0, 1)

    def test_disk_accepts_path_argument(self, tmp_path):
        cache = SharedPiCache(disk=str(tmp_path / "pi"))
        assert isinstance(cache.disk, DiskPiCache)

    def test_pickle_token_carries_disk_root(self, tmp_path):
        import pickle

        from repro.sim import pi_cache as pc

        cache = SharedPiCache(disk=DiskPiCache(tmp_path / "pi"))
        token = cache._token
        payload = pickle.dumps(cache)
        # Same process: resolves to the same live object.
        assert pickle.loads(payload) is cache
        # Simulate a worker process: wipe the registry entry so the
        # token resolves fresh — the disk root must be re-attached.
        del pc._PROCESS_REGISTRY[token]
        revived = pickle.loads(payload)
        assert revived is not cache
        assert revived.disk is not None
        assert revived.disk.root == cache.disk.root
        pc._PROCESS_PINNED.pop(token, None)

    def test_clear_leaves_disk_untouched(self, tmp_path):
        disk = DiskPiCache(tmp_path)
        cache = SharedPiCache(disk=disk)
        key = SharedPiCache.key("dp", np.array([0.5]))
        cache.put(key, np.array([0.5, 0.5]))
        cache.clear()
        assert len(cache) == 0
        assert len(disk) == 1  # persistent tier belongs to the machine


class TestCountingEngineDiskTier:
    """pi_cache_disk_hits: the acceptance-criterion stat end to end."""

    def _sim(self, cache):
        from repro.core.ant import AntAlgorithm
        from repro.env.demands import uniform_demands
        from repro.env.feedback import ExactBinaryFeedback
        from repro.sim.counting import CountingSimulator

        return CountingSimulator(
            AntAlgorithm(gamma=0.025),
            uniform_demands(n=2000, k=4),
            ExactBinaryFeedback(),
            seed=11,
            shared_pi_cache=cache,
        )

    def test_second_session_hits_disk_and_is_bit_identical(self, tmp_path):
        # Session 1: cold everything; pays the kernel, populates disk.
        cache1 = SharedPiCache(disk=DiskPiCache(tmp_path))
        sim1 = self._sim(cache1)
        first = sim1.run(150, trace_stride=1).trace.loads
        assert sim1.pi_cache_disk_hits == 0
        assert cache1.disk.writes > 0
        # Session 2: fresh memory tiers (new process in real life), same
        # disk — every first-seen signature is served from disk.
        cache2 = SharedPiCache(disk=DiskPiCache(tmp_path))
        sim2 = self._sim(cache2)
        second = sim2.run(150, trace_stride=1).trace.loads
        assert sim2.pi_cache_disk_hits > 0
        assert sim2.pi_cache_misses == 0  # nothing recomputed
        assert sim2.pi_cache_hits == (
            sim2.pi_cache_local_hits
            + sim2.pi_cache_shared_hits
            + sim2.pi_cache_disk_hits
        )
        assert np.array_equal(first, second)

    def test_disk_tier_bit_identical_to_no_cache(self, tmp_path):
        cache = SharedPiCache(disk=DiskPiCache(tmp_path))
        self._sim(cache).run(150)  # populate disk
        warmed = self._sim(SharedPiCache(disk=DiskPiCache(tmp_path)))
        loads_warm = warmed.run(150, trace_stride=1).trace.loads
        from repro.core.ant import AntAlgorithm
        from repro.env.demands import uniform_demands
        from repro.env.feedback import ExactBinaryFeedback
        from repro.sim.counting import CountingSimulator

        plain = CountingSimulator(
            AntAlgorithm(gamma=0.025),
            uniform_demands(n=2000, k=4),
            ExactBinaryFeedback(),
            seed=11,
            pi_cache=False,
        )
        loads_plain = plain.run(150, trace_stride=1).trace.loads
        assert np.array_equal(loads_warm, loads_plain)

    @pytest.mark.slow
    def test_process_pool_workers_share_the_disk_tier(self, tmp_path):
        # Trials shipped to pool workers re-attach the disk root from the
        # pickled token; a second parallel run must be served from disk.
        from repro.scenario import ScenarioSpec, run_scenario

        spec = ScenarioSpec(
            algorithm={"name": "ant", "params": {"gamma": 0.025}},
            demand={"name": "uniform", "params": {"n": 2000, "k": 4}},
            feedback={"name": "exact"},
            engine={"name": "counting"},
            rounds=150,
            seed=11,
        )
        serial = run_scenario(spec, trials=4)
        cache1 = SharedPiCache(disk=DiskPiCache(tmp_path))
        run_scenario(spec, trials=4, parallel=2, shared_pi_cache=cache1)
        disk = DiskPiCache(tmp_path)
        assert len(disk) > 0  # workers published to the shared disk root
        cache2 = SharedPiCache(disk=DiskPiCache(tmp_path))
        second = run_scenario(spec, trials=4, parallel=2, shared_pi_cache=cache2)
        assert np.array_equal(serial.average_regrets, second.average_regrets)
