"""GridSpec: cross products, content addressing, validation, records.

The grid's contract is *identity*: every point's digest and seed are
pure functions of the point's own coordinates, so grids are resumable
frontier sets and single-axis grids interoperate byte-for-byte with
classic store-backed sweeps (the behavioural half of that claim lives
in ``test_scheduler.py``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.scenario import ScenarioSpec
from repro.sched import GridAxis, GridSpec, point_summary
from repro.sched.worker import execute_point


def tiny_spec(**overrides) -> ScenarioSpec:
    fields = dict(
        algorithm={"name": "ant", "params": {"gamma": 0.025}},
        demand={"name": "uniform", "params": {"n": 2000, "k": 4}},
        feedback={"name": "exact"},
        engine={"name": "counting"},
        rounds=60,
        seed=11,
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


def two_axis_grid(**overrides) -> GridSpec:
    kwargs = dict(
        spec=tiny_spec(),
        axes=[
            {"parameter": "algorithm.gamma", "values": [0.02, 0.04]},
            {"parameter": "demand.k", "values": [2, 4, 8]},
        ],
        trials=2,
    )
    kwargs.update(overrides)
    return GridSpec(**kwargs)


class TestEnumeration:
    def test_row_major_last_axis_fastest(self):
        grid = two_axis_grid()
        assert grid.n_points == 6
        coords = [tuple(p.coords.values()) for p in grid.points()]
        assert coords == [
            (0.02, 2), (0.02, 4), (0.02, 8),
            (0.04, 2), (0.04, 4), (0.04, 8),
        ]
        assert [p.index for p in grid.points()] == list(range(6))

    def test_labels_match_sweep_convention(self):
        grid = two_axis_grid()
        assert grid.points()[0].label == "algorithm.gamma=0.02,demand.k=2"
        single = GridSpec(
            spec=tiny_spec(),
            axes=[{"parameter": "algorithm.gamma", "values": [0.02]}],
        )
        # One axis: exactly the "p=v" label sweep_scenario writes.
        assert single.points()[0].label == "algorithm.gamma=0.02"

    def test_derived_specs_carry_the_coordinate(self):
        grid = two_axis_grid()
        point = grid.points()[4]  # gamma=0.04, k=4
        assert point.spec.algorithm.params["gamma"] == 0.04
        assert point.spec.demand.params["k"] == 4
        # The base spec is untouched.
        assert grid.spec.algorithm.params["gamma"] == 0.025

    def test_parameters_and_run_params_merge(self):
        grid = GridSpec(
            spec=tiny_spec(run_params={"burn_in": 5, "window": 3}),
            axes=[{"parameter": "algorithm.gamma", "values": [0.02]}],
            run_overrides={"window": 9},
        )
        assert grid.parameters == ["algorithm.gamma"]
        assert grid.run_params == {"burn_in": 5, "window": 9}

    def test_rounds_defaults_to_spec(self):
        assert two_axis_grid().rounds == 60
        assert two_axis_grid(rounds=30).rounds == 30


class TestIdentity:
    def test_digests_and_seeds_unique(self):
        grid = two_axis_grid()
        assert len({p.digest for p in grid.points()}) == grid.n_points
        assert len({p.seed for p in grid.points()}) == grid.n_points

    def test_insertion_never_reshuffles_existing_points(self):
        # The frontier-set property: adding an axis value leaves every
        # pre-existing point's digest AND seed untouched.
        def by_coord(grid):
            return {tuple(p.coords.values()): (p.digest, p.seed) for p in grid.points()}

        outer = by_coord(two_axis_grid())
        inner = GridSpec(
            spec=tiny_spec(),
            axes=[
                {"parameter": "algorithm.gamma", "values": [0.02, 0.03, 0.04]},
                {"parameter": "demand.k", "values": [2, 4, 8]},
            ],
            trials=2,
        )
        full = by_coord(inner)
        for coord, identity in outer.items():
            assert full[coord] == identity

    def test_identity_depends_on_execution_config(self):
        base = two_axis_grid()
        for changed in (
            two_axis_grid(trials=3),
            two_axis_grid(rounds=30),
            two_axis_grid(run_overrides={"burn_in": 10}),
            two_axis_grid(spec=tiny_spec(seed=12)),
        ):
            assert changed.points()[0].digest != base.points()[0].digest
            assert changed.grid_digest() != base.grid_digest()

    def test_json_roundtrip_preserves_identity(self):
        grid = two_axis_grid(run_overrides={"burn_in": 10})
        again = GridSpec.from_json(grid.to_json())
        assert again.grid_digest() == grid.grid_digest()
        assert [p.digest for p in again.points()] == [p.digest for p in grid.points()]
        assert [p.seed for p in again.points()] == [p.seed for p in grid.points()]

    def test_closeness_inputs_follow_gamma_star(self):
        assert two_axis_grid().closeness_inputs() == (None, None)
        grid = GridSpec(
            spec=tiny_spec(gamma_star=0.01),
            axes=[{"parameter": "algorithm.gamma", "values": [0.02]}],
        )
        gamma_star, total_demand = grid.closeness_inputs()
        assert gamma_star == 0.01 and total_demand > 0


class TestValidation:
    def test_needs_at_least_one_axis(self):
        with pytest.raises(ConfigurationError, match="at least one axis"):
            GridSpec(spec=tiny_spec(), axes=[])

    def test_duplicate_axis_parameters_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            GridSpec(
                spec=tiny_spec(),
                axes=[
                    {"parameter": "algorithm.gamma", "values": [0.02]},
                    {"parameter": "algorithm.gamma", "values": [0.04]},
                ],
            )

    def test_axis_parameter_must_be_dotted(self):
        with pytest.raises(ConfigurationError, match="algorithm.gamma"):
            GridAxis(parameter="rounds", values=(100,))

    def test_axis_values_must_be_nonempty_json(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            GridAxis(parameter="algorithm.gamma", values=())
        with pytest.raises(ConfigurationError, match="non-empty"):
            GridAxis(parameter="algorithm.gamma", values="0.02")
        with pytest.raises(ConfigurationError, match="JSON-serializable"):
            GridAxis(parameter="algorithm.gamma", values=(float("nan"),))
        with pytest.raises(ConfigurationError, match="JSON-serializable"):
            GridAxis(parameter="algorithm.gamma", values=(object(),))

    def test_bad_coordinate_fails_at_construction(self):
        # A typo'd axis component must not survive until some worker
        # process: points are derived (and validated) eagerly.
        with pytest.raises(ConfigurationError):
            GridSpec(
                spec=tiny_spec(),
                axes=[{"parameter": "nonsense.gamma", "values": [1]}],
            )

    def test_burn_in_checked_against_grid_rounds(self):
        with pytest.raises(ConfigurationError, match="burn_in"):
            two_axis_grid(rounds=10, run_overrides={"burn_in": 10})
        # Fine when the horizon covers it.
        assert two_axis_grid(rounds=11, run_overrides={"burn_in": 10}).rounds == 11

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown grid spec keys"):
            GridSpec.from_dict({"spec": tiny_spec().to_dict(), "axes": [], "bogus": 1})
        with pytest.raises(ConfigurationError, match="unknown grid axis keys"):
            GridAxis.from_dict({"parameter": "a.b", "values": [1], "extra": 2})

    def test_from_dict_requires_spec_and_axes(self):
        with pytest.raises(ConfigurationError, match="'spec'"):
            GridSpec.from_dict({"axes": [{"parameter": "a.b", "values": [1]}]})
        with pytest.raises(ConfigurationError, match="'axes'"):
            GridSpec.from_dict({"spec": tiny_spec().to_dict()})

    def test_invalid_json_text(self):
        with pytest.raises(ConfigurationError, match="invalid grid JSON"):
            GridSpec.from_json("{not json")


class TestRecords:
    def test_point_record_roundtrip(self):
        grid = GridSpec(
            spec=tiny_spec(),
            axes=[{"parameter": "algorithm.gamma", "values": [0.02]}],
            trials=2,
        )
        point = grid.points()[0]
        out = execute_point(point, grid)
        arrays, meta = out["arrays"], out["meta"]
        assert meta["kind"] == "sweep_point"
        assert meta["label"] == point.label
        # Single axis: scalar parameter/value, readable by sweep resume.
        assert meta["parameter"] == "algorithm.gamma" and meta["value"] == 0.02
        # Determinism: no wall-clock field may sneak into the manifest.
        assert "created_unix" not in meta

        class FakeRecord:
            def __init__(self, meta, arrays):
                self.meta, self.arrays = meta, arrays

        summary = point_summary(point, FakeRecord(meta, arrays))
        assert summary is not None
        assert summary.label == point.label and summary.trials == 2
        assert np.array_equal(summary.average_regrets, out["summary"].average_regrets)
        assert summary.params == dict(point.coords)

    def test_multi_axis_meta_uses_parallel_lists(self):
        grid = two_axis_grid(trials=1)
        point = grid.points()[0]
        out = execute_point(point, grid)
        meta = out["meta"]
        assert meta["parameter"] == ["algorithm.gamma", "demand.k"]
        assert meta["value"] == [0.02, 2]

    def test_foreign_record_reads_as_none(self):
        grid = two_axis_grid()
        point = grid.points()[0]

        class FakeRecord:
            meta = {"kind": "something_else"}
            arrays = {}

        assert point_summary(point, FakeRecord()) is None

        class TruncatedRecord:
            meta = {"kind": "sweep_point", "label": "x", "trials": 1, "rounds": 60}
            arrays = {}  # payload arrays missing

        assert point_summary(point, TruncatedRecord()) is None
