"""Lease protocol: exclusive claims, heartbeats, stale reclaim, the log.

Staleness is always induced by *backdating mtimes* (``os.utime``), never
by sleeping, so these tests are deterministic and fast.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.sched.leases import RECLAIM_LOG, Lease, LeaseManager
from repro.store import owner_token, read_owner, write_owner_file

DIGEST = "ab" * 32
TTL = 60.0


def backdate(path, seconds: float) -> None:
    old = path.stat().st_mtime - seconds
    os.utime(path, (old, old))


class TestClaims:
    def test_claim_is_exclusive(self, tmp_path):
        a = LeaseManager(tmp_path, ttl=TTL, worker_id="a")
        b = LeaseManager(tmp_path, ttl=TTL, worker_id="b")
        lease = a.try_claim(DIGEST)
        assert lease is not None
        assert b.try_claim(DIGEST) is None  # fresh lease: denied
        assert a.is_leased(DIGEST) and b.is_leased(DIGEST)
        holder = a.holder(DIGEST)
        assert holder["worker"] == "a" and holder["pid"] == os.getpid()

    def test_release_frees_the_point(self, tmp_path):
        a = LeaseManager(tmp_path, ttl=TTL)
        lease = a.try_claim(DIGEST)
        assert lease.release() is True
        assert not a.is_leased(DIGEST)
        assert a.try_claim(DIGEST) is not None  # claimable again

    def test_stale_lease_is_reclaimed_and_logged(self, tmp_path):
        a = LeaseManager(tmp_path, ttl=TTL, worker_id="dead")
        stale = a.try_claim(DIGEST)
        backdate(stale.path, 2 * TTL)
        assert not a.is_leased(DIGEST)

        b = LeaseManager(tmp_path, ttl=TTL, worker_id="rescuer")
        lease = b.try_claim(DIGEST)
        assert lease is not None
        assert b.holder(DIGEST)["worker"] == "rescuer"
        [event] = b.reclaim_events()
        assert event["digest"] == DIGEST
        assert event["evicted"]["worker"] == "dead"
        assert event["by"]["worker"] == "rescuer"
        assert b.reclaimed_count() == 1

    def test_fresh_lease_is_never_reclaimed(self, tmp_path):
        a = LeaseManager(tmp_path, ttl=TTL)
        lease = a.try_claim(DIGEST)
        for _ in range(3):
            assert LeaseManager(tmp_path, ttl=TTL).try_claim(DIGEST) is None
        assert lease.path.exists()
        assert a.reclaimed_count() == 0

    def test_ttl_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="ttl"):
            LeaseManager(tmp_path, ttl=0.0)


class TestHeartbeat:
    def test_refresh_bumps_mtime(self, tmp_path):
        lease = LeaseManager(tmp_path, ttl=TTL).try_claim(DIGEST)
        backdate(lease.path, 2 * TTL)
        assert lease.refresh() is True
        assert time.time() - lease.path.stat().st_mtime < TTL

    def test_refresh_and_release_fail_after_takeover(self, tmp_path):
        a = LeaseManager(tmp_path, ttl=TTL, worker_id="a")
        lease = a.try_claim(DIGEST)
        backdate(lease.path, 2 * TTL)
        thief = LeaseManager(tmp_path, ttl=TTL, worker_id="thief").try_claim(DIGEST)
        assert thief is not None
        # The evicted holder must neither refresh nor delete the thief's
        # lease — the file now belongs to someone else.
        assert lease.refresh() is False
        assert lease.release() is False
        assert read_owner(lease.path)["worker"] == "thief"

    def test_heartbeat_thread_keeps_the_lease_fresh(self, tmp_path):
        lease = LeaseManager(tmp_path, ttl=TTL).try_claim(DIGEST)
        with lease.heartbeat(0.01) as lost:
            backdate(lease.path, 2 * TTL)
            deadline = time.monotonic() + 5.0
            while time.time() - lease.path.stat().st_mtime > TTL:
                assert time.monotonic() < deadline, "heartbeat never fired"
                time.sleep(0.005)
        assert not lost.is_set()

    def test_heartbeat_reports_a_lost_lease(self, tmp_path):
        lease = LeaseManager(tmp_path, ttl=TTL, worker_id="a").try_claim(DIGEST)
        # Simulate a reclaim: the file now carries a different owner.
        lease.path.unlink()
        write_owner_file(lease.path, {**owner_token(), "worker": "thief"})
        with lease.heartbeat(0.01) as lost:
            assert lost.wait(timeout=5.0), "lost-lease event never set"


class TestReclaimLog:
    def test_missing_log_reads_empty(self, tmp_path):
        manager = LeaseManager(tmp_path, ttl=TTL)
        assert manager.reclaim_events() == []
        assert manager.reclaimed_count() == 0

    def test_torn_final_line_is_tolerated(self, tmp_path):
        manager = LeaseManager(tmp_path, ttl=TTL)
        log = tmp_path / RECLAIM_LOG
        good = json.dumps({"digest": DIGEST, "evicted": {}, "by": {}})
        log.write_text(good + "\n" + good[: len(good) // 2], encoding="utf-8")
        assert manager.reclaimed_count() == 1  # the torn tail is skipped

    def test_lease_dataclass_handles_vanished_file(self, tmp_path):
        lease = Lease(path=tmp_path / "gone.lease", token=owner_token())
        assert lease.refresh() is False
        assert lease.release() is False
