"""Scheduler end-to-end: drain, resume, reclaim, kill-recovery.

The acceptance contract mirrors the store-backed sweep one, scaled out:
however a grid is drained — serially, by N worker processes, interrupted
and resumed, or with workers SIGKILL'd mid-flight — the store's
``results/`` tree must come out byte-identical.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import signal
import threading
import time

import numpy as np
import pytest

import repro.sched.worker as worker_mod
from repro.exceptions import SchedulerError
from repro.scenario import ScenarioSpec, sweep_scenario
from repro.sched import (
    GridSpec,
    LeaseManager,
    collect_grid,
    format_status,
    grid_status,
    init_grid,
    load_grid,
    run_grid,
    run_worker,
)
from repro.sched.scheduler import GRID_MANIFEST
from repro.sched.worker import execute_point
from repro.store import ResultStore


def tiny_spec(**overrides) -> ScenarioSpec:
    fields = dict(
        algorithm={"name": "ant", "params": {"gamma": 0.025}},
        demand={"name": "uniform", "params": {"n": 2000, "k": 4}},
        feedback={"name": "exact"},
        engine={"name": "counting"},
        rounds=60,
        seed=11,
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


def single_axis_grid(values=(0.02, 0.04), **overrides) -> GridSpec:
    kwargs = dict(
        spec=tiny_spec(),
        axes=[{"parameter": "algorithm.gamma", "values": list(values)}],
        trials=2,
    )
    kwargs.update(overrides)
    return GridSpec(**kwargs)


def tree_hashes(store: ResultStore) -> dict[str, str]:
    """``relative path -> sha256`` of every file under ``results/``."""
    out = {}
    for path in sorted(store.results_dir.rglob("*")):
        if path.is_file():
            out[str(path.relative_to(store.results_dir))] = hashlib.sha256(
                path.read_bytes()
            ).hexdigest()
    return out


# ----------------------------------------------------------------------
# Serial drains and sweep interop


class TestSerialDrain:
    def test_run_grid_drains_and_reports(self, tmp_path):
        grid = single_axis_grid()
        store = ResultStore(tmp_path)
        status = run_grid(store, grid)
        assert status["done"] and status["committed"] == 2
        assert status["computed"] == 2
        assert "2/2 committed" in format_status(status)

    def test_grid_summaries_match_sweep_scenario_bitwise(self, tmp_path):
        values = [0.02, 0.04]
        grid = single_axis_grid(values)
        store = ResultStore(tmp_path)
        run_grid(store, grid)
        result = collect_grid(store, grid)
        plain = sweep_scenario(tiny_spec(), "algorithm.gamma", values, trials=2)
        for a, b in zip(result.summaries, plain.summaries):
            assert a.label == b.label
            assert np.array_equal(a.average_regrets, b.average_regrets)
            assert np.array_equal(a.max_abs_deficits, b.max_abs_deficits)
            assert np.array_equal(a.switches_per_round, b.switches_per_round)

    def test_sweep_scenario_resumes_from_a_grid_store(self, tmp_path):
        # Digest compatibility, direction 1: a store drained by the
        # scheduler serves a classic sweep entirely from cache.
        values = [0.02, 0.04]
        run_grid(ResultStore(tmp_path), single_axis_grid(values))
        out = sweep_scenario(
            tiny_spec(), "algorithm.gamma", values, trials=2, store=tmp_path
        )
        assert out.resumed == [True, True]

    def test_grid_resumes_from_a_sweep_store(self, tmp_path):
        # Direction 2: a store populated by sweep_scenario leaves the
        # scheduler nothing to compute.
        values = [0.02, 0.04]
        sweep_scenario(tiny_spec(), "algorithm.gamma", values, trials=2, store=tmp_path)
        stats = run_worker(ResultStore(tmp_path), single_axis_grid(values))
        assert stats.computed == 0


# ----------------------------------------------------------------------
# Interruption, reclaim, kill-recovery


class TestCrashRecovery:
    def test_interrupted_drain_resumes_byte_identical(self, tmp_path):
        grid = single_axis_grid([0.02, 0.03, 0.04], trials=1)
        store_a = ResultStore(tmp_path / "a")
        stats = run_worker(store_a, grid, max_points=1)
        assert stats.computed == 1
        status = grid_status(store_a, grid)
        assert status["committed"] == 1 and status["pending"] == 2

        resumed = run_worker(store_a, grid)
        assert resumed.computed == 2  # only the missing points

        store_b = ResultStore(tmp_path / "b")
        run_worker(store_b, grid)
        assert tree_hashes(store_a) == tree_hashes(store_b)

    def test_dead_workers_stale_lease_is_reclaimed(self, tmp_path):
        # A SIGKILL'd worker, simulated deterministically: its lease file
        # exists with a silent (backdated) heartbeat.
        grid = single_axis_grid([0.02], trials=1)
        store = ResultStore(tmp_path)
        grid_dir = store.sched_dir / grid.grid_digest()
        dead = LeaseManager(grid_dir, ttl=1.0, worker_id="dead")
        lease = dead.try_claim(grid.points()[0].digest)
        old = lease.path.stat().st_mtime - 10.0
        os.utime(lease.path, (old, old))

        stats = run_worker(store, grid, ttl=1.0, poll=0.01)
        assert stats.computed == 1
        status = grid_status(store, grid, ttl=1.0)
        assert status["done"] and status["reclaimed"] == 1

    def test_reclaimed_holders_racing_commit_is_not_recomputed(self, tmp_path, monkeypatch):
        # The claim/re-check window: a reclaimed worker may commit after
        # our staleness check.  The record, not the lease, decides.
        grid = single_axis_grid([0.02], trials=1)
        store = ResultStore(tmp_path)
        point = grid.points()[0]
        out = execute_point(point, grid)
        real = worker_mod.LeaseManager

        class RacingManager(real):
            def try_claim(self, digest):
                lease = real.try_claim(self, digest)
                if lease is not None:
                    store.write_record(digest, out["arrays"], out["meta"])
                return lease

        monkeypatch.setattr(worker_mod, "LeaseManager", RacingManager)
        stats = run_worker(store, grid, poll=0.01)
        assert stats.computed == 0 and stats.resumed_skips == 1
        assert store.has_record(point.digest)

    def test_worker_waits_out_a_live_lease(self, tmp_path):
        # A point leased by a live peer is skipped, not stolen; once the
        # peer releases, the waiting worker finishes the frontier.
        grid = single_axis_grid([0.02, 0.04], trials=1)
        store = ResultStore(tmp_path)
        blocker = LeaseManager(
            store.sched_dir / grid.grid_digest(), ttl=60.0, worker_id="blocker"
        )
        held = blocker.try_claim(grid.points()[0].digest)
        assert held is not None

        result = {}
        thread = threading.Thread(
            target=lambda: result.update(stats=run_worker(store, grid, poll=0.01))
        )
        thread.start()
        deadline = time.monotonic() + 30.0
        while not store.has_record(grid.points()[1].digest):
            assert time.monotonic() < deadline, "worker never computed the free point"
            time.sleep(0.005)
        held.release()
        thread.join(timeout=30.0)
        assert not thread.is_alive()
        assert result["stats"].lease_denied >= 1
        assert grid_status(store, grid)["done"]
        assert blocker.reclaimed_count() == 0  # the live lease was never stolen

    def test_sigkilled_worker_process_leaves_a_recoverable_store(self, tmp_path):
        # The real thing: fork a worker, SIGKILL it once it holds a
        # lease, drain the rest, and byte-compare against a store that
        # was never interrupted.
        grid = single_axis_grid(
            [round(0.02 + 0.004 * i, 3) for i in range(10)], trials=1, rounds=400
        )
        store_a = ResultStore(tmp_path / "a")
        init_grid(store_a, grid)
        lease_dir = store_a.sched_dir / grid.grid_digest() / "leases"

        ctx = multiprocessing.get_context("fork")
        proc = ctx.Process(
            target=run_worker,
            args=(store_a, grid),
            kwargs={"ttl": 0.5, "poll": 0.01},
        )
        proc.start()
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if any(lease_dir.glob("*.lease")) or grid_status(store_a, grid)["done"]:
                break
            time.sleep(0.002)
        os.kill(proc.pid, signal.SIGKILL)
        proc.join(timeout=30.0)

        stats = run_worker(store_a, grid, ttl=0.5, poll=0.01)
        assert grid_status(store_a, grid)["done"]
        assert stats.computed <= grid.n_points

        store_b = ResultStore(tmp_path / "b")
        run_worker(store_b, grid)
        # Sweep the killed worker's temp-file debris, then compare.
        store_a.gc(grace_seconds=0)
        assert tree_hashes(store_a) == tree_hashes(store_b)


# ----------------------------------------------------------------------
# Multi-process orchestration


class TestRunGridWorkers:
    def test_two_worker_drain_is_byte_identical_to_serial(self, tmp_path):
        grid = single_axis_grid([0.02, 0.03, 0.04, 0.05], trials=1)
        serial = ResultStore(tmp_path / "serial")
        run_grid(serial, grid)
        parallel = ResultStore(tmp_path / "par")
        status = run_grid(parallel, grid, workers=2, ttl=10.0, poll=0.01)
        assert status["done"]
        assert tree_hashes(parallel) == tree_hashes(serial)

    def test_all_workers_crashing_raises_but_preserves_frontier(self, tmp_path):
        # An unrunnable grid (bogus run kwarg survives JSON validation
        # but explodes at execution) kills every worker; the orchestrator
        # must say so instead of hanging.
        grid = single_axis_grid([0.02], trials=1, run_overrides={"bogus_kwarg": 1})
        store = ResultStore(tmp_path)
        with pytest.raises(SchedulerError, match="re-run to resume"):
            run_grid(store, grid, workers=1, poll=0.01, progress_interval=0.05)
        assert not grid_status(store, grid)["done"]


# ----------------------------------------------------------------------
# Persistence, status, collection


class TestGridPersistence:
    def test_init_is_idempotent(self, tmp_path):
        grid = single_axis_grid()
        store = ResultStore(tmp_path)
        manifest = init_grid(store, grid) / GRID_MANIFEST
        first = manifest.read_bytes()
        assert init_grid(store, grid) / GRID_MANIFEST == manifest
        assert manifest.read_bytes() == first

    def test_load_grid_roundtrips(self, tmp_path):
        grid = single_axis_grid()
        store = ResultStore(tmp_path)
        init_grid(store, grid)
        auto = load_grid(store)
        assert auto.grid_digest() == grid.grid_digest()
        explicit = load_grid(store, grid.grid_digest())
        assert explicit.grid_digest() == grid.grid_digest()

    def test_load_grid_errors(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(SchedulerError, match="no grids"):
            load_grid(store)
        grid = single_axis_grid()
        init_grid(store, grid)
        with pytest.raises(SchedulerError, match="no grid 'feed'"):
            load_grid(store, "feed")
        init_grid(store, single_axis_grid([0.06]))
        with pytest.raises(SchedulerError, match="2 grids"):
            load_grid(store)
        # Explicit digests stay usable when auto-discovery is ambiguous.
        assert load_grid(store, grid.grid_digest()).grid_digest() == grid.grid_digest()

    def test_status_counts_fresh_grid(self, tmp_path):
        grid = single_axis_grid([0.02, 0.04], trials=1)
        status = grid_status(ResultStore(tmp_path), grid)
        assert status == {
            "grid": grid.grid_digest(),
            "total": 2,
            "committed": 0,
            "leased": 0,
            "pending": 2,
            "reclaimed": 0,
            "done": False,
        }

    def test_status_sees_fresh_leases_but_not_stale_ones(self, tmp_path):
        grid = single_axis_grid([0.02, 0.04], trials=1)
        store = ResultStore(tmp_path)
        manager = LeaseManager(store.sched_dir / grid.grid_digest(), ttl=60.0)
        lease = manager.try_claim(grid.points()[0].digest)
        assert grid_status(store, grid)["leased"] == 1
        old = lease.path.stat().st_mtime - 120.0
        os.utime(lease.path, (old, old))
        status = grid_status(store, grid)  # default TTL 60s: now stale
        assert status["leased"] == 0 and status["pending"] == 2


class TestCollection:
    def test_collect_requires_a_drained_grid(self, tmp_path):
        grid = single_axis_grid([0.02, 0.04], trials=1)
        store = ResultStore(tmp_path)
        with pytest.raises(SchedulerError, match="2 uncommitted"):
            collect_grid(store, grid)

    def test_grid_result_series_and_shape(self, tmp_path):
        grid = GridSpec(
            spec=tiny_spec(),
            axes=[
                {"parameter": "algorithm.gamma", "values": [0.02, 0.04]},
                {"parameter": "demand.k", "values": [2, 4, 8]},
            ],
            trials=1,
        )
        store = ResultStore(tmp_path)
        run_grid(store, grid)
        result = collect_grid(store, grid)
        assert result.shape == (2, 3)
        series = result.series()
        assert series.shape == (6,)
        assert np.isfinite(series).all()
        assert series.reshape(result.shape).shape == (2, 3)
        with pytest.raises(SchedulerError, match="single-axis"):
            result.as_sweep_result()

    def test_single_axis_result_as_sweep_result(self, tmp_path):
        values = [0.02, 0.04]
        grid = single_axis_grid(values, trials=1)
        store = ResultStore(tmp_path)
        run_grid(store, grid)
        sweep = collect_grid(store, grid).as_sweep_result()
        assert sweep.parameter == "algorithm.gamma"
        assert sweep.values == values
        assert sweep.resumed == [True, True]
        assert len(sweep.summaries) == 2
