"""Tests for the declarative spec layer: validation + serialization.

The canonical-params tables below drive a JSON round-trip test over
*every* registered component and every algorithm/feedback/demand/engine
combination; a guard test fails if a new registration is missing from
the tables, keeping the coverage exhaustive by construction.
"""

from __future__ import annotations

import itertools
import pickle

import pytest

from repro.core.registry import available_algorithms
from repro.env.demands import DemandSchedule, DemandVector
from repro.env.registry import available_demands, available_feedbacks, available_populations
from repro.exceptions import ConfigurationError
from repro.scenario import (
    AlgorithmSpec,
    DemandSpec,
    EngineSpec,
    FeedbackSpec,
    PopulationSpec,
    ScenarioSpec,
    available_engines,
)

N, K = 2000, 4

#: Canonical constructor params for every registered component name.
ALGORITHM_PARAMS = {
    "ant": {"gamma": 0.02},
    "ant_one_sample": {"gamma": 0.02},
    "ant_scout": {"gamma": 0.02},
    "precise_sigmoid": {"gamma": 0.02, "eps": 0.5},
    "precise_adversarial": {"gamma": 0.02, "eps": 0.5},
    "trivial": {},
}
FEEDBACK_PARAMS = {
    "sigmoid": {"lam": 1.0},
    "calibrated_sigmoid": {"gamma_star": 0.01},
    "exact": {},
    "correlated_sigmoid": {"lam": 1.0, "rho": 0.5},
    "adversarial": {"gamma_ad": 0.05, "strategy": "inverted"},
    "threshold": {"thresholds": [250, 250, 250, 250]},
}
DEMAND_PARAMS = {
    "uniform": {"n": N, "k": K},
    "proportional": {"n": N, "weights": [1, 2, 1, 1]},
    "powerlaw": {"n": N, "k": K, "alpha": 1.0},
    "lognormal": {"n": N, "k": K, "sigma": 0.8, "seed": 3},
    "explicit": {"demands": [250, 250, 250, 250], "n": N},
    "step": {"steps": [[0, [250, 250, 250, 250]], [500, [300, 200, 250, 250]]], "n": N},
    "periodic": {
        "phases": [[250, 250, 250, 250], [300, 200, 250, 250]],
        "n": N,
        "period": 500,
    },
    "periodic_proportional": {
        "n": N,
        "phase_weights": [[4, 1, 2, 1], [1, 4, 2, 1]],
        "period": 500,
    },
}
POPULATION_PARAMS = {
    "static": {"n": N},
    "step": {"steps": [[0, N], [500, N - 500]]},
}
ENGINE_PARAMS = {
    "agent": {},
    "counting": {},
    "counting_batched": {"batch": 8, "backend": "numpy"},
    "sequential": {},
}


def base_spec(**overrides) -> ScenarioSpec:
    fields = dict(
        algorithm={"name": "ant", "params": {"gamma": 0.02}},
        demand={"name": "uniform", "params": {"n": N, "k": K}},
        feedback={"name": "calibrated_sigmoid", "params": {"gamma_star": 0.01}},
        rounds=100,
        seed=1,
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


class TestCanonicalTablesAreExhaustive:
    """New registrations must extend the tables (keeps round-trips total)."""

    def test_algorithms(self):
        assert set(ALGORITHM_PARAMS) == set(available_algorithms())

    def test_feedbacks(self):
        assert set(FEEDBACK_PARAMS) == set(available_feedbacks())

    def test_demands(self):
        assert set(DEMAND_PARAMS) == set(available_demands())

    def test_populations(self):
        assert set(POPULATION_PARAMS) == set(available_populations())

    def test_engines(self):
        assert set(ENGINE_PARAMS) == set(available_engines())


class TestComponentSpecs:
    @pytest.mark.parametrize(
        "spec_cls, table",
        [
            (AlgorithmSpec, ALGORITHM_PARAMS),
            (FeedbackSpec, FEEDBACK_PARAMS),
            (DemandSpec, DEMAND_PARAMS),
            (PopulationSpec, POPULATION_PARAMS),
            (EngineSpec, ENGINE_PARAMS),
        ],
        ids=["algorithm", "feedback", "demand", "population", "engine"],
    )
    def test_round_trip_every_registered_name(self, spec_cls, table):
        for name, params in table.items():
            spec = spec_cls(name=name, params=params)
            assert spec_cls.from_dict(spec.to_dict()) == spec

    def test_unknown_name_lists_available(self):
        with pytest.raises(ConfigurationError, match=r"unknown algorithm 'nope'.*'ant'"):
            AlgorithmSpec("nope")
        with pytest.raises(ConfigurationError, match=r"unknown feedback model.*'sigmoid'"):
            FeedbackSpec("nope")
        with pytest.raises(ConfigurationError, match=r"unknown demand.*'uniform'"):
            DemandSpec("nope")
        with pytest.raises(ConfigurationError, match=r"unknown population.*'static'"):
            PopulationSpec("nope")
        with pytest.raises(ConfigurationError, match=r"unknown engine.*'agent'"):
            EngineSpec("nope")

    def test_non_json_params_rejected(self):
        with pytest.raises(ConfigurationError, match="JSON-serializable"):
            AlgorithmSpec("ant", {"gamma": object()})

    def test_non_string_param_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="param names must be strings"):
            AlgorithmSpec("ant", {1: 2})

    def test_params_canonicalized_to_json_types(self):
        spec = DemandSpec("proportional", {"n": N, "weights": (1, 2, 1, 1)})
        assert spec.params["weights"] == [1, 2, 1, 1]

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="unknown algorithm spec keys"):
            AlgorithmSpec.from_dict({"name": "ant", "parms": {}})

    def test_build_demand_vector_and_schedule(self):
        assert isinstance(DemandSpec("uniform", DEMAND_PARAMS["uniform"]).build(), DemandVector)
        assert isinstance(DemandSpec("step", DEMAND_PARAMS["step"]).build(), DemandSchedule)

    def test_demand_aware_feedback_injection(self):
        demand = DemandSpec("uniform", DEMAND_PARAMS["uniform"]).build()
        for name in ("calibrated_sigmoid", "threshold"):
            model = FeedbackSpec(name, FEEDBACK_PARAMS[name]).build(demand=demand)
            assert model is not None
        # Demand-oblivious models silently ignore the injected demand.
        model = FeedbackSpec("sigmoid", {"lam": 1.0}).build(demand=demand)
        assert model.lam == 1.0

    def test_calibrated_sigmoid_requires_demand(self):
        with pytest.raises(ConfigurationError, match="demand"):
            FeedbackSpec("calibrated_sigmoid", {"gamma_star": 0.01}).build()


class TestScenarioSpec:
    def test_dict_components_coerced(self):
        spec = base_spec()
        assert isinstance(spec.algorithm, AlgorithmSpec)
        assert isinstance(spec.engine, EngineSpec)
        assert spec.engine.name == "agent"

    def test_json_round_trip(self):
        spec = base_spec(
            engine={"name": "counting"},
            population={"name": "step", "params": POPULATION_PARAMS["step"]},
            run_params={"burn_in": 50},
            gamma_star=0.01,
            label="full house",
        )
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_round_trip_every_component_combination(self):
        for alg, fb, dem, eng in itertools.product(
            ALGORITHM_PARAMS, FEEDBACK_PARAMS, DEMAND_PARAMS, ENGINE_PARAMS
        ):
            spec = ScenarioSpec(
                algorithm={"name": alg, "params": ALGORITHM_PARAMS[alg]},
                demand={"name": dem, "params": DEMAND_PARAMS[dem]},
                feedback={"name": fb, "params": FEEDBACK_PARAMS[fb]},
                engine={"name": eng, "params": ENGINE_PARAMS[eng]},
            )
            rebuilt = ScenarioSpec.from_json(spec.to_json())
            assert rebuilt == spec, f"round trip failed for {alg}/{fb}/{dem}/{eng}"

    def test_round_trip_every_population(self):
        for name, params in POPULATION_PARAMS.items():
            spec = base_spec(
                engine={"name": "counting"}, population={"name": name, "params": params}
            )
            assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_pickle_round_trip(self):
        spec = base_spec(engine={"name": "counting"})
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_heterogeneous_spec_builds_and_runs(self):
        # Per-task lambda + power-law demands + FFT/cache engine knobs:
        # the whole PR 3 surface, declaratively.
        spec = base_spec(
            demand={"name": "powerlaw", "params": {"n": N, "k": K, "alpha": 1.0}},
            feedback={"name": "sigmoid", "params": {"lam": [0.5, 1.0, 1.5, 2.0]}},
            engine={
                "name": "counting",
                "params": {"join_kernel_method": "fft", "pi_cache": True},
            },
            rounds=20,
        )
        assert ScenarioSpec.from_json(spec.to_json()) == spec
        sim = spec.build()
        assert sim.join_kernel_method == "fft" and sim.pi_cache_enabled
        out = sim.run(spec.rounds)
        assert out.k == K

    def test_per_task_lambda_length_checked_at_build(self):
        spec = base_spec(
            feedback={"name": "sigmoid", "params": {"lam": [0.5, 1.0]}},  # k=4 scenario
        )
        with pytest.raises(ConfigurationError, match="k=4"):
            spec.build()

    def test_engine_rejects_unknown_kernel_method_at_build(self):
        spec = base_spec(
            engine={"name": "counting", "params": {"join_kernel_method": "warp"}}
        )
        with pytest.raises(ConfigurationError, match="join_kernel_method"):
            spec.build()

    def test_population_requires_counting_engine(self):
        with pytest.raises(ConfigurationError, match="population-aware"):
            base_spec(population={"name": "static", "params": {"n": N}})

    def test_population_with_counting_engine_builds(self):
        spec = base_spec(
            engine={"name": "counting"},
            population={"name": "step", "params": POPULATION_PARAMS["step"]},
        )
        assert spec.build() is not None

    def test_invalid_rounds_and_seed(self):
        with pytest.raises(ConfigurationError):
            base_spec(rounds=0)
        with pytest.raises(ConfigurationError, match="seed"):
            base_spec(seed="zero")
        with pytest.raises(ConfigurationError, match="non-negative"):
            base_spec(seed=-1)

    def test_custom_population_aware_engine(self):
        from repro.scenario import register_engine, unregister_engine

        def dummy_engine(algorithm, demand, feedback, *, seed=None, population=None):
            return ("dummy", population)

        register_engine("dummy_pop_engine", dummy_engine, population_aware=True)
        try:
            spec = base_spec(
                engine={"name": "dummy_pop_engine"},
                population={"name": "static", "params": {"n": N}},
            )
            kind, population = spec.build()
            assert kind == "dummy" and population is not None
        finally:
            unregister_engine("dummy_pop_engine")
        # Unregistering also clears the population-aware flag.
        with pytest.raises(ConfigurationError, match="unknown engine"):
            base_spec(engine={"name": "dummy_pop_engine"})

    def test_invalid_gamma_star(self):
        with pytest.raises(ConfigurationError, match="gamma_star"):
            base_spec(gamma_star=1.5)

    def test_burn_in_must_be_below_rounds(self):
        base_spec(rounds=100, run_params={"burn_in": 99})  # valid
        with pytest.raises(ConfigurationError, match="burn_in"):
            base_spec(rounds=100, run_params={"burn_in": 100})
        with pytest.raises(ConfigurationError, match="burn_in"):
            base_spec(rounds=100, run_params={"burn_in": -5})

    def test_many_task_counting_scenario_declarable(self):
        # The O(k^2) join kernel removed the practical k <= 14 ceiling:
        # a counting scenario with hundreds of tasks is declarable,
        # buildable, and runnable.
        spec = ScenarioSpec(
            algorithm={"name": "ant", "params": {"gamma": 0.025}},
            demand={"name": "uniform", "params": {"n": 128000, "k": 128}},
            feedback={"name": "calibrated_sigmoid", "params": {"gamma_star": 0.01}},
            engine={"name": "counting", "params": {"join_strategy": "exact"}},
            rounds=20,
            seed=5,
        )
        assert ScenarioSpec.from_json(spec.to_json()) == spec
        out = spec.build().run(spec.rounds)
        assert out.k == 128

    def test_counting_engine_join_strategy_validated(self):
        spec = base_spec(engine={"name": "counting",
                                 "params": {"join_strategy": "enumerate"}})
        with pytest.raises(ConfigurationError, match="join_strategy"):
            spec.build()

    def test_from_dict_rejects_unknown_keys(self):
        data = base_spec().to_dict()
        data["algorithmn"] = data["algorithm"]
        with pytest.raises(ConfigurationError, match="unknown scenario spec keys"):
            ScenarioSpec.from_dict(data)

    def test_from_dict_requires_core_components(self):
        data = base_spec().to_dict()
        del data["feedback"]
        with pytest.raises(ConfigurationError, match="needs 'feedback'"):
            ScenarioSpec.from_dict(data)

    def test_from_json_bad_text(self):
        with pytest.raises(ConfigurationError, match="invalid scenario JSON"):
            ScenarioSpec.from_json("{not json")

    def test_with_param_component(self):
        spec = base_spec()
        derived = spec.with_param("algorithm.gamma", 0.05)
        assert derived.algorithm.params["gamma"] == 0.05
        assert spec.algorithm.params["gamma"] == 0.02  # original untouched

    def test_with_param_top_level(self):
        assert base_spec().with_param("rounds", 77).rounds == 77

    def test_with_param_errors(self):
        with pytest.raises(ConfigurationError, match="cannot set"):
            base_spec().with_param("bogus", 1)
        with pytest.raises(ConfigurationError, match="unknown component"):
            base_spec().with_param("bogus.x", 1)
        with pytest.raises(ConfigurationError, match="no population"):
            base_spec().with_param("population.n", 1)

    def test_with_param_revalidates_spec_level(self):
        with pytest.raises(ConfigurationError, match="JSON-serializable"):
            base_spec().with_param("algorithm.gamma", object())

    def test_with_param_bad_value_surfaces_at_build(self):
        with pytest.raises(ConfigurationError):
            base_spec().with_param("algorithm.gamma", 5.0).build()

    def test_describe_default_and_label(self):
        assert base_spec().describe() == "ant@agent"
        assert base_spec(label="x").describe() == "x"

    def test_initial_demand(self):
        spec = base_spec(demand={"name": "step", "params": DEMAND_PARAMS["step"]})
        assert spec.initial_demand().as_array().tolist() == [250, 250, 250, 250]
