"""Tests for run_scenario / sweep_scenario / the scenario CLI."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.scenario import ScenarioFactory, ScenarioSpec, run_scenario, sweep_scenario
from repro.sim.counting import CountingSimulator
from repro.sim.engine import SimulationResult, Simulator
from repro.sim.runner import TrialSummary
from repro.sim.sequential import SequentialSimulator


def counting_spec(**overrides) -> ScenarioSpec:
    fields = dict(
        algorithm={"name": "ant", "params": {"gamma": 0.025}},
        demand={"name": "uniform", "params": {"n": 2000, "k": 4}},
        feedback={"name": "calibrated_sigmoid", "params": {"gamma_star": 0.01}},
        engine={"name": "counting"},
        rounds=300,
        seed=11,
        gamma_star=0.01,
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


class TestBuild:
    def test_engine_selection(self):
        assert isinstance(counting_spec().build(), CountingSimulator)
        agent = counting_spec(engine={"name": "agent"}, gamma_star=None)
        assert isinstance(agent.build(), Simulator)
        seq = counting_spec(
            algorithm={"name": "trivial"}, engine={"name": "sequential"}
        )
        assert isinstance(seq.build(), SequentialSimulator)

    def test_engine_algorithm_mismatch_surfaces(self):
        spec = counting_spec(algorithm={"name": "precise_adversarial",
                                        "params": {"gamma": 0.02, "eps": 0.5}})
        with pytest.raises(ConfigurationError, match="CountingSimulator supports"):
            spec.build()

    def test_seed_override(self):
        sim = counting_spec().build(seed=99)
        assert sim is not None


class TestRunScenario:
    def test_single_trial_returns_simulation_result(self):
        result = run_scenario(counting_spec())
        assert isinstance(result, SimulationResult)
        assert result.rounds == 300

    def test_single_trial_deterministic(self):
        a = run_scenario(counting_spec())
        b = run_scenario(counting_spec())
        assert a.metrics.average_regret == b.metrics.average_regret
        assert np.array_equal(a.final_loads, b.final_loads)

    def test_rounds_and_run_overrides(self):
        result = run_scenario(counting_spec(), rounds=50, burn_in=10)
        assert result.rounds == 50

    def test_multi_trial_returns_summary(self):
        summary = run_scenario(counting_spec(), trials=3)
        assert isinstance(summary, TrialSummary)
        assert summary.trials == 3
        assert summary.label == "ant@counting"
        assert summary.closenesses is not None  # spec.gamma_star flows through

    def test_parallel_bit_identical_to_serial(self):
        serial = run_scenario(counting_spec(), trials=4, parallel=0)
        parallel = run_scenario(counting_spec(), trials=4, parallel=2)
        assert np.array_equal(serial.average_regrets, parallel.average_regrets)
        assert np.array_equal(serial.closenesses, parallel.closenesses)
        assert np.array_equal(serial.max_abs_deficits, parallel.max_abs_deficits)
        assert np.array_equal(serial.switches_per_round, parallel.switches_per_round)

    def test_pickled_spec_survives_process_pool(self):
        spec = counting_spec()
        revived = pickle.loads(pickle.dumps(spec))
        assert revived == spec
        # parallel=2 ships the ScenarioFactory through ProcessPoolExecutor.
        summary = run_scenario(revived, trials=2, parallel=2, rounds=100)
        assert summary.trials == 2

    def test_factory_builds_fresh_simulators(self):
        factory = ScenarioFactory(counting_spec())
        a, b = factory(1), factory(1)
        assert a is not b
        assert isinstance(a, CountingSimulator)

    def test_agent_engine_scenario_runs(self):
        result = run_scenario(counting_spec(engine={"name": "agent"}), rounds=50)
        assert isinstance(result, SimulationResult)

    def test_label_override(self):
        summary = run_scenario(counting_spec(), trials=2, label="custom")
        assert summary.label == "custom"

    def test_invalid_trials(self):
        with pytest.raises(ConfigurationError):
            run_scenario(counting_spec(), trials=0)

    def test_parallel_requires_multiple_trials(self):
        with pytest.raises(ConfigurationError, match="trials > 1"):
            run_scenario(counting_spec(), parallel=2)

    def test_negative_seed_override_rejected(self):
        with pytest.raises(ConfigurationError, match="seed"):
            run_scenario(counting_spec(), trials=2, seed=-1)


class TestBatchedEngineThreading:
    """The ``counting_batched`` spec engine and the ``batch=`` override."""

    def _batched_spec(self, **engine_params):
        params = {"batch": 4, **engine_params}
        return counting_spec(engine={"name": "counting_batched", "params": params})

    def test_spec_builds_a_plain_counting_simulator(self):
        # batch/backend are orchestration knobs consumed by the runners;
        # a single build is just the serial engine.
        assert isinstance(self._batched_spec().build(), CountingSimulator)

    def test_registered_and_population_aware(self):
        from repro.scenario.engines import (
            BATCHED_ENGINES,
            POPULATION_AWARE_ENGINES,
            available_engines,
        )

        assert "counting_batched" in available_engines()
        assert "counting_batched" in POPULATION_AWARE_ENGINES
        assert "counting_batched" in BATCHED_ENGINES

    def test_run_scenario_bit_identical_to_serial_engine(self):
        batched = run_scenario(self._batched_spec(), trials=6, rounds=120)
        serial = run_scenario(counting_spec(), trials=6, rounds=120)
        assert np.array_equal(batched.average_regrets, serial.average_regrets)
        assert np.array_equal(batched.closenesses, serial.closenesses)
        assert np.array_equal(batched.max_abs_deficits, serial.max_abs_deficits)

    def test_batch_zero_override_forces_the_serial_path(self):
        a = run_scenario(self._batched_spec(), trials=4, rounds=100, batch=0)
        b = run_scenario(self._batched_spec(), trials=4, rounds=100)
        assert np.array_equal(a.average_regrets, b.average_regrets)

    def test_explicit_batch_on_a_serial_counting_spec(self):
        a = run_scenario(counting_spec(), trials=4, rounds=100, batch=2)
        b = run_scenario(counting_spec(), trials=4, rounds=100)
        assert np.array_equal(a.average_regrets, b.average_regrets)

    def test_parallel_suppresses_the_spec_default_batch(self):
        # parallel workers and batched lanes are mutually exclusive; the
        # spec's default batch must yield rather than raise.
        summary = run_scenario(self._batched_spec(), trials=2, rounds=60, parallel=2)
        assert summary.trials == 2

    def test_single_trial_returns_simulation_result(self):
        result = run_scenario(self._batched_spec(), rounds=80)
        assert isinstance(result, SimulationResult)

    def test_engine_param_validation(self):
        with pytest.raises(ConfigurationError, match="batch"):
            self._batched_spec(batch=0).build()
        with pytest.raises(ConfigurationError, match="unknown array backend"):
            self._batched_spec(backend="jax").build()

    def test_sweep_scenario_batched_matches_forced_serial(self):
        spec = self._batched_spec()
        kwargs = dict(trials=2, rounds=80)
        a = sweep_scenario(spec, "algorithm.gamma", [0.02, 0.04], **kwargs)
        b = sweep_scenario(spec, "algorithm.gamma", [0.02, 0.04], batch=0, **kwargs)
        np.testing.assert_array_equal(a.series(), b.series())


class TestSweepScenario:
    def test_sweep_component_param(self):
        result = sweep_scenario(
            counting_spec(), "algorithm.gamma", [0.02, 0.04], trials=2, rounds=100
        )
        assert result.parameter == "algorithm.gamma"
        assert [s.params["algorithm.gamma"] for s in result.summaries] == [0.02, 0.04]
        assert all(s.trials == 2 for s in result.summaries)
        assert all(s.closenesses is not None for s in result.summaries)

    def test_sweep_invalid_value_surfaces(self):
        with pytest.raises(ConfigurationError):
            sweep_scenario(counting_spec(), "algorithm.gamma", [5.0], trials=1, rounds=10)

    def test_sweep_rejects_top_level_fields(self):
        # The trial runner owns rounds and seed derivation; sweeping them
        # would silently run every point identically.
        for parameter in ("rounds", "seed"):
            with pytest.raises(ConfigurationError, match="component params"):
                sweep_scenario(counting_spec(), parameter, [1, 2], trials=1, rounds=10)


class TestScenarioCli:
    @pytest.fixture
    def spec_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(counting_spec().to_json(), encoding="utf-8")
        return str(path)

    def test_run_single(self, spec_file, capsys):
        from repro.experiments.cli import main

        assert main(["scenario", "run", spec_file, "--rounds", "50"]) == 0
        out = capsys.readouterr().out
        assert "ant@counting" in out and "R(t)/t" in out

    def test_run_trials(self, spec_file, capsys):
        from repro.experiments.cli import main

        assert main(["scenario", "run", spec_file, "--rounds", "50", "--trials", "2"]) == 0
        assert "+/-" in capsys.readouterr().out

    def test_run_with_batch_flag(self, spec_file, capsys):
        from repro.experiments.cli import main

        args = ["scenario", "run", spec_file, "--rounds", "50", "--trials", "4"]
        assert main([*args, "--batch", "2"]) == 0
        batched = capsys.readouterr().out
        assert main(args) == 0
        assert batched == capsys.readouterr().out  # same numbers either way

    def test_show_round_trips(self, spec_file, capsys):
        from repro.experiments.cli import main

        assert main(["scenario", "show", spec_file]) == 0
        shown = capsys.readouterr().out
        assert ScenarioSpec.from_json(shown) == counting_spec()

    def test_components_lists_registries(self, capsys):
        from repro.experiments.cli import main

        assert main(["scenario", "components"]) == 0
        out = capsys.readouterr().out
        for name in ("ant", "sigmoid", "uniform", "static", "counting"):
            assert name in out

    def test_bad_spec_file_raises(self, tmp_path):
        from repro.experiments.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text('{"algorithm": {"name": "nope"}}', encoding="utf-8")
        with pytest.raises(ConfigurationError):
            main(["scenario", "run", str(bad)])


class TestSweepCli:
    @pytest.fixture
    def spec_file(self, tmp_path):
        spec = counting_spec(
            feedback={"name": "exact"}, gamma_star=None, rounds=100
        )
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json(), encoding="utf-8")
        return str(path)

    def _sweep(self, spec_file, tmp_path, *extra):
        from repro.experiments.cli import main

        return main(
            [
                "scenario",
                "sweep",
                spec_file,
                "--param",
                "algorithm.gamma",
                "--values",
                "0.02,0.04",
                "--trials",
                "2",
                "--store",
                str(tmp_path / "store"),
                *extra,
            ]
        )

    def test_sweep_runs_and_prints_table(self, spec_file, tmp_path, capsys):
        assert self._sweep(spec_file, tmp_path) == 0
        out = capsys.readouterr().out
        assert "algorithm.gamma" in out and "R(t)/t" in out
        assert "[ran]" in out

    def test_interrupt_resume_out_files_are_byte_identical(self, spec_file, tmp_path, capsys):
        from repro.experiments.cli import SWEEP_INTERRUPTED_EXIT

        code = self._sweep(spec_file, tmp_path, "--max-points", "1")
        assert code == SWEEP_INTERRUPTED_EXIT
        assert "interrupted" in capsys.readouterr().out
        out_a = tmp_path / "a.json"
        assert self._sweep(spec_file, tmp_path, "--resume", "--out", str(out_a)) == 0
        assert "[cached]" in capsys.readouterr().out
        # An uninterrupted sweep into a different store: same bytes out.
        from repro.experiments.cli import main

        out_b = tmp_path / "b.json"
        assert (
            main(
                [
                    "scenario",
                    "sweep",
                    spec_file,
                    "--param",
                    "algorithm.gamma",
                    "--values",
                    "0.02,0.04",
                    "--trials",
                    "2",
                    "--store",
                    str(tmp_path / "store2"),
                    "--out",
                    str(out_b),
                ]
            )
            == 0
        )
        assert out_a.read_bytes() == out_b.read_bytes()

    def test_values_parse_json_per_item(self):
        from repro.experiments.cli import _parse_values

        assert _parse_values("0.02, 3,true") == [0.02, 3, True]
        assert _parse_values("powerlaw,lognormal") == ["powerlaw", "lognormal"]
        # A whole-string JSON array is taken verbatim (list-valued params).
        assert _parse_values("[[1,2],[3,4]]") == [[1, 2], [3, 4]]
        assert _parse_values("[0.02, 0.04]") == [0.02, 0.04]


class TestStoreCli:
    def test_ls_info_gc(self, tmp_path, capsys):
        from repro.experiments.cli import main
        from repro.store import ResultStore

        root = tmp_path / "store"
        store = ResultStore(root)
        store.write_record(
            "ab" * 32,
            {"average_regrets": np.array([1.0])},
            {"kind": "sweep_point", "label": "x", "parameter": "p", "value": 1,
             "trials": 2, "rounds": 10},
        )
        assert main(["store", "ls", str(root)]) == 0
        out = capsys.readouterr().out
        assert "1 record(s)" in out and "p=1" in out
        assert main(["store", "info", str(root)]) == 0
        assert '"records": 1' in capsys.readouterr().out
        assert main(["store", "gc", str(root)]) == 0
        assert "gc removed 0" in capsys.readouterr().out


class TestSharedPiCacheThreading:
    """run_scenario / sweep_scenario threading one cross-trial cache
    through every counting-engine trial."""

    def _binary_spec(self, **overrides) -> ScenarioSpec:
        return counting_spec(
            feedback={"name": "exact"}, gamma_star=None, **overrides
        )

    def test_run_scenario_trials_share_the_cache(self):
        from repro.sim.pi_cache import SharedPiCache

        cache = SharedPiCache()
        summary = run_scenario(self._binary_spec(), trials=3, shared_pi_cache=cache)
        assert summary.trials == 3
        assert len(cache) > 0
        assert cache.hits > 0  # later trials reused earlier trials' work

    def test_run_scenario_bit_identical_with_and_without_cache(self):
        from repro.sim.pi_cache import SharedPiCache

        spec = self._binary_spec()
        plain = run_scenario(spec, trials=3)
        shared = run_scenario(spec, trials=3, shared_pi_cache=SharedPiCache())
        assert np.array_equal(plain.average_regrets, shared.average_regrets)
        assert np.array_equal(plain.max_abs_deficits, shared.max_abs_deficits)
        assert np.array_equal(plain.switches_per_round, shared.switches_per_round)

    def test_parallel_trials_bit_identical_with_cache(self):
        from repro.sim.pi_cache import SharedPiCache

        spec = self._binary_spec()
        serial = run_scenario(spec, trials=4)
        # The cache ships to workers as a token; each worker amortizes
        # its own trials, and the statistics stay bit-identical.
        parallel = run_scenario(
            spec, trials=4, parallel=2, shared_pi_cache=SharedPiCache()
        )
        assert np.array_equal(serial.average_regrets, parallel.average_regrets)

    def test_single_trial_accepts_cache(self):
        from repro.sim.pi_cache import SharedPiCache

        cache = SharedPiCache()
        result = run_scenario(self._binary_spec(), shared_pi_cache=cache)
        assert isinstance(result, SimulationResult)
        assert len(cache) > 0

    def test_sweep_scenario_true_builds_and_threads_a_cache(self):
        spec = self._binary_spec()
        plain = sweep_scenario(
            spec, "algorithm.gamma", [0.02, 0.025], trials=2, rounds=150
        )
        shared = sweep_scenario(
            spec,
            "algorithm.gamma",
            [0.02, 0.025],
            trials=2,
            rounds=150,
            shared_pi_cache=True,
        )
        for a, b in zip(plain.summaries, shared.summaries):
            assert np.array_equal(a.average_regrets, b.average_regrets)

    def test_sweep_scenario_exposes_callers_cache_stats(self):
        from repro.sim.pi_cache import SharedPiCache

        cache = SharedPiCache()
        sweep_scenario(
            self._binary_spec(),
            "algorithm.gamma",
            [0.02, 0.025],
            trials=2,
            rounds=150,
            shared_pi_cache=cache,
        )
        assert cache.hits + cache.misses > 0
        assert cache.hits > 0  # signatures repeat across points/trials

    def test_factory_carries_the_cache_through_pickle(self):
        from repro.sim.pi_cache import SharedPiCache

        cache = SharedPiCache()
        factory = ScenarioFactory(self._binary_spec(), cache)
        revived = pickle.loads(pickle.dumps(factory))
        assert revived.shared_pi_cache is cache  # same process: same object
        sim = revived(7)
        assert sim.shared_pi_cache is cache

    def test_non_counting_engine_rejects_cache(self):
        from repro.sim.pi_cache import SharedPiCache

        spec = counting_spec(engine={"name": "agent"}, gamma_star=None)
        with pytest.raises(ConfigurationError, match="shared_pi_cache"):
            run_scenario(spec, shared_pi_cache=SharedPiCache())
