"""Store-backed sweeps: resume bit-identity, seeding, interruption.

The acceptance contract: a sweep interrupted after >= 1 completed point
and re-run with resume produces byte-identical aggregates to an
uninterrupted run while re-executing only the missing points.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.sim.runner as sim_runner_mod
import repro.scenario.runner as scenario_runner_mod
from repro.exceptions import ConfigurationError, SweepInterrupted
from repro.scenario import ScenarioSpec, sweep_scenario
from repro.sim.pi_cache import SharedPiCache
from repro.sim.runner import sweep
from repro.store import ResultStore


def binary_spec(**overrides) -> ScenarioSpec:
    fields = dict(
        algorithm={"name": "ant", "params": {"gamma": 0.025}},
        demand={"name": "uniform", "params": {"n": 2000, "k": 4}},
        feedback={"name": "exact"},
        engine={"name": "counting"},
        rounds=120,
        seed=11,
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


def series_stack(result) -> np.ndarray:
    return np.stack(
        [
            result.series("mean_average_regret"),
            result.series("mean_max_abs_deficit"),
            result.series("mean_switches_per_round"),
        ]
    )


class RunTrialsCounter:
    """Counts how many sweep points actually execute."""

    def __init__(self, monkeypatch):
        self.calls = 0
        real = scenario_runner_mod.run_trials

        def counted(*args, **kwargs):
            self.calls += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(scenario_runner_mod, "run_trials", counted)


VALUES = [0.02, 0.03, 0.04]


class TestResumeBitIdentity:
    def test_fresh_equals_unstored(self, tmp_path):
        stored = sweep_scenario(
            binary_spec(), "algorithm.gamma", VALUES, trials=3, store=tmp_path
        )
        plain = sweep_scenario(binary_spec(), "algorithm.gamma", VALUES, trials=3)
        assert np.array_equal(series_stack(stored), series_stack(plain))
        assert stored.resumed == [False, False, False]
        assert plain.resumed is None

    def test_resumed_serial_bit_identical(self, tmp_path, monkeypatch):
        first = sweep_scenario(
            binary_spec(), "algorithm.gamma", VALUES, trials=3, store=tmp_path
        )
        counter = RunTrialsCounter(monkeypatch)
        second = sweep_scenario(
            binary_spec(), "algorithm.gamma", VALUES, trials=3, store=tmp_path
        )
        assert counter.calls == 0  # nothing re-executed
        assert second.resumed == [True, True, True]
        assert np.array_equal(series_stack(first), series_stack(second))
        for a, b in zip(first.summaries, second.summaries):
            assert np.array_equal(a.average_regrets, b.average_regrets)
            assert np.array_equal(a.max_abs_deficits, b.max_abs_deficits)
            assert np.array_equal(a.switches_per_round, b.switches_per_round)
            assert a.label == b.label and a.params == b.params
            assert a.trials == b.trials and a.rounds == b.rounds

    def test_interrupted_then_resumed_equals_uninterrupted(self, tmp_path, monkeypatch):
        # The acceptance-criterion scenario: interrupt after 1 completed
        # point, resume, compare byte-for-byte with a never-interrupted
        # sweep in a different store.
        with pytest.raises(SweepInterrupted, match="1 new point"):
            sweep_scenario(
                binary_spec(),
                "algorithm.gamma",
                VALUES,
                trials=3,
                store=tmp_path / "a",
                max_new_points=1,
            )
        counter = RunTrialsCounter(monkeypatch)
        resumed = sweep_scenario(
            binary_spec(), "algorithm.gamma", VALUES, trials=3, store=tmp_path / "a"
        )
        assert counter.calls == 2  # only the missing points re-executed
        assert resumed.resumed == [True, False, False]
        fresh = sweep_scenario(
            binary_spec(), "algorithm.gamma", VALUES, trials=3, store=tmp_path / "b"
        )
        assert np.array_equal(series_stack(resumed), series_stack(fresh))

    def test_resumed_parallel_bit_identical(self, tmp_path):
        serial = sweep_scenario(
            binary_spec(), "algorithm.gamma", VALUES[:2], trials=4, store=tmp_path / "a"
        )
        with pytest.raises(SweepInterrupted):
            sweep_scenario(
                binary_spec(),
                "algorithm.gamma",
                VALUES[:2],
                trials=4,
                parallel=2,
                store=tmp_path / "b",
                max_new_points=1,
            )
        resumed = sweep_scenario(
            binary_spec(),
            "algorithm.gamma",
            VALUES[:2],
            trials=4,
            parallel=2,
            store=tmp_path / "b",
        )
        assert resumed.resumed == [True, False]
        assert np.array_equal(series_stack(serial), series_stack(resumed))

    def test_closenesses_survive_the_record_roundtrip(self, tmp_path):
        spec = binary_spec(
            feedback={"name": "calibrated_sigmoid", "params": {"gamma_star": 0.01}},
            gamma_star=0.01,
        )
        first = sweep_scenario(spec, "algorithm.gamma", VALUES[:2], trials=2, store=tmp_path)
        second = sweep_scenario(spec, "algorithm.gamma", VALUES[:2], trials=2, store=tmp_path)
        assert second.resumed == [True, True]
        for a, b in zip(first.summaries, second.summaries):
            assert a.closenesses is not None
            assert np.array_equal(a.closenesses, b.closenesses)

    def test_resume_false_recomputes_and_overwrites(self, tmp_path, monkeypatch):
        sweep_scenario(binary_spec(), "algorithm.gamma", VALUES[:2], trials=2, store=tmp_path)
        counter = RunTrialsCounter(monkeypatch)
        out = sweep_scenario(
            binary_spec(),
            "algorithm.gamma",
            VALUES[:2],
            trials=2,
            store=tmp_path,
            resume=False,
        )
        assert counter.calls == 2
        assert out.resumed == [False, False]


class TestDigestKeying:
    def test_inserting_a_value_reuses_existing_points(self, tmp_path, monkeypatch):
        # The satellite fix in action: [a, c] then [a, b, c] — a and c
        # keep their seeds and records; only b executes.
        outer = sweep_scenario(
            binary_spec(), "algorithm.gamma", [0.02, 0.04], trials=3, store=tmp_path
        )
        counter = RunTrialsCounter(monkeypatch)
        full = sweep_scenario(
            binary_spec(), "algorithm.gamma", [0.02, 0.03, 0.04], trials=3, store=tmp_path
        )
        assert counter.calls == 1
        assert full.resumed == [True, False, True]
        assert full.series()[0] == outer.series()[0]
        assert full.series()[2] == outer.series()[1]

    def test_value_reorder_is_digest_stable(self, tmp_path):
        a = sweep_scenario(
            binary_spec(), "algorithm.gamma", [0.02, 0.04], trials=2, store=tmp_path
        )
        b = sweep_scenario(
            binary_spec(), "algorithm.gamma", [0.04, 0.02], trials=2, store=tmp_path
        )
        assert b.resumed == [True, True]
        assert a.series()[0] == b.series()[1] and a.series()[1] == b.series()[0]

    def test_changed_config_changes_digests(self, tmp_path):
        sweep_scenario(binary_spec(), "algorithm.gamma", [0.02], trials=2, store=tmp_path)
        for change in (
            dict(trials=3),
            dict(rounds=100),
            dict(burn_in=10),
        ):
            out = sweep_scenario(
                binary_spec(),
                "algorithm.gamma",
                [0.02],
                trials=change.get("trials", 2),
                rounds=change.get("rounds"),
                store=tmp_path,
                **({"burn_in": change["burn_in"]} if "burn_in" in change else {}),
            )
            assert out.resumed == [False], f"stale reuse under {change}"
        # A different base seed must also miss.
        out = sweep_scenario(
            binary_spec(seed=12), "algorithm.gamma", [0.02], trials=2, store=tmp_path
        )
        assert out.resumed == [False]

    def test_corrupt_record_recomputed_not_crashed(self, tmp_path):
        from repro.store.records import PAYLOAD_SUFFIX

        sweep_scenario(binary_spec(), "algorithm.gamma", [0.02], trials=2, store=tmp_path)
        store = ResultStore(tmp_path)
        [(digest, _)] = list(store.iter_records())
        payload = store.record_dir(digest) / f"{digest}{PAYLOAD_SUFFIX}"
        payload.write_bytes(b"garbage")
        out = sweep_scenario(
            binary_spec(), "algorithm.gamma", [0.02], trials=2, store=tmp_path
        )
        assert out.resumed == [False]  # recovered by recomputation
        again = sweep_scenario(
            binary_spec(), "algorithm.gamma", [0.02], trials=2, store=tmp_path
        )
        assert again.resumed == [True]  # and the rewrite is healthy


class TestSeedModes:
    def test_index_mode_reproduces_legacy_sweep(self):
        # The compat flag: seed_mode="index" must reproduce the exact
        # pre-store derivation (SeedSequence(seed).spawn(len(values))),
        # i.e. the generic sim.runner.sweep path.
        spec = binary_spec()
        legacy = sweep(
            "algorithm.gamma",
            VALUES,
            lambda v: scenario_runner_mod.ScenarioFactory(
                spec.with_param("algorithm.gamma", v), None
            ),
            spec.rounds,
            3,
            seed=spec.seed,
            keep_results=False,
        )
        new = sweep_scenario(spec, "algorithm.gamma", VALUES, trials=3, seed_mode="index")
        for a, b in zip(legacy.summaries, new.summaries):
            assert np.array_equal(a.average_regrets, b.average_regrets)

    def test_index_mode_reshuffles_on_insertion_digest_mode_does_not(self):
        # The bug the satellite fixes, demonstrated: under index mode the
        # shared values' results change when a value is inserted; under
        # digest mode they cannot.
        spec = binary_spec()

        def regrets(values, mode):
            out = sweep_scenario(spec, "algorithm.gamma", values, trials=2, seed_mode=mode)
            return {v: s.average_regrets.copy() for v, s in zip(values, out.summaries)}

        idx_outer = regrets([0.02, 0.04], "index")
        idx_full = regrets([0.02, 0.03, 0.04], "index")
        assert not np.array_equal(idx_outer[0.04], idx_full[0.04])  # reshuffled!

        dig_outer = regrets([0.02, 0.04], "digest")
        dig_full = regrets([0.02, 0.03, 0.04], "digest")
        assert np.array_equal(dig_outer[0.02], dig_full[0.02])
        assert np.array_equal(dig_outer[0.04], dig_full[0.04])

    def test_store_refuses_index_mode(self, tmp_path):
        with pytest.raises(ConfigurationError, match="seed_mode='digest'"):
            sweep_scenario(
                binary_spec(),
                "algorithm.gamma",
                [0.02],
                trials=2,
                store=tmp_path,
                seed_mode="index",
            )

    def test_unknown_seed_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="seed_mode"):
            sweep_scenario(binary_spec(), "algorithm.gamma", [0.02], seed_mode="nope")


class TestGuards:
    def test_store_rejects_keep_results(self, tmp_path):
        with pytest.raises(ConfigurationError, match="keep_results"):
            sweep_scenario(
                binary_spec(),
                "algorithm.gamma",
                [0.02],
                trials=2,
                store=tmp_path,
                keep_results=True,
            )

    def test_empty_values_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one value"):
            sweep_scenario(binary_spec(), "algorithm.gamma", [])

    def test_max_new_points_without_store(self):
        # The budget also applies storeless (useful for dry runs): the
        # first point computes, then the interrupt fires.
        with pytest.raises(SweepInterrupted):
            sweep_scenario(
                binary_spec(), "algorithm.gamma", VALUES, trials=2, max_new_points=1
            )


class TestSharedPiCachePersistence:
    def test_store_roots_the_disk_tier(self, tmp_path):
        cache_runs = []
        for _ in range(2):
            cache = SharedPiCache(disk=ResultStore(tmp_path).pi_cache())
            sweep_scenario(
                binary_spec(),
                "algorithm.gamma",
                [0.02, 0.04],
                trials=2,
                store=tmp_path,
                resume=False,
                shared_pi_cache=cache,
            )
            cache_runs.append(cache)
        first, second = cache_runs
        assert first.disk.writes > 0
        assert second.disk_hits > 0  # second "session" served from disk

    def test_shared_pi_cache_true_uses_store_pi_dir(self, tmp_path):
        sweep_scenario(
            binary_spec(),
            "algorithm.gamma",
            [0.02],
            trials=2,
            store=tmp_path,
            shared_pi_cache=True,
        )
        assert len(ResultStore(tmp_path).pi_cache()) > 0

    def test_sweep_runner_import_sanity(self):
        # Guard against accidental re-export drift (sim_runner_mod is
        # imported above to keep the legacy sweep() reachable).
        assert sim_runner_mod.sweep is sweep
