"""HTTP layer: routes, status codes, and the concurrent-duplicate proof.

The end-to-end acceptance test lives here: two clients POSTing the same
spec while it is in flight must coalesce onto ONE computation (kernel
spy) and both must receive byte-identical record bodies.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import pytest

import repro.serve.service as serve_service_mod
from repro.serve import BackgroundServer, ScenarioService, record_body
from repro.store import ResultStore

from tests.serve.test_request import tiny_spec
from tests.serve.test_service import RunTrialsSpy, request_for

POLL = 0.01


def body_for(gamma: float, trials: int = 2) -> bytes:
    payload = {
        "spec": tiny_spec().to_dict(),
        "params": {"algorithm.gamma": gamma},
        "trials": trials,
    }
    return json.dumps(payload).encode("utf-8")


def call(port: int, method: str, path: str, body: bytes | None = None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request(method, path, body=body)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def poll_result(port: int, digest: str, deadline: float = 30.0):
    t0 = time.perf_counter()
    while True:
        status, raw = call(port, "GET", f"/results/{digest}")
        if status != 202:
            return status, raw
        if time.perf_counter() - t0 > deadline:
            raise AssertionError(f"result {digest[:12]} still pending after {deadline}s")
        time.sleep(POLL)


@pytest.fixture
def server(tmp_path):
    service = ScenarioService(ResultStore(tmp_path), workers=2)
    with BackgroundServer(service) as running:
        yield running


class TestRoutes:
    def test_cold_post_then_poll_then_cached_post_byte_identical(self, server):
        status, raw = call(server.port, "POST", "/scenarios", body_for(0.03))
        assert status == 202
        digest = json.loads(raw)["digest"]

        status, first = poll_result(server.port, digest)
        assert status == 200

        status, second = call(server.port, "POST", "/scenarios", body_for(0.03))
        assert status == 200
        assert second == first  # the smoke's byte-diff, in-process

        record = server.service.store.read_record(digest)
        assert first == record_body(record)
        payload = json.loads(first)
        assert payload["digest"] == digest
        assert payload["meta"]["kind"] == "sweep_point"
        assert set(payload["arrays"]) >= {"average_regrets", "max_abs_deficits"}

    def test_status_endpoint_counts(self, server):
        status, raw = call(server.port, "GET", "/status")
        assert status == 200
        counters = json.loads(raw)
        assert counters["workers"] == 2 and counters["workers_alive"] == 2
        assert counters["queue_depth"] == 0

    @pytest.mark.parametrize(
        ("method", "path", "body", "expected"),
        [
            ("POST", "/scenarios", b"{not json", 400),
            ("POST", "/scenarios", b'{"spec": null}', 400),
            ("POST", "/scenarios", b'{"spec": {}, "nope": 1}', 400),
            ("GET", "/scenarios", None, 405),
            ("POST", "/status", b"", 405),
            ("GET", "/results/NOT-HEX", None, 400),
            ("GET", "/results/" + "ab" * 32, None, 404),
            ("GET", "/nowhere", None, 404),
        ],
    )
    def test_error_statuses(self, server, method, path, body, expected):
        status, raw = call(server.port, method, path, body)
        assert status == expected
        assert "error" in json.loads(raw) or json.loads(raw).get("status") == "unknown"

    def test_back_pressure_answers_503(self, tmp_path):
        service = ScenarioService(ResultStore(tmp_path), workers=0, max_pending=1)
        with BackgroundServer(service) as server:
            status, _ = call(server.port, "POST", "/scenarios", body_for(0.02))
            assert status == 202
            status, raw = call(server.port, "POST", "/scenarios", body_for(0.03))
            assert status == 503
            assert "retry later" in json.loads(raw)["error"]

    def test_failed_computation_answers_500(self, tmp_path, monkeypatch):
        def explode(*args, **kwargs):
            raise RuntimeError("injected kernel failure")

        monkeypatch.setattr(serve_service_mod, "run_trials", explode)
        service = ScenarioService(ResultStore(tmp_path), workers=1)
        with BackgroundServer(service) as server:
            status, raw = call(server.port, "POST", "/scenarios", body_for(0.03))
            assert status == 202
            digest = json.loads(raw)["digest"]
            status, raw = poll_result(server.port, digest)
            assert status == 500
            assert "injected kernel failure" in json.loads(raw)["error"]


class TestMetricsEndpoint:
    def call_with_type(self, port: int, method: str, path: str):
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        try:
            conn.request(method, path)
            response = conn.getresponse()
            return response.status, response.read(), response.getheader("Content-Type")
        finally:
            conn.close()

    def test_metrics_renders_prometheus_text(self, server):
        call(server.port, "GET", "/status")  # guarantee at least one observed request
        status, raw, content_type = self.call_with_type(server.port, "GET", "/metrics")
        assert status == 200
        assert content_type.startswith("text/plain")
        text = raw.decode("utf-8")
        assert "# TYPE repro_http_requests_total counter" in text
        assert 'repro_http_requests_total{route="/status",status="200"}' in text
        assert "# TYPE repro_http_request_seconds histogram" in text

    def test_metrics_reports_request_dispositions(self, server):
        status, raw = call(server.port, "POST", "/scenarios", body_for(0.07, trials=1))
        assert status == 202
        digest = json.loads(raw)["digest"]
        poll_result(server.port, digest)
        _, raw, _ = self.call_with_type(server.port, "GET", "/metrics")
        text = raw.decode("utf-8")
        assert 'repro_serve_requests_total{disposition="queued"}' in text
        assert "# TYPE repro_serve_compute_seconds histogram" in text

    def test_metrics_is_get_only(self, server):
        status, raw, content_type = self.call_with_type(server.port, "POST", "/metrics")
        assert status == 405
        assert content_type == "application/json"
        assert "error" in json.loads(raw)

    def test_status_carries_per_route_request_counts(self, server):
        call(server.port, "GET", "/status")
        _, raw = call(server.port, "GET", "/status")
        counts = json.loads(raw)["requests"]
        assert isinstance(counts, dict)
        assert counts.get("/status:200", 0) >= 1


class TestConcurrentDuplicates:
    def test_concurrent_duplicate_posts_coalesce_to_one_computation(
        self, tmp_path, monkeypatch
    ):
        """The PR's acceptance proof: N clients racing the same spec pay
        for ONE simulation and all read byte-identical records."""
        spy = RunTrialsSpy(monkeypatch, delay=0.5)  # hold the point in flight
        service = ScenarioService(ResultStore(tmp_path), workers=2)
        n_clients = 4
        results: list[tuple[int, bytes] | None] = [None] * n_clients
        barrier = threading.Barrier(n_clients)

        with BackgroundServer(service) as server:

            def client(index: int) -> None:
                barrier.wait()
                status, raw = call(server.port, "POST", "/scenarios", body_for(0.03))
                if status == 202:
                    digest = json.loads(raw)["digest"]
                    status, raw = poll_result(server.port, digest)
                results[index] = (status, raw)

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(n_clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        assert spy.calls == 1  # one simulation, ever
        assert all(result is not None and result[0] == 200 for result in results)
        bodies = {result[1] for result in results}
        assert len(bodies) == 1  # byte-identical for every client
        status = service.status()
        assert status.computed == 1
        assert status.misses == 1
        # every other racing POST either coalesced in flight or hit the
        # committed record, depending on arrival time — never recomputed
        assert status.coalesced + status.hits == n_clients - 1

    def test_duplicate_posts_while_queued_return_the_same_digest(
        self, tmp_path, monkeypatch
    ):
        spy = RunTrialsSpy(monkeypatch, delay=0.3)
        service = ScenarioService(ResultStore(tmp_path), workers=1)
        with BackgroundServer(service) as server:
            status1, raw1 = call(server.port, "POST", "/scenarios", body_for(0.03))
            status2, raw2 = call(server.port, "POST", "/scenarios", body_for(0.03))
            assert status1 == status2 == 202
            assert json.loads(raw1)["digest"] == json.loads(raw2)["digest"]
            digest = json.loads(raw1)["digest"]
            status, _ = poll_result(server.port, digest)
            assert status == 200
        assert spy.calls == 1
