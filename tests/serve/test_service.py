"""Service core: dedup, coalescing, back pressure, leases, byte-identity.

The acceptance contract mirrors the scheduler's: no matter which path
computes a point — a store-backed sweep, a grid worker, or the service —
the committed record files are byte-identical, and duplicate work is
structurally impossible to observe (only counters tell you it happened).
"""

from __future__ import annotations

import os
import time

import pytest

import repro.serve.service as serve_service_mod
from repro.exceptions import ServiceBusy
from repro.scenario import ScenarioSpec, sweep_scenario
from repro.sched.leases import LeaseManager
from repro.serve import ScenarioRequest, ScenarioService
from repro.serve.service import SERVE_LEASE_DIR
from repro.store import ResultStore

from tests.serve.test_request import tiny_spec

POLL = 0.01
DEADLINE = 30.0


def wait_for(predicate, deadline: float = DEADLINE):
    t0 = time.perf_counter()
    while not predicate():
        if time.perf_counter() - t0 > deadline:
            raise AssertionError("condition not reached in time")
        time.sleep(POLL)


def request_for(gamma: float, trials: int = 2) -> ScenarioRequest:
    return ScenarioRequest(
        spec=tiny_spec(), params={"algorithm.gamma": gamma}, trials=trials
    )


class RunTrialsSpy:
    """Counts (and optionally slows) the service's kernel executions."""

    def __init__(self, monkeypatch, delay: float = 0.0):
        self.calls = 0
        self.delay = delay
        real = serve_service_mod.run_trials

        def counted(*args, **kwargs):
            self.calls += 1
            if self.delay:
                time.sleep(self.delay)
            return real(*args, **kwargs)

        monkeypatch.setattr(serve_service_mod, "run_trials", counted)


class TestComputeAndDedup:
    def test_cold_submit_computes_and_commits(self, tmp_path):
        service = ScenarioService(ResultStore(tmp_path), workers=1)
        request = request_for(0.03)
        with service:
            digest, disposition = service.submit(request)
            assert disposition == "queued"
            wait_for(lambda: service.state_of(digest) == "committed")
        status = service.status()
        assert status.computed == 1 and status.misses == 1

    def test_second_submit_is_a_hit_with_no_recompute(self, tmp_path, monkeypatch):
        service = ScenarioService(ResultStore(tmp_path), workers=1)
        request = request_for(0.03)
        with service:
            digest, _ = service.submit(request)
            wait_for(lambda: service.state_of(digest) == "committed")
            spy = RunTrialsSpy(monkeypatch)
            digest2, disposition = service.submit(request_for(0.03))
            assert (digest2, disposition) == (digest, "hit")
        assert spy.calls == 0
        assert service.status().hits == 1

    def test_service_record_is_byte_identical_to_sweep_record(self, tmp_path):
        sweep_store = ResultStore(tmp_path / "sweep")
        sweep_scenario(tiny_spec(), "algorithm.gamma", [0.03], trials=2, store=sweep_store)

        serve_store = ResultStore(tmp_path / "serve")
        service = ScenarioService(serve_store, workers=1)
        with service:
            digest, _ = service.submit(request_for(0.03))
            wait_for(lambda: service.state_of(digest) == "committed")

        sweep_dir = sweep_store.record_dir(digest)
        serve_dir = serve_store.record_dir(digest)
        names = sorted(p.name for p in sweep_dir.iterdir())
        assert names == sorted(p.name for p in serve_dir.iterdir())
        for name in names:
            assert (sweep_dir / name).read_bytes() == (serve_dir / name).read_bytes()

    def test_duplicate_in_flight_submissions_coalesce(self, tmp_path, monkeypatch):
        spy = RunTrialsSpy(monkeypatch, delay=0.3)
        service = ScenarioService(ResultStore(tmp_path), workers=2)
        with service:
            digest, first = service.submit(request_for(0.03))
            assert first == "queued"
            # While the computation is in flight, identical submissions
            # coalesce instead of enqueueing a second execution.
            wait_for(lambda: spy.calls == 1)
            digest2, second = service.submit(request_for(0.03))
            assert (digest2, second) == (digest, "pending")
            wait_for(lambda: service.state_of(digest) == "committed")
        assert spy.calls == 1
        status = service.status()
        assert status.coalesced == 1 and status.computed == 1


class TestBackPressureAndFailures:
    def test_queue_overflow_raises_service_busy(self, tmp_path):
        service = ScenarioService(ResultStore(tmp_path), workers=0, max_pending=2)
        service.submit(request_for(0.02))
        service.submit(request_for(0.03))
        with pytest.raises(ServiceBusy, match="2 requests pending"):
            service.submit(request_for(0.04))

    def test_committed_digests_are_never_refused(self, tmp_path):
        store = ResultStore(tmp_path)
        sweep_scenario(tiny_spec(), "algorithm.gamma", [0.05], trials=2, store=store)
        service = ScenarioService(store, workers=0, max_pending=1)
        service.submit(request_for(0.02))  # fills the queue
        digest, disposition = service.submit(request_for(0.05))
        assert disposition == "hit"
        assert service.state_of(digest) == "committed"

    def test_failed_computation_is_reported_and_retryable(self, tmp_path, monkeypatch):
        def explode(*args, **kwargs):
            raise RuntimeError("injected kernel failure")

        monkeypatch.setattr(serve_service_mod, "run_trials", explode)
        service = ScenarioService(ResultStore(tmp_path), workers=1)
        with service:
            digest, _ = service.submit(request_for(0.03))
            wait_for(lambda: service.state_of(digest) == "failed")
            assert "injected kernel failure" in service.failure_of(digest)

            # Resubmission clears the failure and retries — this time
            # with the real kernel restored.
            from repro.sim.runner import run_trials as real_run_trials

            monkeypatch.setattr(serve_service_mod, "run_trials", real_run_trials)
            digest2, disposition = service.submit(request_for(0.03))
            assert digest2 == digest and disposition == "queued"
            wait_for(lambda: service.state_of(digest) == "committed")
        assert service.status().failed == 1


class TestLeases:
    def test_stale_lease_from_crashed_process_is_reclaimed(self, tmp_path):
        """A dead process's lease must not block the request forever."""
        store = ResultStore(tmp_path)
        request = request_for(0.03)
        digest = request.digest()
        # Simulate a crashed service process: a lease exists but its
        # heartbeat stopped (backdated mtime), and no record ever lands.
        crashed = LeaseManager(store.sched_dir / SERVE_LEASE_DIR, ttl=5.0, worker_id="dead")
        stale = crashed.try_claim(digest)
        old = stale.path.stat().st_mtime - 60.0
        os.utime(stale.path, (old, old))

        service = ScenarioService(store, workers=1, ttl=5.0)
        with service:
            digest2, disposition = service.submit(request)
            assert digest2 == digest and disposition == "queued"
            wait_for(lambda: service.state_of(digest) == "committed")
        assert service.status().computed == 1
        assert service.status().reclaimed == 1

    def test_fresh_foreign_lease_reports_pending(self, tmp_path):
        """Cross-process coalescing: another process's live computation
        makes the digest poll as pending here."""
        store = ResultStore(tmp_path)
        digest = request_for(0.03).digest()
        other = LeaseManager(store.sched_dir / SERVE_LEASE_DIR, ttl=60.0, worker_id="other")
        assert other.try_claim(digest) is not None
        service = ScenarioService(store, workers=0)
        assert service.state_of(digest) == "pending"

    def test_unknown_digest_is_unknown(self, tmp_path):
        service = ScenarioService(ResultStore(tmp_path), workers=0)
        assert service.state_of("ab" * 32) == "unknown"
