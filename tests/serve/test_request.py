"""Request protocol: normalization, validation, and digest interop.

The load-bearing property is that a request's digest is *exactly* the
sweep-point digest of the corresponding batch path — a store seeded by
``sweep_scenario`` or a ``repro.sched`` grid serves matching requests as
cache hits, and vice versa.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.scenario import ScenarioSpec, sweep_scenario
from repro.sched import GridSpec
from repro.serve import ScenarioRequest
from repro.store import ResultStore


def tiny_spec(**overrides) -> ScenarioSpec:
    fields = dict(
        algorithm={"name": "ant", "params": {"gamma": 0.025}},
        demand={"name": "uniform", "params": {"n": 2000, "k": 4}},
        feedback={"name": "exact"},
        engine={"name": "counting"},
        rounds=60,
        seed=11,
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


class TestNormalization:
    def test_spec_dict_is_coerced_and_rounds_default_from_spec(self):
        request = ScenarioRequest(spec=tiny_spec().to_dict())
        assert isinstance(request.spec, ScenarioSpec)
        assert request.rounds == 60
        assert request.trials == 1

    def test_params_are_canonicalized_in_sorted_order(self):
        a = ScenarioRequest(
            spec=tiny_spec(), params={"demand.k": 8, "algorithm.gamma": 0.03}
        )
        b = ScenarioRequest(
            spec=tiny_spec(), params={"algorithm.gamma": 0.03, "demand.k": 8}
        )
        assert list(a.params) == ["algorithm.gamma", "demand.k"]
        assert a.digest() == b.digest()
        assert a.label() == "algorithm.gamma=0.03,demand.k=8"

    def test_round_trip_through_dict(self):
        request = ScenarioRequest(
            spec=tiny_spec(), params={"algorithm.gamma": 0.03}, trials=3
        )
        again = ScenarioRequest.from_dict(request.to_dict())
        assert again == request
        assert again.digest() == request.digest()

    @pytest.mark.parametrize(
        "data",
        [
            {"params": {}},  # no spec
            {"spec": 42},
            {"spec": {}, "bogus_key": 1},
            "not a mapping",
        ],
    )
    def test_malformed_bodies_raise_configuration_error(self, data):
        with pytest.raises(ConfigurationError):
            ScenarioRequest.from_dict(data)

    def test_top_level_param_paths_are_rejected(self):
        with pytest.raises(ConfigurationError, match="dotted|component"):
            ScenarioRequest(spec=tiny_spec(), params={"rounds": 10})

    def test_invalid_trials_and_rounds_are_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioRequest(spec=tiny_spec(), trials=0)
        with pytest.raises(ConfigurationError):
            ScenarioRequest(spec=tiny_spec(), rounds=0)

    def test_run_params_merge_over_spec_run_params(self):
        spec = tiny_spec(run_params={"burn_in": 10})
        request = ScenarioRequest(spec=spec, run_params={"burn_in": 20})
        assert request.merged_run_params() == {"burn_in": 20}
        assert ScenarioRequest(spec=spec).merged_run_params() == {"burn_in": 10}


class TestDigestInterop:
    def test_single_param_request_matches_sweep_point(self, tmp_path):
        """A sweep-seeded store serves the matching request as a hit."""
        store = ResultStore(tmp_path)
        sweep_scenario(tiny_spec(), "algorithm.gamma", [0.02, 0.04], trials=2, store=store)
        request = ScenarioRequest(
            spec=tiny_spec(), params={"algorithm.gamma": 0.02}, trials=2
        )
        assert store.has_record(request.digest())
        miss = ScenarioRequest(spec=tiny_spec(), params={"algorithm.gamma": 0.03}, trials=2)
        assert not store.has_record(miss.digest())

    def test_multi_param_request_matches_sorted_grid_point(self):
        grid = GridSpec(
            spec=tiny_spec(),
            axes=[
                {"parameter": "algorithm.gamma", "values": [0.02, 0.03]},
                {"parameter": "demand.k", "values": [4, 8]},
            ],
            trials=2,
        )
        expected = {point.digest for point in grid.points()}
        for gamma in (0.02, 0.03):
            for k in (4, 8):
                request = ScenarioRequest(
                    spec=tiny_spec(),
                    params={"demand.k": k, "algorithm.gamma": gamma},
                    trials=2,
                )
                assert request.digest() in expected

    def test_bare_request_cannot_alias_a_sweep_point(self):
        bare = ScenarioRequest(spec=tiny_spec(), trials=2)
        assert bare.coordinate() == ("", None)
        assert bare.label() == tiny_spec().describe()
        swept = ScenarioRequest(
            spec=tiny_spec(), params={"algorithm.gamma": 0.025}, trials=2
        )
        assert bare.digest() != swept.digest()

    def test_digest_depends_on_run_shape(self):
        base = ScenarioRequest(spec=tiny_spec(), params={"algorithm.gamma": 0.03})
        assert (
            base.digest()
            != ScenarioRequest(
                spec=tiny_spec(), params={"algorithm.gamma": 0.03}, trials=2
            ).digest()
        )
        assert (
            base.digest()
            != ScenarioRequest(
                spec=tiny_spec(), params={"algorithm.gamma": 0.03}, rounds=61
            ).digest()
        )
        assert (
            base.digest()
            != ScenarioRequest(
                spec=tiny_spec(),
                params={"algorithm.gamma": 0.03},
                run_params={"burn_in": 5},
            ).digest()
        )
