"""Tests for oscillation detection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.oscillation import (
    detect_blowups,
    oscillation_stats,
    zero_crossings,
)
from repro.exceptions import AnalysisError


class TestZeroCrossings:
    def test_simple_sine(self):
        # Phase-shifted so the series does not start or end exactly at 0.
        x = np.sin(np.linspace(0.1, 0.1 + 4 * np.pi, 400))
        # Two full periods -> crossings at pi, 2pi, 3pi, 4pi.
        assert len(zero_crossings(x)) == 4

    def test_no_crossing(self):
        assert len(zero_crossings(np.array([1.0, 2.0, 3.0]))) == 0

    def test_touch_zero_not_double_counted(self):
        # +1, 0, +1 touches zero but never changes sign.
        assert len(zero_crossings(np.array([1.0, 0.0, 1.0]))) == 0

    def test_zero_then_flip_counts_once(self):
        assert len(zero_crossings(np.array([1.0, 0.0, -1.0]))) == 1

    def test_short_series(self):
        assert len(zero_crossings(np.array([1.0]))) == 0


class TestOscillationStats:
    def test_alternating_series(self):
        x = np.tile([5.0, -5.0], 50)
        s = oscillation_stats(x, threshold=10.0)
        assert s.oscillates
        assert s.crossings == 99
        assert s.amplitude_max == 5.0
        assert s.fraction_inside == 1.0
        assert s.mean_period == pytest.approx(2.0)

    def test_flat_series(self):
        s = oscillation_stats(np.full(10, 3.0), threshold=1.0)
        assert not s.oscillates
        assert s.mean_period == float("inf")
        assert s.fraction_inside == 0.0

    def test_empty_raises(self):
        with pytest.raises(AnalysisError):
            oscillation_stats(np.array([]), threshold=1.0)


class TestDetectBlowups:
    def test_single_excursion(self):
        x = np.array([0.0, 1.0, 9.0, 12.0, 4.0, 0.0])
        blowups = detect_blowups(x, threshold=5.0)
        assert blowups == [(2, 4, 12.0)]

    def test_negative_excursions_counted(self):
        x = np.array([0.0, -20.0, 0.0])
        assert detect_blowups(x, threshold=5.0) == [(1, 2, 20.0)]

    def test_none(self):
        assert detect_blowups(np.zeros(5), threshold=1.0) == []

    def test_excursion_at_edges(self):
        x = np.array([10.0, 0.0, 10.0])
        b = detect_blowups(x, threshold=5.0)
        assert len(b) == 2
        assert b[0][0] == 0 and b[1][1] == 3
