"""Tests for report formatting."""

from __future__ import annotations

import pytest

from repro.analysis.report import format_comparison, format_table


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 0.125]])
        lines = out.splitlines()
        assert len({len(l) for l in lines}) == 1  # all rows equal width

    def test_title(self):
        assert format_table(["x"], [[1]], title="T").startswith("T")

    def test_float_format(self):
        out = format_table(["x"], [[0.123456]], float_fmt="{:.2f}")
        assert "0.12" in out

    def test_mixed_types(self):
        out = format_table(["name", "v"], [["abc", 1.5]])
        assert "abc" in out and "1.5" in out


class TestFormatComparison:
    def test_upper_pass(self):
        s = format_comparison("x", 1.0, 2.0, kind="upper")
        assert "OK" in s

    def test_upper_fail(self):
        s = format_comparison("x", 3.0, 2.0, kind="upper")
        assert "VIOLATION" in s

    def test_lower_pass(self):
        assert "OK" in format_comparison("x", 3.0, 2.0, kind="lower")

    def test_lower_fail(self):
        assert "BELOW" in format_comparison("x", 1.0, 2.0, kind="lower")

    def test_bad_kind(self):
        with pytest.raises(ValueError):
            format_comparison("x", 1.0, 2.0, kind="sideways")
