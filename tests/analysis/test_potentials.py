"""Tests for the Section 4 potential functions — unit and on real runs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.potentials import (
    count_upcrossings,
    phi_potential,
    potential_trace,
    psi_potential,
    saturation_round,
)
from repro.core.ant import AntAlgorithm
from repro.env.critical import lambda_for_critical_value
from repro.env.demands import uniform_demands
from repro.env.feedback import SigmoidFeedback
from repro.exceptions import AnalysisError
from repro.sim.counting import CountingSimulator


class TestPhiPsi:
    def test_phi_zero_when_saturated(self):
        d = np.array([100.0, 100.0])
        assert phi_potential(np.array([120.0, 110.0]), d, 0.05) == 0.0

    def test_phi_counts_shortfall(self):
        d = np.array([100.0])
        # Level = 105; load 95 -> shortfall 10.
        assert phi_potential(np.array([95.0]), d, 0.05) == pytest.approx(10.0)

    def test_psi_counts_unsaturated_tasks(self):
        d = np.array([100.0, 100.0, 100.0])
        loads = np.array([120.0, 104.0, 90.0])
        assert psi_potential(loads, d, 0.05) == 2

    def test_matrix_input(self):
        d = np.array([100.0])
        loads = np.array([[95.0], [120.0]])
        np.testing.assert_allclose(phi_potential(loads, d, 0.05), [10.0, 0.0])
        np.testing.assert_allclose(psi_potential(loads, d, 0.05), [1, 0])


class TestSaturationRound:
    def test_found(self):
        d = np.array([100.0])
        loads = np.array([[50.0], [94.0], [96.0], [80.0]])
        # Saturated means >= (1-gamma)d = 95.
        assert saturation_round(loads, d, 0.05) == 2

    def test_never(self):
        d = np.array([100.0])
        assert saturation_round(np.array([[10.0]]), d, 0.05) is None


class TestUpcrossings:
    def test_single_crossing(self):
        assert count_upcrossings(np.array([0.0, 5.0, 12.0, 15.0]), 10.0) == 1

    def test_oscillating(self):
        assert count_upcrossings(np.array([0.0, 12.0, 0.0, 12.0]), 10.0) == 2

    def test_never_crosses(self):
        assert count_upcrossings(np.array([0.0, 1.0]), 10.0) == 0

    def test_short(self):
        assert count_upcrossings(np.array([20.0]), 10.0) == 0


class TestOnRealRuns:
    @pytest.fixture(scope="class")
    def run(self):
        demand = uniform_demands(n=8000, k=4)
        gs = 0.01
        lam = lambda_for_critical_value(demand, gamma_star=gs)
        gamma = 0.025
        sim = CountingSimulator(AntAlgorithm(gamma=gamma), demand, SigmoidFeedback(lam), seed=0)
        out = sim.run(6000, trace_stride=1)
        return demand, gamma, out

    def test_claim_4_5_phi_psi_monotone(self, run):
        """Claim 4.5: Phi and Psi are (w.h.p.) non-increasing at phase starts."""
        demand, gamma, out = run
        pt = potential_trace(
            out.trace.rounds, out.trace.loads, demand.as_array(), gamma
        )
        assert pt.phi_monotone_fraction >= 0.99
        assert pt.psi_monotone_fraction >= 0.99

    def test_claim_4_5_phi_reaches_zero(self, run):
        """All tasks get saturated and stay: Phi hits 0 and R- stops."""
        demand, gamma, out = run
        pt = potential_trace(
            out.trace.rounds, out.trace.loads, demand.as_array(), gamma
        )
        assert pt.phi[-1] == 0.0
        assert pt.psi[-1] == 0.0

    def test_claim_4_4_saturation_permanent(self, run):
        """Once all tasks are saturated (>= (1-gamma)d) at a phase start,
        they stay saturated at later phase starts."""
        demand, gamma, out = run
        rounds, loads = out.trace.rounds, out.trace.loads
        mask = rounds % 2 == 0
        phase_loads = loads[mask].astype(float)
        t_sat = saturation_round(phase_loads, demand.as_array(), gamma)
        assert t_sat is not None
        after = phase_loads[t_sat:]
        level = (1.0 - gamma) * demand.as_array()
        assert np.all(after >= level[np.newaxis, :])

    def test_claim_4_2_single_upcrossing(self, run):
        """Each task's phase-start load crosses d(1+gamma) upward at most
        once in the interval (the one-time join wave)."""
        demand, gamma, out = run
        rounds, loads = out.trace.rounds, out.trace.loads
        mask = rounds % 2 == 0
        phase_loads = loads[mask].astype(float)
        for j in range(demand.k):
            level = (1.0 + gamma) * demand.as_array()[j]
            assert count_upcrossings(phase_loads[:, j], level) <= 1

    def test_potential_trace_validation(self):
        with pytest.raises(AnalysisError):
            potential_trace(np.array([1, 2]), np.zeros((3, 1)), np.array([1]), 0.05)
        with pytest.raises(AnalysisError):
            potential_trace(np.array([1]), np.zeros((1, 1)), np.array([1]), 0.05)
