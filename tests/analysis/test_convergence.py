"""Tests for convergence detection utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.convergence import (
    band_residence,
    deficit_band,
    rounds_to_band,
    summarize_convergence,
)
from repro.exceptions import AnalysisError


def traj(*rows):
    return np.asarray(rows, dtype=float)


class TestDeficitBand:
    def test_formula(self):
        np.testing.assert_allclose(
            deficit_band(np.array([100.0, 200.0]), 0.02), [13.0, 23.0]
        )

    def test_custom_coefficients(self):
        np.testing.assert_allclose(
            deficit_band(np.array([100.0]), 0.02, coefficient=1.0, slack=0.0), [2.0]
        )

    def test_rejects_bad(self):
        with pytest.raises(AnalysisError):
            deficit_band(np.array([0.0]), 0.02)
        with pytest.raises(AnalysisError):
            deficit_band(np.array([10.0]), 0.0)


class TestRoundsToBand:
    def test_entry_found(self):
        d = np.array([100.0])
        loads = traj([0.0], [50.0], [95.0], [80.0])
        # Band half-width = 5*0.02*100+3 = 13 -> first inside at 95.
        assert rounds_to_band(loads, d, 0.02) == 2

    def test_never(self):
        d = np.array([100.0])
        assert rounds_to_band(traj([0.0], [10.0]), d, 0.02) is None

    def test_all_tasks_required(self):
        d = np.array([100.0, 100.0])
        loads = traj([100.0, 0.0], [100.0, 100.0])
        assert rounds_to_band(loads, d, 0.02) == 1

    def test_shape_mismatch(self):
        with pytest.raises(AnalysisError):
            rounds_to_band(traj([1.0]), np.array([1.0, 2.0]), 0.02)


class TestBandResidence:
    def test_full_residence(self):
        d = np.array([100.0])
        assert band_residence(traj([100.0], [105.0]), d, 0.02) == 1.0

    def test_partial(self):
        d = np.array([100.0])
        loads = traj([100.0], [0.0], [100.0], [100.0])
        assert band_residence(loads, d, 0.02) == pytest.approx(0.75)

    def test_after_window(self):
        d = np.array([100.0])
        loads = traj([0.0], [100.0])
        assert band_residence(loads, d, 0.02, after=1) == 1.0

    def test_after_out_of_range(self):
        with pytest.raises(AnalysisError):
            band_residence(traj([1.0]), np.array([100.0]), 0.02, after=5)


class TestSummarize:
    def test_all_converged(self):
        d = np.array([100.0])
        trials = [traj([0.0], [100.0], [100.0]), traj([100.0], [100.0])]
        s = summarize_convergence(trials, d, 0.02)
        assert s.all_converged
        assert s.converged_trials == 2
        assert s.mean_rounds == pytest.approx(0.5)
        assert s.mean_residence == 1.0

    def test_none_converged(self):
        d = np.array([100.0])
        s = summarize_convergence([traj([0.0])], d, 0.02)
        assert not s.all_converged
        assert s.mean_rounds == float("inf")

    def test_empty_raises(self):
        with pytest.raises(AnalysisError):
            summarize_convergence([], np.array([100.0]), 0.02)

    def test_on_real_run(self):
        from repro.core.ant import AntAlgorithm
        from repro.env.critical import lambda_for_critical_value
        from repro.env.demands import uniform_demands
        from repro.env.feedback import SigmoidFeedback
        from repro.sim.counting import CountingSimulator

        demand = uniform_demands(n=8000, k=4)
        lam = lambda_for_critical_value(demand, gamma_star=0.01)
        trajectories = []
        for seed in range(3):
            out = CountingSimulator(
                AntAlgorithm(gamma=0.025), demand, SigmoidFeedback(lam), seed=seed
            ).run(6000, trace_stride=1)
            trajectories.append(out.trace.loads.astype(float))
        s = summarize_convergence(trajectories, demand.as_array(), 0.025)
        assert s.all_converged
        assert s.mean_rounds < 3000
        assert s.mean_residence > 0.95
