"""Tests for the closed-form theorem bounds."""

from __future__ import annotations

import pytest

from repro.analysis.theory import (
    adversarial_lower_bound_rate,
    ant_closeness_bound,
    ant_regret_bound,
    memory_lower_bound_far,
    precise_adversarial_rate,
    precise_sigmoid_rate,
    stable_zone,
)
from repro.exceptions import ConfigurationError


class TestBoundFormulas:
    def test_ant_regret_bound_structure(self):
        # One-off term + linear term.
        short = ant_regret_bound(1, 1000, 4, 0.05, 500.0)
        long = ant_regret_bound(1001, 1000, 4, 0.05, 500.0)
        assert long - short == pytest.approx(1000 * (5 * 0.05 * 500 + 3))

    def test_ant_regret_rejects_bad(self):
        with pytest.raises(ConfigurationError):
            ant_regret_bound(0, 10, 1, 0.1, 5.0)

    def test_ant_closeness(self):
        assert ant_closeness_bound(0.05, 0.01) == pytest.approx(25.0)

    def test_ant_closeness_requires_gamma_ge_star(self):
        with pytest.raises(ConfigurationError):
            ant_closeness_bound(0.005, 0.01)

    def test_precise_sigmoid_rate(self):
        assert precise_sigmoid_rate(0.5, 0.04, 1000.0) == pytest.approx(20.0)

    def test_precise_adversarial_rate(self):
        assert precise_adversarial_rate(0.5, 0.04, 1000.0) == pytest.approx(60.0)

    def test_adversarial_lb(self):
        assert adversarial_lower_bound_rate(0.01, 1000.0) == pytest.approx(10.0)

    def test_memory_lb(self):
        assert memory_lower_bound_far(0.25, 0.01, 1000.0) == pytest.approx(2.5)

    def test_rate_validation(self):
        with pytest.raises(ConfigurationError):
            precise_sigmoid_rate(1.5, 0.04, 100.0)
        with pytest.raises(ConfigurationError):
            precise_adversarial_rate(0.0, 0.04, 100.0)
        with pytest.raises(ConfigurationError):
            adversarial_lower_bound_rate(0.0, 100.0)
        with pytest.raises(ConfigurationError):
            memory_lower_bound_far(2.0, 0.01, 100.0)


class TestStableZone:
    def test_paper_formula(self):
        lo, hi = stable_zone(1000.0, 0.02)
        assert lo == pytest.approx(1020.0)
        assert hi == pytest.approx(1000 * (1 + (0.9 * 2.5 - 1) * 0.02))
        assert hi > lo

    def test_rejects_degenerate(self):
        with pytest.raises(ConfigurationError):
            stable_zone(0.0, 0.02)
