"""Tests for the statistics helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.stats import bootstrap_ci, geometric_decay_fit, mean_confidence_interval
from repro.exceptions import AnalysisError


class TestMeanCI:
    def test_contains_mean(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        mean, lo, hi = mean_confidence_interval(x)
        assert lo <= mean <= hi
        assert mean == pytest.approx(2.5)

    def test_single_sample_degenerate(self):
        mean, lo, hi = mean_confidence_interval(np.array([5.0]))
        assert mean == lo == hi == 5.0

    def test_empty_raises(self):
        with pytest.raises(AnalysisError):
            mean_confidence_interval(np.array([]))

    def test_coverage_simulation(self):
        gen = np.random.default_rng(0)
        hits = 0
        for _ in range(300):
            x = gen.normal(0.0, 1.0, size=20)
            _, lo, hi = mean_confidence_interval(x, confidence=0.9)
            hits += lo <= 0.0 <= hi
        assert hits / 300 == pytest.approx(0.9, abs=0.06)


class TestBootstrap:
    def test_contains_point(self):
        x = np.arange(30, dtype=float)
        point, lo, hi = bootstrap_ci(x, rng=0)
        assert lo <= point <= hi

    def test_deterministic_with_seed(self):
        x = np.arange(10, dtype=float)
        a = bootstrap_ci(x, rng=1)
        b = bootstrap_ci(x, rng=1)
        assert a == b

    def test_custom_statistic(self):
        x = np.array([1.0, 2.0, 100.0])
        point, lo, hi = bootstrap_ci(x, statistic=np.median, rng=0)
        assert point == 2.0

    def test_empty_raises(self):
        with pytest.raises(AnalysisError):
            bootstrap_ci(np.array([]))


class TestGeometricDecayFit:
    def test_exact_decay_recovered(self):
        t = np.arange(50)
        v = 100.0 * 0.95**t
        rho, amp = geometric_decay_fit(v)
        assert rho == pytest.approx(0.95, rel=1e-6)
        assert amp == pytest.approx(100.0, rel=1e-6)

    def test_ignores_nonpositive_tail(self):
        v = np.concatenate([100.0 * 0.5 ** np.arange(10), np.zeros(5)])
        rho, _ = geometric_decay_fit(v)
        assert rho == pytest.approx(0.5, rel=1e-6)

    def test_needs_two_points(self):
        with pytest.raises(AnalysisError):
            geometric_decay_fit(np.array([1.0, 0.0, 0.0]))
