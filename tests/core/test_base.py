"""Tests for the colony-algorithm base utilities."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.base import InitialAssignment, initial_assignment_array, uniform_row_choice
from repro.exceptions import ConfigurationError
from repro.types import IDLE


class TestInitialAssignment:
    def test_all_idle(self, rng):
        a = initial_assignment_array(InitialAssignment.ALL_IDLE, 10, 3, rng)
        assert (a == IDLE).all()

    def test_all_on_first_task(self, rng):
        a = initial_assignment_array("all_on_first_task", 10, 3, rng)
        assert (a == 0).all()

    def test_random_range(self, rng):
        a = initial_assignment_array("random", 1000, 3, rng)
        assert a.min() >= IDLE and a.max() < 3
        # With n=1000 every action should appear.
        assert set(np.unique(a)) == {-1, 0, 1, 2}

    def test_demand_matched(self, rng):
        a = initial_assignment_array(
            "demand_matched", 10, 2, rng, demands=np.array([3, 4])
        )
        assert (a == 0).sum() == 3 and (a == 1).sum() == 4 and (a == IDLE).sum() == 3

    def test_demand_matched_requires_demands(self, rng):
        with pytest.raises(ConfigurationError):
            initial_assignment_array("demand_matched", 10, 2, rng)

    def test_demand_matched_rejects_overfull(self, rng):
        with pytest.raises(ConfigurationError):
            initial_assignment_array("demand_matched", 5, 2, rng, demands=np.array([3, 4]))

    def test_explicit_array_copied(self, rng):
        src = np.array([0, 1, IDLE], dtype=np.int64)
        a = initial_assignment_array(src, 3, 2, rng)
        a[0] = 1
        assert src[0] == 0

    def test_explicit_array_validated(self, rng):
        with pytest.raises(ConfigurationError):
            initial_assignment_array(np.array([5, 0, 0]), 3, 2, rng)
        with pytest.raises(ConfigurationError):
            initial_assignment_array(np.array([0, 0]), 3, 2, rng)

    def test_unknown_name(self, rng):
        with pytest.raises(ValueError):
            initial_assignment_array("warp_drive", 3, 2, rng)

    def test_string_seed_reproducible(self):
        a = initial_assignment_array("random", 100, 4, 7)
        b = initial_assignment_array("random", 100, 4, 7)
        np.testing.assert_array_equal(a, b)


class TestUniformRowChoice:
    def test_empty_rows_give_idle(self, rng):
        mask = np.zeros((5, 3), dtype=bool)
        np.testing.assert_array_equal(uniform_row_choice(mask, rng), [IDLE] * 5)

    def test_single_true_selected(self, rng):
        mask = np.zeros((4, 3), dtype=bool)
        mask[:, 1] = True
        np.testing.assert_array_equal(uniform_row_choice(mask, rng), [1] * 4)

    def test_rejects_1d(self, rng):
        with pytest.raises(ConfigurationError):
            uniform_row_choice(np.array([True, False]), rng)

    def test_choice_within_true_set(self, rng):
        mask = np.array([[True, False, True]] * 100)
        out = uniform_row_choice(mask, rng)
        assert set(np.unique(out)) <= {0, 2}

    def test_uniformity(self, rng):
        mask = np.ones((60_000, 3), dtype=bool)
        out = uniform_row_choice(mask, rng)
        counts = np.bincount(out, minlength=3)
        np.testing.assert_allclose(counts / 60_000, 1 / 3, atol=0.01)

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=1, max_value=6),
        st.integers(0, 2**32 - 1),
    )
    def test_property_valid_choice(self, rows, cols, seed):
        gen = np.random.default_rng(seed)
        mask = gen.random((rows, cols)) < 0.5
        out = uniform_row_choice(mask, gen)
        for i in range(rows):
            if mask[i].any():
                assert mask[i, out[i]]
            else:
                assert out[i] == IDLE
