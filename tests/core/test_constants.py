"""Tests for the algorithm constants and their constraint set."""

from __future__ import annotations

import pytest

from repro.core.constants import DEFAULT_CONSTANTS, GAMMA_MAX, AlgorithmConstants
from repro.exceptions import ConfigurationError


class TestDefaults:
    def test_paper_values(self):
        assert DEFAULT_CONSTANTS.c_s == 2.5
        assert DEFAULT_CONSTANTS.c_d == 19.0
        assert DEFAULT_CONSTANTS.c_chi == 10.0

    def test_defaults_valid(self):
        DEFAULT_CONSTANTS.validate()  # must not raise

    def test_region_thresholds(self):
        assert DEFAULT_CONSTANTS.c_plus == pytest.approx(3.0)
        assert DEFAULT_CONSTANTS.c_minus == pytest.approx(4.0)

    def test_gamma_max(self):
        assert GAMMA_MAX == pytest.approx(1.0 / 16.0)


class TestConstraintSet:
    def test_claim_4_2_floor(self):
        # c_s below 20/9 + 2/(c_d - 1) must be rejected.
        with pytest.raises(ConfigurationError, match="Claim 4.2"):
            AlgorithmConstants(c_s=2.3, c_d=19.0)

    def test_claim_4_4(self):
        with pytest.raises(ConfigurationError, match="Claim 4.4"):
            AlgorithmConstants(c_s=2.0, c_d=1000.0)

    def test_claim_4_1_pause_bound(self):
        # c_s = 213 (the arXiv typesetting artifact) violates c_s < 1/(2 gamma).
        with pytest.raises(ConfigurationError, match="Claim 4.1"):
            AlgorithmConstants(c_s=213.0, c_d=19.0)

    def test_c_d_must_exceed_one(self):
        with pytest.raises(ConfigurationError, match="c_d"):
            AlgorithmConstants(c_d=0.5)

    def test_c_chi_must_exceed_one(self):
        with pytest.raises(ConfigurationError, match="c_chi"):
            AlgorithmConstants(c_chi=1.0)

    def test_custom_valid_combo(self):
        c = AlgorithmConstants(c_s=3.0, c_d=10.0)
        assert c.c_plus == pytest.approx(3.6)

    def test_relaxed_gamma_max(self):
        # A larger c_s is fine when gamma is capped lower.
        c = AlgorithmConstants.__new__(AlgorithmConstants)
        object.__setattr__(c, "c_s", 6.0)
        object.__setattr__(c, "c_d", 19.0)
        object.__setattr__(c, "c_chi", 10.0)
        c.validate(gamma_max=1.0 / 16.0)  # 6 < 8 OK
        with pytest.raises(ConfigurationError):
            c.validate(gamma_max=0.1)  # 6 >= 5 violates
