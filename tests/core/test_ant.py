"""Unit tests for Algorithm Ant's round mechanics.

These drive :class:`AntAlgorithm.step` directly with hand-crafted
feedback matrices, pinning down every branch of the pseudocode:
pause, resume, permanent leave, join, and the phase bookkeeping.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ant import AntAlgorithm, OneSampleAntAlgorithm
from repro.core.constants import AlgorithmConstants
from repro.exceptions import ConfigurationError
from repro.types import IDLE


def make_state(alg, assignment, k=2):
    assignment = np.asarray(assignment, dtype=np.int64)
    return alg.create_state(assignment.shape[0], k, assignment)


class TestConstruction:
    def test_gamma_range(self):
        AntAlgorithm(gamma=1.0 / 16.0)
        with pytest.raises(ConfigurationError):
            AntAlgorithm(gamma=0.0)
        with pytest.raises(ConfigurationError):
            AntAlgorithm(gamma=0.07)

    def test_gamma_max_override(self):
        alg = AntAlgorithm(
            gamma=0.1, gamma_max=0.125, constants=AlgorithmConstants(c_s=2.5, c_d=19.0)
        )
        assert alg.gamma == 0.1

    def test_probabilities(self):
        alg = AntAlgorithm(gamma=0.04)
        assert alg.pause_probability == pytest.approx(0.1)
        assert alg.leave_probability == pytest.approx(0.04 / 19.0)

    def test_phase_length(self):
        assert AntAlgorithm(gamma=0.01).phase_length == 2

    def test_rejects_non_constants(self):
        with pytest.raises(ConfigurationError):
            AntAlgorithm(gamma=0.01, constants="nope")

    def test_memory_constant_in_n(self):
        alg = AntAlgorithm(gamma=0.01)
        assert alg.memory_bits(4) == alg.memory_bits(4)
        assert alg.memory_bits(4) < 32  # constant, tiny


class TestFirstRound:
    def test_records_current_task_and_sample(self, rng):
        alg = AntAlgorithm(gamma=0.01)
        st = make_state(alg, [0, 1, IDLE])
        lack = np.array([[True, False]] * 3)
        alg.step(st, 1, lack, rng)
        np.testing.assert_array_equal(st.current_task, [0, 1, IDLE])
        np.testing.assert_array_equal(st.s1_lack, lack)

    def test_idle_ants_stay_idle(self, rng):
        alg = AntAlgorithm(gamma=0.01)
        st = make_state(alg, [IDLE, IDLE])
        alg.step(st, 1, np.ones((2, 2), dtype=bool), rng)
        assert (st.assignment == IDLE).all()

    def test_pause_rate(self):
        alg = AntAlgorithm(gamma=0.0625)  # pause prob = 0.15625
        n = 40_000
        st = make_state(alg, np.zeros(n, dtype=np.int64))
        gen = np.random.default_rng(0)
        alg.step(st, 1, np.zeros((n, 2), dtype=bool), gen)
        paused = (st.assignment == IDLE).mean()
        assert paused == pytest.approx(alg.pause_probability, abs=0.01)

    def test_pause_is_independent_of_feedback(self):
        # Pausing happens regardless of the sample's value.
        alg = AntAlgorithm(gamma=0.0625)
        n = 40_000
        gen = np.random.default_rng(1)
        st = make_state(alg, np.zeros(n, dtype=np.int64))
        alg.step(st, 1, np.ones((n, 2), dtype=bool), gen)  # LACK everywhere
        assert (st.assignment == IDLE).mean() == pytest.approx(
            alg.pause_probability, abs=0.01
        )


class TestSecondRound:
    def test_both_overload_leaves_at_rate(self):
        alg = AntAlgorithm(gamma=0.0625)
        n = 200_000
        gen = np.random.default_rng(2)
        st = make_state(alg, np.zeros(n, dtype=np.int64))
        overload = np.zeros((n, 2), dtype=bool)
        alg.step(st, 1, overload, gen)
        alg.step(st, 2, overload, gen)
        left = (st.assignment == IDLE).mean()
        assert left == pytest.approx(alg.leave_probability, rel=0.15)

    def test_mixed_samples_resume(self, rng):
        alg = AntAlgorithm(gamma=0.0625)
        st = make_state(alg, [0] * 10)
        alg.step(st, 1, np.zeros((10, 2), dtype=bool), rng)  # s1 = overload
        alg.step(st, 2, np.ones((10, 2), dtype=bool), rng)  # s2 = lack
        # overload+lack -> everyone resumes, including paused ants.
        assert (st.assignment == 0).all()

    def test_lack_then_overload_resume(self, rng):
        alg = AntAlgorithm(gamma=0.0625)
        st = make_state(alg, [0] * 10)
        alg.step(st, 1, np.ones((10, 2), dtype=bool), rng)
        alg.step(st, 2, np.zeros((10, 2), dtype=bool), rng)
        assert (st.assignment == 0).all()

    def test_idle_joins_double_lack_task(self, rng):
        alg = AntAlgorithm(gamma=0.01)
        st = make_state(alg, [IDLE] * 10)
        lack = np.zeros((10, 2), dtype=bool)
        lack[:, 1] = True  # only task 1 lacks, twice
        alg.step(st, 1, lack, rng)
        alg.step(st, 2, lack, rng)
        assert (st.assignment == 1).all()

    def test_idle_requires_both_samples_lack(self, rng):
        alg = AntAlgorithm(gamma=0.01)
        st = make_state(alg, [IDLE] * 10)
        lack1 = np.ones((10, 2), dtype=bool)
        lack2 = np.zeros((10, 2), dtype=bool)
        alg.step(st, 1, lack1, rng)
        alg.step(st, 2, lack2, rng)
        assert (st.assignment == IDLE).all()

    def test_idle_join_uniform_among_lacking(self, rng):
        alg = AntAlgorithm(gamma=0.01)
        n = 30_000
        st = make_state(alg, np.full(n, IDLE, dtype=np.int64))
        lack = np.ones((n, 2), dtype=bool)
        alg.step(st, 1, lack, rng)
        alg.step(st, 2, lack, rng)
        frac0 = (st.assignment == 0).mean()
        assert frac0 == pytest.approx(0.5, abs=0.02)

    def test_worker_ignores_other_tasks_feedback(self, rng):
        alg = AntAlgorithm(gamma=0.0625)
        st = make_state(alg, [0] * 10)
        # Task 1 shows double-overload, task 0 (their own) shows lack.
        lack = np.zeros((10, 2), dtype=bool)
        lack[:, 0] = True
        alg.step(st, 1, lack, rng)
        alg.step(st, 2, lack, rng)
        assert (st.assignment == 0).all()


class TestOneSampleVariant:
    def test_join_every_round(self, rng):
        alg = OneSampleAntAlgorithm(gamma=0.01)
        st = make_state(alg, [IDLE] * 10)
        lack = np.ones((10, 2), dtype=bool)
        alg.step(st, 1, lack, rng)
        assert (st.assignment != IDLE).all()

    def test_leave_rate(self):
        alg = OneSampleAntAlgorithm(gamma=0.0625)
        n = 200_000
        gen = np.random.default_rng(3)
        st = make_state(alg, np.zeros(n, dtype=np.int64))
        alg.step(st, 1, np.zeros((n, 2), dtype=bool), gen)
        assert (st.assignment == IDLE).mean() == pytest.approx(
            alg.leave_probability, rel=0.15
        )

    def test_phase_length_one(self):
        assert OneSampleAntAlgorithm(gamma=0.01).phase_length == 1
