"""Unit tests for Algorithm Precise Sigmoid's phase machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.precise_sigmoid import PreciseSigmoidAlgorithm
from repro.exceptions import ConfigurationError
from repro.types import IDLE


def make_state(alg, assignment, k=2):
    assignment = np.asarray(assignment, dtype=np.int64)
    return alg.create_state(assignment.shape[0], k, assignment)


class TestConstruction:
    def test_window_formula(self):
        alg = PreciseSigmoidAlgorithm(gamma=0.04, eps=0.5)
        assert alg.m == 41  # ceil(2*10/0.5 + 1)
        assert alg.phase_length == 82

    def test_step_size(self):
        alg = PreciseSigmoidAlgorithm(gamma=0.04, eps=0.5)
        assert alg.step_size == pytest.approx(0.002)

    def test_window_inversion_roundtrip(self):
        # eps derived from integer m must invert to exactly m.
        for m in (31, 63, 127):
            eps = 2.0 * 10.0 / (m - 1)
            if eps >= 1.0:
                continue
            alg = PreciseSigmoidAlgorithm(gamma=0.04, eps=eps)
            assert alg.m == m

    def test_rejects_bad_eps(self):
        with pytest.raises(ConfigurationError):
            PreciseSigmoidAlgorithm(gamma=0.04, eps=0.0)
        with pytest.raises(ConfigurationError):
            PreciseSigmoidAlgorithm(gamma=0.04, eps=1.0)

    def test_rejects_bad_gamma(self):
        with pytest.raises(ConfigurationError):
            PreciseSigmoidAlgorithm(gamma=0.5, eps=0.5)

    def test_leave_probability_scaling(self):
        scaled = PreciseSigmoidAlgorithm(gamma=0.04, eps=0.5)
        literal = PreciseSigmoidAlgorithm(
            gamma=0.04, eps=0.5, scale_leave_with_epsilon=False
        )
        assert scaled.leave_probability == pytest.approx(scaled.step_size / 19.0)
        assert literal.leave_probability == pytest.approx(0.04 / (10.0 * 19.0))
        assert scaled.leave_probability < literal.leave_probability

    def test_memory_grows_with_log_window(self):
        small = PreciseSigmoidAlgorithm(gamma=0.04, eps=0.9)
        big = PreciseSigmoidAlgorithm(gamma=0.04, eps=0.1)
        assert big.memory_bits(2) > small.memory_bits(2)


class TestPhaseMechanics:
    def test_holds_assignment_during_window(self, rng):
        alg = PreciseSigmoidAlgorithm(gamma=0.04, eps=0.5)
        st = make_state(alg, [0, 1, IDLE])
        lack = np.ones((3, 2), dtype=bool)
        for t in range(1, alg.m):  # rounds before the window-1 close
            alg.step(st, t, lack, rng)
            np.testing.assert_array_equal(st.assignment, [0, 1, IDLE])

    def test_median_majority_rule(self, rng):
        alg = PreciseSigmoidAlgorithm(gamma=0.04, eps=0.5)
        st = make_state(alg, [0])
        m = alg.m
        # Feed LACK in a strict majority of window-1 rounds.
        for t in range(1, m + 1):
            lack = np.array([[t <= m // 2 + 1, False]])
            alg.step(st, t, lack, rng)
        assert st.median_1[0, 0]
        assert not st.median_1[0, 1]

    def test_pause_at_window_boundary(self):
        alg = PreciseSigmoidAlgorithm(gamma=0.4, eps=0.9)
        # Large gamma/eps to get a visible pause probability.
        n = 50_000
        gen = np.random.default_rng(0)
        st = make_state(alg, np.zeros(n, dtype=np.int64))
        lack = np.zeros((n, 2), dtype=bool)
        for t in range(1, alg.m + 1):
            alg.step(st, t, lack, gen)
        paused = (st.assignment == IDLE).mean()
        assert paused == pytest.approx(alg.pause_probability, rel=0.2)

    def test_full_phase_double_overload_leave(self):
        alg = PreciseSigmoidAlgorithm(gamma=0.4, eps=0.9)
        n = 100_000
        gen = np.random.default_rng(1)
        st = make_state(alg, np.zeros(n, dtype=np.int64))
        overload = np.zeros((n, 2), dtype=bool)
        for t in range(1, alg.phase_length + 1):
            alg.step(st, t, overload, gen)
        left = (st.assignment == IDLE).mean()
        assert left == pytest.approx(alg.leave_probability, rel=0.25)

    def test_full_phase_double_lack_join(self, rng):
        alg = PreciseSigmoidAlgorithm(gamma=0.04, eps=0.5)
        st = make_state(alg, [IDLE] * 20)
        lack = np.ones((20, 2), dtype=bool)
        for t in range(1, alg.phase_length + 1):
            alg.step(st, t, lack, rng)
        assert (st.assignment != IDLE).all()

    def test_counters_reset_each_phase(self, rng):
        alg = PreciseSigmoidAlgorithm(gamma=0.04, eps=0.5)
        st = make_state(alg, [0])
        lack = np.ones((1, 2), dtype=bool)
        for t in range(1, alg.phase_length + 1):
            alg.step(st, t, lack, rng)
        # New phase begins: counters must restart from this round's sample.
        alg.step(st, alg.phase_length + 1, lack, rng)
        assert st.lack_count_1.max() == 1
