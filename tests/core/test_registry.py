"""Tests for the algorithm registry."""

from __future__ import annotations

import pytest

from repro.core.ant import AntAlgorithm
from repro.core.registry import available_algorithms, make_algorithm, register_algorithm
from repro.exceptions import ConfigurationError


class TestRegistry:
    def test_available_contains_paper_algorithms(self):
        names = available_algorithms()
        for expected in ("ant", "precise_sigmoid", "precise_adversarial", "trivial"):
            assert expected in names

    def test_make_ant(self):
        alg = make_algorithm("ant", gamma=0.02)
        assert isinstance(alg, AntAlgorithm)
        assert alg.gamma == 0.02

    def test_make_precise_sigmoid(self):
        alg = make_algorithm("precise_sigmoid", gamma=0.02, eps=0.5)
        assert alg.m == 41

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown algorithm"):
            make_algorithm("quantum_ant")

    def test_bad_kwargs_propagate(self):
        with pytest.raises(ConfigurationError):
            make_algorithm("ant", gamma=5.0)

    def test_register_custom(self):
        class Custom(AntAlgorithm):
            name = "custom_test_alg"

        register_algorithm("custom_test_alg", Custom)
        try:
            assert "custom_test_alg" in available_algorithms()
            alg = make_algorithm("custom_test_alg", gamma=0.01)
            assert isinstance(alg, Custom)
        finally:
            from repro.core import registry

            registry._FACTORIES.pop("custom_test_alg", None)

    def test_register_duplicate_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_algorithm("ant", AntAlgorithm)
