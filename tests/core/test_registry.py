"""Tests for the algorithm registry."""

from __future__ import annotations

import pytest

from repro.core.ant import AntAlgorithm
from repro.core.registry import (
    available_algorithms,
    make_algorithm,
    register_algorithm,
    unregister_algorithm,
)
from repro.exceptions import ConfigurationError


class TestRegistry:
    def test_available_contains_paper_algorithms(self):
        names = available_algorithms()
        for expected in ("ant", "precise_sigmoid", "precise_adversarial", "trivial"):
            assert expected in names

    def test_make_ant(self):
        alg = make_algorithm("ant", gamma=0.02)
        assert isinstance(alg, AntAlgorithm)
        assert alg.gamma == 0.02

    def test_make_precise_sigmoid(self):
        alg = make_algorithm("precise_sigmoid", gamma=0.02, eps=0.5)
        assert alg.m == 41

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown algorithm"):
            make_algorithm("quantum_ant")

    def test_unknown_name_lists_available(self):
        with pytest.raises(ConfigurationError, match="'ant'"):
            make_algorithm("quantum_ant")

    def test_bad_kwargs_propagate(self):
        with pytest.raises(ConfigurationError):
            make_algorithm("ant", gamma=5.0)

    def test_register_custom(self):
        class Custom(AntAlgorithm):
            name = "custom_test_alg"

        register_algorithm("custom_test_alg", Custom)
        try:
            assert "custom_test_alg" in available_algorithms()
            alg = make_algorithm("custom_test_alg", gamma=0.01)
            assert isinstance(alg, Custom)
        finally:
            unregister_algorithm("custom_test_alg")

    def test_register_duplicate_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_algorithm("ant", AntAlgorithm)

    def test_register_overwrite_allowed_when_explicit(self):
        class Custom(AntAlgorithm):
            pass

        register_algorithm("overwrite_test_alg", AntAlgorithm)
        try:
            register_algorithm("overwrite_test_alg", Custom, allow_overwrite=True)
            assert isinstance(make_algorithm("overwrite_test_alg", gamma=0.01), Custom)
        finally:
            unregister_algorithm("overwrite_test_alg")

    def test_unregister_unknown_rejected(self):
        with pytest.raises(ConfigurationError, match="cannot unregister"):
            unregister_algorithm("never_registered_alg")

    def test_unregister_removes(self):
        register_algorithm("ephemeral_test_alg", AntAlgorithm)
        unregister_algorithm("ephemeral_test_alg")
        assert "ephemeral_test_alg" not in available_algorithms()
