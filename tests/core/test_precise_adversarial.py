"""Unit tests for Algorithm Precise Adversarial's phase machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.precise_adversarial import PreciseAdversarialAlgorithm
from repro.exceptions import ConfigurationError
from repro.types import IDLE


def make_state(alg, assignment, k=2):
    assignment = np.asarray(assignment, dtype=np.int64)
    return alg.create_state(assignment.shape[0], k, assignment)


class TestConstruction:
    def test_subphase_lengths(self):
        alg = PreciseAdversarialAlgorithm(gamma=0.025, eps=0.5)
        assert alg.r1 == 64
        assert alg.r2 == 256
        assert alg.phase_length == 320

    def test_probabilities(self):
        alg = PreciseAdversarialAlgorithm(gamma=0.032, eps=0.5)
        assert alg.pause_probability == pytest.approx(0.032 * 0.5 / 32.0)
        assert alg.leave_probability == alg.pause_probability

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            PreciseAdversarialAlgorithm(gamma=0.1, eps=0.5)
        with pytest.raises(ConfigurationError):
            PreciseAdversarialAlgorithm(gamma=0.025, eps=1.5)


class TestPhaseMechanics:
    def test_gradual_pause_monotone(self):
        alg = PreciseAdversarialAlgorithm(gamma=0.0625, eps=0.9)
        n = 50_000
        gen = np.random.default_rng(0)
        st = make_state(alg, np.zeros(n, dtype=np.int64))
        overload = np.zeros((n, 2), dtype=bool)
        working_counts = []
        for t in range(1, alg.r1):
            alg.step(st, t, overload, gen)
            working_counts.append(int((st.assignment == 0).sum()))
        # Workers only drop during sub-phase 1.
        assert all(a >= b for a, b in zip(working_counts, working_counts[1:]))
        # Total expected drop: (r1-2) rounds at pause_probability each.
        expected = n * (1.0 - alg.pause_probability) ** (alg.r1 - 2)
        assert working_counts[-1] == pytest.approx(expected, rel=0.05)

    def test_all_overload_reverts_to_pause_state(self):
        """Ants that never saw LACK hold their paused/working status at r1."""
        alg = PreciseAdversarialAlgorithm(gamma=0.0625, eps=0.9)
        n = 20_000
        gen = np.random.default_rng(1)
        st = make_state(alg, np.zeros(n, dtype=np.int64))
        overload = np.zeros((n, 2), dtype=bool)
        for t in range(1, alg.r1 + 1):
            alg.step(st, t, overload, gen)
        # rmin = r1 for everyone; paused ants stay idle, others work.
        paused = st.pause_round < np.iinfo(np.int32).max
        np.testing.assert_array_equal(st.assignment[paused], IDLE)
        np.testing.assert_array_equal(st.assignment[~paused], 0)

    def test_lack_at_round_one_works_through_subphase2(self, rng):
        """An ant whose own task lacked at round 1 holds its task at r1
        (it cannot have paused before round 2)."""
        alg = PreciseAdversarialAlgorithm(gamma=0.025, eps=0.5)
        st = make_state(alg, [0] * 10)
        lack = np.ones((10, 2), dtype=bool)
        alg.step(st, 1, lack, rng)
        overload = np.zeros((10, 2), dtype=bool)
        for t in range(2, alg.r1 + 1):
            alg.step(st, t, overload, rng)
        assert (st.assignment == 0).all()

    def test_hold_through_subphase2(self, rng):
        alg = PreciseAdversarialAlgorithm(gamma=0.025, eps=0.5)
        st = make_state(alg, [0] * 5)
        lack = np.ones((5, 2), dtype=bool)
        for t in range(1, alg.r1 + 1):
            alg.step(st, t, lack, rng)
        held = st.assignment.copy()
        for t in range(alg.r1 + 1, alg.phase_length):
            alg.step(st, t, lack, rng)
            np.testing.assert_array_equal(st.assignment, held)

    def test_join_requires_all_rounds_lack(self, rng):
        alg = PreciseAdversarialAlgorithm(gamma=0.025, eps=0.5)
        st = make_state(alg, [IDLE] * 10)
        lack = np.ones((10, 2), dtype=bool)
        # All rounds LACK except one in the middle of sub-phase 2.
        for t in range(1, alg.phase_length + 1):
            f = lack.copy()
            if t == alg.r1 + 5:
                f[:, 0] = False
            alg.step(st, t, f, rng)
        # Task 0 had one OVERLOAD reading -> not joinable; all join task 1.
        assert (st.assignment == 1).all()

    def test_join_all_lack(self, rng):
        alg = PreciseAdversarialAlgorithm(gamma=0.025, eps=0.5)
        st = make_state(alg, [IDLE] * 40)
        lack = np.ones((40, 2), dtype=bool)
        for t in range(1, alg.phase_length + 1):
            alg.step(st, t, lack, rng)
        assert (st.assignment != IDLE).all()

    def test_leave_requires_all_rounds_overload(self):
        alg = PreciseAdversarialAlgorithm(gamma=0.0625, eps=0.9)
        n = 100_000
        gen = np.random.default_rng(2)
        st = make_state(alg, np.zeros(n, dtype=np.int64))
        overload = np.zeros((n, 2), dtype=bool)
        for t in range(1, alg.phase_length + 1):
            alg.step(st, t, overload, gen)
        left = (st.assignment == IDLE).mean()
        assert left == pytest.approx(alg.leave_probability, rel=0.2)

    def test_one_lack_prevents_leave(self, rng):
        alg = PreciseAdversarialAlgorithm(gamma=0.025, eps=0.5)
        st = make_state(alg, [0] * 50)
        for t in range(1, alg.phase_length + 1):
            f = np.zeros((50, 2), dtype=bool)
            if t == 3:
                f[:, 0] = True  # one LACK reading on their own task
            alg.step(st, t, f, rng)
        # No ant may leave permanently; all end the phase back on task 0.
        assert (st.assignment == 0).all()
