"""Tests for the single-scout Algorithm Ant variant (Remark 3.4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ant import AntAlgorithm
from repro.core.scout import ScoutAntAlgorithm
from repro.env.critical import lambda_for_critical_value
from repro.env.demands import uniform_demands
from repro.env.feedback import SigmoidFeedback
from repro.sim.engine import Simulator
from repro.types import IDLE


def make_state(alg, assignment, k=3):
    assignment = np.asarray(assignment, dtype=np.int64)
    return alg.create_state(assignment.shape[0], k, assignment)


class TestScoutMechanics:
    def test_memory_is_k_light(self):
        alg = ScoutAntAlgorithm(gamma=0.025)
        full = AntAlgorithm(gamma=0.025)
        assert alg.memory_bits(8) < full.memory_bits(8)

    def test_idle_join_only_scout_target(self, rng):
        alg = ScoutAntAlgorithm(gamma=0.025)
        st = make_state(alg, [IDLE] * 2000)
        lack = np.ones((2000, 3), dtype=bool)
        alg.step(st, 1, lack, rng)
        targets = st.scout_target.copy()
        alg.step(st, 2, lack, rng)
        # Every joiner joined exactly the task it scouted.
        joined = st.assignment != IDLE
        assert joined.all()
        np.testing.assert_array_equal(st.assignment, targets)
        # Targets are roughly uniform over tasks.
        counts = np.bincount(targets, minlength=3)
        np.testing.assert_allclose(counts / 2000, 1 / 3, atol=0.05)

    def test_join_needs_both_reads_lack(self, rng):
        alg = ScoutAntAlgorithm(gamma=0.025)
        st = make_state(alg, [IDLE] * 100)
        alg.step(st, 1, np.ones((100, 3), dtype=bool), rng)
        alg.step(st, 2, np.zeros((100, 3), dtype=bool), rng)
        assert (st.assignment == IDLE).all()

    def test_worker_leave_on_double_overload(self):
        alg = ScoutAntAlgorithm(gamma=0.0625)
        n = 200_000
        gen = np.random.default_rng(0)
        st = make_state(alg, np.zeros(n, dtype=np.int64))
        overload = np.zeros((n, 3), dtype=bool)
        alg.step(st, 1, overload, gen)
        alg.step(st, 2, overload, gen)
        assert (st.assignment == IDLE).mean() == pytest.approx(
            alg.leave_probability, rel=0.15
        )

    def test_worker_watches_own_task(self, rng):
        alg = ScoutAntAlgorithm(gamma=0.025)
        st = make_state(alg, [1] * 50)
        # Own task (1) lacks; others overloaded -> nobody leaves.
        lack = np.zeros((50, 3), dtype=bool)
        lack[:, 1] = True
        alg.step(st, 1, lack, rng)
        np.testing.assert_array_equal(st.scout_target, 1)
        alg.step(st, 2, lack, rng)
        assert (st.assignment == 1).all()


class TestScoutBehaviour:
    @pytest.mark.slow
    def test_same_steady_closeness_as_full_ant(self):
        """Remark 3.4: only the initial cost changes, not the steady state."""
        demand = uniform_demands(n=8000, k=4)
        gs = 0.01
        lam = lambda_for_critical_value(demand, gamma_star=gs)
        rounds, burn = 12000, 8000
        out_scout = Simulator(
            ScoutAntAlgorithm(gamma=0.025), demand, SigmoidFeedback(lam), seed=0
        ).run(rounds, burn_in=burn)
        out_full = Simulator(
            AntAlgorithm(gamma=0.025), demand, SigmoidFeedback(lam), seed=0
        ).run(rounds, burn_in=burn)
        c_scout = out_scout.metrics.closeness(gs, demand.total)
        c_full = out_full.metrics.closeness(gs, demand.total)
        assert c_scout <= 12.5  # Theorem 3.1 bound still holds
        assert c_scout == pytest.approx(c_full, rel=0.5)

    def test_registry(self):
        from repro.core.registry import make_algorithm

        alg = make_algorithm("ant_scout", gamma=0.02)
        assert isinstance(alg, ScoutAntAlgorithm)
