"""Unit tests for the trivial algorithm (Appendix D)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.trivial import TrivialAlgorithm
from repro.exceptions import ConfigurationError
from repro.types import IDLE


def make_state(alg, assignment, k=2):
    assignment = np.asarray(assignment, dtype=np.int64)
    return alg.create_state(assignment.shape[0], k, assignment)


class TestSynchronousStep:
    def test_idle_join_on_lack(self, rng):
        alg = TrivialAlgorithm()
        st = make_state(alg, [IDLE] * 10)
        lack = np.zeros((10, 2), dtype=bool)
        lack[:, 1] = True
        alg.step(st, 1, lack, rng)
        assert (st.assignment == 1).all()

    def test_idle_stay_when_nothing_lacks(self, rng):
        alg = TrivialAlgorithm()
        st = make_state(alg, [IDLE] * 10)
        alg.step(st, 1, np.zeros((10, 2), dtype=bool), rng)
        assert (st.assignment == IDLE).all()

    def test_leave_on_overload(self, rng):
        alg = TrivialAlgorithm()
        st = make_state(alg, [0] * 10)
        alg.step(st, 1, np.zeros((10, 2), dtype=bool), rng)
        assert (st.assignment == IDLE).all()

    def test_stay_on_lack(self, rng):
        alg = TrivialAlgorithm()
        st = make_state(alg, [0] * 10)
        alg.step(st, 1, np.ones((10, 2), dtype=bool), rng)
        assert (st.assignment == 0).all()

    def test_damped_leave(self):
        alg = TrivialAlgorithm(leave_probability=0.25)
        n = 100_000
        gen = np.random.default_rng(0)
        st = make_state(alg, np.zeros(n, dtype=np.int64))
        alg.step(st, 1, np.zeros((n, 2), dtype=bool), gen)
        assert (st.assignment == IDLE).mean() == pytest.approx(0.25, abs=0.01)

    def test_damped_join(self):
        alg = TrivialAlgorithm(join_probability=0.25)
        n = 100_000
        gen = np.random.default_rng(0)
        st = make_state(alg, np.full(n, IDLE, dtype=np.int64))
        alg.step(st, 1, np.ones((n, 2), dtype=bool), gen)
        assert (st.assignment != IDLE).mean() == pytest.approx(0.25, abs=0.01)

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ConfigurationError):
            TrivialAlgorithm(leave_probability=0.0)
        with pytest.raises(ConfigurationError):
            TrivialAlgorithm(join_probability=1.5)


class TestSequentialStep:
    def test_single_idle_joins(self, rng):
        alg = TrivialAlgorithm()
        st = make_state(alg, [IDLE, 0])
        alg.step_single(st, 0, np.array([True, False]), rng)
        assert st.assignment[0] == 0
        assert st.assignment[1] == 0  # untouched

    def test_single_leaves_on_overload(self, rng):
        alg = TrivialAlgorithm()
        st = make_state(alg, [0])
        alg.step_single(st, 0, np.array([False, False]), rng)
        assert st.assignment[0] == IDLE

    def test_single_stays_on_lack(self, rng):
        alg = TrivialAlgorithm()
        st = make_state(alg, [1])
        alg.step_single(st, 0, np.array([False, True]), rng)
        assert st.assignment[0] == 1

    def test_single_join_among_lacking_only(self, rng):
        alg = TrivialAlgorithm()
        for _ in range(20):
            st = make_state(alg, [IDLE])
            alg.step_single(st, 0, np.array([False, True]), rng)
            assert st.assignment[0] == 1

    def test_single_idle_no_lack_stays(self, rng):
        alg = TrivialAlgorithm()
        st = make_state(alg, [IDLE])
        alg.step_single(st, 0, np.array([False, False]), rng)
        assert st.assignment[0] == IDLE
