"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


def pytest_configure(config):
    # addopts applies '-m "not slow"' so the default tier stays fast, but
    # a test explicitly selected by node id (path::test) should always
    # run: drop the addopts default when every positional arg names one
    # and the user gave no -m/--markexpr of their own on the command line.
    explicit_m = any(
        a.startswith("--markexpr") or (a.startswith("-m") and not a.startswith("--"))
        for a in config.invocation_params.args
    )
    args = config.args
    if not explicit_m and args and all("::" in a for a in args):
        config.option.markexpr = ""

from repro.core.ant import AntAlgorithm
from repro.env.critical import lambda_for_critical_value
from repro.env.demands import DemandVector, uniform_demands
from repro.env.feedback import SigmoidFeedback


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_demand() -> DemandVector:
    """2000 ants, 4 tasks of demand 250 — the standard small test colony."""
    return uniform_demands(n=2000, k=4)


@pytest.fixture
def stable_demand() -> DemandVector:
    """8000 ants, 4 tasks of demand 1000 — large enough that Algorithm
    Ant's resting band is non-empty at gamma = 2.5 * gamma* = 0.025."""
    return uniform_demands(n=8000, k=4)


@pytest.fixture
def gamma_star() -> float:
    return 0.01


@pytest.fixture
def sigmoid(stable_demand, gamma_star) -> SigmoidFeedback:
    lam = lambda_for_critical_value(stable_demand, gamma_star=gamma_star)
    return SigmoidFeedback(lam)


@pytest.fixture
def ant() -> AntAlgorithm:
    return AntAlgorithm(gamma=0.025)
