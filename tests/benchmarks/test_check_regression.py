"""Unit tests for the CI benchmark-regression gate.

The gate script lives in ``benchmarks/`` (not an installed package), so
it is loaded straight from its file.  The committed baseline
``BENCH_counting.json`` doubles as a fixture: the acceptance criterion
"a synthetic 2x slowdown injected into the baseline makes the gate
fail" is demonstrated against the real record, not a toy one.
"""

from __future__ import annotations

import copy
import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

_spec = importlib.util.spec_from_file_location(
    "check_regression", REPO_ROOT / "benchmarks" / "check_regression.py"
)
check_regression = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_regression)


@pytest.fixture
def record() -> dict:
    return {
        "kernel": {
            "k=64": {"seconds_per_call": 0.002, "calls_per_second": 500.0},
            "k=1024": {"seconds_per_call": 0.05, "calls_per_second": 20.0},
        },
        "join_kernel_methods": {
            "k=8192": {"quadrature_seconds_per_call": 0.1, "speedup_vs_dp": 40.0}
        },
        "speedup_at_k12": 200.0,
        "floors": {
            "speedup_at_k12": 10.0,
            "join_kernel_methods.k=8192.speedup_vs_dp": 2.0,
        },
    }


class TestCheckRegressions:
    def test_identical_records_pass(self, record):
        assert check_regression.check_regressions(record, copy.deepcopy(record)) == []

    def test_two_x_slowdown_fails(self, record):
        fresh = copy.deepcopy(record)
        fresh["kernel"]["k=1024"]["seconds_per_call"] *= 2.0
        violations = check_regression.check_regressions(record, fresh)
        assert len(violations) == 1
        assert "kernel.k=1024.seconds_per_call" in violations[0]
        assert "2.00x" in violations[0]

    def test_slowdown_within_budget_passes(self, record):
        fresh = copy.deepcopy(record)
        fresh["kernel"]["k=1024"]["seconds_per_call"] *= 1.4
        assert check_regression.check_regressions(record, fresh) == []

    def test_budget_is_configurable(self, record):
        fresh = copy.deepcopy(record)
        fresh["kernel"]["k=1024"]["seconds_per_call"] *= 1.4
        assert check_regression.check_regressions(record, fresh, max_slowdown=1.2)

    def test_speedup_below_floor_fails(self, record):
        fresh = copy.deepcopy(record)
        fresh["join_kernel_methods"]["k=8192"]["speedup_vs_dp"] = 1.5
        violations = check_regression.check_regressions(record, fresh)
        assert len(violations) == 1
        assert "floor" in violations[0]

    def test_faster_fresh_run_passes(self, record):
        fresh = copy.deepcopy(record)
        fresh["kernel"]["k=1024"]["seconds_per_call"] /= 10.0
        fresh["speedup_at_k12"] = 2000.0
        assert check_regression.check_regressions(record, fresh) == []

    def test_missing_timing_fails(self, record):
        fresh = copy.deepcopy(record)
        del fresh["kernel"]["k=64"]
        violations = check_regression.check_regressions(record, fresh)
        assert any("missing" in v and "k=64" in v for v in violations)

    def test_missing_floored_ratio_fails(self, record):
        fresh = copy.deepcopy(record)
        del fresh["speedup_at_k12"]
        violations = check_regression.check_regressions(record, fresh)
        assert any("speedup_at_k12" in v and "missing" in v for v in violations)

    def test_higher_is_better_rates_are_not_timings(self, record):
        # calls_per_second halving must NOT trip the timing check (the
        # matching seconds_per_call leaf is the canonical timing).
        fresh = copy.deepcopy(record)
        fresh["kernel"]["k=64"]["calls_per_second"] /= 2.0
        assert check_regression.check_regressions(record, fresh) == []

    def test_baseline_without_floors_only_checks_timings(self, record):
        del record["floors"]
        fresh = copy.deepcopy(record)
        fresh["speedup_at_k12"] = 0.1  # no floor -> not gated
        assert check_regression.check_regressions(record, fresh) == []


class TestAgainstCommittedBaseline:
    """The acceptance-criterion demo, against the real committed record."""

    @pytest.fixture
    def baseline(self) -> dict:
        with open(REPO_ROOT / "BENCH_counting.json", encoding="utf-8") as f:
            return json.load(f)

    def test_baseline_passes_against_itself(self, baseline):
        assert check_regression.check_regressions(baseline, copy.deepcopy(baseline)) == []

    def test_synthetic_two_x_slowdown_fails_the_gate(self, baseline):
        fresh = copy.deepcopy(baseline)
        fresh["join_kernel_methods"]["k=8192"]["quadrature_seconds_per_call"] *= 2.0
        violations = check_regression.check_regressions(baseline, fresh)
        assert violations, "a 2x quadrature-kernel slowdown must fail the gate"
        assert any("quadrature_seconds_per_call" in v for v in violations)

    def test_baseline_carries_the_quadrature_floors(self, baseline):
        floors = baseline["floors"]
        assert floors["join_kernel_methods.k=8192.speedup_vs_dp"] >= 1.0
        assert floors["join_kernel_methods.k=8192.speedup_vs_fft"] >= 1.0
        # And the recorded run actually cleared them: quadrature beat
        # both deconvolution back ends end to end at k = 8192.
        row = baseline["join_kernel_methods"]["k=8192"]
        assert row["speedup_vs_dp"] > 1.0 and row["speedup_vs_fft"] > 1.0


class TestMainCli:
    def _write(self, path: Path, record: dict) -> str:
        path.write_text(json.dumps(record), encoding="utf-8")
        return str(path)

    def test_exit_zero_on_pass_and_one_on_fail(self, tmp_path, record, capsys):
        base = self._write(tmp_path / "base.json", record)
        good = self._write(tmp_path / "good.json", copy.deepcopy(record))
        slow = copy.deepcopy(record)
        slow["kernel"]["k=1024"]["seconds_per_call"] *= 2.0
        bad = self._write(tmp_path / "bad.json", slow)

        assert check_regression.main(["--baseline", base, "--fresh", good]) == 0
        assert "passed" in capsys.readouterr().out
        assert check_regression.main(["--baseline", base, "--fresh", bad]) == 1
        out = capsys.readouterr().out
        assert "FAILED" in out and "kernel.k=1024.seconds_per_call" in out

    def test_max_slowdown_flag(self, tmp_path, record):
        base = self._write(tmp_path / "base.json", record)
        slow = copy.deepcopy(record)
        slow["kernel"]["k=1024"]["seconds_per_call"] *= 1.4
        fresh = self._write(tmp_path / "fresh.json", slow)
        assert check_regression.main(["--baseline", base, "--fresh", fresh]) == 0
        assert (
            check_regression.main(
                ["--baseline", base, "--fresh", fresh, "--max-slowdown", "1.2"]
            )
            == 1
        )
