"""Tests for the terminal plotting helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.util.ascii_plot import histogram, line_plot, multi_line_plot


class TestLinePlot:
    def test_contains_title_and_legend(self):
        out = line_plot([0, 1, 2], [1, 2, 3], title="T", ylabel="y")
        assert "T" in out and "legend" in out

    def test_empty_input(self):
        assert "empty" in line_plot([], [])

    def test_constant_series_no_crash(self):
        out = line_plot([0, 1, 2], [5, 5, 5])
        assert "*" in out

    def test_dimensions(self):
        out = line_plot(np.arange(50), np.arange(50), width=40, height=8)
        plot_lines = [l for l in out.splitlines() if "|" in l]
        assert len(plot_lines) == 8

    def test_nan_tolerated(self):
        out = line_plot([0, 1, 2, 3], [1.0, float("nan"), 3.0, 4.0])
        assert "*" in out


class TestMultiLinePlot:
    def test_two_series_two_markers(self):
        out = multi_line_plot([0, 1, 2], {"a": [1, 2, 3], "b": [3, 2, 1]})
        assert "*=a" in out and "+=b" in out

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            multi_line_plot([0, 1], {"a": [1, 2, 3]})

    def test_xlabel_rendered(self):
        out = multi_line_plot([0, 1], {"a": [0, 1]}, xlabel="rounds")
        assert "rounds" in out


class TestHistogram:
    def test_counts_present(self):
        out = histogram([1, 1, 2, 3], bins=3)
        assert "#" in out

    def test_empty(self):
        assert "no data" in histogram([])

    def test_title(self):
        assert "H" in histogram([1, 2], title="H")
