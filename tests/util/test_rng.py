"""Tests for reproducible RNG management."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.util.rng import RngFactory, as_generator, spawn_generators


class TestAsGenerator:
    def test_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_int_seed_deterministic(self):
        a = as_generator(7).integers(1 << 30)
        b = as_generator(7).integers(1 << 30)
        assert a == b

    def test_seed_sequence(self):
        seq = np.random.SeedSequence(3)
        g = as_generator(seq)
        assert isinstance(g, np.random.Generator)

    def test_none_gives_fresh_entropy(self):
        # Two None-seeded generators should (overwhelmingly) differ.
        a = as_generator(None).integers(1 << 62)
        b = as_generator(None).integers(1 << 62)
        assert a != b  # collision probability ~2^-62

    def test_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            as_generator("not a seed")


class TestSpawnGenerators:
    def test_count(self):
        gens = spawn_generators(0, 5)
        assert len(gens) == 5

    def test_independent_streams(self):
        a, b = spawn_generators(0, 2)
        assert a.integers(1 << 30) != b.integers(1 << 30) or a.integers(1 << 30) != b.integers(
            1 << 30
        )

    def test_reproducible(self):
        xs = [g.integers(1 << 30) for g in spawn_generators(9, 3)]
        ys = [g.integers(1 << 30) for g in spawn_generators(9, 3)]
        assert xs == ys

    def test_from_generator(self):
        gens = spawn_generators(np.random.default_rng(1), 3)
        assert len(gens) == 3

    def test_rejects_negative_count(self):
        with pytest.raises(ConfigurationError):
            spawn_generators(0, -1)


class TestRngFactory:
    def test_same_name_same_stream_object(self):
        f = RngFactory(5)
        assert f.stream("a") is f.stream("a")

    def test_different_names_different_draws(self):
        f = RngFactory(5)
        assert f.stream("a").integers(1 << 30) != f.stream("b").integers(1 << 30)

    def test_reproducible_across_factories(self):
        x = RngFactory(5).stream("feedback").integers(1 << 30)
        y = RngFactory(5).stream("feedback").integers(1 << 30)
        assert x == y

    def test_order_independent(self):
        f1 = RngFactory(5)
        f1.stream("a")
        x = f1.stream("b").integers(1 << 30)
        f2 = RngFactory(5)
        y = f2.stream("b").integers(1 << 30)  # created first this time
        assert x == y

    def test_root_entropy_exposed(self):
        assert RngFactory(5).root_entropy == (5,)

    def test_spawn(self):
        gens = RngFactory(5).spawn(4)
        assert len(gens) == 4
        draws = {int(g.integers(1 << 62)) for g in gens}
        assert len(draws) == 4
