"""Bit-identity pins for the block binomial sampler.

:class:`~repro.util.rng_block.BinomialBlockSampler` claims its vectorized
replay of numpy's inversion sampler is *bit-identical* to per-lane
``Generator.binomial`` calls — drawn values AND the generator's stream
position afterwards.  These tests replay many random configurations
against freshly seeded reference generators and check both, plus the
fallback guards (the sampler must return ``None`` with untouched
generators anywhere outside the inversion regime) and the
astronomically-rare reset branch (forced via a doctored bound table and
checked against a pure-scalar replay of the C loop).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.util.rng_block import (
    INVERSION_NP_MAX,
    MAX_DISTINCT_P,
    NP_MEAN_MAX,
    BinomialBlockSampler,
    _scalar_inversion,
    _setup,
)


def _rngs(seed: int, batch: int) -> list[np.random.Generator]:
    return [
        np.random.Generator(np.random.PCG64(np.random.SeedSequence([seed, b])))
        for b in range(batch)
    ]


def _assert_same_stream(rngs_a, rngs_b) -> None:
    """Both generator lists must sit at the same stream position."""
    for a, b in zip(rngs_a, rngs_b):
        np.testing.assert_array_equal(a.random(4), b.random(4))


class TestScalarP:
    def test_matches_per_lane_binomial_and_stream_position(self):
        base = np.random.default_rng(0)
        sampler = BinomialBlockSampler()
        for trial in range(200):
            B = int(base.integers(1, 6))
            k = int(base.integers(1, 40))
            n_max = int(base.integers(1, 30))
            p = float(base.uniform(0.0005, 0.5))
            while n_max * p > NP_MEAN_MAX:
                n_max = max(1, n_max // 2)
            n = base.integers(0, n_max + 1, size=(B, k)).astype(np.int64)
            ours, ref = _rngs(trial, B), _rngs(trial, B)
            drawn = sampler.draw(ours, n, p)
            assert drawn is not None
            expected = np.stack([ref[b].binomial(n[b], p) for b in range(B)])
            np.testing.assert_array_equal(drawn, expected)
            _assert_same_stream(ours, ref)

    def test_p_zero_draws_nothing_and_consumes_nothing(self):
        sampler = BinomialBlockSampler()
        ours, ref = _rngs(1, 3), _rngs(1, 3)
        n = np.full((3, 5), 7, dtype=np.int64)
        np.testing.assert_array_equal(sampler.draw(ours, n, 0.0), np.zeros((3, 5)))
        _assert_same_stream(ours, ref)

    def test_n_zero_elements_consume_nothing(self):
        # The C wrapper returns 0 without touching the stream for n == 0;
        # the block draw must skip those elements' uniforms too.
        sampler = BinomialBlockSampler()
        n = np.array([[0, 3, 0, 5, 0]], dtype=np.int64)
        ours, ref = _rngs(2, 1), _rngs(2, 1)
        drawn = sampler.draw(ours, n, 0.25)
        np.testing.assert_array_equal(drawn[0], ref[0].binomial(n[0], 0.25))
        _assert_same_stream(ours, ref)


class TestArrayP:
    def test_single_distinct_value_matches(self):
        base = np.random.default_rng(3)
        sampler = BinomialBlockSampler()
        for trial in range(50):
            B, k = int(base.integers(1, 5)), int(base.integers(2, 30))
            v = float(base.uniform(0.001, 0.4))
            n = base.integers(0, 8, size=(B, k)).astype(np.int64)
            p = np.full((B, k), v)
            p[base.random((B, k)) < 0.3] = 0.0  # mixed zero/active entries
            ours, ref = _rngs(100 + trial, B), _rngs(100 + trial, B)
            drawn = sampler.draw(ours, n, p)
            assert drawn is not None
            expected = np.stack([ref[b].binomial(n[b], p[b]) for b in range(B)])
            np.testing.assert_array_equal(drawn, expected)
            _assert_same_stream(ours, ref)

    def test_multiple_distinct_values_match(self):
        base = np.random.default_rng(4)
        sampler = BinomialBlockSampler()
        values = np.array([0.02, 0.1, 0.25, 0.4])
        for trial in range(50):
            B, k = int(base.integers(1, 4)), int(base.integers(2, 25))
            n = base.integers(0, 9, size=(B, k)).astype(np.int64)
            p = values[base.integers(0, len(values), size=(B, k))]
            ours, ref = _rngs(200 + trial, B), _rngs(200 + trial, B)
            drawn = sampler.draw(ours, n, p)
            assert drawn is not None
            expected = np.stack([ref[b].binomial(n[b], p[b]) for b in range(B)])
            np.testing.assert_array_equal(drawn, expected)
            _assert_same_stream(ours, ref)

    def test_all_inactive_returns_zeros_without_consuming(self):
        sampler = BinomialBlockSampler()
        ours, ref = _rngs(5, 2), _rngs(5, 2)
        n = np.array([[0, 0], [3, 4]], dtype=np.int64)
        p = np.array([[0.3, 0.3], [0.0, 0.0]])
        np.testing.assert_array_equal(sampler.draw(ours, n, p), np.zeros((2, 2)))
        _assert_same_stream(ours, ref)


class TestFallbackGuards:
    """Anywhere outside the inversion regime: ``None``, generators untouched."""

    def _assert_fallback(self, n, p):
        sampler = BinomialBlockSampler()
        ours, ref = _rngs(9, n.shape[0]), _rngs(9, n.shape[0])
        assert sampler.draw(ours, n, p) is None
        _assert_same_stream(ours, ref)

    def test_scalar_p_above_half(self):
        self._assert_fallback(np.full((2, 3), 2, dtype=np.int64), 0.6)

    def test_scalar_large_mean_delegates(self):
        n = np.full((2, 3), 40, dtype=np.int64)
        assert 40 * 0.2 > NP_MEAN_MAX and 40 * 0.2 <= INVERSION_NP_MAX
        self._assert_fallback(n, 0.2)

    def test_array_p_above_half(self):
        p = np.array([[0.2, 0.7], [0.2, 0.2]])
        self._assert_fallback(np.full((2, 2), 2, dtype=np.int64), p)

    def test_array_large_mean_delegates(self):
        p = np.full((1, 2), 0.3)
        self._assert_fallback(np.array([[2, 30]], dtype=np.int64), p)

    def test_negative_p_delegates(self):
        self._assert_fallback(np.full((1, 2), 2, dtype=np.int64), -0.1)
        self._assert_fallback(
            np.full((1, 2), 2, dtype=np.int64), np.array([[0.2, -0.1]])
        )

    def test_too_many_distinct_values_delegates(self):
        k = MAX_DISTINCT_P + 5
        p = np.linspace(0.01, 0.2, k).reshape(1, k)
        self._assert_fallback(np.full((1, k), 2, dtype=np.int64), p)


class TestResetBranch:
    """The bound-overflow reset (probability ~1e-16 per element in real
    runs) forced deterministically by doctoring the cached bound table,
    then checked against a pure-scalar replay consuming the same stream."""

    def _scalar_reference(self, rng, n_row, p, qn_t, bound_t):
        out = np.zeros_like(n_row)
        for j, nv in enumerate(n_row):
            if nv > 0:
                out[j] = _scalar_inversion(
                    lambda: float(rng.random()),
                    int(nv),
                    p,
                    float(qn_t[nv]),
                    int(bound_t[nv]),
                )
        return out

    def test_forced_resets_match_scalar_replay(self):
        p = 0.3
        base = np.random.default_rng(11)
        for trial in range(30):
            B, k = int(base.integers(1, 4)), int(base.integers(3, 20))
            n = base.integers(0, 7, size=(B, k)).astype(np.int64)
            sampler = BinomialBlockSampler()
            qn_t, bound_t = sampler._scalar_tables(p, int(n.max()))
            # Clamp every bound to 1: any draw reaching X = 2 now resets,
            # which happens constantly at these n, p.
            bound_t = np.minimum(bound_t, 1)
            sampler._tables[p] = (qn_t, bound_t)
            ours, ref = _rngs(300 + trial, B), _rngs(300 + trial, B)
            drawn = sampler.draw(ours, n, p)
            assert drawn is not None
            expected = np.stack(
                [self._scalar_reference(ref[b], n[b], p, qn_t, bound_t) for b in range(B)]
            )
            np.testing.assert_array_equal(drawn, expected)
            _assert_same_stream(ours, ref)

    def test_scalar_inversion_reset_consumes_fresh_uniform(self):
        # bound = 0 forces a reset on the very first increment; the
        # element restarts on the next uniform exactly like the C loop.
        qn, _ = _setup(5, 0.3)
        uniforms = iter([0.9999, 0.001])
        x = _scalar_inversion(lambda: next(uniforms), 5, 0.3, qn, 0)
        assert x == 0  # second uniform is below qn, so X stays 0

    def test_setup_matches_numpy_regime_bound(self):
        # Sanity on the cached setup: qn = (1-p)^n within float rounding,
        # and the bound never exceeds n.
        for n in (1, 5, 17):
            for p in (0.01, 0.2, 0.5):
                qn, bound = _setup(n, p)
                assert qn == pytest.approx((1.0 - p) ** n, rel=1e-12)
                assert 0 <= bound <= n


class TestTableCache:
    def test_tables_grow_and_are_reused(self):
        sampler = BinomialBlockSampler()
        qn_a, _ = sampler._scalar_tables(0.1, 10)
        qn_b, _ = sampler._scalar_tables(0.1, 5)
        assert qn_a is qn_b  # no regrowth for a smaller n
        qn_c, _ = sampler._scalar_tables(0.1, 4 * qn_a.size)
        assert qn_c.size > qn_a.size
        np.testing.assert_array_equal(qn_c[: qn_a.size], qn_a)
