"""Unit + property tests for the math helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.util.mathx as mathx
from repro.exceptions import ConfigurationError
from repro.util.mathx import (
    ENUMERATION_K_LIMIT,
    FFT_K_THRESHOLD,
    QUADRATURE_K_THRESHOLD,
    enumerate_subset_join_probabilities,
    exact_join_probabilities,
    fft_join_probabilities,
    fft_poisson_binomial_pmf,
    inverse_logistic,
    log1pexp,
    logistic,
    poisson_binomial_pmf,
    quadrature_join_probabilities,
    resolve_join_kernel_method,
    sigmoid_lack_probability,
)


class TestLogistic:
    def test_at_zero(self):
        assert logistic(0.0) == pytest.approx(0.5)

    def test_saturates_high(self):
        assert logistic(1000.0) == pytest.approx(1.0)

    def test_saturates_low(self):
        assert logistic(-1000.0) == pytest.approx(0.0)

    def test_no_overflow_extreme(self):
        # Must not warn or produce NaN at extreme arguments.
        vals = logistic(np.array([-1e8, -750.0, 750.0, 1e8]))
        assert np.all(np.isfinite(vals))
        assert vals[0] == 0.0 and vals[-1] == 1.0

    def test_vector_shape_preserved(self):
        x = np.linspace(-5, 5, 17).reshape(17, 1)
        assert logistic(x).shape == (17, 1)

    @given(st.floats(min_value=-500, max_value=500))
    def test_antisymmetry(self, x):
        # s(-x) == 1 - s(x), the property Definition 2.3 relies on.
        assert logistic(-x) == pytest.approx(1.0 - logistic(x), abs=1e-12)

    @given(st.floats(min_value=-100, max_value=100), st.floats(min_value=-100, max_value=100))
    def test_monotone(self, a, b):
        lo, hi = min(a, b), max(a, b)
        assert logistic(lo) <= logistic(hi) + 1e-15

    @given(st.floats(min_value=-20, max_value=20))
    def test_inverse_roundtrip(self, x):
        # Precision degrades as the sigmoid saturates (1-p loses bits),
        # so the property is asserted on the numerically meaningful range.
        assert inverse_logistic(logistic(x)) == pytest.approx(x, rel=1e-5, abs=1e-5)

    def test_inverse_rejects_boundary(self):
        with pytest.raises(ConfigurationError):
            inverse_logistic(0.0)
        with pytest.raises(ConfigurationError):
            inverse_logistic(1.0)


class TestLog1pExp:
    @given(st.floats(min_value=-700, max_value=700))
    def test_matches_naive_where_safe(self, x):
        if abs(x) < 30:
            assert log1pexp(x) == pytest.approx(np.log1p(np.exp(x)), rel=1e-12)

    def test_large_argument_linear(self):
        assert log1pexp(1000.0) == pytest.approx(1000.0)

    def test_very_negative_is_zero(self):
        assert log1pexp(-1000.0) == pytest.approx(0.0, abs=1e-300)


class TestSigmoidLackProbability:
    def test_rejects_nonpositive_lambda(self):
        with pytest.raises(ConfigurationError):
            sigmoid_lack_probability(np.zeros(3), 0.0)

    def test_per_task_lambda_vector(self):
        # Each task gets its own steepness; at deficit 0 all read 1/2.
        lam = np.array([0.5, 1.0, 2.0])
        np.testing.assert_allclose(
            sigmoid_lack_probability(np.zeros(3), lam), 0.5
        )
        p = sigmoid_lack_probability(np.array([1.0, 1.0, 1.0]), lam)
        assert p[0] < p[1] < p[2]  # steeper lambda, sharper response

    def test_per_task_lambda_rejects_nonpositive_entry(self):
        with pytest.raises(ConfigurationError):
            sigmoid_lack_probability(np.zeros(3), np.array([1.0, 0.0, 2.0]))

    def test_per_task_lambda_rejects_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            sigmoid_lack_probability(np.zeros(3), np.array([1.0, 2.0]))

    def test_per_task_lambda_matches_scalar_per_entry(self):
        deficits = np.array([-3.0, 0.5, 7.0])
        lam = np.array([0.3, 1.7, 0.9])
        expected = [
            sigmoid_lack_probability(np.array([d]), float(la))[0]
            for d, la in zip(deficits, lam)
        ]
        np.testing.assert_allclose(
            sigmoid_lack_probability(deficits, lam), expected
        )

    def test_half_at_zero_deficit(self):
        assert sigmoid_lack_probability(np.array([0.0]), 2.0)[0] == pytest.approx(0.5)

    def test_lack_likely_when_underloaded(self):
        p = sigmoid_lack_probability(np.array([50.0]), 1.0)[0]
        assert p > 0.999

    def test_overload_likely_when_overloaded(self):
        p = sigmoid_lack_probability(np.array([-50.0]), 1.0)[0]
        assert p < 0.001


class TestSubsetJoinProbabilities:
    def test_sums_to_one(self):
        pi = enumerate_subset_join_probabilities(np.array([0.3, 0.7, 0.1]))
        assert pi.sum() == pytest.approx(1.0)

    def test_all_zero_probs_stay_idle(self):
        pi = enumerate_subset_join_probabilities(np.zeros(4))
        assert pi[-1] == pytest.approx(1.0)
        assert np.all(pi[:-1] == 0.0)

    def test_all_one_probs_uniform_split(self):
        pi = enumerate_subset_join_probabilities(np.ones(4))
        assert pi[-1] == pytest.approx(0.0)
        np.testing.assert_allclose(pi[:-1], 0.25)

    def test_single_task(self):
        pi = enumerate_subset_join_probabilities(np.array([0.4]))
        np.testing.assert_allclose(pi, [0.4, 0.6])

    def test_symmetric_inputs_give_symmetric_outputs(self):
        pi = enumerate_subset_join_probabilities(np.array([0.5, 0.5]))
        assert pi[0] == pytest.approx(pi[1])

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ConfigurationError):
            enumerate_subset_join_probabilities(np.array([1.5]))
        with pytest.raises(ConfigurationError):
            enumerate_subset_join_probabilities(np.array([-0.1]))

    def test_rejects_large_k(self):
        with pytest.raises(ConfigurationError):
            enumerate_subset_join_probabilities(np.full(25, 0.5))

    def test_limit_is_the_shared_constant(self):
        # k == limit enumerates; k == limit + 1 refuses, naming the kernel.
        pi = enumerate_subset_join_probabilities(np.full(ENUMERATION_K_LIMIT, 0.01))
        assert pi.shape == (ENUMERATION_K_LIMIT + 1,)
        with pytest.raises(ConfigurationError, match="exact_join_probabilities"):
            enumerate_subset_join_probabilities(np.full(ENUMERATION_K_LIMIT + 1, 0.01))

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=6)
    )
    def test_distribution_property(self, u):
        pi = enumerate_subset_join_probabilities(np.array(u))
        assert pi.shape == (len(u) + 1,)
        assert np.all(pi >= -1e-12)
        assert pi.sum() == pytest.approx(1.0)
        # Stay-idle probability equals prod(1 - u_j).
        assert pi[-1] == pytest.approx(float(np.prod(1.0 - np.array(u))), abs=1e-9)

    def test_matches_monte_carlo(self, rng):
        u = np.array([0.6, 0.2, 0.9])
        pi = enumerate_subset_join_probabilities(u)
        trials = 200_000
        marks = rng.random((trials, 3)) < u
        counts = np.zeros(4)
        rows_any = marks.any(axis=1)
        counts[3] = (~rows_any).sum()
        idx = np.nonzero(rows_any)[0]
        row_counts = marks[idx].sum(axis=1)
        r = rng.integers(0, row_counts)
        csum = np.cumsum(marks[idx], axis=1)
        chosen = np.argmax(csum > r[:, None], axis=1)
        counts[:3] = np.bincount(chosen, minlength=3)
        np.testing.assert_allclose(counts / trials, pi, atol=5e-3)


def _per_ant_monte_carlo(u: np.ndarray, trials: int, rng: np.random.Generator) -> np.ndarray:
    """Empirical action distribution by simulating each ant's marks."""
    k = u.shape[0]
    counts = np.zeros(k + 1)
    marks = rng.random((trials, k)) < u
    rows_any = marks.any(axis=1)
    counts[k] = (~rows_any).sum()
    idx = np.nonzero(rows_any)[0]
    if idx.size:
        row_counts = marks[idx].sum(axis=1)
        r = rng.integers(0, row_counts)
        csum = np.cumsum(marks[idx], axis=1)
        chosen = np.argmax(csum > r[:, None], axis=1)
        counts[:k] = np.bincount(chosen, minlength=k)
    return counts / trials


class TestPoissonBinomialPmf:
    def test_bernoulli(self):
        np.testing.assert_allclose(poisson_binomial_pmf(np.array([0.3])), [0.7, 0.3])

    def test_matches_binomial_for_equal_probs(self):
        from scipy import stats

        k, p = 12, 0.37
        pmf = poisson_binomial_pmf(np.full(k, p))
        np.testing.assert_allclose(pmf, stats.binom.pmf(np.arange(k + 1), k, p), atol=1e-12)

    def test_degenerate_endpoints(self):
        pmf = poisson_binomial_pmf(np.array([0.0, 1.0, 1.0]))
        np.testing.assert_allclose(pmf, [0.0, 0.0, 1.0, 0.0])

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=20))
    def test_valid_pmf_with_right_mean(self, u):
        u = np.array(u)
        pmf = poisson_binomial_pmf(u)
        assert pmf.shape == (u.size + 1,)
        assert np.all(pmf >= 0.0)
        assert pmf.sum() == pytest.approx(1.0)
        assert pmf @ np.arange(u.size + 1) == pytest.approx(u.sum(), abs=1e-9)


class TestFftPoissonBinomialPmf:
    """The FFT divide-and-conquer PMF must agree with the O(k^2) DP to
    well under the 1e-10 acceptance bar, including at the numerically
    nasty points (u near 0/1 and exactly 1/2) and at k past 10^3."""

    PROPERTY_KS = (16, 128, 512, 1024)

    @pytest.mark.parametrize("k", PROPERTY_KS)
    def test_matches_dp_random_u(self, k):
        u = np.random.default_rng(k).random(k)
        np.testing.assert_allclose(
            fft_poisson_binomial_pmf(u), poisson_binomial_pmf(u), atol=1e-10
        )

    @pytest.mark.parametrize("k", PROPERTY_KS)
    def test_matches_dp_extreme_u(self, k):
        # Entries near 0, near 1, exactly 0/1, and exactly 1/2 — the
        # regimes where the deconvolution downstream is most sensitive.
        rng = np.random.default_rng(1000 + k)
        pool = np.array([0.0, 1.0, 0.5, 1e-14, 1.0 - 1e-14, 1e-3, 1.0 - 1e-3])
        u = rng.choice(pool, size=k)
        np.testing.assert_allclose(
            fft_poisson_binomial_pmf(u), poisson_binomial_pmf(u), atol=1e-10
        )

    @pytest.mark.parametrize("k", PROPERTY_KS)
    def test_matches_dp_all_half(self, k):
        u = np.full(k, 0.5)
        np.testing.assert_allclose(
            fft_poisson_binomial_pmf(u), poisson_binomial_pmf(u), atol=1e-10
        )

    def test_matches_binomial_for_equal_probs(self):
        from scipy import stats

        k, p = 1024, 0.37
        pmf = fft_poisson_binomial_pmf(np.full(k, p))
        np.testing.assert_allclose(
            pmf, stats.binom.pmf(np.arange(k + 1), k, p), atol=1e-12
        )

    def test_non_power_of_two_k(self):
        # Leaf padding must be invisible: odd and just-past-a-power sizes.
        for k in (1, 3, 5, 17, 100, 129, 1000):
            u = np.random.default_rng(k).random(k)
            pmf = fft_poisson_binomial_pmf(u)
            assert pmf.shape == (k + 1,)
            np.testing.assert_allclose(pmf, poisson_binomial_pmf(u), atol=1e-10)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=24))
    def test_valid_pmf_with_right_mean(self, u):
        u = np.array(u)
        pmf = fft_poisson_binomial_pmf(u)
        assert pmf.shape == (u.size + 1,)
        assert np.all(pmf >= 0.0)
        assert pmf.sum() == pytest.approx(1.0)
        assert pmf @ np.arange(u.size + 1) == pytest.approx(u.sum(), abs=1e-9)

    def test_empty_input(self):
        np.testing.assert_allclose(fft_poisson_binomial_pmf(np.zeros(0)), [1.0])

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ConfigurationError):
            fft_poisson_binomial_pmf(np.array([1.5]))


class TestFftJoinProbabilities:
    """fft_join_probabilities and the DP/FFT dispatch of
    exact_join_probabilities must all produce the same distribution."""

    @pytest.mark.parametrize("k", (16, 128, 512, 1024))
    def test_matches_dp_kernel(self, k):
        u = np.random.default_rng(k).random(k)
        np.testing.assert_allclose(
            fft_join_probabilities(u),
            exact_join_probabilities(u, method="dp"),
            atol=1e-10,
        )

    @pytest.mark.parametrize("k", (16, 512))
    def test_matches_dp_kernel_extreme_u(self, k):
        pool = np.array([0.0, 1.0, 0.5, 1e-14, 1.0 - 1e-14, 0.25, 0.75])
        u = np.random.default_rng(k).choice(pool, size=k)
        np.testing.assert_allclose(
            fft_join_probabilities(u),
            exact_join_probabilities(u, method="dp"),
            atol=1e-10,
        )

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1,
                 max_size=ENUMERATION_K_LIMIT)
    )
    def test_fft_path_matches_enumerator(self, u):
        # The subset enumerator covers the FFT path too, not just the DP.
        u = np.array(u)
        np.testing.assert_allclose(
            exact_join_probabilities(u, method="fft"),
            enumerate_subset_join_probabilities(u),
            atol=1e-10,
        )

    def test_fft_path_matches_enumerator_at_the_limit(self, rng):
        u = rng.random(ENUMERATION_K_LIMIT)
        np.testing.assert_allclose(
            exact_join_probabilities(u, method="fft"),
            enumerate_subset_join_probabilities(u),
            atol=1e-10,
        )

    def test_auto_dispatch_agrees_with_both_methods(self):
        for k in (FFT_K_THRESHOLD // 2, FFT_K_THRESHOLD, FFT_K_THRESHOLD + 1):
            u = np.random.default_rng(k).random(k)
            auto = exact_join_probabilities(u)
            np.testing.assert_allclose(
                auto, exact_join_probabilities(u, method="dp"), atol=1e-10
            )
            np.testing.assert_allclose(
                auto, exact_join_probabilities(u, method="fft"), atol=1e-10
            )

    def test_rejects_unknown_method(self):
        with pytest.raises(ConfigurationError, match="method"):
            exact_join_probabilities(np.array([0.5]), method="magic")

    def test_valid_distribution_large_k(self):
        u = np.random.default_rng(2048).random(2048)
        pi = fft_join_probabilities(u)
        assert pi.shape == (2049,)
        assert np.all(pi >= 0.0)
        assert pi.sum() == pytest.approx(1.0)
        assert pi[-1] == pytest.approx(float(np.prod(1.0 - u)))


class TestExactJoinProbabilities:
    """The O(k^2) kernel must be exact in law: identical to the subset
    enumerator wherever the enumerator is feasible, and identical to
    per-ant sampling beyond it."""

    @settings(max_examples=200, deadline=None)
    @given(
        st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1,
                 max_size=ENUMERATION_K_LIMIT)
    )
    def test_matches_enumerator_distribution(self, u):
        u = np.array(u)
        np.testing.assert_allclose(
            exact_join_probabilities(u),
            enumerate_subset_join_probabilities(u),
            atol=1e-12,
        )

    def test_matches_enumerator_at_the_limit(self, rng):
        u = rng.random(ENUMERATION_K_LIMIT)
        np.testing.assert_allclose(
            exact_join_probabilities(u),
            enumerate_subset_join_probabilities(u),
            atol=1e-12,
        )

    def test_hard_mixture_of_extremes(self):
        # Exact zeros, exact ones, and values on both sides of the
        # forward/backward deconvolution switch at 1/2.
        u = np.array([0.0, 1.0, 0.5, 0.499, 0.501, 1e-12, 1.0 - 1e-12, 0.25])
        np.testing.assert_allclose(
            exact_join_probabilities(u),
            enumerate_subset_join_probabilities(u),
            atol=1e-12,
        )

    @pytest.mark.slow
    def test_matches_per_ant_sampling_large_k(self, rng):
        # Beyond the enumerator's reach the oracle is Monte Carlo.
        k = 64
        u = rng.random(k)
        pi = exact_join_probabilities(u)
        mc = _per_ant_monte_carlo(u, trials=200_000, rng=rng)
        np.testing.assert_allclose(mc, pi, atol=5e-3)

    def test_large_k_valid_distribution(self):
        for k in (64, 128, 256):
            u = np.random.default_rng(k).random(k)
            pi = exact_join_probabilities(u)
            assert pi.shape == (k + 1,)
            assert np.all(pi >= 0.0)
            assert pi.sum() == pytest.approx(1.0)
            assert pi[k] == pytest.approx(float(np.prod(1.0 - u)))

    def test_uniform_split_when_all_marked(self):
        pi = exact_join_probabilities(np.ones(100))
        np.testing.assert_allclose(pi[:-1], 0.01)
        assert pi[-1] == 0.0

    def test_all_zero_stays_idle(self):
        pi = exact_join_probabilities(np.zeros(50))
        assert pi[-1] == pytest.approx(1.0)
        assert np.all(pi[:-1] == 0.0)

    def test_symmetry(self):
        pi = exact_join_probabilities(np.full(30, 0.3))
        np.testing.assert_allclose(pi[:-1], pi[0])

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ConfigurationError):
            exact_join_probabilities(np.array([1.5]))
        with pytest.raises(ConfigurationError):
            exact_join_probabilities(np.array([[0.5, 0.5]]))


class TestQuadratureJoinProbabilities:
    """The loop-free Gauss-Legendre kernel computes the *same* law as the
    DP/FFT deconvolution (it integrates the exact degree-(k-1) leave-one-
    out polynomial), so all three back ends must agree to well under the
    1e-10 acceptance bar up to k = 4096."""

    PROPERTY_KS = (16, 128, 512, 1024, 4096)

    @pytest.mark.parametrize("k", PROPERTY_KS)
    def test_matches_dp_and_fft_random_u(self, k):
        u = np.random.default_rng(k).random(k)
        quad = exact_join_probabilities(u, method="quadrature")
        np.testing.assert_allclose(quad, exact_join_probabilities(u, method="dp"), atol=1e-10)
        np.testing.assert_allclose(quad, exact_join_probabilities(u, method="fft"), atol=1e-10)

    @pytest.mark.parametrize("k", (16, 512, 2048))
    def test_matches_dp_extreme_u(self, k):
        # Exact 0/1 entries, saturated sigmoids, and the 1/2 switch point
        # of the deconvolution — the regimes that stress log1p/exp.
        pool = np.array([0.0, 1.0, 0.5, 1e-14, 1.0 - 1e-14, 1e-3, 1.0 - 1e-3, 0.25])
        u = np.random.default_rng(1000 + k).choice(pool, size=k)
        np.testing.assert_allclose(
            exact_join_probabilities(u, method="quadrature"),
            exact_join_probabilities(u, method="dp"),
            atol=1e-10,
        )

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1,
                 max_size=ENUMERATION_K_LIMIT)
    )
    def test_matches_enumerator(self, u):
        # The brute-force subset oracle covers the quadrature path too.
        u = np.array(u)
        np.testing.assert_allclose(
            exact_join_probabilities(u, method="quadrature"),
            enumerate_subset_join_probabilities(u),
            atol=1e-10,
        )

    def test_uniform_split_when_all_marked(self):
        # All u_j = 1: B_j = k - 1 deterministically, pi_j = 1/k; the
        # integrand degenerates to t^{k-1}, which Gauss-Legendre must
        # integrate exactly to 1/k.
        pi = exact_join_probabilities(np.ones(101), method="quadrature")
        np.testing.assert_allclose(pi[:-1], 1.0 / 101, atol=1e-14)
        assert pi[-1] == 0.0

    def test_all_zero_stays_idle(self):
        pi = exact_join_probabilities(np.zeros(50), method="quadrature")
        assert pi[-1] == pytest.approx(1.0)
        assert np.all(pi[:-1] == 0.0)

    def test_idle_probability_is_product(self):
        u = np.random.default_rng(3).random(64) * 0.1
        pi = exact_join_probabilities(u, method="quadrature")
        assert pi[-1] == pytest.approx(float(np.prod(1.0 - u)), rel=1e-12)

    def test_valid_distribution_at_k8192(self):
        u = np.random.default_rng(8192).random(8192)
        pi = exact_join_probabilities(u, method="quadrature")
        assert pi.shape == (8193,)
        assert np.all(pi >= 0.0)
        assert pi.sum() == pytest.approx(1.0)

    def test_wrapper_equals_explicit_method(self):
        u = np.random.default_rng(9).random(37)
        np.testing.assert_array_equal(
            quadrature_join_probabilities(u),
            exact_join_probabilities(u, method="quadrature"),
        )

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ConfigurationError):
            exact_join_probabilities(np.array([1.5]), method="quadrature")


class TestJoinKernelMethodDispatch:
    """Explicit selection, the auto-threshold crossovers, and the error
    path of exact_join_probabilities' method dispatch."""

    def test_resolve_concrete_names_ignore_k(self):
        for method in ("dp", "fft", "quadrature"):
            assert resolve_join_kernel_method(1, method) == method
            assert resolve_join_kernel_method(10**6, method) == method

    def test_resolve_auto_thresholds(self):
        assert resolve_join_kernel_method(FFT_K_THRESHOLD - 1, "auto") == "dp"
        assert resolve_join_kernel_method(FFT_K_THRESHOLD, "auto") == "fft"
        assert resolve_join_kernel_method(QUADRATURE_K_THRESHOLD - 1, "auto") == "fft"
        assert resolve_join_kernel_method(QUADRATURE_K_THRESHOLD, "auto") == "quadrature"

    def test_auto_agrees_with_every_back_end_at_the_crossovers(self):
        for k in (FFT_K_THRESHOLD - 1, FFT_K_THRESHOLD, QUADRATURE_K_THRESHOLD):
            u = np.random.default_rng(k).random(k)
            auto = exact_join_probabilities(u)
            for method in ("dp", "fft", "quadrature"):
                np.testing.assert_allclose(
                    auto, exact_join_probabilities(u, method=method), atol=1e-10
                )

    def test_resolve_auto_pinned_at_both_seams(self):
        # Pin the numeric boundary neighbourhoods, not just the symbols:
        # an off-by-one in either comparison flips exactly one of these.
        assert (FFT_K_THRESHOLD, QUADRATURE_K_THRESHOLD) == (512, 2048)
        expected = {
            511: "dp", 512: "fft", 513: "fft",
            2047: "fft", 2048: "quadrature", 2049: "quadrature",
        }
        for k, method in expected.items():
            assert resolve_join_kernel_method(k, "auto") == method, k

    def test_auto_runs_the_resolved_kernel_at_each_boundary(self, monkeypatch):
        # resolve_join_kernel_method is advertised as naming the back end
        # that *actually ran* (the shared pi-cache keys entries by it), so
        # spy every core and check dispatch honours it at k = 511..513 and
        # 2047..2049.
        ran: list[str] = []
        cores = {"dp": "_dp_pmf", "fft": "_fft_pmf", "quadrature": "_quadrature_join"}
        for method, attr in cores.items():
            real = getattr(mathx, attr)

            def spy(u, _method=method, _real=real):
                ran.append(_method)
                return _real(u)

            monkeypatch.setattr(mathx, attr, spy)
        for k in (511, 512, 513, 2047, 2048, 2049):
            ran.clear()
            u = np.random.default_rng(k).random(k)
            exact_join_probabilities(u)
            assert ran == [resolve_join_kernel_method(k, "auto")], k

    def test_back_ends_agree_one_past_each_seam(self):
        # The +/-1 neighbours of both seams: all three kernels within
        # 1e-10 of each other, so a flipped dispatch can never change
        # results beyond round-off.
        for k in (513, 2047, 2049):
            u = np.random.default_rng(k).random(k)
            dp = exact_join_probabilities(u, method="dp")
            np.testing.assert_allclose(
                dp, exact_join_probabilities(u, method="fft"), atol=1e-10
            )
            np.testing.assert_allclose(
                dp, exact_join_probabilities(u, method="quadrature"), atol=1e-10
            )

    def test_explicit_quadrature_runs_the_quadrature_core(self, monkeypatch):
        calls = []
        real = mathx._quadrature_join

        def spy(u):
            calls.append(u.shape[0])
            return real(u)

        monkeypatch.setattr(mathx, "_quadrature_join", spy)
        exact_join_probabilities(np.full(8, 0.3), method="quadrature")
        assert calls == [8]
        exact_join_probabilities(np.full(8, 0.3), method="dp")
        assert calls == [8]  # dp must not touch the quadrature core

    def test_auto_crossover_routes_to_quadrature(self, monkeypatch):
        # Shrink the thresholds so the crossover is observable cheaply.
        monkeypatch.setattr(mathx, "FFT_K_THRESHOLD", 4)
        monkeypatch.setattr(mathx, "QUADRATURE_K_THRESHOLD", 8)
        calls = []
        real = mathx._quadrature_join

        def spy(u):
            calls.append(u.shape[0])
            return real(u)

        monkeypatch.setattr(mathx, "_quadrature_join", spy)
        exact_join_probabilities(np.full(7, 0.3))  # auto -> fft
        assert calls == []
        exact_join_probabilities(np.full(8, 0.3))  # auto -> quadrature
        assert calls == [8]

    def test_unknown_method_raises_clear_value_error(self):
        u = np.array([0.5])
        with pytest.raises(ValueError, match=r"join kernel method.*'magic'"):
            exact_join_probabilities(u, method="magic")
        # The message names every accepted method.
        with pytest.raises(ValueError, match="auto.*dp.*fft.*quadrature"):
            exact_join_probabilities(u, method="magic")
        with pytest.raises(ValueError, match="join kernel method"):
            resolve_join_kernel_method(16, "nope")
