"""The array-namespace shim: registration, lazy loading, error paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.util.array_api import (
    DEFAULT_ARRAY_BACKEND,
    available_array_backends,
    get_namespace,
    register_array_backend,
    unregister_array_backend,
)


class TestGetNamespace:
    def test_numpy_backend_is_numpy_itself(self):
        assert get_namespace("numpy") is np
        assert get_namespace() is np  # default

    def test_unknown_backend_names_the_known_ones(self):
        with pytest.raises(ConfigurationError, match="unknown array backend.*numpy"):
            get_namespace("jax")

    def test_backend_must_be_a_string(self):
        with pytest.raises(ConfigurationError, match="name string"):
            get_namespace(np)  # passing the module, not its name


class TestRegistration:
    def test_register_load_unregister_roundtrip(self):
        calls = []

        def loader():
            calls.append(1)
            return np

        register_array_backend("test_backend", loader)
        try:
            assert "test_backend" in available_array_backends()
            assert get_namespace("test_backend") is np
            assert get_namespace("test_backend") is np
            assert calls == [1]  # loader ran exactly once
        finally:
            unregister_array_backend("test_backend")
        assert "test_backend" not in available_array_backends()

    def test_duplicate_registration_requires_opt_in(self):
        register_array_backend("test_dup", lambda: np)
        try:
            with pytest.raises(ConfigurationError, match="already registered"):
                register_array_backend("test_dup", lambda: np)
            register_array_backend("test_dup", lambda: np, allow_overwrite=True)
        finally:
            unregister_array_backend("test_dup")

    def test_numpy_cannot_be_unregistered(self):
        with pytest.raises(ConfigurationError, match="cannot be unregistered"):
            unregister_array_backend(DEFAULT_ARRAY_BACKEND)

    def test_unregister_unknown_backend(self):
        with pytest.raises(ConfigurationError, match="unknown array backend"):
            unregister_array_backend("never_registered")

    def test_loader_must_be_callable_and_name_nonempty(self):
        with pytest.raises(ConfigurationError, match="must be callable"):
            register_array_backend("bad", np)  # type: ignore[arg-type]
        with pytest.raises(ConfigurationError, match="non-empty string"):
            register_array_backend("", lambda: np)


class TestOptionalSeams:
    def test_cupy_and_torch_are_registered_seams(self):
        names = available_array_backends()
        assert "cupy" in names and "torch" in names

    def test_missing_library_raises_actionable_error(self):
        # The container deliberately ships CPU-only; if a seam's library
        # is genuinely importable we can only assert the happy path.
        for name in ("cupy", "torch"):
            try:
                namespace = get_namespace(name)
            except ConfigurationError as exc:
                assert name in str(exc) and "backend='numpy'" in str(exc)
            else:
                assert hasattr(namespace, "asarray")
