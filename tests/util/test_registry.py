"""Tests for the shared name -> factory registry utility."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.util.registry import Registry


@pytest.fixture
def registry() -> Registry:
    r = Registry("gizmo")
    r.register("dict", dict)
    r.register("list", list)
    return r


class TestRegister:
    def test_register_and_make(self, registry):
        assert registry.make("dict", a=1) == {"a": 1}

    def test_duplicate_rejected(self, registry):
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register("dict", dict)

    def test_duplicate_allowed_with_overwrite(self, registry):
        registry.register("dict", lambda: "replaced", allow_overwrite=True)
        assert registry.make("dict") == "replaced"

    def test_non_callable_rejected(self, registry):
        with pytest.raises(ConfigurationError, match="must be callable"):
            registry.register("bad", 42)

    def test_empty_name_rejected(self, registry):
        with pytest.raises(ConfigurationError, match="non-empty string"):
            registry.register("", dict)

    def test_bad_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            Registry("")


class TestLookup:
    def test_unknown_lists_known_names(self, registry):
        with pytest.raises(ConfigurationError, match=r"unknown gizmo 'nope'.*'dict'"):
            registry.make("nope")

    def test_names_sorted(self, registry):
        registry.register("aardvark", dict)
        assert registry.names() == sorted(registry.names())

    def test_contains_len_iter(self, registry):
        assert "dict" in registry and "nope" not in registry
        assert len(registry) == 2
        assert list(registry) == ["dict", "list"]

    def test_check_does_not_instantiate(self, registry):
        calls = []
        registry.register("probe", lambda: calls.append(1))
        registry.check("probe")
        assert not calls


class TestUnregister:
    def test_unregister(self, registry):
        registry.unregister("dict")
        assert "dict" not in registry

    def test_unregister_unknown_rejected(self, registry):
        with pytest.raises(ConfigurationError, match="cannot unregister"):
            registry.unregister("nope")
