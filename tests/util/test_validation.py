"""Tests for the validation helpers."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import ConfigurationError
from repro.util.validation import (
    check_in_range,
    check_integer,
    check_positive,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 2.5) == 2.5

    def test_rejects_zero_by_default(self):
        with pytest.raises(ConfigurationError, match="x must be > 0"):
            check_positive("x", 0.0)

    def test_allow_zero(self):
        assert check_positive("x", 0.0, allow_zero=True) == 0.0

    def test_rejects_negative_with_allow_zero(self):
        with pytest.raises(ConfigurationError):
            check_positive("x", -1.0, allow_zero=True)

    def test_rejects_nan(self):
        with pytest.raises(ConfigurationError, match="NaN"):
            check_positive("x", math.nan)


class TestCheckProbability:
    @pytest.mark.parametrize("p", [0.0, 0.5, 1.0])
    def test_accepts(self, p):
        assert check_probability("p", p) == p

    @pytest.mark.parametrize("p", [-0.01, 1.01, math.nan])
    def test_rejects(self, p):
        with pytest.raises(ConfigurationError):
            check_probability("p", p)


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range("x", 1.0, 1.0, 2.0) == 1.0
        assert check_in_range("x", 2.0, 1.0, 2.0) == 2.0

    def test_exclusive_low(self):
        with pytest.raises(ConfigurationError):
            check_in_range("x", 1.0, 1.0, 2.0, inclusive_low=False)

    def test_exclusive_high(self):
        with pytest.raises(ConfigurationError):
            check_in_range("x", 2.0, 1.0, 2.0, inclusive_high=False)

    def test_error_message_brackets(self):
        with pytest.raises(ConfigurationError, match=r"\(1.*2\.0\]"):
            check_in_range("x", 0.5, 1.0, 2.0, inclusive_low=False)


class TestCheckInteger:
    def test_accepts_int(self):
        assert check_integer("n", 5) == 5

    def test_accepts_integral_float(self):
        assert check_integer("n", 5.0) == 5

    def test_rejects_fractional(self):
        with pytest.raises(ConfigurationError):
            check_integer("n", 5.5)

    def test_rejects_bool(self):
        with pytest.raises(ConfigurationError):
            check_integer("n", True)

    def test_minimum(self):
        with pytest.raises(ConfigurationError, match=">= 3"):
            check_integer("n", 2, minimum=3)

    def test_rejects_string(self):
        with pytest.raises(ConfigurationError):
            check_integer("n", "five")
