"""Tests for the shared type helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.types import (
    IDLE,
    Feedback,
    assignment_from_loads,
    idle_count,
    loads_from_assignment,
)


class TestEncodings:
    def test_idle_sentinel(self):
        assert IDLE == -1

    def test_feedback_enum_values(self):
        # LACK == 1 so boolean lack-matrices interoperate with the enum.
        assert int(Feedback.LACK) == 1
        assert int(Feedback.OVERLOAD) == 0
        assert bool(Feedback.LACK) and not bool(Feedback.OVERLOAD)


class TestLoadsFromAssignment:
    def test_basic(self):
        a = np.array([0, 0, 1, IDLE, 2])
        np.testing.assert_array_equal(loads_from_assignment(a, 3), [2, 1, 1])

    def test_empty_tasks_zero(self):
        a = np.array([IDLE, IDLE])
        np.testing.assert_array_equal(loads_from_assignment(a, 2), [0, 0])

    def test_idle_count(self):
        assert idle_count(np.array([IDLE, 0, IDLE])) == 2


class TestAssignmentFromLoads:
    def test_roundtrip(self):
        loads = np.array([3, 0, 2])
        a = assignment_from_loads(loads, 10)
        np.testing.assert_array_equal(loads_from_assignment(a, 3), loads)
        assert idle_count(a) == 5

    def test_rejects_overfull(self):
        with pytest.raises(ValueError):
            assignment_from_loads(np.array([5, 6]), 10)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            assignment_from_loads(np.array([-1]), 10)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=6),
        st.integers(min_value=0, max_value=100),
    )
    def test_roundtrip_property(self, loads, extra):
        loads = np.array(loads)
        n = int(loads.sum()) + extra
        a = assignment_from_loads(loads, n)
        np.testing.assert_array_equal(loads_from_assignment(a, loads.size), loads)
        assert a.shape == (n,)
