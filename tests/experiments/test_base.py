"""Tests for the experiment infrastructure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.base import (
    Claim,
    ExperimentResult,
    experiment,
    get_experiment,
    list_experiments,
)


class TestClaim:
    def test_upper_verdicts(self):
        assert Claim.upper("x", 1.0, 2.0).ok
        assert not Claim.upper("x", 3.0, 2.0).ok

    def test_lower_verdicts(self):
        assert Claim.lower("x", 3.0, 2.0).ok
        assert not Claim.lower("x", 1.0, 2.0).ok

    def test_shape(self):
        assert Claim.shape("x", True).ok
        assert not Claim.shape("x", False).ok

    def test_render(self):
        assert "PASS" in Claim.upper("lbl", 1.0, 2.0).render()
        assert "FAIL" in Claim.lower("lbl", 1.0, 2.0).render()
        assert "lbl" in Claim.shape("lbl", True).render()


class TestExperimentResult:
    def test_all_ok(self):
        r = ExperimentResult("EX", "t", "quick")
        r.claims.append(Claim.upper("a", 1.0, 2.0))
        assert r.all_ok
        r.claims.append(Claim.upper("b", 3.0, 2.0))
        assert not r.all_ok

    def test_report_contains_everything(self):
        r = ExperimentResult("EX", "title text", "quick")
        r.tables.append("TABLE")
        r.series["s"] = np.array([1.0, 2.0])
        r.notes.append("a note")
        r.claims.append(Claim.shape("claim text", True))
        rep = r.report()
        for fragment in ("EX", "title text", "TABLE", "series s", "a note", "claim text", "PASS"):
            assert fragment in rep


class TestRegistry:
    def test_all_sixteen_registered(self):
        ids = [eid for eid, _ in list_experiments()]
        assert ids == [f"E{i}" for i in range(1, 17)]

    def test_get_known(self):
        fn = get_experiment("E1")
        assert callable(fn)

    def test_get_unknown(self):
        with pytest.raises(ConfigurationError, match="unknown experiment"):
            get_experiment("E99")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            @experiment("E1", "duplicate")
            def dup(scale="full", seed=0):  # pragma: no cover
                raise AssertionError
