"""End-to-end smoke tests: every experiment passes at quick scale.

These are the library's reproduction gate: each experiment regenerates
one paper artifact and asserts its claims; a FAIL here means the
reproduction no longer exhibits the paper's shape.
The cheap ones run in the default suite; the heavier ones are marked
slow (they still run in CI-style full runs, just not in -m "not slow").
"""

from __future__ import annotations

import pytest

from repro.experiments.base import get_experiment

FAST = ["E1", "E2", "E7", "E8", "E11", "E16"]
HEAVY = ["E3", "E4", "E5", "E6", "E9", "E10", "E12", "E13", "E14", "E15"]


@pytest.mark.parametrize("eid", FAST)
def test_fast_experiment_passes(eid):
    result = get_experiment(eid)(scale="quick", seed=0)
    assert result.all_ok, result.report()


@pytest.mark.slow
@pytest.mark.parametrize("eid", HEAVY)
def test_heavy_experiment_passes(eid):
    result = get_experiment(eid)(scale="quick", seed=0)
    assert result.all_ok, result.report()


def test_reports_render(capsys):
    result = get_experiment("E1")(scale="quick", seed=0)
    text = result.report()
    assert "E1" in text and "overall" in text
