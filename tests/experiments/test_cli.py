"""Tests for the experiment CLI."""

from __future__ import annotations

import json

import pytest

from repro.experiments.cli import _parse_axes, build_parser, main

TINY_SPEC = {
    "algorithm": {"name": "ant", "params": {"gamma": 0.025}},
    "demand": {"name": "uniform", "params": {"n": 2000, "k": 4}},
    "feedback": {"name": "exact"},
    "engine": {"name": "counting"},
    "rounds": 60,
    "seed": 11,
}


@pytest.fixture
def spec_file(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(TINY_SPEC), encoding="utf-8")
    return str(path)


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "E1"])
        assert args.experiment == "E1"
        assert args.scale == "full"
        assert args.seed == 0

    def test_run_options(self):
        args = build_parser().parse_args(["run", "E2", "--scale", "quick", "--seed", "7"])
        assert args.scale == "quick" and args.seed == 7

    def test_rejects_bad_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "E1", "--scale", "huge"])

    def test_store_ls_json_flag(self):
        args = build_parser().parse_args(["store", "ls", "/tmp/s", "--json"])
        assert args.store_command == "ls" and args.json
        assert not build_parser().parse_args(["store", "ls", "/tmp/s"]).json

    def test_store_gc_age_and_grace(self):
        args = build_parser().parse_args(
            ["store", "gc", "/tmp/s", "--max-age", "86400", "--grace", "0"]
        )
        assert args.max_age == 86400.0 and args.grace == 0.0
        defaults = build_parser().parse_args(["store", "gc", "/tmp/s"])
        assert defaults.max_age is None and defaults.grace is None

    def test_sched_run_options(self):
        args = build_parser().parse_args(
            [
                "sched", "run", "spec.json", "--store", "/tmp/s",
                "--axis", "algorithm.gamma=0.02,0.04",
                "--axis", "demand.k=2,4",
                "--trials", "3", "--rounds", "100", "--workers", "2",
                "--ttl", "5", "--poll", "0.1", "--init-only", "--json",
            ]
        )
        assert args.sched_command == "run"
        assert args.axis == ["algorithm.gamma=0.02,0.04", "demand.k=2,4"]
        assert args.trials == 3 and args.rounds == 100 and args.workers == 2
        assert args.ttl == 5.0 and args.poll == 0.1
        assert args.init_only and args.json

    def test_sched_run_requires_store_and_axis(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sched", "run", "spec.json", "--store", "/tmp/s"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sched", "run", "spec.json", "--axis", "a.b=1"])

    def test_sched_work_and_status_options(self):
        work = build_parser().parse_args(
            ["sched", "work", "/tmp/s", "--grid", "abc", "--max-points", "2",
             "--worker-id", "w7"]
        )
        assert work.sched_command == "work"
        assert work.grid == "abc" and work.max_points == 2 and work.worker_id == "w7"
        status = build_parser().parse_args(["sched", "status", "/tmp/s", "--json"])
        assert status.sched_command == "status" and status.json


class TestParseAxes:
    def test_values_parse_like_sweep_values(self):
        axes = _parse_axes(["algorithm.gamma=0.02,0.04", "demand.name=uniform,powerlaw"])
        assert axes == [
            {"parameter": "algorithm.gamma", "values": [0.02, 0.04]},
            {"parameter": "demand.name", "values": ["uniform", "powerlaw"]},
        ]

    def test_malformed_axis_exits(self):
        with pytest.raises(SystemExit, match="--axis"):
            _parse_axes(["nonsense"])
        with pytest.raises(SystemExit, match="--axis"):
            _parse_axes(["=0.02"])


class TestMain:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E15" in out

    def test_run_e1(self, capsys):
        assert main(["run", "E1", "--scale", "quick"]) == 0
        out = capsys.readouterr().out
        assert "overall: PASS" in out

    def test_run_unknown_raises(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["run", "E99"])


class TestSchedMain:
    """sched run / work / status + store ls --json, end to end."""

    def _run(self, capsys, *argv):
        assert main(list(argv)) == 0
        return capsys.readouterr().out

    def test_grid_lifecycle(self, tmp_path, capsys, spec_file):
        store = str(tmp_path / "grid")
        run = [
            "sched", "run", spec_file, "--store", store,
            "--axis", "algorithm.gamma=0.02,0.04", "--trials", "1", "--json",
        ]
        # 1. init-only persists the manifest without running a point
        out = self._run(capsys, *run[:-1], "--init-only", "--json")
        status = json.loads(out)
        assert status["pending"] == 2 and status["committed"] == 0

        # 2. the drain commits every point
        status = json.loads(self._run(capsys, *run))
        assert status["done"] is True and status["committed"] == 2

        # 3. status agrees, in both renderings
        status = json.loads(self._run(capsys, "sched", "status", store, "--json"))
        assert status["done"] is True
        human = self._run(capsys, "sched", "status", store)
        assert "2/2 committed" in human

        # 4. a late worker finds nothing to do
        out = self._run(capsys, "sched", "work", store)
        assert "computed=0" in out

        # 5. the canonical listing is byte-stable and counts the grid
        ls1 = self._run(capsys, "store", "ls", store, "--json")
        ls2 = self._run(capsys, "store", "ls", store, "--json")
        assert ls1 == ls2
        payload = json.loads(ls1)
        assert payload["count"] == 2
        assert all("created_unix" not in r["meta"] for r in payload["records"])

    def test_work_without_a_grid_raises(self, tmp_path):
        from repro.exceptions import SchedulerError

        with pytest.raises(SchedulerError, match="no grids"):
            main(["sched", "work", str(tmp_path / "empty")])

    def test_malformed_axis_exits(self, tmp_path, spec_file):
        with pytest.raises(SystemExit, match="--axis"):
            main(
                ["sched", "run", spec_file, "--store", str(tmp_path / "s"),
                 "--axis", "nonsense"]
            )

    def test_store_gc_flags_reach_the_store(self, tmp_path, capsys, spec_file):
        store = str(tmp_path / "grid")
        self._run(
            capsys, "sched", "run", spec_file, "--store", store,
            "--axis", "algorithm.gamma=0.02", "--trials", "1",
        )
        out = self._run(capsys, "store", "gc", store, "--grace", "0", "--max-age", "86400")
        assert "gc removed" in out and "stale_leases=0" in out
