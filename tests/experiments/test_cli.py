"""Tests for the experiment CLI."""

from __future__ import annotations

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "E1"])
        assert args.experiment == "E1"
        assert args.scale == "full"
        assert args.seed == 0

    def test_run_options(self):
        args = build_parser().parse_args(["run", "E2", "--scale", "quick", "--seed", "7"])
        assert args.scale == "quick" and args.seed == 7

    def test_rejects_bad_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "E1", "--scale", "huge"])


class TestMain:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E15" in out

    def test_run_e1(self, capsys):
        assert main(["run", "E1", "--scale", "quick"]) == 0
        out = capsys.readouterr().out
        assert "overall: PASS" in out

    def test_run_unknown_raises(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["run", "E99"])
