#!/usr/bin/env python
"""Config-file-driven simulation: load a ScenarioSpec from JSON and run it.

Everything about the run — algorithm, noise model, demand schedule,
engine, seed, horizon — lives in the JSON file; the code below is
generic and works for any spec built from registered components.  The
equivalent one-liner from the shell::

    repro-experiments scenario run examples/scenarios/quickstart.json --trials 4

Run:  python examples/scenario_from_json.py [path/to/spec.json]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro import ScenarioSpec, run_scenario

DEFAULT_SPEC = Path(__file__).parent / "scenarios" / "quickstart.json"


def main(path: str | None = None) -> None:
    spec_path = Path(path) if path else DEFAULT_SPEC
    spec = ScenarioSpec.from_json(spec_path.read_text(encoding="utf-8"))
    print(f"loaded scenario {spec.describe()!r} from {spec_path}")
    print(f"  algorithm: {spec.algorithm.name} {spec.algorithm.params}")
    print(f"  demand:    {spec.demand.name} {spec.demand.params}")
    print(f"  feedback:  {spec.feedback.name} {spec.feedback.params}")
    print(f"  engine:    {spec.engine.name}  rounds={spec.rounds}  seed={spec.seed}")

    # The spec (not a closure!) is the trial factory, so parallel trials
    # work for any config: specs are plain data and pickle cleanly.
    summary = run_scenario(spec, trials=4, parallel=2)
    print()
    print(summary.describe())

    # Round-trip sanity: serialize back out and rebuild an equal spec.
    assert ScenarioSpec.from_json(spec.to_json()) == spec
    print("spec JSON round-trip OK")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
