#!/usr/bin/env python
"""Self-stabilization under diurnal demand swings (Remark 3.4).

A colony alternating between a "day" regime (foraging-heavy demands) and
a "night" regime (brood-care-heavy demands).  The demands flip every
``period`` rounds; Algorithm Ant re-converges after each flip without
any reset — the self-stabilization the paper emphasizes.

The whole experiment is one declarative :class:`repro.ScenarioSpec`
using the ``periodic_proportional`` demand schedule and the O(k)
counting engine — the same JSON-serializable scenario ships in
``examples/scenarios/day_night.json`` for the config-file-driven runner.

Run:  python examples/day_night_colony.py
"""

from __future__ import annotations

import numpy as np

from repro import ScenarioSpec, run_scenario

TASKS = ["foraging", "brood care", "nest repair", "patrolling"]

PERIOD = 6000


def build_spec() -> ScenarioSpec:
    # Day: foraging dominates.  Night: brood care dominates.
    return ScenarioSpec(
        algorithm={"name": "ant", "params": {"gamma": 0.05}},
        demand={
            "name": "periodic_proportional",
            "params": {
                "n": 8000,
                "phase_weights": [[4, 1, 2, 1], [1, 4, 2, 1]],
                "period": PERIOD,
            },
        },
        feedback={"name": "calibrated_sigmoid", "params": {"gamma_star": 0.02}},
        engine={"name": "counting"},
        rounds=4 * PERIOD,  # two full day/night cycles
        seed=7,
        run_params={"trace_stride": PERIOD // 150},
        label="day/night colony",
    )


def main() -> None:
    from repro.util.ascii_plot import multi_line_plot

    spec = build_spec()
    schedule = spec.build_demand()
    day, night = schedule.demands_at(0), schedule.demands_at(PERIOD)
    print("day   demands:", dict(zip(TASKS, day.as_array())))
    print("night demands:", dict(zip(TASKS, night.as_array())))

    result = run_scenario(spec)
    rounds = spec.rounds
    gamma = spec.algorithm.params["gamma"]

    t = result.trace.rounds
    loads = result.trace.loads
    print()
    print(
        multi_line_plot(
            t,
            {TASKS[0]: loads[:, 0], TASKS[1]: loads[:, 1]},
            title=f"loads across day/night flips every {PERIOD} rounds",
            xlabel="round",
            height=14,
        )
    )

    # Quantify re-convergence after each flip: rounds until all deficits
    # re-enter the 5*gamma*d band.
    # Skip flips too close to the horizon to observe re-convergence.
    for flip in [f for f in schedule.change_points(rounds) if f <= rounds - PERIOD // 2]:
        demands = schedule.demands_at(flip).as_array().astype(float)
        after = loads[t >= flip]
        band = 5.0 * gamma * demands + 3.0
        ok = np.all(np.abs(demands[np.newaxis, :] - after) <= band, axis=1)
        t_after = t[t >= flip]
        reconv = int(t_after[np.argmax(ok)] - flip) if ok.any() else -1
        print(f"flip at round {flip}: re-converged after ~{reconv} rounds")

    final_demands = schedule.demands_at(rounds).as_array()
    print(f"\nfinal loads   = {result.final_loads.astype(int)}")
    print(f"final demands = {final_demands}")


if __name__ == "__main__":
    main()
