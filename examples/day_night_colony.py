#!/usr/bin/env python
"""Self-stabilization under diurnal demand swings (Remark 3.4).

A colony alternating between a "day" regime (foraging-heavy demands) and
a "night" regime (brood-care-heavy demands).  The demands flip every
``period`` rounds; Algorithm Ant re-converges after each flip without
any reset — the self-stabilization the paper emphasizes.

Run:  python examples/day_night_colony.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AntAlgorithm,
    CountingSimulator,
    PeriodicDemandSchedule,
    SigmoidFeedback,
    lambda_for_critical_value,
    proportional_demands,
)
from repro.util.ascii_plot import multi_line_plot

TASKS = ["foraging", "brood care", "nest repair", "patrolling"]


def main() -> None:
    n = 8000
    # Day: foraging dominates.  Night: brood care dominates.
    day = proportional_demands(n, weights=[4, 1, 2, 1])
    night = proportional_demands(n, weights=[1, 4, 2, 1])
    period = 6000
    schedule = PeriodicDemandSchedule(phases=(day, night), period=period)
    print("day   demands:", dict(zip(TASKS, day.as_array())))
    print("night demands:", dict(zip(TASKS, night.as_array())))

    gamma_star = 0.02
    lam = lambda_for_critical_value(day, gamma_star=gamma_star)
    gamma = 0.05

    sim = CountingSimulator(
        AntAlgorithm(gamma=gamma), schedule, SigmoidFeedback(lam), seed=7
    )
    rounds = 4 * period  # two full day/night cycles
    result = sim.run(rounds, trace_stride=period // 150)

    t = result.trace.rounds
    loads = result.trace.loads
    print()
    print(
        multi_line_plot(
            t,
            {TASKS[0]: loads[:, 0], TASKS[1]: loads[:, 1]},
            title=f"loads across day/night flips every {period} rounds",
            xlabel="round",
            height=14,
        )
    )

    # Quantify re-convergence after each flip: rounds until all deficits
    # re-enter the 5*gamma*d band.
    # Skip flips too close to the horizon to observe re-convergence.
    for flip in [f for f in schedule.change_points(rounds) if f <= rounds - period // 2]:
        demands = schedule.demands_at(flip).as_array().astype(float)
        after = loads[t >= flip]
        band = 5.0 * gamma * demands + 3.0
        ok = np.all(np.abs(demands[np.newaxis, :] - after) <= band, axis=1)
        t_after = t[t >= flip]
        reconv = int(t_after[np.argmax(ok)] - flip) if ok.any() else -1
        print(f"flip at round {flip}: re-converged after ~{reconv} rounds")

    final_demands = schedule.demands_at(rounds).as_array()
    print(f"\nfinal loads   = {result.final_loads.astype(int)}")
    print(f"final demands = {final_demands}")


if __name__ == "__main__":
    main()
