#!/usr/bin/env python
"""Stress Algorithm Ant and Precise Adversarial against grey-zone adversaries.

The adversarial noise model lets an adversary choose feedback whenever a
task's deficit is inside the grey zone.  This example pits the two
algorithms against every built-in adversary strategy and shows that both
stay within their closeness guarantees — while the trivial algorithm is
destroyed by the same adversaries.

Run:  python examples/adversarial_colony.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AdversarialFeedback,
    AntAlgorithm,
    PreciseAdversarialAlgorithm,
    Simulator,
    TrivialAlgorithm,
    make_adversary,
    uniform_demands,
)
from repro.analysis import format_table
from repro.types import assignment_from_loads

STRATEGIES = ["correct", "random", "inverted", "always_lack", "always_overload", "push_away"]


def main() -> None:
    n, k = 8000, 4
    demand = uniform_demands(n=n, k=k)
    gamma_ad = 0.01  # the adversarial critical value gamma*
    gamma = 0.025
    rounds, burn = 12000, 6000
    start = assignment_from_loads(
        np.round(demand.as_array() * (1.0 + 2.0 * gamma)).astype(np.int64), n
    )

    algorithms = {
        "Algorithm Ant": AntAlgorithm(gamma=gamma),
        "Precise Adversarial (eps=0.5)": PreciseAdversarialAlgorithm(gamma=gamma, eps=0.5),
        "Trivial": TrivialAlgorithm(),
    }

    rows = []
    for strat in STRATEGIES:
        for name, alg in algorithms.items():
            fb = AdversarialFeedback(gamma_ad=gamma_ad, strategy=make_adversary(strat))
            out = Simulator(alg, demand, fb, seed=3, initial_assignment=start).run(
                rounds, burn_in=burn
            )
            rows.append(
                [
                    strat,
                    name,
                    out.metrics.closeness(gamma_ad, demand.total),
                    out.metrics.max_abs_deficit,
                ]
            )

    print(
        format_table(
            ["adversary", "algorithm", "closeness", "max|deficit|"],
            rows,
            title=(
                f"Grey-zone adversaries, gamma_ad={gamma_ad}, n={n} "
                f"(Ant bound: {5 * gamma / gamma_ad:.1f}; Thm 3.5 floor: 1)"
            ),
            float_fmt="{:.3g}",
        )
    )
    print(
        "\nNote how the trivial algorithm's closeness explodes under the "
        "malicious strategies while both paper algorithms stay bounded."
    )


if __name__ == "__main__":
    main()
