#!/usr/bin/env python
"""Compare every algorithm in the library on one colony.

Runs Algorithm Ant, Precise Sigmoid, the one-sample ablation, the trivial
algorithm (synchronous and sequential schedules) and the noise-free
backoff baseline, and prints a league table of steady-state closeness and
task-switching cost.  Reproduces, in one screen, the paper's qualitative
story: noise breaks naive rules, two spaced samples fix them, and median
amplification buys arbitrary precision.

Run:  python examples/algorithm_showdown.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AntAlgorithm,
    CountingSimulator,
    OneSampleAntAlgorithm,
    PreciseSigmoidAlgorithm,
    SequentialSimulator,
    SigmoidFeedback,
    Simulator,
    TrivialAlgorithm,
    lambda_for_critical_value,
    uniform_demands,
)
from repro.analysis import format_table
from repro.baselines import BackoffBinaryAlgorithm
from repro.env import ExactBinaryFeedback


def main() -> None:
    n, k = 8000, 4
    demand = uniform_demands(n=n, k=k)
    gamma_star = 0.01
    lam = lambda_for_critical_value(demand, gamma_star=gamma_star)
    gamma = 0.025
    rounds, burn = 20000, 10000
    noise = lambda: SigmoidFeedback(lam)  # noqa: E731 - fresh model per run

    rows = []

    def record(name: str, metrics, note: str = "") -> None:
        rows.append(
            [
                name,
                metrics.closeness(gamma_star, demand.total),
                metrics.average_regret,
                metrics.switches_per_round,
                note,
            ]
        )

    # Algorithm Ant (counting engine: O(k) per round).
    out = CountingSimulator(AntAlgorithm(gamma=gamma), demand, noise(), seed=0).run(
        rounds, burn_in=burn
    )
    record("Algorithm Ant", out.metrics, "Thm 3.1")

    # Precise Sigmoid at eps = 0.5, started inside its resting band.  Its
    # tiny step size gamma' = eps*gamma/c_chi needs gamma'*d >> 1 to have
    # an integer-width resting band, hence a larger colony (the counting
    # engine's cost is independent of n, so this is free).
    big = uniform_demands(n=10 * n, k=k)
    big_lam = lambda_for_critical_value(big, gamma_star=gamma_star)
    ps = PreciseSigmoidAlgorithm(gamma=0.04, eps=0.5)
    start = np.round(big.as_array() * (1.0 + 2.0 * ps.step_size)).astype(np.int64)
    out = CountingSimulator(
        ps, big, SigmoidFeedback(big_lam), seed=0, initial_loads=start
    ).run(rounds, burn_in=burn)
    rows.append(
        [
            "Precise Sigmoid (eps=0.5)",
            out.metrics.closeness(gamma_star, big.total),
            out.metrics.average_regret,
            out.metrics.switches_per_round,
            "Thm 3.2 (10x colony)",
        ]
    )

    # One-sample ablation (agent engine).
    out = Simulator(OneSampleAntAlgorithm(gamma=gamma), demand, noise(), seed=0).run(
        rounds // 2, burn_in=burn // 2
    )
    record("One-sample ablation", out.metrics, "no stable zone")

    # Trivial algorithm, synchronous: herds catastrophically.
    out = Simulator(TrivialAlgorithm(), demand, noise(), seed=0).run(
        rounds // 4, burn_in=burn // 4
    )
    record("Trivial (synchronous)", out.metrics, "App. D.2: herds")

    # Trivial algorithm, sequential: converges.
    out = SequentialSimulator(TrivialAlgorithm(), demand, noise(), seed=0).run(
        rounds * 4, burn_in=burn * 4
    )
    record("Trivial (sequential)", out.metrics, "App. D.1")

    # Rate-limited trivial: the q must be hand-tuned to ~1/n scales.
    q = 0.002
    out = CountingSimulator(
        TrivialAlgorithm(leave_probability=q, join_probability=q), demand, noise(), seed=0
    ).run(rounds, burn_in=burn)
    record(f"Rate-limited trivial (q={q})", out.metrics, "needs oracle q")

    # Backoff baseline under *noise-free* feedback (its home turf)...
    out = Simulator(BackoffBinaryAlgorithm(), demand, ExactBinaryFeedback(), seed=0).run(
        rounds // 2, burn_in=burn // 2
    )
    record("Backoff baseline (exact fb)", out.metrics, "[11]-style")

    # ... and under sigmoid noise, where it loses its advantage.
    out = Simulator(BackoffBinaryAlgorithm(), demand, noise(), seed=0).run(
        rounds // 2, burn_in=burn // 2
    )
    record("Backoff baseline (noisy fb)", out.metrics, "breaks under noise")

    print(
        format_table(
            ["algorithm", "closeness", "R(t)/t", "switches/round", "note"],
            rows,
            title=(
                f"League table: n={n}, k={k}, d={demand.min_demand}, "
                f"gamma*={gamma_star} (closeness = regret rate / gamma* sum_d; lower is better)"
            ),
            float_fmt="{:.3g}",
        )
    )


if __name__ == "__main__":
    main()
