#!/usr/bin/env python
"""The precision dial: trade memory and phase length for regret.

Theorem 3.2 says Algorithm Precise Sigmoid's steady regret rate is
``eps * gamma * sum_d`` using ``O(log 1/eps)`` memory and phases of
``O(1/eps)`` rounds; Theorem 3.3 says you cannot do better with that
memory.  This example turns the dial: it sweeps ``eps`` (equivalently
the per-ant counter budget) and prints the measured regret rate, the
theory line, and the per-ant memory — the achievable side of the
memory/closeness tradeoff curve.

Uses the O(k)-per-round counting engine, so the 160k-ant colony and
200k-round horizons are instant.

Run:  python examples/precision_dial.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AntAlgorithm,
    CountingSimulator,
    PreciseSigmoidAlgorithm,
    SigmoidFeedback,
    lambda_for_critical_value,
    uniform_demands,
)
from repro.analysis import format_table, precise_sigmoid_rate


def main() -> None:
    n, k = 160_000, 4
    demand = uniform_demands(n=n, k=k)
    gamma_star = 0.01
    lam = lambda_for_critical_value(demand, gamma_star=gamma_star)
    gamma = 0.04
    rounds, burn = 120_000, 20_000

    rows = []
    # The 1-bit member of the family is Algorithm Ant itself.
    out = CountingSimulator(
        AntAlgorithm(gamma=gamma), demand, SigmoidFeedback(lam), seed=0
    ).run(rounds // 2, burn_in=burn)
    rows.append(
        [
            "(Algorithm Ant)",
            "-",
            2,
            out.metrics.average_regret,
            float("nan"),
            f"{AntAlgorithm(gamma=gamma).memory_bits(k):.0f}",
        ]
    )

    for eps in (0.999, 0.5, 0.25, 0.125):
        alg = PreciseSigmoidAlgorithm(gamma=gamma, eps=eps)
        start = np.round(demand.as_array() * (1.0 + 2.0 * alg.step_size)).astype(np.int64)
        out = CountingSimulator(
            alg, demand, SigmoidFeedback(lam), seed=0, initial_loads=start
        ).run(rounds, burn_in=burn)
        rows.append(
            [
                f"Precise Sigmoid eps={eps:g}",
                alg.m,
                alg.phase_length,
                out.metrics.average_regret,
                precise_sigmoid_rate(eps, gamma, demand.total),
                f"{alg.memory_bits(k):.0f}",
            ]
        )

    print(
        format_table(
            ["algorithm", "median window m", "phase length", "measured R(t)/t",
             "theory eps*g*sum_d", "memory bits/ant"],
            rows,
            title=(
                f"Precision dial: n={n}, d={demand.min_demand}, gamma={gamma}, "
                f"gamma*={gamma_star} — halve eps, halve the regret, pay log memory "
                f"and 2x phase length"
            ),
            float_fmt="{:.4g}",
        )
    )


if __name__ == "__main__":
    main()
