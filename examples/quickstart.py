#!/usr/bin/env python
"""Quickstart: run Algorithm Ant on a small colony and inspect the result.

The minimal end-to-end use of the library, on the declarative scenario
API:

1. describe the whole simulation as a :class:`repro.ScenarioSpec`
   (components picked by registry name; Assumptions 2.1 validated),
2. let ``calibrated_sigmoid`` tune the noise to a chosen critical value,
3. run it through :func:`repro.run_scenario` from a cold (all-idle) start,
4. read regret / closeness metrics and the per-task loads.

The same spec serializes to JSON (``spec.to_json()``) and runs from the
command line: ``repro-experiments scenario run <file.json>``.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ScenarioSpec, run_scenario
from repro.analysis import ant_closeness_bound
from repro.util.ascii_plot import line_plot


def main() -> None:
    # A colony of 4000 ants, 4 tasks, each demanding 500 workers, with
    # sigmoid noise calibrated so feedback becomes reliable once the
    # deficit exceeds 1% of the demand (gamma* = 0.01), running
    # Algorithm Ant at learning rate gamma = 2.5 * gamma*.
    gamma_star = 0.01
    gamma = 0.025
    spec = ScenarioSpec(
        algorithm={"name": "ant", "params": {"gamma": gamma}},
        demand={"name": "uniform", "params": {"n": 4000, "k": 4}},
        feedback={"name": "calibrated_sigmoid", "params": {"gamma_star": gamma_star}},
        engine={"name": "agent"},
        rounds=10000,
        seed=42,
        run_params={"burn_in": 5000, "trace_stride": 25},
        gamma_star=gamma_star,
        label="quickstart",
    )
    demand = spec.initial_demand()
    print(f"colony: n={demand.n}, demands={demand.as_array()}")
    print(f"feedback: {spec.feedback.build(demand=demand)}  (gamma* = {gamma_star})")

    result = run_scenario(spec)

    m = result.metrics
    closeness = m.closeness(gamma_star, demand.total)
    bound = ant_closeness_bound(gamma, gamma_star)
    print(f"\nsteady-state regret rate R(t)/t = {m.average_regret:.1f} ants")
    print(f"closeness = {closeness:.2f}   (Theorem 3.1 bound: {bound:.1f})")
    print(f"final loads  = {m.final_loads.astype(int)}")
    print(f"final deficit= {m.final_deficits.astype(int)}  (negative = slight overload)")
    print(f"max |deficit| after burn-in = {m.max_abs_deficit:.0f}")

    # Plot the load of task 0 converging from 0 into the resting band.
    rounds = result.trace.rounds
    loads0 = result.trace.loads[:, 0]
    print()
    print(
        line_plot(
            rounds,
            loads0,
            title="task 0 load vs round (demand = 500)",
            xlabel="round",
            ylabel="load",
            height=12,
        )
    )

    assert closeness <= bound, "Theorem 3.1 violated?!"
    print("quickstart OK: allocation is within the Theorem 3.1 closeness bound")
    print("\nThis entire scenario as a config file:")
    print(spec.to_json())


if __name__ == "__main__":
    main()
