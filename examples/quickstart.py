#!/usr/bin/env python
"""Quickstart: run Algorithm Ant on a small colony and inspect the result.

The minimal end-to-end use of the library:

1. build a demand vector (Assumptions 2.1 validated),
2. calibrate the sigmoid noise to a chosen critical value ``gamma*``,
3. run Algorithm Ant from a cold (all-idle) start,
4. read regret / closeness metrics and the per-task loads.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AntAlgorithm,
    SigmoidFeedback,
    Simulator,
    lambda_for_critical_value,
    uniform_demands,
)
from repro.analysis import ant_closeness_bound
from repro.util.ascii_plot import line_plot


def main() -> None:
    # A colony of 4000 ants, 4 tasks, each demanding 500 workers.
    demand = uniform_demands(n=4000, k=4)
    print(f"colony: n={demand.n}, demands={demand.as_array()}")

    # Calibrate the sigmoid so feedback becomes reliable once the deficit
    # exceeds 1% of the demand (gamma* = 0.01).
    gamma_star = 0.01
    lam = lambda_for_critical_value(demand, gamma_star=gamma_star)
    print(f"sigmoid steepness lambda = {lam:.3f}  (gamma* = {gamma_star})")

    # Algorithm Ant with learning rate gamma = 2.5 * gamma*.
    gamma = 0.025
    sim = Simulator(
        AntAlgorithm(gamma=gamma),
        demand,
        SigmoidFeedback(lam),
        seed=42,
    )
    result = sim.run(10000, burn_in=5000, trace_stride=25)

    m = result.metrics
    closeness = m.closeness(gamma_star, demand.total)
    bound = ant_closeness_bound(gamma, gamma_star)
    print(f"\nsteady-state regret rate R(t)/t = {m.average_regret:.1f} ants")
    print(f"closeness = {closeness:.2f}   (Theorem 3.1 bound: {bound:.1f})")
    print(f"final loads  = {m.final_loads.astype(int)}")
    print(f"final deficit= {m.final_deficits.astype(int)}  (negative = slight overload)")
    print(f"max |deficit| after burn-in = {m.max_abs_deficit:.0f}")

    # Plot the load of task 0 converging from 0 into the resting band.
    rounds = result.trace.rounds
    loads0 = result.trace.loads[:, 0]
    print()
    print(
        line_plot(
            rounds,
            loads0,
            title="task 0 load vs round (demand = 500)",
            xlabel="round",
            ylabel="load",
            height=12,
        )
    )

    assert closeness <= bound, "Theorem 3.1 violated?!"
    print("quickstart OK: allocation is within the Theorem 3.1 closeness bound")


if __name__ == "__main__":
    main()
