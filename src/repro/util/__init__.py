"""Utility layer: math helpers, RNG streams, validation, ASCII plotting."""

from repro.util.mathx import (
    ENUMERATION_K_LIMIT,
    log1pexp,
    logistic,
    inverse_logistic,
    sigmoid_lack_probability,
    poisson_binomial_pmf,
    exact_join_probabilities,
    enumerate_subset_join_probabilities,
)
from repro.util.array_api import (
    DEFAULT_ARRAY_BACKEND,
    available_array_backends,
    get_namespace,
    register_array_backend,
    unregister_array_backend,
)
from repro.util.rng import RngFactory, as_generator, spawn_generators
from repro.util.rng_block import BinomialBlockSampler
from repro.util.validation import (
    check_positive,
    check_probability,
    check_in_range,
    check_integer,
)

__all__ = [
    "ENUMERATION_K_LIMIT",
    "log1pexp",
    "logistic",
    "inverse_logistic",
    "sigmoid_lack_probability",
    "poisson_binomial_pmf",
    "exact_join_probabilities",
    "enumerate_subset_join_probabilities",
    "DEFAULT_ARRAY_BACKEND",
    "available_array_backends",
    "get_namespace",
    "register_array_backend",
    "unregister_array_backend",
    "RngFactory",
    "as_generator",
    "spawn_generators",
    "BinomialBlockSampler",
    "check_positive",
    "check_probability",
    "check_in_range",
    "check_integer",
]
