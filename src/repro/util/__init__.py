"""Utility layer: math helpers, RNG streams, validation, ASCII plotting."""

from repro.util.mathx import (
    log1pexp,
    logistic,
    inverse_logistic,
    sigmoid_lack_probability,
    enumerate_subset_join_probabilities,
)
from repro.util.rng import RngFactory, as_generator, spawn_generators
from repro.util.validation import (
    check_positive,
    check_probability,
    check_in_range,
    check_integer,
)

__all__ = [
    "log1pexp",
    "logistic",
    "inverse_logistic",
    "sigmoid_lack_probability",
    "enumerate_subset_join_probabilities",
    "RngFactory",
    "as_generator",
    "spawn_generators",
    "check_positive",
    "check_probability",
    "check_in_range",
    "check_integer",
]
