"""Block-drawn binomials: numpy's inversion sampler, vectorized exactly.

``Generator.binomial(n, p)`` with array arguments goes through numpy's
broadcasting machinery, which costs ~10-15 microseconds per call *before
any sampling happens* (argument coercion, constraint checks, iterator
setup) — independent of the array length.  The batched counting engine
(:mod:`repro.sim.batched`) makes one such call per lane per round, so at
B = 16 lanes this fixed overhead alone caps the speedup over the serial
engine well below its target.

:class:`BinomialBlockSampler` removes it without changing a single drawn
value.  In the parameter regime the engine actually inhabits
(``p <= 0.5`` and ``n * p <= 30`` — small per-task loads and the paper's
small step probabilities), numpy's C sampler is *binomial inversion*
(``random_binomial_inversion`` in ``numpy/random/src/distributions``),
which consumes exactly **one** ``next_double`` from the bit generator
per variate (more only on an astronomically rare bound-overflow reset).
``Generator.random(m)`` consumes the *same* ``next_double`` sequence.
So the sampler:

1. pulls each lane's uniforms in one bulk ``rng.random(m)`` call
   (~2 us) — one uniform per element with ``n > 0 and p > 0``, in
   element order, exactly as the C loop would;
2. replays the inversion recurrence itself, vectorized across all lanes
   at once, with bit-for-bit C arithmetic: the recurrence
   ``px' = ((n - X + 1) * p * px) / (X * q)`` is pure IEEE-754
   ``*,/,-`` (numpy matches C exactly), and the only transcendental
   setup values — ``qn = exp(n * log(q))`` and the reset bound — are
   computed through :mod:`math` (the same libm ``exp``/``log``/``sqrt``
   the C sampler links against) and cached;
3. detects the rare reset branch (``X > bound``) and finishes the
   affected lane with a scalar replay that consumes the identical
   uniform sequence, so even that path stays bit-exact.

Outside the inversion regime (any active element with ``p > 0.5`` or
``n * p > 30``, where numpy switches to the BTPE rejection sampler whose
consumption pattern is impractical to replay), :meth:`draw` returns
``None`` and the caller falls back to per-lane ``Generator.binomial``
calls — slower, never wrong.

Bit-identity between the two paths is pinned by
``tests/util/test_rng_block.py``, which replays thousands of
configurations against freshly seeded generators and checks both the
drawn values and the generator's stream position afterwards.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "BinomialBlockSampler",
    "INVERSION_NP_MAX",
    "MAX_DISTINCT_P",
    "NP_MEAN_MAX",
]

#: numpy's inversion/BTPE crossover: inversion runs iff ``p * n <= 30``
#: (with ``p <= 0.5``); see ``random_binomial`` in numpy's distributions.c.
INVERSION_NP_MAX = 30.0

#: The vectorized replay iterates max(X)+1 times, and max(X) grows like
#: ``n*p + O(sqrt(n*p))``; past a few microseconds per iteration the
#: replay loses to numpy's C loop even including the latter's fixed
#: per-call overhead.  Draws whose largest ``n*p`` exceeds this are
#: delegated back to ``Generator.binomial``.
NP_MEAN_MAX = 4.0

#: Array-valued ``p`` is decomposed into its distinct values (saturating
#: feedback collapses per-task probabilities onto a handful of floats);
#: past this many distinct values the per-value masking would cost more
#: than numpy's broadcast call, so :meth:`~BinomialBlockSampler.draw`
#: falls back.
MAX_DISTINCT_P = 16


def _scalar_inversion(next_u, n: int, p: float, qn: float, bound: int) -> int:
    """One variate of numpy's ``random_binomial_inversion``, verbatim.

    Python floats are IEEE-754 doubles, so this is bit-for-bit the C
    loop; ``next_u`` supplies the ``next_double`` stream.
    """
    if n == 0 or p == 0.0:
        return 0
    q = 1.0 - p
    X = 0
    px = qn
    U = next_u()
    while U > px:
        X += 1
        if X > bound:
            X = 0
            px = qn
            U = next_u()
        else:
            U -= px
            px = ((n - X + 1) * p * px) / (X * q)
    return X


def _setup(n: int, p: float) -> tuple[float, int]:
    """``(qn, bound)`` exactly as the C sampler's setup computes them.

    ``math.exp/log/sqrt`` call the same libm the C code does, so the
    values are bit-identical to numpy's.
    """
    q = 1.0 - p
    qn = math.exp(n * math.log(q))
    np_ = n * p
    bound = int(min(float(n), np_ + 10.0 * math.sqrt(np_ * q + 1.0)))
    return qn, bound


class BinomialBlockSampler:
    """Draw per-lane binomial vectors bit-identical to per-lane
    ``rng.binomial(n[b], p[b])`` calls, at block-draw cost.

    Stateless apart from a value-addressed setup cache (safe to share
    across runs: keys are exact ``p`` values, tables indexed by ``n``).
    """

    def __init__(self) -> None:
        # scalar p -> (qn_table, bound_table) indexed by n.
        self._tables: dict[float, tuple[np.ndarray, np.ndarray]] = {}

    # -- setup cache ---------------------------------------------------
    def _scalar_tables(self, p: float, n_max: int) -> tuple[np.ndarray, np.ndarray]:
        tables = self._tables.get(p)
        if tables is None or tables[0].size <= n_max:
            size = max(n_max + 1, 2 * (tables[0].size if tables else 64))
            qn_t = np.empty(size, dtype=np.float64)
            bound_t = np.empty(size, dtype=np.int64)
            for n in range(size):
                qn_t[n], bound_t[n] = _setup(n, p)
            tables = (qn_t, bound_t)
            self._tables[p] = tables
        return tables

    # -- the block draw ------------------------------------------------
    def draw(
        self,
        rngs: list[np.random.Generator],
        n: np.ndarray,
        p,
    ) -> np.ndarray | None:
        """``out[b] == rngs[b].binomial(n[b], p[b])`` bit-for-bit, or
        ``None`` (generators untouched) when any active element is
        outside the inversion regime and the caller must fall back.

        ``n`` is ``(B, k)`` int64; ``p`` a float scalar or ``(B, k)``
        float64 (row-broadcast scalars arrive as the scalar).
        """
        B, k = n.shape
        scalar_p = not isinstance(p, np.ndarray)
        if scalar_p:
            if p == 0.0:
                return np.zeros((B, k), dtype=np.int64)
            if p < 0.0 or p > 0.5:
                return None
            n_max = int(n.max())
            if n_max * p > NP_MEAN_MAX:
                return None
            qn_t, bound_t = self._scalar_tables(p, n_max)
            qn = qn_t[n]
            bound = bound_t[n]
            active = n > 0
        else:
            if p.min() < 0.0:
                return None
            active = (n > 0) & (p > 0.0)
            if not active.any():
                return np.zeros((B, k), dtype=np.int64)
            # Decompose into the distinct active p values and compose the
            # per-element setup from the per-value tables.  Saturating
            # feedback makes one or two values the overwhelmingly common
            # case; probe that before paying for a full np.unique.
            v0 = float(p.ravel()[int(np.argmax(active))])
            if bool(np.all((p == v0) | ~active)):
                values = [v0]
            else:
                values = np.unique(p[active]).tolist()
                if len(values) > MAX_DISTINCT_P:
                    return None
            qn = np.ones((B, k), dtype=np.float64)
            bound = np.zeros((B, k), dtype=np.int64)
            for v in values:
                if v > 0.5:
                    return None
                mask = active & (p == v)
                n_v = n[mask]
                n_max = int(n_v.max())
                if n_max * v > NP_MEAN_MAX:
                    return None
                qn_t, bound_t = self._scalar_tables(v, n_max)
                qn[mask] = qn_t[n_v]
                bound[mask] = bound_t[n_v]

        # One uniform per active element, per lane, in element order —
        # the exact next_double sequence the C loop would consume.
        blocks: list[np.ndarray | None] = []
        if active.all():
            U = np.empty((B, k), dtype=np.float64)
            for b, rng in enumerate(rngs):
                rng.random(out=U[b])
                blocks.append(U[b])
        else:
            U = np.zeros((B, k), dtype=np.float64)
            for b, rng in enumerate(rngs):
                mask = active[b]
                m = int(mask.sum())
                if m:
                    block = rng.random(m)
                    U[b, mask] = block
                    blocks.append(block)
                else:
                    blocks.append(None)

        X = np.zeros((B, k), dtype=np.int64)
        live = np.flatnonzero(active & (U > qn))
        resets: list[int] = []
        if live.size:
            Uf = U.ravel()[live]
            pxf = qn.ravel()[live]
            nf = n.ravel()[live].astype(np.float64)
            pf = p if scalar_p else p.ravel()[live]
            qf = 1.0 - pf
            boundf = bound.ravel()[live]
            Xf = np.zeros(live.size, dtype=np.int64)
            x_flat = X.ravel()
            while live.size:
                Xf += 1
                over = Xf > boundf
                if over.any():
                    # Astronomically rare (U within float-sum slack of
                    # 1): the C sampler restarts the element on a fresh
                    # uniform.  Finish those lanes scalarly below.
                    resets.extend(live[over].tolist())
                Uf -= pxf
                pxf = ((nf - Xf + 1) * pf * pxf) / (Xf * qf)
                cont = (Uf > pxf) & ~over
                if not cont.all():
                    done = ~cont
                    x_flat[live[done]] = Xf[done]
                    live = live[cont]
                    Uf = Uf[cont]
                    pxf = pxf[cont]
                    nf = nf[cont]
                    if not scalar_p:
                        pf = pf[cont]
                        qf = qf[cont]
                    boundf = boundf[cont]
                    Xf = Xf[cont]
            X = x_flat.reshape(B, k)

        # One replay per lane, from its *first* reset element: the scalar
        # replay re-runs every later element of the lane (including any
        # further resets), so acting on later recorded resets again would
        # double-consume the stream.
        first_reset: dict[int, int] = {}
        for flat in resets:
            b, j = divmod(int(flat), k)
            if j < first_reset.get(b, k):
                first_reset[b] = j
        for b in sorted(first_reset):
            self._replay_lane(
                rngs, n, p, qn, bound, active, blocks, X, b, first_reset[b], scalar_p
            )
        return X

    def _replay_lane(
        self, rngs, n, p, qn, bound, active, blocks, X, b: int, j: int, scalar_p: bool
    ) -> None:
        """Redo lane ``b`` from element ``j`` after a reset.

        The reset consumes an extra uniform, shifting every later
        element's uniform within the lane; replay the C loop exactly,
        feeding first the remainder of the lane's already-drawn block,
        then fresh singles from the lane's generator (which sits right
        after the block — the correct continuation of the stream).
        """
        mask = active[b]
        block = blocks[b]
        queue = list(block[int(mask[:j].sum()) :])  # uniforms from element j on
        pos = 0

        def next_u() -> float:
            nonlocal pos
            if pos < len(queue):
                u = queue[pos]
                pos += 1
                return float(u)
            return float(rngs[b].random())

        for col in range(j, n.shape[1]):
            if not mask[col]:
                X[b, col] = 0
                continue
            X[b, col] = _scalar_inversion(
                next_u,
                int(n[b, col]),
                float(p if scalar_p else p[b, col]),
                float(qn[b, col]),
                int(bound[b, col]),
            )
