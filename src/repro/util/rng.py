"""Reproducible random-number management.

Every stochastic component in the library takes a ``numpy.random.Generator``
(never the legacy global state), following the scientific-python guidance.
Multi-trial runs need *independent* streams per trial; we derive them with
``SeedSequence.spawn`` so trials are reproducible and statistically
independent regardless of execution order (and safe to farm out to
worker processes).
"""

from __future__ import annotations

import zlib
from collections.abc import Sequence

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["as_generator", "spawn_generators", "RngFactory"]

RngLike = int | np.random.Generator | np.random.SeedSequence | None


def as_generator(rng: RngLike) -> np.random.Generator:
    """Coerce ``rng`` into a ``numpy.random.Generator``.

    Accepts an existing generator (returned unchanged), an integer seed,
    a ``SeedSequence``, or ``None`` (fresh OS entropy).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, np.random.SeedSequence):
        return np.random.Generator(np.random.PCG64(rng))
    if rng is None or isinstance(rng, (int, np.integer)):
        return np.random.Generator(np.random.PCG64(rng))
    raise ConfigurationError(f"cannot interpret {rng!r} as a random generator")


def spawn_generators(rng: RngLike, count: int) -> list[np.random.Generator]:
    """Create ``count`` independent child generators from one seed source."""
    if count < 0:
        raise ConfigurationError(f"count must be >= 0, got {count}")
    if isinstance(rng, np.random.Generator):
        # Generators since numpy 1.25 expose spawn(); fall back to seeds drawn
        # from the generator itself for older versions.
        try:
            return list(rng.spawn(count))
        except AttributeError:  # pragma: no cover - numpy < 1.25
            seeds = rng.integers(0, 2**63 - 1, size=count)
            return [np.random.Generator(np.random.PCG64(int(s))) for s in seeds]
    seq = rng if isinstance(rng, np.random.SeedSequence) else np.random.SeedSequence(rng)
    return [np.random.Generator(np.random.PCG64(child)) for child in seq.spawn(count)]


class RngFactory:
    """Deterministic factory of named, independent random streams.

    A simulation needs several conceptually distinct sources of randomness
    (feedback noise, pause coin flips, join choices ...).  Deriving each from
    the same root ``SeedSequence`` keyed by a stable label keeps runs
    reproducible even when the *order* in which components request their
    streams changes.

    Examples
    --------
    >>> f = RngFactory(7)
    >>> a = f.stream("feedback")
    >>> b = f.stream("decisions")
    >>> a is not b
    True
    """

    def __init__(self, seed: RngLike = None) -> None:
        if isinstance(seed, np.random.Generator):
            # Freeze the generator's entropy into a root sequence.
            seed = int(seed.integers(0, 2**63 - 1))
        self._root = (
            seed
            if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed)
        )
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def root_entropy(self) -> Sequence[int]:
        """The root entropy, for logging / reproducibility records."""
        ent = self._root.entropy
        return tuple(ent) if isinstance(ent, (list, tuple)) else (int(ent),)

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same name always maps to the same stream within one factory.
        """
        if name not in self._streams:
            # Key the child purely by the label so creation order is irrelevant.
            # zlib.crc32 is stable across interpreter runs (unlike hash()).
            digest = zlib.crc32(name.encode("utf-8"))
            child = np.random.SeedSequence(
                entropy=self._root.entropy, spawn_key=(digest,)
            )
            self._streams[name] = np.random.Generator(np.random.PCG64(child))
        return self._streams[name]

    def spawn(self, count: int) -> list[np.random.Generator]:
        """Spawn ``count`` anonymous independent generators."""
        return spawn_generators(self._root, count)
