"""Numerically careful math helpers used throughout the library.

The sigmoid noise model of the paper evaluates ``s(x) = 1/(1+exp(-lambda x))``
at arguments that can be as large as ``lambda * n`` in magnitude, so naive
``exp`` overflows.  Everything here is branch-free, vectorized, and stable
in both tails (HPC guide: vectorize and avoid per-element Python loops).
"""

from __future__ import annotations

from itertools import combinations

import numpy as np
import numpy.typing as npt

from repro.exceptions import ConfigurationError

__all__ = [
    "log1pexp",
    "logistic",
    "inverse_logistic",
    "sigmoid_lack_probability",
    "enumerate_subset_join_probabilities",
]


def log1pexp(x: npt.ArrayLike) -> np.ndarray:
    """Stable ``log(1 + exp(x))`` for any real ``x`` (a.k.a. softplus).

    Uses the standard two-branch identity: for ``x <= 0`` compute
    ``log1p(exp(x))`` directly; for ``x > 0`` use ``x + log1p(exp(-x))``.
    """
    x = np.asarray(x, dtype=np.float64)
    out = np.empty_like(x)
    neg = x <= 0.0
    out[neg] = np.log1p(np.exp(x[neg]))
    pos = ~neg
    out[pos] = x[pos] + np.log1p(np.exp(-x[pos]))
    return out


def logistic(x: npt.ArrayLike) -> np.ndarray:
    """Stable logistic sigmoid ``1 / (1 + exp(-x))``, elementwise.

    Never overflows: the positive branch computes ``1/(1+exp(-x))`` and the
    negative branch ``exp(x)/(1+exp(x))``, each evaluated only where its
    exponent is non-positive.
    """
    x = np.asarray(x, dtype=np.float64)
    out = np.empty_like(x)
    pos = x >= 0.0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def inverse_logistic(p: npt.ArrayLike) -> np.ndarray:
    """Inverse of :func:`logistic` (the logit), elementwise.

    Raises
    ------
    ConfigurationError
        If any probability lies outside the open interval ``(0, 1)``.
    """
    p = np.asarray(p, dtype=np.float64)
    if np.any(p <= 0.0) or np.any(p >= 1.0):
        raise ConfigurationError("inverse_logistic requires probabilities strictly in (0, 1)")
    return np.log(p) - np.log1p(-p)


def sigmoid_lack_probability(
    deficit: npt.ArrayLike, lam: float
) -> np.ndarray:
    """Per-task probability that an ant's feedback reads LACK.

    This is the paper's noise kernel ``s(Delta) = 1/(1+exp(-lambda*Delta))``
    (Section 2.2).  ``deficit`` may be any shape; the result matches it.

    Parameters
    ----------
    deficit:
        ``Delta(j) = d(j) - W(j)``; positive values mean too few workers.
    lam:
        Sigmoid steepness ``lambda > 0``.
    """
    if lam <= 0.0:
        raise ConfigurationError(f"sigmoid steepness lambda must be > 0, got {lam}")
    return logistic(lam * np.asarray(deficit, dtype=np.float64))


def enumerate_subset_join_probabilities(u: npt.ArrayLike) -> np.ndarray:
    """Exact per-task join probabilities for an idle ant.

    In Algorithm Ant an idle ant marks each task ``j`` "underloaded"
    independently with probability ``u[j]`` (both of its samples read LACK)
    and then joins one *uniformly at random* among its underloaded tasks,
    staying idle if there are none.  This returns the exact marginal
    distribution over actions, computed by enumerating all ``2^k`` subsets:

    ``pi[j] = sum over subsets S containing j of P[S] / |S|`` for ``j < k``,
    and ``pi[k] = P[empty set]`` is the probability of staying idle.

    Used by the O(k)-per-round counting engine; complexity ``O(2^k * k)``,
    intended for ``k <= ~14``.

    Returns
    -------
    Array of shape ``(k + 1,)``: entries ``0..k-1`` are join probabilities,
    entry ``k`` is the stay-idle probability.  Sums to 1.
    """
    u = np.asarray(u, dtype=np.float64)
    if u.ndim != 1:
        raise ConfigurationError("u must be a 1-d vector of per-task probabilities")
    if np.any(u < 0.0) or np.any(u > 1.0):
        raise ConfigurationError("per-task underload probabilities must lie in [0, 1]")
    k = u.shape[0]
    if k > 20:
        raise ConfigurationError(
            f"subset enumeration is exponential in k; k={k} is too large (use agent sampling)"
        )
    pi = np.zeros(k + 1, dtype=np.float64)
    one_minus = 1.0 - u
    tasks = range(k)
    # P[empty set]: ant saw no underloaded task, stays idle.
    pi[k] = float(np.prod(one_minus))
    for size in range(1, k + 1):
        share = 1.0 / size
        for subset in combinations(tasks, size):
            mask = np.zeros(k, dtype=bool)
            mask[list(subset)] = True
            p_subset = float(np.prod(np.where(mask, u, one_minus)))
            if p_subset == 0.0:
                continue
            for j in subset:
                pi[j] += p_subset * share
    # Guard against tiny negative drift / renormalize to machine precision.
    total = pi.sum()
    if not np.isclose(total, 1.0, atol=1e-9):
        raise ConfigurationError(f"join probabilities do not sum to 1 (got {total})")
    return pi / total
