"""Numerically careful math helpers used throughout the library.

The sigmoid noise model of the paper evaluates ``s(x) = 1/(1+exp(-lambda x))``
at arguments that can be as large as ``lambda * n`` in magnitude, so naive
``exp`` overflows.  Everything here is branch-free, vectorized, and stable
in both tails (HPC guide: vectorize and avoid per-element Python loops).
"""

from __future__ import annotations

from functools import lru_cache
from itertools import combinations

import numpy as np
import numpy.typing as npt

from repro.exceptions import ConfigurationError

__all__ = [
    "ENUMERATION_K_LIMIT",
    "FFT_K_THRESHOLD",
    "QUADRATURE_K_THRESHOLD",
    "JOIN_KERNEL_METHODS",
    "log1pexp",
    "logistic",
    "inverse_logistic",
    "sigmoid_lack_probability",
    "poisson_binomial_pmf",
    "fft_poisson_binomial_pmf",
    "fft_join_probabilities",
    "quadrature_join_probabilities",
    "exact_join_probabilities",
    "resolve_join_kernel_method",
    "enumerate_subset_join_probabilities",
]

#: Largest task count for which the O(2^k k) subset enumerator is allowed.
#: Single source of truth shared with the counting engine: above this the
#: enumerator refuses, and callers must use :func:`exact_join_probabilities`
#: (identical distribution, O(k^2)) instead.
ENUMERATION_K_LIMIT = 14

#: Task count at which :func:`exact_join_probabilities` auto-dispatches
#: from the O(k^2) DP PMF to the O(k log^2 k) FFT PMF.  The DP does ``k``
#: dependent O(k) slice updates while the FFT does ~``3 log2 k`` batched
#: transforms, so the crossover sits well below 10^3 on any hardware;
#: 512 is a conservative choice validated by ``benchmarks/bench_join_kernel``.
FFT_K_THRESHOLD = 512

#: Task count at which :func:`exact_join_probabilities` auto-dispatches
#: from the FFT-PMF + leave-one-out deconvolution to the loop-free
#: Gauss-Legendre quadrature kernel.  The deconvolution back end is a
#: ``k``-step Python recurrence (O(k) numpy work per step but ~10 us of
#: interpreter overhead each), while the quadrature evaluates one batched
#: ``(nodes x k)`` log/exp/matvec with no per-``k`` Python loop at all;
#: past a few thousand tasks the recurrence overhead dominates
#: (``benchmarks/bench_join_kernel.py`` records the crossover).
QUADRATURE_K_THRESHOLD = 2048

#: Accepted ``method`` values for :func:`exact_join_probabilities`.
JOIN_KERNEL_METHODS = ("auto", "dp", "fft", "quadrature")

#: Nodes whose log-polynomial value falls below this contribute less than
#: ``exp(-200) * k^2 ~ 1e-78`` to any join probability (see
#: :func:`_quadrature_join`); they are skipped without touching the
#: 1e-10 agreement bar.
_QUADRATURE_LOG_PRUNE = -200.0

#: Quadrature nodes processed per batched block.  Caps peak memory at
#: ``block * k`` float64s (~128 MiB at k = 8192) independent of ``k``.
_QUADRATURE_NODE_BLOCK = 1024


def log1pexp(x: npt.ArrayLike) -> np.ndarray:
    """Stable ``log(1 + exp(x))`` for any real ``x`` (a.k.a. softplus).

    Uses the standard two-branch identity: for ``x <= 0`` compute
    ``log1p(exp(x))`` directly; for ``x > 0`` use ``x + log1p(exp(-x))``.
    """
    x = np.asarray(x, dtype=np.float64)
    out = np.empty_like(x)
    neg = x <= 0.0
    out[neg] = np.log1p(np.exp(x[neg]))
    pos = ~neg
    out[pos] = x[pos] + np.log1p(np.exp(-x[pos]))
    return out


def logistic(x: npt.ArrayLike) -> np.ndarray:
    """Stable logistic sigmoid ``1 / (1 + exp(-x))``, elementwise.

    Never overflows: the positive branch computes ``1/(1+exp(-x))`` and the
    negative branch ``exp(x)/(1+exp(x))``, each evaluated only where its
    exponent is non-positive.
    """
    x = np.asarray(x, dtype=np.float64)
    out = np.empty_like(x)
    pos = x >= 0.0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def inverse_logistic(p: npt.ArrayLike) -> np.ndarray:
    """Inverse of :func:`logistic` (the logit), elementwise.

    Raises
    ------
    ConfigurationError
        If any probability lies outside the open interval ``(0, 1)``.
    """
    p = np.asarray(p, dtype=np.float64)
    if np.any(p <= 0.0) or np.any(p >= 1.0):
        raise ConfigurationError("inverse_logistic requires probabilities strictly in (0, 1)")
    return np.log(p) - np.log1p(-p)


def sigmoid_lack_probability(
    deficit: npt.ArrayLike, lam: float | npt.ArrayLike
) -> np.ndarray:
    """Per-task probability that an ant's feedback reads LACK.

    This is the paper's noise kernel ``s(Delta) = 1/(1+exp(-lambda*Delta))``
    (Section 2.2).  ``deficit`` may be any shape; the result matches it.

    Parameters
    ----------
    deficit:
        ``Delta(j) = d(j) - W(j)``; positive values mean too few workers.
    lam:
        Sigmoid steepness ``lambda > 0``: a scalar applied to every task,
        or a per-task vector broadcast against ``deficit``'s task axis
        (heterogeneous noise — some tasks read more reliably than others).
    """
    lam = np.asarray(lam, dtype=np.float64)
    if np.any(lam <= 0.0) or np.any(np.isnan(lam)):
        raise ConfigurationError(
            f"sigmoid steepness lambda must be > 0 everywhere, got {lam}"
        )
    try:
        arg = lam * np.asarray(deficit, dtype=np.float64)
    except ValueError as exc:
        raise ConfigurationError(
            f"per-task lambda shape {lam.shape} does not broadcast against "
            f"deficit shape {np.asarray(deficit).shape}: {exc}"
        ) from exc
    return logistic(arg)


def _check_probability_vector(u: npt.ArrayLike) -> np.ndarray:
    """Validate a 1-d vector of probabilities and return it as float64."""
    u = np.asarray(u, dtype=np.float64)
    if u.ndim != 1:
        raise ConfigurationError("u must be a 1-d vector of per-task probabilities")
    if np.any(u < 0.0) or np.any(u > 1.0):
        raise ConfigurationError("per-task underload probabilities must lie in [0, 1]")
    return u


def _normalize_join_distribution(pi: np.ndarray, k: int) -> np.ndarray:
    """Clip fp dust and renormalize an action distribution to sum to 1.

    Accumulated rounding grows with the number of terms, so the sanity
    check scales with ``k`` instead of the fixed ``atol=1e-9`` the old
    enumerator used (which spuriously tripped near the old k cap).  A
    genuinely broken distribution — sum far from 1 — still raises.
    """
    pi = np.clip(pi, 0.0, None)
    total = float(pi.sum())
    if not np.isclose(total, 1.0, rtol=0.0, atol=1e-9 * max(k, 1)):
        raise ConfigurationError(f"join probabilities do not sum to 1 (got {total})")
    return pi / total


def poisson_binomial_pmf(u: npt.ArrayLike) -> np.ndarray:
    """PMF of a Poisson-binomial count ``B = sum_j Bernoulli(u[j])``.

    Standard O(k^2) dynamic programme: convolve the running PMF with one
    Bernoulli factor at a time, each step vectorized over the support.

    Returns
    -------
    Array of shape ``(k + 1,)`` with ``pmf[m] = P[B = m]``.
    """
    return _dp_pmf(_check_probability_vector(u))


def _dp_pmf(u: np.ndarray) -> np.ndarray:
    """O(k^2) DP Poisson-binomial PMF core (``u`` already validated)."""
    k = u.shape[0]
    pmf = np.zeros(k + 1, dtype=np.float64)
    pmf[0] = 1.0
    for j in range(k):
        p = u[j]
        if p == 0.0:
            continue
        pmf[1 : j + 2] = pmf[1 : j + 2] * (1.0 - p) + pmf[0 : j + 1] * p
        pmf[0] *= 1.0 - p
    return pmf


def fft_poisson_binomial_pmf(u: npt.ArrayLike) -> np.ndarray:
    """PMF of a Poisson-binomial count via divide-and-conquer FFT.

    The PMF is the coefficient vector of ``P(t) = prod_j (q_j + u_j t)``.
    Instead of the O(k^2) sequential DP, the factors are merged pairwise
    bottom-up; every level multiplies all sibling pairs at once with one
    *batched* real FFT (``numpy.fft.rfft`` along the last axis), so the
    whole build is O(k log^2 k) flops in ~3 log2(k) numpy calls.  The
    leaf list is padded with identity polynomials (``1``) to a power of
    two so every level stays rectangular.

    All true coefficients are non-negative and bounded by 1, so FFT
    round-off is ~1e-15 absolute; tiny negative dust is clipped and the
    result renormalized to sum exactly to 1.

    Returns
    -------
    Array of shape ``(k + 1,)`` with ``pmf[m] = P[B = m]``.
    """
    return _fft_pmf(_check_probability_vector(u))


def _fft_pmf(u: np.ndarray) -> np.ndarray:
    """FFT divide-and-conquer PMF core (``u`` already validated)."""
    k = u.shape[0]
    if k == 0:
        return np.ones(1, dtype=np.float64)
    n_leaves = 1 << (k - 1).bit_length()
    # Leaf polynomials q_j + u_j t, padded with the identity polynomial.
    polys = np.zeros((n_leaves, 2), dtype=np.float64)
    polys[:k, 0] = 1.0 - u
    polys[:k, 1] = u
    polys[k:, 0] = 1.0
    while polys.shape[0] > 1:
        m = polys.shape[1]
        out_len = 2 * m - 1
        n_fft = 1 << (out_len - 1).bit_length()
        fa = np.fft.rfft(polys[0::2], n_fft, axis=1)
        fb = np.fft.rfft(polys[1::2], n_fft, axis=1)
        polys = np.fft.irfft(fa * fb, n_fft, axis=1)[:, :out_len]
    pmf = polys[0][: k + 1]
    np.clip(pmf, 0.0, 1.0, out=pmf)
    total = pmf.sum()
    if not np.isclose(total, 1.0, rtol=0.0, atol=1e-9 * max(k, 1)):
        raise ConfigurationError(f"FFT Poisson-binomial PMF does not sum to 1 (got {total})")
    return pmf / total


def _leave_one_out_join(u: np.ndarray, pmf: np.ndarray) -> np.ndarray:
    """Join distribution from a full-count PMF by leave-one-out deconvolution.

    Shared back end of :func:`exact_join_probabilities` (DP PMF) and
    :func:`fft_join_probabilities` (FFT PMF): every leave-one-out PMF is
    recovered by deconvolving one Bernoulli factor — a two-term
    recurrence run forward where ``u[j] <= 1/2`` and backward where
    ``u[j] > 1/2`` so the error amplification factor never exceeds 1 —
    vectorized across tasks, so total work is O(k^2).
    """
    k = u.shape[0]
    pi = np.zeros(k + 1, dtype=np.float64)
    # Stay idle iff no task is marked.
    pi[k] = pmf[0]
    active = np.nonzero(u > 0.0)[0]
    if active.size:
        ua = u[active]
        qa = 1.0 - ua
        # Leave-one-out PMFs: g[i, m] = P[B_j = m] for j = active[i].
        # B_j has support 0..k-1 (task j itself is excluded).
        g = np.empty((active.size, k), dtype=np.float64)
        fwd = ua <= 0.5
        if np.any(fwd):
            uf, qf = ua[fwd], qa[fwd]
            gf = np.empty((uf.size, k), dtype=np.float64)
            gf[:, 0] = pmf[0] / qf
            for m in range(1, k):
                gf[:, m] = (pmf[m] - uf * gf[:, m - 1]) / qf
            g[fwd] = gf
        bwd = ~fwd
        if np.any(bwd):
            ub, qb = ua[bwd], qa[bwd]
            gb = np.empty((ub.size, k), dtype=np.float64)
            gb[:, k - 1] = pmf[k] / ub
            for m in range(k - 1, 0, -1):
                gb[:, m - 1] = (pmf[m] - qb * gb[:, m]) / ub
            g[bwd] = gb
        # Deconvolution dust: clip and renormalize each leave-one-out PMF.
        np.clip(g, 0.0, 1.0, out=g)
        g /= g.sum(axis=1, keepdims=True)
        # pi[j] = u_j * E[1/(1+B_j)] = u_j * sum_m g[j, m] / (m + 1).
        pi[active] = ua * (g @ (1.0 / np.arange(1.0, k + 1.0)))
    return pi


@lru_cache(maxsize=16)
def _gauss_legendre_unit(m: int) -> tuple[np.ndarray, np.ndarray]:
    """Gauss-Legendre nodes and weights mapped from [-1, 1] to [0, 1].

    Nodes come back sorted ascending; both arrays are marked read-only so
    the cache can hand the same objects to every caller.
    """
    x, w = np.polynomial.legendre.leggauss(m)
    t = 0.5 * (x + 1.0)
    w = 0.5 * w
    t.setflags(write=False)
    w.setflags(write=False)
    return t, w


def _quadrature_join(u: np.ndarray) -> np.ndarray:
    """Join distribution by Gauss-Legendre quadrature, no k-step recurrence.

    Writing ``P(t) = prod_i (q_i + u_i t)`` for the Poisson-binomial
    probability generating function, ``E[1/(1+B_j)] = integral over [0,1]
    of E[t^{B_j}] dt`` gives

    ``pi_j = u_j * integral_0^1 P(t) / (q_j + u_j t) dt``.

    The integrand is the degree-(a-1) leave-one-out polynomial (``a`` the
    number of active tasks), so Gauss-Legendre with ``ceil(a/2)`` nodes
    integrates it *exactly* — this is the same distribution as the DP/FFT
    deconvolution, not an approximation.  Per node ``t_s`` the integrand
    values for all ``j`` are recovered from one shared product:
    ``log P(t_s) - log(q_j + u_j t_s)``, evaluated as a batched
    ``(nodes x tasks)`` ``log1p``/``exp``/matvec — loop-free in ``k``
    (the only Python loop is over constant-size node blocks).

    Working in log space keeps ``P(t_s)`` (which underflows float64 for
    thousands of tasks) exact, and because every factor lies in (0, 1]
    the log-sum has no cancellation: the absolute error of ``log P`` is
    ~``eps * log2(k) * |log P|``, far inside the 1e-10 bar.  Nodes with
    ``log P(t_s) < -200`` are skipped: each of their terms is bounded by
    ``exp(log P(t_s)) / (q_j + u_j t_1) <= exp(-200) * O(k^2)`` (the
    smallest node ``t_1`` is Theta(1/m^2)), i.e. ~1e-78 — and since
    ``log P`` is increasing in ``t``, one binary search finds the cutoff
    without evaluating the pruned nodes.
    """
    k = u.shape[0]
    pi = np.zeros(k + 1, dtype=np.float64)
    # Stay idle iff no task is marked: prod q_i, in log space so a
    # genuinely subnormal idle probability underflows to 0 instead of
    # poisoning the product.
    if not np.any(u >= 1.0):
        pi[k] = np.exp(np.sum(np.log1p(-u)))
    active = np.nonzero(u > 0.0)[0]
    if active.size == 0:
        return pi
    ua = u[active]
    m = (active.size + 1) // 2  # 2m - 1 >= a - 1: exact for the integrand
    t, w = _gauss_legendre_unit(m)
    tm1 = t - 1.0  # q_j + u_j t = 1 + u_j (t - 1), stable via log1p

    def log_poly(ts: float) -> float:
        return float(np.sum(np.log1p(ts * ua)))

    # Binary search the first node whose log-polynomial clears the prune
    # threshold (log P is increasing in t).
    lo, hi = 0, m - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if log_poly(tm1[mid]) > _QUADRATURE_LOG_PRUNE:
            hi = mid
        else:
            lo = mid + 1
    acc = np.zeros(active.size, dtype=np.float64)
    for start in range(lo, m, _QUADRATURE_NODE_BLOCK):
        stop = min(start + _QUADRATURE_NODE_BLOCK, m)
        # F[s, i] = log(q_i + u_i t_s); the row sum is log P(t_s).
        F = np.log1p(np.multiply.outer(tm1[start:stop], ua))
        L = F.sum(axis=1)
        # Integrand values exp(log P - log factor_j), already weighted.
        acc += w[start:stop] @ np.exp(L[:, np.newaxis] - F)
    pi[active] = ua * acc
    return pi


def quadrature_join_probabilities(u: npt.ArrayLike) -> np.ndarray:
    """Exact join probabilities via the Gauss-Legendre quadrature kernel.

    Identical distribution to :func:`exact_join_probabilities` with
    ``method="dp"``/``"fft"`` (property-tested to 1e-10 up to k = 4096);
    unlike those it never builds the count PMF or runs the k-step
    deconvolution recurrence — see :func:`_quadrature_join`.  This is the
    fastest back end past :data:`QUADRATURE_K_THRESHOLD` tasks and what
    makes exact k = 8192..16384 counting scenarios practical.

    Returns
    -------
    Array of shape ``(k + 1,)``: entries ``0..k-1`` are join probabilities,
    entry ``k`` is the stay-idle probability.  Sums to 1.
    """
    return exact_join_probabilities(u, method="quadrature")


def resolve_join_kernel_method(k: int, method: str = "auto") -> str:
    """The concrete kernel back end used for ``k`` tasks under ``method``.

    ``"auto"`` resolves to ``"dp"`` below :data:`FFT_K_THRESHOLD`,
    ``"fft"`` from there up to :data:`QUADRATURE_K_THRESHOLD`, and
    ``"quadrature"`` at or above it; concrete names resolve to
    themselves.  Exposed so callers (e.g. the cross-trial join cache) can
    key results by the back end that actually ran.

    Raises
    ------
    ConfigurationError
        (a :class:`ValueError`) if ``method`` is not one of
        :data:`JOIN_KERNEL_METHODS`.
    """
    if method not in JOIN_KERNEL_METHODS:
        raise ConfigurationError(
            f"join kernel method must be one of {JOIN_KERNEL_METHODS}, got {method!r}"
        )
    if method != "auto":
        return method
    if k >= QUADRATURE_K_THRESHOLD:
        return "quadrature"
    if k >= FFT_K_THRESHOLD:
        return "fft"
    return "dp"


def fft_join_probabilities(u: npt.ArrayLike) -> np.ndarray:
    """Exact join probabilities with the FFT-built full-count PMF.

    Identical distribution to :func:`exact_join_probabilities`; only the
    Poisson-binomial PMF construction differs
    (:func:`fft_poisson_binomial_pmf`, O(k log^2 k), vs the O(k^2) DP).
    The leave-one-out deconvolution back end is shared, so the two paths
    agree to FFT round-off (~1e-15 absolute; property-tested to 1e-10).

    Returns
    -------
    Array of shape ``(k + 1,)``: entries ``0..k-1`` are join probabilities,
    entry ``k`` is the stay-idle probability.  Sums to 1.
    """
    return exact_join_probabilities(u, method="fft")


def exact_join_probabilities(u: npt.ArrayLike, *, method: str = "auto") -> np.ndarray:
    """Exact per-task join probabilities for an idle ant.

    Same distribution as :func:`enumerate_subset_join_probabilities` —
    the ant marks task ``j`` "underloaded" independently w.p. ``u[j]``
    and joins one uniformly random marked task (idle if none) — but
    computed without touching the ``2^k`` subsets:

    ``pi[j] = u[j] * E[1 / (1 + B_j)]``

    where ``B_j`` is the Poisson-binomial count of *other* marked tasks.
    Three interchangeable back ends compute this: ``"dp"`` and ``"fft"``
    build the full-count PMF (O(k^2) DP :func:`poisson_binomial_pmf` vs
    O(k log^2 k) :func:`fft_poisson_binomial_pmf`) and deconvolve one
    Bernoulli factor per task (:func:`_leave_one_out_join`, a k-step
    recurrence); ``"quadrature"`` evaluates the equivalent Gauss-Legendre
    integral ``pi_j = u_j * integral P(t)/(q_j + u_j t) dt`` in batched
    matrix ops with no k-step loop (:func:`_quadrature_join`).  All three
    are exact in law and agree to ~1e-12.

    Parameters
    ----------
    u:
        Per-task mark probabilities in ``[0, 1]``, shape ``(k,)``.
    method:
        A concrete back end (``"dp"``, ``"fft"``, ``"quadrature"``) or
        ``"auto"`` (default), which picks DP below
        :data:`FFT_K_THRESHOLD` tasks, FFT up to
        :data:`QUADRATURE_K_THRESHOLD`, and quadrature beyond — see
        :func:`resolve_join_kernel_method`.

    Returns
    -------
    Array of shape ``(k + 1,)``: entries ``0..k-1`` are join probabilities,
    entry ``k`` is the stay-idle probability.  Sums to 1.
    """
    u = _check_probability_vector(u)
    k = u.shape[0]
    resolved = resolve_join_kernel_method(k, method)
    if k == 0:
        return np.ones(1, dtype=np.float64)
    if resolved == "quadrature":
        pi = _quadrature_join(u)
    else:
        pmf = _fft_pmf(u) if resolved == "fft" else _dp_pmf(u)
        pi = _leave_one_out_join(u, pmf)
    return _normalize_join_distribution(pi, k)


def enumerate_subset_join_probabilities(u: npt.ArrayLike) -> np.ndarray:
    """Exact per-task join probabilities for an idle ant.

    In Algorithm Ant an idle ant marks each task ``j`` "underloaded"
    independently with probability ``u[j]`` (both of its samples read LACK)
    and then joins one *uniformly at random* among its underloaded tasks,
    staying idle if there are none.  This returns the exact marginal
    distribution over actions, computed by enumerating all ``2^k`` subsets:

    ``pi[j] = sum over subsets S containing j of P[S] / |S|`` for ``j < k``,
    and ``pi[k] = P[empty set]`` is the probability of staying idle.

    Complexity ``O(2^k * k)``, allowed only for ``k <=``
    :data:`ENUMERATION_K_LIMIT`.  Retained as the brute-force test oracle
    for :func:`exact_join_probabilities`, which computes the identical
    distribution in O(k^2) and is what the counting engine uses.

    Returns
    -------
    Array of shape ``(k + 1,)``: entries ``0..k-1`` are join probabilities,
    entry ``k`` is the stay-idle probability.  Sums to 1.
    """
    u = _check_probability_vector(u)
    k = u.shape[0]
    if k > ENUMERATION_K_LIMIT:
        raise ConfigurationError(
            f"subset enumeration is exponential in k; k={k} exceeds "
            f"ENUMERATION_K_LIMIT={ENUMERATION_K_LIMIT} "
            "(use exact_join_probabilities)"
        )
    pi = np.zeros(k + 1, dtype=np.float64)
    one_minus = 1.0 - u
    tasks = range(k)
    # P[empty set]: ant saw no underloaded task, stays idle.
    pi[k] = float(np.prod(one_minus))
    for size in range(1, k + 1):
        share = 1.0 / size
        for subset in combinations(tasks, size):
            mask = np.zeros(k, dtype=bool)
            mask[list(subset)] = True
            p_subset = float(np.prod(np.where(mask, u, one_minus)))
            if p_subset == 0.0:
                continue
            for j in subset:
                pi[j] += p_subset * share
    return _normalize_join_distribution(pi, k)
