"""Generic name -> factory registry shared by every pluggable component.

The library constructs algorithms, feedback models, demand schedules,
population schedules and simulation engines from ``(name, kwargs)``
pairs so that whole experiment configurations are serializable (JSON
sweeps, config files, pickled factories for worker processes).  Each
component family holds one :class:`Registry` instance; the per-family
modules (``repro.core.registry``, ``repro.env.registry``,
``repro.scenario.engines``) expose thin ``make_*`` / ``register_*``
wrappers around it.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Mapping
from typing import Any

from repro.exceptions import ConfigurationError

__all__ = ["Registry"]


class Registry:
    """A mapping of component names to factories, with friendly errors.

    Parameters
    ----------
    kind:
        Human-readable component family name (``"algorithm"``,
        ``"feedback model"`` ...), used in every error message.

    Examples
    --------
    >>> r = Registry("widget")
    >>> r.register("cog", dict)
    >>> r.make("cog", teeth=12)
    {'teeth': 12}
    >>> r.names()
    ['cog']
    """

    def __init__(self, kind: str) -> None:
        if not isinstance(kind, str) or not kind:
            raise ConfigurationError("registry kind must be a non-empty string")
        self.kind = kind
        self._factories: dict[str, Callable[..., Any]] = {}
        self._examples: dict[str, dict[str, Any]] = {}

    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        factory: Callable[..., Any],
        *,
        allow_overwrite: bool = False,
        example: Mapping[str, Any] | None = None,
    ) -> None:
        """Register ``factory`` under ``name``.

        Raises :class:`ConfigurationError` if the name is already taken,
        unless ``allow_overwrite=True`` (registries must stay unambiguous;
        deliberate replacement has to be explicit).

        ``example`` is an optional mapping of representative keyword
        params.  It is executable documentation *and* a lint probe: the
        RPR006 registry-consistency check (:mod:`repro.lint`) asserts
        every built-in registration declares one and that it round-trips
        through canonical JSON — the property any params must satisfy to
        be content-addressed by the store layer.
        """
        if not isinstance(name, str) or not name:
            raise ConfigurationError(f"{self.kind} name must be a non-empty string")
        if not callable(factory):
            raise ConfigurationError(
                f"{self.kind} factory for {name!r} must be callable, "
                f"got {type(factory).__name__}"
            )
        if name in self._factories and not allow_overwrite:
            raise ConfigurationError(
                f"{self.kind} {name!r} is already registered "
                "(pass allow_overwrite=True to replace it)"
            )
        if example is not None and not isinstance(example, Mapping):
            raise ConfigurationError(
                f"{self.kind} {name!r} example must be a mapping of keyword "
                f"params, got {type(example).__name__}"
            )
        self._factories[name] = factory
        if example is not None:
            self._examples[name] = dict(example)
        else:
            self._examples.pop(name, None)

    def unregister(self, name: str) -> None:
        """Remove a registered name; unknown names raise."""
        if name not in self._factories:
            raise ConfigurationError(
                f"cannot unregister unknown {self.kind} {name!r}; known: {self.names()}"
            )
        del self._factories[name]
        self._examples.pop(name, None)

    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        """Sorted list of registered names."""
        return sorted(self._factories)

    def __contains__(self, name: object) -> bool:
        return name in self._factories

    def __len__(self) -> int:
        return len(self._factories)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def get(self, name: str) -> Callable[..., Any]:
        """The factory registered under ``name``; unknown names raise
        with the full list of known names (self-documenting configs)."""
        try:
            return self._factories[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown {self.kind} {name!r}; known: {self.names()}"
            ) from None

    def check(self, name: str) -> None:
        """Validate that ``name`` is registered (without instantiating)."""
        self.get(name)

    def example(self, name: str) -> dict[str, Any] | None:
        """The example params registered for ``name`` (a copy), if any."""
        self.check(name)
        example = self._examples.get(name)
        return None if example is None else dict(example)

    def make(self, name: str, **kwargs: Any) -> Any:
        """Instantiate the component registered under ``name``."""
        return self.get(name)(**kwargs)
