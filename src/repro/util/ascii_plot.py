"""Terminal plotting for examples and experiment reports.

matplotlib is not available in the offline environment, so figures are
regenerated as *data series* plus these lightweight ASCII renderings.
The renderer is intentionally dependency-free and good enough to show the
qualitative shapes the paper's figures convey (sigmoid curve, grey zone,
oscillating load traces).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["line_plot", "multi_line_plot", "histogram"]


def _scale(values: np.ndarray, size: int, lo: float, hi: float) -> np.ndarray:
    span = hi - lo
    if span <= 0:
        return np.full(values.shape, size // 2, dtype=int)
    idx = np.round((values - lo) / span * (size - 1)).astype(int)
    return np.clip(idx, 0, size - 1)


def line_plot(
    x: Sequence[float],
    y: Sequence[float],
    *,
    width: int = 72,
    height: int = 16,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
    marker: str = "*",
) -> str:
    """Render a single series as an ASCII scatter/line plot string."""
    return multi_line_plot(
        x,
        {ylabel or "y": np.asarray(y, dtype=float)},
        width=width,
        height=height,
        title=title,
        xlabel=xlabel,
        markers=[marker],
    )


def multi_line_plot(
    x: Sequence[float],
    series: dict[str, Sequence[float]],
    *,
    width: int = 72,
    height: int = 16,
    title: str = "",
    xlabel: str = "",
    markers: Sequence[str] = "*+ox#@",
) -> str:
    """Render multiple series over a shared x axis.

    Each series gets the next marker character; a legend line maps markers
    to series names.  Returns the rendered plot as a single string.
    """
    x = np.asarray(x, dtype=float)
    if x.size == 0 or not series:
        return "(empty plot)\n"
    ys = {name: np.asarray(v, dtype=float) for name, v in series.items()}
    for name, v in ys.items():
        if v.shape != x.shape:
            raise ValueError(f"series {name!r} has shape {v.shape}, x has {x.shape}")
    all_y = np.concatenate([v[np.isfinite(v)] for v in ys.values()])
    if all_y.size == 0:
        return "(no finite data)\n"
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    if y_lo == y_hi:
        y_lo -= 0.5
        y_hi += 0.5
    x_lo, x_hi = float(x.min()), float(x.max())

    grid = [[" "] * width for _ in range(height)]
    cols = _scale(x, width, x_lo, x_hi)
    for (name, v), marker in zip(ys.items(), markers):
        finite = np.isfinite(v)
        rows = _scale(v[finite], height, y_lo, y_hi)
        for c, r in zip(cols[finite], rows):
            grid[height - 1 - r][c] = marker

    lines: list[str] = []
    if title:
        lines.append(title)
    fmt = f"%{10}.4g"
    for i, row in enumerate(grid):
        y_val = y_hi - (y_hi - y_lo) * i / (height - 1)
        label = fmt % y_val if i in (0, height // 2, height - 1) else " " * 10
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * 11 + "+" + "-" * width)
    x_axis = f"{x_lo:<12.4g}{' ' * max(0, width - 24)}{x_hi:>12.4g}"
    lines.append(" " * 11 + x_axis)
    if xlabel:
        lines.append(" " * 11 + xlabel.center(width))
    legend = "   ".join(f"{m}={name}" for (name, _), m in zip(ys.items(), markers))
    lines.append("  legend: " + legend)
    return "\n".join(lines) + "\n"


def histogram(
    values: Sequence[float],
    *,
    bins: int = 20,
    width: int = 50,
    title: str = "",
) -> str:
    """Render a horizontal ASCII histogram of ``values``."""
    v = np.asarray(values, dtype=float)
    v = v[np.isfinite(v)]
    if v.size == 0:
        return "(no data)\n"
    counts, edges = np.histogram(v, bins=bins)
    peak = counts.max() if counts.max() > 0 else 1
    lines = [title] if title else []
    for c, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(width * c / peak))
        lines.append(f"[{lo:>10.4g}, {hi:>10.4g}) {bar} {c}")
    return "\n".join(lines) + "\n"
