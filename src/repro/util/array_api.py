"""Thin array-namespace shim: ``xp = get_namespace(backend)``.

The batched counting engine (:mod:`repro.sim.batched`) expresses its
round loop as stacked ``(B, k)`` array programs.  Every array operation
it performs goes through a namespace object obtained here, so switching
the math onto a different array library (CuPy on a GPU, a Torch tensor
backend) is a *configuration* change — ``backend="cupy"`` on the engine
spec — not a rewrite of the engine.

Backends are registered as lazy loaders: a name maps to a zero-argument
callable returning a numpy-API-compatible module.  The ``numpy`` backend
always exists; ``cupy`` and ``torch`` are pre-registered seams that
import their library on first use and raise
:class:`~repro.exceptions.ConfigurationError` with an actionable message
when it is not installed (this container deliberately ships CPU-only).

Two properties the engine relies on:

* the returned namespace must implement the numpy call surface the
  engine uses (``asarray``/``zeros``/``clip``/``abs``/``maximum`` and
  elementwise arithmetic with broadcasting);
* random draws are *not* routed through the backend — they always come
  from per-trial :class:`numpy.random.Generator` streams so that
  batched trajectories stay bit-identical to the serial engine's
  regardless of backend (see :mod:`repro.sim.batched`).
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

import numpy

from repro.exceptions import ConfigurationError

__all__ = [
    "get_namespace",
    "register_array_backend",
    "unregister_array_backend",
    "available_array_backends",
    "DEFAULT_ARRAY_BACKEND",
]

DEFAULT_ARRAY_BACKEND = "numpy"

#: name -> zero-argument loader returning the namespace module/object.
_LOADERS: dict[str, Callable[[], Any]] = {}
#: name -> loaded namespace (one import per process).
_LOADED: dict[str, Any] = {}


def register_array_backend(
    name: str, loader: Callable[[], Any], *, allow_overwrite: bool = False
) -> None:
    """Register ``loader`` as the array backend called ``name``.

    ``loader`` runs at most once per process (on first
    :func:`get_namespace`); it must return a numpy-API-compatible
    namespace or raise :class:`ConfigurationError` explaining how to
    make the backend available.
    """
    if not isinstance(name, str) or not name:
        raise ConfigurationError("array backend name must be a non-empty string")
    if not callable(loader):
        raise ConfigurationError(
            f"array backend {name!r} loader must be callable, got {type(loader).__name__}"
        )
    if name in _LOADERS and not allow_overwrite:
        raise ConfigurationError(
            f"array backend {name!r} is already registered "
            "(pass allow_overwrite=True to replace it)"
        )
    _LOADERS[name] = loader
    _LOADED.pop(name, None)


def unregister_array_backend(name: str) -> None:
    """Remove a registered backend (e.g. to undo a test-local plugin)."""
    if name == DEFAULT_ARRAY_BACKEND:
        raise ConfigurationError("the numpy backend cannot be unregistered")
    if name not in _LOADERS:
        raise ConfigurationError(
            f"unknown array backend {name!r}; known: {available_array_backends()}"
        )
    del _LOADERS[name]
    _LOADED.pop(name, None)


def available_array_backends() -> list[str]:
    """Sorted names of registered backends (registered, not necessarily
    importable — ``cupy``/``torch`` are seams that may fail to load)."""
    return sorted(_LOADERS)


def get_namespace(backend: str = DEFAULT_ARRAY_BACKEND) -> Any:
    """The array namespace registered under ``backend`` (loaded lazily)."""
    if not isinstance(backend, str):
        raise ConfigurationError(
            f"array backend must be a name string, got {type(backend).__name__}"
        )
    try:
        loader = _LOADERS[backend]
    except KeyError:
        raise ConfigurationError(
            f"unknown array backend {backend!r}; known: {available_array_backends()}"
        ) from None
    if backend not in _LOADED:
        _LOADED[backend] = loader()
    return _LOADED[backend]


def _load_numpy() -> Any:
    return numpy


def _optional_import(name: str) -> Any:
    try:
        module = __import__(name)
    except ImportError as exc:
        raise ConfigurationError(
            f"array backend {name!r} is registered but {name} is not importable "
            f"({exc}); install it, or use backend='numpy'"
        ) from exc
    return module


def _load_cupy() -> Any:
    return _optional_import("cupy")


def _load_torch() -> Any:
    return _optional_import("torch")


register_array_backend("numpy", _load_numpy)
register_array_backend("cupy", _load_cupy)
register_array_backend("torch", _load_torch)
