"""Small parameter-validation helpers.

Used by every constructor so error messages are uniform and raised as
:class:`~repro.exceptions.ConfigurationError` (a ``ValueError`` subclass).
"""

from __future__ import annotations

import math
from typing import Any

from repro.exceptions import ConfigurationError

__all__ = ["check_positive", "check_probability", "check_in_range", "check_integer"]


def check_positive(name: str, value: float, *, allow_zero: bool = False) -> float:
    """Validate ``value > 0`` (or ``>= 0`` with ``allow_zero``) and return it."""
    value = float(value)
    if math.isnan(value):
        raise ConfigurationError(f"{name} must not be NaN")
    if allow_zero:
        if value < 0.0:
            raise ConfigurationError(f"{name} must be >= 0, got {value}")
    elif value <= 0.0:
        raise ConfigurationError(f"{name} must be > 0, got {value}")
    return value


def check_probability(name: str, value: float) -> float:
    """Validate ``0 <= value <= 1`` and return it as a float."""
    value = float(value)
    if math.isnan(value) or not (0.0 <= value <= 1.0):
        raise ConfigurationError(f"{name} must be a probability in [0, 1], got {value}")
    return value


def check_in_range(
    name: str,
    value: float,
    low: float,
    high: float,
    *,
    inclusive_low: bool = True,
    inclusive_high: bool = True,
) -> float:
    """Validate ``value`` lies in the given interval and return it."""
    value = float(value)
    lo_ok = value >= low if inclusive_low else value > low
    hi_ok = value <= high if inclusive_high else value < high
    if math.isnan(value) or not (lo_ok and hi_ok):
        lb = "[" if inclusive_low else "("
        rb = "]" if inclusive_high else ")"
        raise ConfigurationError(f"{name} must lie in {lb}{low}, {high}{rb}, got {value}")
    return value


def check_integer(name: str, value: Any, *, minimum: int | None = None) -> int:
    """Validate that ``value`` is an integer (or integral float) and return it."""
    if isinstance(value, bool):
        raise ConfigurationError(f"{name} must be an integer, got bool")
    if isinstance(value, float):
        if not value.is_integer():
            raise ConfigurationError(f"{name} must be an integer, got {value}")
        value = int(value)
    try:
        value = int(value)
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(f"{name} must be an integer, got {value!r}") from exc
    if minimum is not None and value < minimum:
        raise ConfigurationError(f"{name} must be >= {minimum}, got {value}")
    return value
