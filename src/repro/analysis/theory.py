"""Closed-form theorem bounds, for measured-vs-theory comparisons.

Each function returns the paper's bound for a given configuration so
experiment reports can print "measured X vs bound Y".  Constants hidden
inside O(.) are exposed as parameters with the values the proofs yield.
"""

from __future__ import annotations

from repro.core.constants import DEFAULT_CONSTANTS, AlgorithmConstants
from repro.exceptions import ConfigurationError

__all__ = [
    "ant_regret_bound",
    "ant_closeness_bound",
    "precise_sigmoid_rate",
    "precise_adversarial_rate",
    "adversarial_lower_bound_rate",
    "memory_lower_bound_far",
    "stable_zone",
]


def ant_regret_bound(
    t: int,
    n: int,
    k: int,
    gamma: float,
    total_demand: float,
    *,
    c_transient: float = 4.0,
) -> float:
    """Theorem 3.1: ``R(t) <= c*n*k/gamma + (5*gamma*sum_d + 3) * t``.

    ``c_transient`` is the constant of the one-off term; the proof gives
    ``2 c_d / gamma`` per task for R+ plus a similar R- term, i.e. a
    small multiple of ``n k / gamma``.
    """
    if min(t, n, k) <= 0 or gamma <= 0:
        raise ConfigurationError("t, n, k, gamma must be positive")
    return c_transient * n * k / gamma + (5.0 * gamma * total_demand + 3.0) * t


def ant_closeness_bound(gamma: float, gamma_star: float) -> float:
    """Theorem 3.1 steady-state closeness bound ``5 * gamma / gamma*``."""
    if gamma_star <= 0 or gamma < gamma_star:
        raise ConfigurationError("requires gamma >= gamma* > 0")
    return 5.0 * gamma / gamma_star


def precise_sigmoid_rate(eps: float, gamma: float, total_demand: float) -> float:
    """Theorem 3.2 steady-state regret rate ``eps * gamma * sum_d``."""
    if not (0 < eps < 1) or gamma <= 0:
        raise ConfigurationError("requires eps in (0,1), gamma > 0")
    return eps * gamma * total_demand


def precise_adversarial_rate(eps: float, gamma: float, total_demand: float) -> float:
    """Theorem 3.6 steady-state regret rate ``gamma * (1 + eps) * sum_d``."""
    if not (0 < eps < 1) or gamma <= 0:
        raise ConfigurationError("requires eps in (0,1), gamma > 0")
    return gamma * (1.0 + eps) * total_demand


def adversarial_lower_bound_rate(gamma_star: float, total_demand: float) -> float:
    """Theorem 3.5: any algorithm's expected regret rate is at least
    ``(1 - o(1)) * gamma* * sum_d`` under adversarial noise.

    The ``(1-o(1))`` factor is reported as 1; callers compare measured
    rates against this asymptote.
    """
    if gamma_star <= 0:
        raise ConfigurationError("gamma_star must be positive")
    return gamma_star * total_demand


def memory_lower_bound_far(eps: float, gamma_star: float, total_demand: float) -> float:
    """Theorem 3.3: with ``c log(1/eps)`` memory bits, the regret rate is
    at least ``eps * gamma* * sum_d`` (the allocation is eps-far)."""
    if not (0 < eps < 1):
        raise ConfigurationError("eps must be in (0,1)")
    return eps * gamma_star * total_demand


def stable_zone(
    demand: float,
    gamma: float,
    constants: AlgorithmConstants = DEFAULT_CONSTANTS,
) -> tuple[float, float]:
    """Algorithm Ant's per-task stable zone (proof of Claim 4.2).

    ``[d(1+gamma), d(1 + (0.9 c_s - 1) gamma)]`` — loads at phase starts
    inside this band neither gain nor lose ants w.h.p.
    """
    if demand <= 0 or gamma <= 0:
        raise ConfigurationError("demand and gamma must be positive")
    lo = demand * (1.0 + gamma)
    hi = demand * (1.0 + (0.9 * constants.c_s - 1.0) * gamma)
    if hi < lo:
        raise ConfigurationError("constants give an empty stable zone (need c_s > 20/9)")
    return lo, hi
