"""Oscillation analysis of deficit traces.

The paper argues oscillations are *intrinsic*: any constant-memory
algorithm whose deficit stays too close to 0 must eventually blow up by
``omega(gamma* d)`` (Theorem 3.3, second part), and the proposed
algorithms embrace this by oscillating *controlledly* inside
``~gamma d``.  These tools quantify both phenomena on recorded traces:
zero-crossing counts/periods of the deficit, amplitude statistics, and
blow-up detection (excursions beyond a threshold).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import AnalysisError

__all__ = ["zero_crossings", "OscillationStats", "oscillation_stats", "detect_blowups"]


def zero_crossings(series: np.ndarray) -> np.ndarray:
    """Indices ``i`` where ``series`` changes sign between ``i`` and ``i+1``.

    Exact zeros are treated as belonging to the previous sign regime, so
    a touch-and-return does not count as two crossings.
    """
    x = np.asarray(series, dtype=np.float64)
    if x.size < 2:
        return np.zeros(0, dtype=np.int64)
    sign = np.sign(x)
    # Propagate the previous nonzero sign through exact zeros.
    for i in range(1, sign.size):
        if sign[i] == 0:
            sign[i] = sign[i - 1]
    return np.nonzero(sign[:-1] * sign[1:] < 0)[0]


@dataclass(frozen=True)
class OscillationStats:
    """Summary of one task's deficit oscillation."""

    crossings: int
    mean_period: float
    amplitude_mean: float
    amplitude_max: float
    fraction_inside: float
    threshold: float

    @property
    def oscillates(self) -> bool:
        """True when the deficit crossed zero more than once."""
        return self.crossings > 1


def oscillation_stats(deficits: np.ndarray, threshold: float) -> OscillationStats:
    """Analyze one task's deficit series against an amplitude threshold.

    Parameters
    ----------
    deficits:
        Deficit series of one task (consecutive rounds).
    threshold:
        Reference amplitude, typically ``gamma* * d(j)`` — the grey-zone
        half-width; ``fraction_inside`` is the share of rounds with
        ``|deficit| <= threshold``.
    """
    x = np.asarray(deficits, dtype=np.float64)
    if x.size == 0:
        raise AnalysisError("empty deficit series")
    crossings = zero_crossings(x)
    if crossings.size >= 2:
        mean_period = float(np.diff(crossings).mean() * 2.0)  # full cycle = 2 crossings
    else:
        mean_period = float("inf")
    return OscillationStats(
        crossings=int(crossings.size),
        mean_period=mean_period,
        amplitude_mean=float(np.abs(x).mean()),
        amplitude_max=float(np.abs(x).max()),
        fraction_inside=float((np.abs(x) <= threshold).mean()),
        threshold=float(threshold),
    )


def detect_blowups(
    deficits: np.ndarray, threshold: float
) -> list[tuple[int, int, float]]:
    """Find excursions where ``|deficit|`` exceeds ``threshold``.

    Returns ``(start_index, end_index_exclusive, peak)`` per excursion.
    Used by E7 to show that pinning the deficit near zero provokes
    ``omega(gamma* d)`` blow-ups, and by E11 to count the trivial
    algorithm's Theta(n) swings.
    """
    x = np.abs(np.asarray(deficits, dtype=np.float64))
    above = x > threshold
    if not above.any():
        return []
    # Edges of the True runs.
    padded = np.concatenate(([False], above, [False]))
    starts = np.nonzero(padded[1:] & ~padded[:-1])[0]
    ends = np.nonzero(~padded[1:] & padded[:-1])[0]
    return [(int(s), int(e), float(x[s:e].max())) for s, e in zip(starts, ends)]
