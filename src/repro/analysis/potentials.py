"""The Section 4 proof's potential functions, as run instrumentation.

The Theorem 3.1 analysis tracks two potentials over phase starts
(``t`` even, phase number ``p = t/2``):

* ``Phi(p) = sum_j ((1+gamma) d(j) - W_2p(j))+`` — the total *shortfall*
  below the saturation level,
* ``Psi(p) = #{j : W_2p(j) < (1+gamma) d(j)}``  — the number of
  unsaturated tasks,

and shows (Claim 4.5) that both are non-increasing along typical runs
and that every two phases either ``Phi`` drops by ``Omega(gamma n)``,
``Psi`` drops by 1, or all tasks are saturated — which is how the
``R-`` lack-regret gets bounded by ``O(nk/gamma)``.

Computing these on recorded traces turns the proof's internal objects
into measurable run diagnostics; ``tests/analysis/test_potentials.py``
verifies the monotonicity and decrease claims on real trajectories, and
Claim 4.2's "at most one upcrossing of ``d(1+gamma)`` per task" is
checkable with :func:`count_upcrossings`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import AnalysisError

__all__ = [
    "phi_potential",
    "psi_potential",
    "saturation_round",
    "count_upcrossings",
    "PotentialTrace",
    "potential_trace",
]


def phi_potential(loads: np.ndarray, demands: np.ndarray, gamma: float) -> np.ndarray:
    """``Phi`` evaluated on a ``(T, k)`` load history (or a ``(k,)`` vector).

    ``Phi = sum_j max((1+gamma) d(j) - W(j), 0)``.
    """
    loads = np.asarray(loads, dtype=np.float64)
    demands = np.asarray(demands, dtype=np.float64)
    level = (1.0 + gamma) * demands
    short = np.maximum(level - loads, 0.0)
    return short.sum(axis=-1)


def psi_potential(loads: np.ndarray, demands: np.ndarray, gamma: float) -> np.ndarray:
    """``Psi`` = number of unsaturated tasks (``W < (1+gamma) d``)."""
    loads = np.asarray(loads, dtype=np.float64)
    demands = np.asarray(demands, dtype=np.float64)
    level = (1.0 + gamma) * demands
    return (loads < level).sum(axis=-1)


def saturation_round(
    loads: np.ndarray, demands: np.ndarray, gamma: float
) -> int | None:
    """First row index of a ``(T, k)`` history where all tasks are saturated.

    Saturated means ``W(j) >= (1-gamma) d(j)`` for every ``j``
    (the Claim 4.4 sense); returns None if it never happens.
    """
    loads = np.asarray(loads, dtype=np.float64)
    demands = np.asarray(demands, dtype=np.float64)
    ok = np.all(loads >= (1.0 - gamma) * demands[np.newaxis, :], axis=1)
    if not ok.any():
        return None
    return int(np.argmax(ok))


def count_upcrossings(series: np.ndarray, level: float) -> int:
    """Number of upward crossings of ``level`` by ``series``.

    Claim 4.2 asserts each task's phase-start load crosses
    ``d(1+gamma)`` from below at most once per ``n^4`` interval.
    """
    x = np.asarray(series, dtype=np.float64)
    if x.size < 2:
        return 0
    above = x >= level
    return int(np.count_nonzero(~above[:-1] & above[1:]))


@dataclass(frozen=True)
class PotentialTrace:
    """Phi/Psi evaluated at phase starts of one run."""

    phases: np.ndarray
    phi: np.ndarray
    psi: np.ndarray

    @property
    def phi_monotone_fraction(self) -> float:
        """Fraction of consecutive phase pairs with non-increasing Phi."""
        if self.phi.size < 2:
            return 1.0
        return float((np.diff(self.phi) <= 1e-9).mean())

    @property
    def psi_monotone_fraction(self) -> float:
        """Fraction of consecutive phase pairs with non-increasing Psi."""
        if self.psi.size < 2:
            return 1.0
        return float((np.diff(self.psi) <= 0).mean())


def potential_trace(
    rounds: np.ndarray,
    loads: np.ndarray,
    demands: np.ndarray,
    gamma: float,
    *,
    phase_length: int = 2,
) -> PotentialTrace:
    """Evaluate Phi/Psi at the recorded phase-start rounds.

    ``rounds``/``loads`` come from a dense :class:`~repro.sim.trace.Trace`;
    phase starts are the rounds ``t`` with ``t % phase_length == 0``
    (decisions have just been applied).
    """
    rounds = np.asarray(rounds, dtype=np.int64)
    loads = np.asarray(loads, dtype=np.float64)
    if rounds.size != loads.shape[0]:
        raise AnalysisError("rounds and loads must align")
    mask = rounds % phase_length == 0
    if not mask.any():
        raise AnalysisError("trace contains no phase-start rounds")
    sel = loads[mask]
    return PotentialTrace(
        phases=rounds[mask] // phase_length,
        phi=phi_potential(sel, demands, gamma),
        psi=psi_potential(sel, demands, gamma).astype(np.float64),
    )
