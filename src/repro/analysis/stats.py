"""Statistical helpers for multi-trial experiment summaries.

All theorem claims are probabilistic, so experiments report means with
confidence intervals.  scipy is used for the t-quantile; the bootstrap
is seeded and fully vectorized.
"""

from __future__ import annotations

import numpy as np
from scipy import stats as sps

from repro.exceptions import AnalysisError
from repro.util.rng import as_generator

__all__ = ["bootstrap_ci", "mean_confidence_interval", "geometric_decay_fit"]


def mean_confidence_interval(
    samples: np.ndarray, confidence: float = 0.95
) -> tuple[float, float, float]:
    """``(mean, low, high)`` Student-t confidence interval of the mean."""
    x = np.asarray(samples, dtype=np.float64)
    if x.size == 0:
        raise AnalysisError("no samples")
    mean = float(x.mean())
    if x.size == 1:
        return mean, mean, mean
    sem = float(x.std(ddof=1) / np.sqrt(x.size))
    tq = float(sps.t.ppf(0.5 + confidence / 2.0, df=x.size - 1))
    return mean, mean - tq * sem, mean + tq * sem


def bootstrap_ci(
    samples: np.ndarray,
    statistic=np.mean,
    *,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    rng=0,
) -> tuple[float, float, float]:
    """``(point, low, high)`` percentile bootstrap CI of any statistic."""
    x = np.asarray(samples, dtype=np.float64)
    if x.size == 0:
        raise AnalysisError("no samples")
    gen = as_generator(rng)
    idx = gen.integers(0, x.size, size=(n_resamples, x.size))
    boot = np.apply_along_axis(statistic, 1, x[idx])
    alpha = (1.0 - confidence) / 2.0
    return (
        float(statistic(x)),
        float(np.quantile(boot, alpha)),
        float(np.quantile(boot, 1.0 - alpha)),
    )


def geometric_decay_fit(values: np.ndarray) -> tuple[float, float]:
    """Fit ``values[t] ~ A * rho^t`` by least squares in log space.

    Returns ``(rho, A)``.  Used to verify the proof's claim that an
    overload decays geometrically at rate ``~(1 - gamma/(2 c_d))`` per
    phase (Claim 4.3).  Non-positive entries are dropped (the decay has
    reached the noise floor there).
    """
    v = np.asarray(values, dtype=np.float64)
    t = np.arange(v.size, dtype=np.float64)
    mask = v > 0
    if mask.sum() < 2:
        raise AnalysisError("need at least two positive values to fit a decay")
    slope, intercept = np.polyfit(t[mask], np.log(v[mask]), 1)
    return float(np.exp(slope)), float(np.exp(intercept))
