"""Plain-text report formatting for experiment outputs.

The experiment harness prints machine-greppable tables (aligned columns,
one row per configuration) — the stand-in for the paper's figures in an
environment without matplotlib.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

__all__ = ["format_table", "format_comparison"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: str = "",
    float_fmt: str = "{:.4g}",
) -> str:
    """Render an aligned plain-text table.

    Floats are formatted with ``float_fmt``; everything else with
    ``str``.  Column widths adapt to content.
    """
    def render(cell: Any) -> str:
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    str_rows = [[render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_comparison(
    label: str,
    measured: float,
    bound: float,
    *,
    kind: str = "upper",
) -> str:
    """One-line measured-vs-theory comparison with a pass/fail marker.

    ``kind='upper'`` checks measured <= bound, ``'lower'`` the reverse.
    """
    if kind == "upper":
        ok = measured <= bound
        rel = measured / bound if bound else float("inf")
        verdict = "OK (within bound)" if ok else "VIOLATION"
        return f"{label}: measured {measured:.4g} vs bound {bound:.4g} ({rel:.2%}) -> {verdict}"
    if kind == "lower":
        ok = measured >= bound
        rel = measured / bound if bound else float("inf")
        verdict = "OK (above lower bound)" if ok else "BELOW LOWER BOUND"
        return f"{label}: measured {measured:.4g} vs bound {bound:.4g} ({rel:.2%}) -> {verdict}"
    raise ValueError(f"kind must be 'upper' or 'lower', got {kind!r}")
