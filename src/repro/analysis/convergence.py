"""Convergence detection on load trajectories.

"Convergence" in this self-stabilizing setting means *entering and
staying in* the Theorem 3.1 deficit band ``|Delta(j)| <= 5 gamma d(j) + 3``
(classical fixed-point convergence never happens — the paper proves
oscillations are intrinsic).  These helpers locate band entries,
measure residence, and aggregate convergence times across trials.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import AnalysisError

__all__ = [
    "deficit_band",
    "rounds_to_band",
    "band_residence",
    "ConvergenceSummary",
    "summarize_convergence",
]


def deficit_band(
    demands: np.ndarray, gamma: float, *, coefficient: float = 5.0, slack: float = 3.0
) -> np.ndarray:
    """Per-task half-width of the Theorem 3.1 band: ``coeff*gamma*d + slack``."""
    demands = np.asarray(demands, dtype=np.float64)
    if np.any(demands <= 0) or gamma <= 0:
        raise AnalysisError("demands and gamma must be positive")
    return coefficient * gamma * demands + slack


def rounds_to_band(
    loads: np.ndarray,
    demands: np.ndarray,
    gamma: float,
    *,
    coefficient: float = 5.0,
    slack: float = 3.0,
) -> int | None:
    """First row of a ``(T, k)`` load history with every task in the band.

    Returns None when the band is never entered.
    """
    loads = np.asarray(loads, dtype=np.float64)
    demands = np.asarray(demands, dtype=np.float64)
    if loads.ndim != 2 or loads.shape[1] != demands.shape[0]:
        raise AnalysisError(f"loads {loads.shape} do not match demands {demands.shape}")
    band = deficit_band(demands, gamma, coefficient=coefficient, slack=slack)
    ok = np.all(np.abs(demands[np.newaxis, :] - loads) <= band[np.newaxis, :], axis=1)
    if not ok.any():
        return None
    return int(np.argmax(ok))


def band_residence(
    loads: np.ndarray,
    demands: np.ndarray,
    gamma: float,
    *,
    after: int = 0,
    coefficient: float = 5.0,
    slack: float = 3.0,
) -> float:
    """Fraction of rounds from index ``after`` on with all tasks in the band.

    Theorem 3.1's "all but O(k log n / gamma) rounds" claim translates to
    residence close to 1 over long horizons.
    """
    loads = np.asarray(loads, dtype=np.float64)
    demands = np.asarray(demands, dtype=np.float64)
    if after >= loads.shape[0]:
        raise AnalysisError("'after' exceeds the trajectory length")
    band = deficit_band(demands, gamma, coefficient=coefficient, slack=slack)
    window = loads[after:]
    ok = np.all(np.abs(demands[np.newaxis, :] - window) <= band[np.newaxis, :], axis=1)
    return float(ok.mean())


@dataclass(frozen=True)
class ConvergenceSummary:
    """Aggregate convergence statistics over independent trials."""

    trials: int
    converged_trials: int
    mean_rounds: float
    max_rounds: float
    mean_residence: float

    @property
    def all_converged(self) -> bool:
        return self.converged_trials == self.trials


def summarize_convergence(
    trajectories: list[np.ndarray],
    demands: np.ndarray,
    gamma: float,
    **band_kwargs,
) -> ConvergenceSummary:
    """Summarize band-entry times and residence over trial trajectories.

    ``trajectories`` is a list of ``(T_i, k)`` load histories; residence
    is measured from each trial's own entry round.  Non-converged trials
    are excluded from the time/residence means but counted in ``trials``.
    """
    if not trajectories:
        raise AnalysisError("no trajectories given")
    times, residences = [], []
    for loads in trajectories:
        t = rounds_to_band(loads, demands, gamma, **band_kwargs)
        if t is None:
            continue
        times.append(t)
        residences.append(band_residence(loads, demands, gamma, after=t, **band_kwargs))
    if times:
        return ConvergenceSummary(
            trials=len(trajectories),
            converged_trials=len(times),
            mean_rounds=float(np.mean(times)),
            max_rounds=float(np.max(times)),
            mean_residence=float(np.mean(residences)),
        )
    return ConvergenceSummary(
        trials=len(trajectories),
        converged_trials=0,
        mean_rounds=float("inf"),
        max_rounds=float("inf"),
        mean_residence=0.0,
    )
