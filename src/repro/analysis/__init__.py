"""Analysis layer: statistics, oscillation detection, theorem bounds."""

from repro.analysis.stats import (
    bootstrap_ci,
    mean_confidence_interval,
    geometric_decay_fit,
)
from repro.analysis.oscillation import (
    OscillationStats,
    oscillation_stats,
    zero_crossings,
    detect_blowups,
)
from repro.analysis.theory import (
    ant_regret_bound,
    ant_closeness_bound,
    precise_sigmoid_rate,
    precise_adversarial_rate,
    adversarial_lower_bound_rate,
    memory_lower_bound_far,
    stable_zone,
)
from repro.analysis.convergence import (
    deficit_band,
    rounds_to_band,
    band_residence,
    ConvergenceSummary,
    summarize_convergence,
)
from repro.analysis.potentials import (
    phi_potential,
    psi_potential,
    saturation_round,
    count_upcrossings,
    PotentialTrace,
    potential_trace,
)
from repro.analysis.report import format_table, format_comparison

__all__ = [
    "bootstrap_ci",
    "mean_confidence_interval",
    "geometric_decay_fit",
    "OscillationStats",
    "oscillation_stats",
    "zero_crossings",
    "detect_blowups",
    "ant_regret_bound",
    "ant_closeness_bound",
    "precise_sigmoid_rate",
    "precise_adversarial_rate",
    "adversarial_lower_bound_rate",
    "memory_lower_bound_far",
    "stable_zone",
    "deficit_band",
    "rounds_to_band",
    "band_residence",
    "ConvergenceSummary",
    "summarize_convergence",
    "phi_potential",
    "psi_potential",
    "saturation_round",
    "count_upcrossings",
    "PotentialTrace",
    "potential_trace",
    "format_table",
    "format_comparison",
]
