"""Colony-size schedules: ants dying and eclosing (emerging) mid-run.

The paper's conclusion highlights that Algorithm Ant is resilient to
"changes of the number of ants".  A :class:`PopulationSchedule` maps a
round number to the colony size ``n(t)``; the counting engine applies
the difference each round — deaths strike uniformly at random across
the colony (so tasks lose workers in proportion to their loads, drawn
multivariate-hypergeometrically), and new ants start idle, exactly as a
newly eclosed worker would.

Only the counting engine supports dynamic populations (the agent
engine's per-ant arrays are fixed-size); experiment E4-style shocks can
also be modelled there by restarting from a thinned load vector.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.util.validation import check_integer

__all__ = [
    "PopulationSchedule",
    "StaticPopulation",
    "StepPopulation",
    "apply_population_change",
]


class PopulationSchedule:
    """Maps a round ``t >= 0`` to the number of living ants."""

    def population_at(self, t: int) -> int:
        raise NotImplementedError

    @property
    def max_population(self) -> int:
        """Upper bound on ``n(t)`` (used for capacity checks)."""
        raise NotImplementedError


@dataclass(frozen=True)
class StaticPopulation(PopulationSchedule):
    """Constant colony size (the paper's base model)."""

    n: int

    def __post_init__(self) -> None:
        check_integer("n", self.n, minimum=1)

    def population_at(self, t: int) -> int:
        return self.n

    @property
    def max_population(self) -> int:
        return self.n


@dataclass(frozen=True)
class StepPopulation(PopulationSchedule):
    """Piecewise-constant colony size: ``steps[i] = (start_round, n)``.

    Models die-offs (predation, winter) and brood eclosion waves.
    """

    steps: tuple[tuple[int, int], ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise ConfigurationError("StepPopulation needs at least one step")
        starts = [s for s, _ in self.steps]
        if starts[0] != 0:
            raise ConfigurationError("first step must start at round 0")
        if any(b <= a for a, b in zip(starts, starts[1:])):
            raise ConfigurationError("step start rounds must be strictly increasing")
        for _, n in self.steps:
            check_integer("n", n, minimum=1)

    def population_at(self, t: int) -> int:
        current = self.steps[0][1]
        for start, n in self.steps:
            if t >= start:
                current = n
            else:
                break
        return current

    @property
    def max_population(self) -> int:
        return max(n for _, n in self.steps)


def apply_population_change(
    loads: np.ndarray,
    idle: int,
    new_n: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, int]:
    """Resize a colony described by ``(loads, idle)`` to ``new_n`` ants.

    Deaths remove ants uniformly at random from the whole colony
    (multivariate hypergeometric across tasks and the idle pool);
    arrivals join the idle pool.  Returns the new ``(loads, idle)``.
    """
    loads = np.asarray(loads, dtype=np.int64)
    current = int(loads.sum()) + idle
    if new_n == current:
        return loads, idle
    if new_n > current:
        return loads, idle + (new_n - current)
    deaths = current - new_n
    pools = np.concatenate([loads, [idle]])
    if deaths > current:
        raise ConfigurationError(f"cannot remove {deaths} ants from a colony of {current}")
    removed = rng.multivariate_hypergeometric(pools, deaths)
    new_loads = loads - removed[:-1]
    new_idle = idle - int(removed[-1])
    return new_loads.astype(np.int64), new_idle
