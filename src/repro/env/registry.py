"""Environment registries: feedback / demand / population by name.

Companions to the algorithm registry (:mod:`repro.core.registry`): every
environment component is constructible from a string name plus
JSON-friendly keyword arguments, which is what the declarative scenario
layer (:mod:`repro.scenario`) and config-file-driven sweeps build on.

Factories whose natural constructor takes numpy arrays or nested model
objects get thin wrappers here that accept plain lists / strings — e.g.
``adversarial`` builds its grey-zone strategy from a registered
adversary name, and ``step`` / ``periodic`` demand schedules take demand
vectors as lists of ints.

Two feedback factories are *demand-aware*: ``calibrated_sigmoid``
(sigmoid steepness solved from a target critical value ``gamma*``) and
``threshold`` (per-task load thresholds need the demand scale).  They
declare a ``demand`` parameter which :class:`repro.scenario.FeedbackSpec`
injects automatically from the scenario's demand vector at build time.
``sigmoid`` is *k-aware*: it declares a ``k`` parameter (likewise
injected) so a per-task ``lam`` vector of the wrong length fails at spec
build time with a clear message.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.env.adversary import AdversaryStrategy, make_adversary
from repro.env.critical import lambda_for_critical_value
from repro.env.demands import (
    DemandVector,
    PeriodicDemandSchedule,
    StepDemandSchedule,
    lognormal_demands,
    powerlaw_demands,
    proportional_demands,
    uniform_demands,
)
from repro.env.feedback import (
    AdversarialFeedback,
    CorrelatedSigmoidFeedback,
    ExactBinaryFeedback,
    SigmoidFeedback,
    ThresholdFeedback,
    check_lam_task_count,
)
from repro.env.population import StaticPopulation, StepPopulation
from repro.exceptions import ConfigurationError
from repro.util.registry import Registry

__all__ = [
    "FEEDBACKS",
    "DEMANDS",
    "POPULATIONS",
    "make_feedback",
    "make_demand",
    "make_population",
    "available_feedbacks",
    "available_demands",
    "available_populations",
    "register_feedback",
    "register_demand",
    "register_population",
]


# ----------------------------------------------------------------------
# Feedback models

FEEDBACKS = Registry("feedback model")


def _adversarial_feedback(
    gamma_ad: float,
    strategy: str | AdversaryStrategy | None = None,
    strategy_params: dict | None = None,
) -> AdversarialFeedback:
    """Adversarial noise with the grey-zone strategy given by name."""
    if isinstance(strategy, str):
        strategy = make_adversary(strategy, **(strategy_params or {}))
    elif strategy_params:
        raise ConfigurationError(
            "strategy_params only applies when the strategy is given by name"
        )
    return AdversarialFeedback(gamma_ad, strategy)


def _calibrated_sigmoid(
    gamma_star: float,
    demand: DemandVector | None = None,
    p_fail: float | None = None,
) -> SigmoidFeedback:
    """Sigmoid noise with steepness solved for a target critical value.

    ``demand`` is injected by the scenario layer; calling this directly
    without one is a configuration error.
    """
    if demand is None:
        raise ConfigurationError(
            "calibrated_sigmoid needs the scenario's demand vector to solve "
            "for lambda; build it through a ScenarioSpec or pass demand="
        )
    lam = lambda_for_critical_value(demand, gamma_star=gamma_star, p_fail=p_fail)
    return SigmoidFeedback(lam)


def _threshold_feedback(
    thresholds: Sequence[float],
    demand: DemandVector | None = None,
) -> ThresholdFeedback:
    """Deterministic load-threshold feedback against the scenario demand."""
    if demand is None:
        raise ConfigurationError(
            "threshold feedback needs the scenario's demand vector; build it "
            "through a ScenarioSpec or pass demand="
        )
    return ThresholdFeedback(
        np.asarray(thresholds, dtype=np.float64),
        demand.as_array().astype(np.float64),
    )


def _check_lam_vector_k(model, k: int | None):
    """Fail at spec build time when a per-task ``lam`` mismatches ``k``
    (the scenario layer injects ``k`` from the scenario's demand)."""
    if k is not None:
        check_lam_task_count(model.lam, k)
    return model


def _sigmoid(lam, k: int | None = None) -> SigmoidFeedback:
    """Sigmoid noise with scalar or per-task steepness ``lam``."""
    return _check_lam_vector_k(SigmoidFeedback(lam), k)


def _correlated_sigmoid(lam, rho: float, k: int | None = None) -> CorrelatedSigmoidFeedback:
    """Correlated sigmoid noise, same scalar-or-vector ``lam`` contract."""
    return _check_lam_vector_k(CorrelatedSigmoidFeedback(lam, rho), k)


# ``example=`` params are executable documentation kept honest by the
# RPR006 lint check (resolvable, picklable, canonical-JSON round-trip).
# Demand-aware factories (calibrated_sigmoid, threshold) list only their
# spec-level params; the scenario layer injects ``demand`` at build time.
FEEDBACKS.register("sigmoid", _sigmoid, example={"lam": 8.0})
FEEDBACKS.register("calibrated_sigmoid", _calibrated_sigmoid, example={"gamma_star": 0.05})
FEEDBACKS.register("exact", ExactBinaryFeedback, example={})
FEEDBACKS.register("correlated_sigmoid", _correlated_sigmoid, example={"lam": 8.0, "rho": 0.5})
FEEDBACKS.register("adversarial", _adversarial_feedback, example={"gamma_ad": 0.1})
FEEDBACKS.register("threshold", _threshold_feedback, example={"thresholds": [1.5, 2.5]})


# ----------------------------------------------------------------------
# Demands (static vectors and dynamic schedules)

DEMANDS = Registry("demand")


def _explicit_demands(demands: Sequence[int], n: int, strict: bool = True) -> DemandVector:
    return DemandVector(np.asarray(demands, dtype=np.int64), n=n, strict=strict)


def _step_demands(
    steps: Sequence[Sequence],
    n: int,
    strict: bool = True,
) -> StepDemandSchedule:
    """Piecewise-constant demands: ``steps = [[start_round, [d1, ...]], ...]``."""
    try:
        built = tuple(
            (int(start), _explicit_demands(demands, n, strict)) for start, demands in steps
        )
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"step demands must be [[start_round, [d(1), ..., d(k)]], ...]: {exc}"
        ) from exc
    return StepDemandSchedule(built)


def _periodic_demands(
    phases: Sequence[Sequence[int]],
    n: int,
    period: int,
    strict: bool = True,
) -> PeriodicDemandSchedule:
    """Cycling demands: each phase a demand list, held ``period`` rounds."""
    built = tuple(_explicit_demands(p, n, strict) for p in phases)
    return PeriodicDemandSchedule(phases=built, period=period)


def _periodic_proportional(
    n: int,
    phase_weights: Sequence[Sequence[float]],
    period: int,
    load_fraction: float = 0.5,
    strict: bool = True,
) -> PeriodicDemandSchedule:
    """Cycling proportional splits (e.g. day/night foraging vs brood care)."""
    built = tuple(
        proportional_demands(n, weights=w, load_fraction=load_fraction, strict=strict)
        for w in phase_weights
    )
    return PeriodicDemandSchedule(phases=built, period=period)


DEMANDS.register("uniform", uniform_demands, example={"n": 100, "k": 4})
DEMANDS.register("proportional", proportional_demands, example={"n": 100, "weights": [3, 2, 1]})
DEMANDS.register("powerlaw", powerlaw_demands, example={"n": 200, "k": 8, "alpha": 1.0})
DEMANDS.register("lognormal", lognormal_demands, example={"n": 200, "k": 8, "sigma": 1.0})
DEMANDS.register("explicit", _explicit_demands, example={"demands": [20, 15, 10], "n": 100})
DEMANDS.register(
    "step", _step_demands, example={"steps": [[0, [20, 20]], [50, [35, 5]]], "n": 100}
)
DEMANDS.register(
    "periodic", _periodic_demands, example={"phases": [[20, 20], [35, 5]], "n": 100, "period": 25}
)
DEMANDS.register(
    "periodic_proportional",
    _periodic_proportional,
    example={"n": 100, "phase_weights": [[1, 1], [3, 1]], "period": 25},
)


# ----------------------------------------------------------------------
# Population schedules

POPULATIONS = Registry("population schedule")


def _step_population(steps: Sequence[Sequence[int]]) -> StepPopulation:
    """Piecewise-constant colony size: ``steps = [[start_round, n], ...]``."""
    try:
        built = tuple((int(start), int(n)) for start, n in steps)
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"step population must be [[start_round, n], ...]: {exc}"
        ) from exc
    return StepPopulation(built)


POPULATIONS.register("static", StaticPopulation, example={"n": 100})
POPULATIONS.register("step", _step_population, example={"steps": [[0, 100], [200, 60]]})


# ----------------------------------------------------------------------
# Wrappers (mirror repro.core.registry's module-level API)


def make_feedback(name: str, **kwargs):
    """Instantiate a registered feedback model by name."""
    return FEEDBACKS.make(name, **kwargs)


def make_demand(name: str, **kwargs):
    """Instantiate a registered demand vector / schedule by name."""
    return DEMANDS.make(name, **kwargs)


def make_population(name: str, **kwargs):
    """Instantiate a registered population schedule by name."""
    return POPULATIONS.make(name, **kwargs)


def available_feedbacks() -> list[str]:
    return FEEDBACKS.names()


def available_demands() -> list[str]:
    return DEMANDS.names()


def available_populations() -> list[str]:
    return POPULATIONS.names()


def register_feedback(name: str, factory, *, allow_overwrite: bool = False, example=None) -> None:
    FEEDBACKS.register(name, factory, allow_overwrite=allow_overwrite, example=example)


def register_demand(name: str, factory, *, allow_overwrite: bool = False, example=None) -> None:
    DEMANDS.register(name, factory, allow_overwrite=allow_overwrite, example=example)


def register_population(
    name: str, factory, *, allow_overwrite: bool = False, example=None
) -> None:
    POPULATIONS.register(name, factory, allow_overwrite=allow_overwrite, example=example)
