"""Environment substrate: demands, noise models, critical value.

This subpackage implements everything the ants' world consists of in the
paper's model (Section 2): the demand vector with Assumptions 2.1, the two
noise models (sigmoid, adversarial) plus the noise-free baseline feedback
of Cornejo et al. [11], the critical value / grey zone machinery, and
pluggable adversary strategies for the grey zone.
"""

from repro.env.demands import (
    DemandVector,
    DemandSchedule,
    StaticDemandSchedule,
    StepDemandSchedule,
    PeriodicDemandSchedule,
    uniform_demands,
    proportional_demands,
    powerlaw_demands,
    lognormal_demands,
)
from repro.env.population import (
    PopulationSchedule,
    StaticPopulation,
    StepPopulation,
    apply_population_change,
)
from repro.env.critical import (
    critical_value_sigmoid,
    lambda_for_critical_value,
    grey_zone,
    GreyZone,
)
from repro.env.feedback import (
    FeedbackModel,
    SigmoidFeedback,
    AdversarialFeedback,
    ExactBinaryFeedback,
    CorrelatedSigmoidFeedback,
    ThresholdFeedback,
)
from repro.env.adversary import (
    AdversaryStrategy,
    CorrectInGreyZone,
    InvertedInGreyZone,
    AlwaysLackInGreyZone,
    AlwaysOverloadInGreyZone,
    RandomInGreyZone,
    PushAwayFromDemand,
    IndistinguishableDemandAdversary,
    make_adversary,
)
from repro.env.registry import (
    make_feedback,
    make_demand,
    make_population,
    available_feedbacks,
    available_demands,
    available_populations,
    register_feedback,
    register_demand,
    register_population,
)

__all__ = [
    "DemandVector",
    "DemandSchedule",
    "StaticDemandSchedule",
    "StepDemandSchedule",
    "PeriodicDemandSchedule",
    "uniform_demands",
    "proportional_demands",
    "powerlaw_demands",
    "lognormal_demands",
    "PopulationSchedule",
    "StaticPopulation",
    "StepPopulation",
    "apply_population_change",
    "critical_value_sigmoid",
    "lambda_for_critical_value",
    "grey_zone",
    "GreyZone",
    "FeedbackModel",
    "SigmoidFeedback",
    "AdversarialFeedback",
    "ExactBinaryFeedback",
    "CorrelatedSigmoidFeedback",
    "ThresholdFeedback",
    "AdversaryStrategy",
    "CorrectInGreyZone",
    "InvertedInGreyZone",
    "AlwaysLackInGreyZone",
    "AlwaysOverloadInGreyZone",
    "RandomInGreyZone",
    "PushAwayFromDemand",
    "IndistinguishableDemandAdversary",
    "make_adversary",
    "make_feedback",
    "make_demand",
    "make_population",
    "available_feedbacks",
    "available_demands",
    "available_populations",
    "register_feedback",
    "register_demand",
    "register_population",
]
