"""Noise models: how ants perceive task deficits (Section 2.2).

Three feedback models from the paper plus one robustness extension:

* :class:`SigmoidFeedback` — the stochastic model: each ant independently
  reads ``LACK`` with probability ``s(Delta) = 1/(1+exp(-lambda Delta))``.
* :class:`AdversarialFeedback` — deterministic and correct whenever the
  deficit is outside the grey zone ``[-gamma_ad d, +gamma_ad d]``; inside,
  a pluggable :class:`~repro.env.adversary.AdversaryStrategy` chooses.
* :class:`ExactBinaryFeedback` — the noise-free model of Cornejo et
  al. [11] (``LACK`` iff ``W <= d``), used as the baseline substrate.
* :class:`CorrelatedSigmoidFeedback` — Remark 3.4: feedback may be
  arbitrarily correlated across ants as long as the marginal error
  probability outside the grey zone stays tiny; we implement the extreme
  case where with probability ``rho`` all ants share a single draw.

All models expose the same two entry points used by the engines:

* :meth:`FeedbackModel.lack_probabilities` — per-task marginal
  ``P[LACK]`` (the O(k) counting engine consumes this; only available when
  feedback is i.i.d. across ants, signalled by ``iid_across_ants``);
* :meth:`FeedbackModel.sample_lack_matrix` — an ``(n_ants, k)`` boolean
  draw (True == LACK) for the agent-level engine.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.env.adversary import AdversaryStrategy, CorrectInGreyZone
from repro.exceptions import ConfigurationError
from repro.types import LackMatrix, NoiseKind, TaskVector
from repro.util.mathx import sigmoid_lack_probability
from repro.util.validation import check_in_range, check_positive, check_probability

__all__ = [
    "FeedbackModel",
    "check_lam_task_count",
    "SigmoidFeedback",
    "AdversarialFeedback",
    "ExactBinaryFeedback",
    "CorrelatedSigmoidFeedback",
    "ThresholdFeedback",
]


class FeedbackModel(abc.ABC):
    """Abstract environment feedback.

    A model is queried once per round with the previous round's deficits
    (sub-round 1 of the paper's round structure) and produces per-ant
    binary signals.
    """

    #: Which paper noise model this implements.
    kind: NoiseKind

    #: True when signals are independent and identically distributed across
    #: ants, which is what the O(k) counting engine requires.
    iid_across_ants: bool = True

    @abc.abstractmethod
    def lack_probabilities(self, deficits: np.ndarray) -> TaskVector:
        """Marginal ``P[feedback = LACK]`` per task for the given deficits."""

    def sample_lack_matrix(
        self,
        deficits: np.ndarray,
        n_ants: int,
        rng: np.random.Generator,
        *,
        t: int = 0,
        demands: np.ndarray | None = None,
    ) -> LackMatrix:
        """Sample an ``(n_ants, k)`` boolean LACK matrix.

        The default implementation draws i.i.d. Bernoulli rows from
        :meth:`lack_probabilities`; deterministic / adversarial models
        override it.
        """
        p = self.lack_probabilities(deficits)
        return rng.random((n_ants, p.shape[0])) < p[np.newaxis, :]

    def reset(self) -> None:
        """Clear any per-run state (adversary memory).  Default: no-op."""


def _coerce_lam(lam) -> float | np.ndarray:
    """Validate a scalar-or-vector sigmoid steepness ``lambda``.

    Scalars go through :func:`check_positive`; sequences become a 1-d
    float64 vector of per-task steepnesses, every entry positive.  The
    vector's length is checked against the deficit vector at query time
    (the model does not know ``k`` at construction).
    """
    if np.ndim(lam) == 0:
        return check_positive("lam", lam)
    arr = np.asarray(lam, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ConfigurationError(
            f"per-task lam must be a scalar or non-empty 1-d vector, "
            f"got shape {arr.shape}"
        )
    if np.any(np.isnan(arr)) or np.any(arr <= 0.0):
        raise ConfigurationError(f"every per-task lam must be > 0, got {arr}")
    return arr


def _format_lam(lam) -> str:
    if np.ndim(lam) == 0:
        return f"{lam:g}"
    return f"per-task[{lam.size}]"


def check_lam_task_count(lam, k: int) -> None:
    """Reject a per-task ``lam`` whose length differs from the task count.

    Broadcasting would silently accept e.g. a length-1 vector against any
    ``k``, so the check is explicit.  Shared by the models (at query time)
    and the registry factories (at spec build time)."""
    if np.ndim(lam) == 0:
        return
    if lam.size != k:
        raise ConfigurationError(
            f"per-task lam has {lam.size} entries but the scenario "
            f"has k={k} tasks"
        )


class SigmoidFeedback(FeedbackModel):
    """The paper's stochastic sigmoid noise (Section 2.2).

    Parameters
    ----------
    lam:
        Sigmoid steepness ``lambda > 0``.  Larger values sharpen the
        transition, shrinking the grey zone (and the critical value).
        Either a scalar (every task equally noisy, the paper's model) or
        a length-``k`` vector of per-task steepnesses (heterogeneous
        sensing: e.g. foraging deficits are easier to perceive than
        brood-care deficits).  A vector is validated against the deficit
        vector's length on every query.
    """

    kind = NoiseKind.SIGMOID
    iid_across_ants = True

    def __init__(self, lam) -> None:
        self.lam = _coerce_lam(lam)

    def lack_probabilities(self, deficits: np.ndarray) -> TaskVector:
        check_lam_task_count(self.lam, np.asarray(deficits).shape[-1])
        return sigmoid_lack_probability(deficits, self.lam)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SigmoidFeedback(lam={_format_lam(self.lam)})"


class ExactBinaryFeedback(FeedbackModel):
    """Noise-free binary feedback of Cornejo et al. [11].

    All ants read ``LACK`` iff the load does not exceed the demand
    (``Delta >= 0``), ``OVERLOAD`` otherwise.  This is the sharp-threshold
    model whose unrealistic precision motivated the paper.
    """

    kind = NoiseKind.EXACT
    iid_across_ants = True

    def lack_probabilities(self, deficits: np.ndarray) -> TaskVector:
        return (np.asarray(deficits, dtype=np.float64) >= 0.0).astype(np.float64)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "ExactBinaryFeedback()"


class AdversarialFeedback(FeedbackModel):
    """Adversarial noise (Section 2.2): correct outside the grey zone.

    For task ``j`` with deficit ``Delta``:

    * ``Delta >  gamma_ad * d(j)``  -> every ant reads LACK;
    * ``Delta < -gamma_ad * d(j)``  -> every ant reads OVERLOAD;
    * otherwise the :class:`AdversaryStrategy` picks the signals
      (possibly different per ant, possibly history-dependent).

    Parameters
    ----------
    gamma_ad:
        Grey-zone half-width as a fraction of demand; this *is* the
        critical value ``gamma*`` of the adversarial model.
    strategy:
        Grey-zone behaviour; defaults to the benign
        :class:`~repro.env.adversary.CorrectInGreyZone`.
    """

    kind = NoiseKind.ADVERSARIAL
    iid_across_ants = False

    def __init__(
        self,
        gamma_ad: float,
        strategy: AdversaryStrategy | None = None,
    ) -> None:
        self.gamma_ad = check_in_range(
            "gamma_ad", gamma_ad, 0.0, 1.0, inclusive_low=False, inclusive_high=False
        )
        self.strategy = strategy if strategy is not None else CorrectInGreyZone()

    def lack_probabilities(self, deficits: np.ndarray) -> TaskVector:
        raise ConfigurationError(
            "AdversarialFeedback has no i.i.d. marginals; use sample_lack_matrix "
            "(the counting engine only supports i.i.d. noise models)"
        )

    def sample_lack_matrix(
        self,
        deficits: np.ndarray,
        n_ants: int,
        rng: np.random.Generator,
        *,
        t: int = 0,
        demands: np.ndarray | None = None,
    ) -> LackMatrix:
        if demands is None:
            raise ConfigurationError("AdversarialFeedback requires the demand vector")
        deficits = np.asarray(deficits, dtype=np.float64)
        demands = np.asarray(demands, dtype=np.float64)
        half = self.gamma_ad * demands
        k = deficits.shape[0]
        out = np.empty((n_ants, k), dtype=bool)
        lack_zone = deficits > half
        over_zone = deficits < -half
        grey = ~(lack_zone | over_zone)
        out[:, lack_zone] = True
        out[:, over_zone] = False
        if np.any(grey):
            grey_signals = self.strategy.grey_feedback(
                t=t,
                deficits=deficits,
                demands=demands,
                grey_mask=grey,
                n_ants=n_ants,
                rng=rng,
            )
            grey_signals = np.asarray(grey_signals, dtype=bool)
            if grey_signals.shape == (int(grey.sum()),):
                out[:, grey] = grey_signals[np.newaxis, :]
            elif grey_signals.shape == (n_ants, int(grey.sum())):
                out[:, grey] = grey_signals
            else:
                raise ConfigurationError(
                    f"adversary strategy returned shape {grey_signals.shape}; expected "
                    f"({int(grey.sum())},) or ({n_ants}, {int(grey.sum())})"
                )
        return out

    def reset(self) -> None:
        self.strategy.reset()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AdversarialFeedback(gamma_ad={self.gamma_ad:g}, strategy={self.strategy!r})"


class ThresholdFeedback(FeedbackModel):
    """Deterministic load-threshold feedback (Theorem 3.5 construction).

    Every ant reads LACK iff the task's load satisfies ``W <= c_j`` for a
    fixed per-task threshold ``c_j``.  Choosing ``c_j`` anywhere in
    ``[d(1-gamma_ad), d(1+gamma_ad)]`` makes this a *valid* adversarial
    feedback for demand ``d`` — and the same threshold is simultaneously
    valid for the shifted demand ``d' = d - 2 tau`` (``tau ~ gamma_ad d``),
    so the two worlds generate identical transcripts and no algorithm can
    serve both: the Theorem 3.5 lower bound (experiment E8).

    Parameters
    ----------
    thresholds:
        Per-task load thresholds ``c_j``, shape ``(k,)``.
    demands:
        Demand vector the simulation runs with (needed to translate the
        engine's deficits back into loads).
    """

    kind = NoiseKind.ADVERSARIAL
    iid_across_ants = True  # deterministic == trivially i.i.d.

    def __init__(self, thresholds: np.ndarray, demands: np.ndarray) -> None:
        self.thresholds = np.asarray(thresholds, dtype=np.float64)
        self.demands = np.asarray(demands, dtype=np.float64)
        if self.thresholds.shape != self.demands.shape or self.thresholds.ndim != 1:
            raise ConfigurationError("thresholds and demands must be matching 1-d vectors")

    def lack_probabilities(self, deficits: np.ndarray) -> TaskVector:
        loads = self.demands - np.asarray(deficits, dtype=np.float64)
        return (loads <= self.thresholds).astype(np.float64)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ThresholdFeedback(thresholds={self.thresholds})"


class CorrelatedSigmoidFeedback(FeedbackModel):
    """Sigmoid noise with cross-ant correlation (Remark 3.4).

    With probability ``rho`` (per round, per task) every ant receives one
    *shared* draw from the sigmoid; otherwise the draws are i.i.d. as in
    :class:`SigmoidFeedback`.  The marginal per-ant distribution is
    unchanged, so the theorem guarantees continue to apply as long as the
    marginal error probability outside the grey zone is small — which is
    exactly what Remark 3.4 claims and experiment E15 checks.
    """

    kind = NoiseKind.SIGMOID
    iid_across_ants = False  # correlated draws: counting engine not exact

    def __init__(self, lam, rho: float) -> None:
        self.lam = _coerce_lam(lam)
        self.rho = check_probability("rho", rho)

    def lack_probabilities(self, deficits: np.ndarray) -> TaskVector:
        check_lam_task_count(self.lam, np.asarray(deficits).shape[-1])
        return sigmoid_lack_probability(deficits, self.lam)

    def sample_lack_matrix(
        self,
        deficits: np.ndarray,
        n_ants: int,
        rng: np.random.Generator,
        *,
        t: int = 0,
        demands: np.ndarray | None = None,
    ) -> LackMatrix:
        p = self.lack_probabilities(deficits)
        k = p.shape[0]
        iid = rng.random((n_ants, k)) < p[np.newaxis, :]
        shared_draw = rng.random(k) < p
        shared_mask = rng.random(k) < self.rho
        out = np.where(shared_mask[np.newaxis, :], shared_draw[np.newaxis, :], iid)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CorrelatedSigmoidFeedback(lam={_format_lam(self.lam)}, rho={self.rho:g})"
