"""Grey-zone adversary strategies for the adversarial noise model.

Inside the grey zone the adversarial model allows *arbitrary* feedback
(Section 2.2).  A strategy receives the grey-zone tasks of the current
round and returns their signals, either shared by all ants (shape
``(g,)``) or per-ant (shape ``(n_ants, g)``), where ``g`` is the number of
grey tasks.  Strategies may keep state across rounds (``reset()`` clears
it), which the Theorem 3.5 lower-bound adversary uses.

Implemented strategies
----------------------
* :class:`CorrectInGreyZone` — benign: sign of the true deficit.
* :class:`InvertedInGreyZone` — malicious: always the wrong sign.
* :class:`AlwaysLackInGreyZone`, :class:`AlwaysOverloadInGreyZone` —
  constant pressure in one direction.
* :class:`RandomInGreyZone` — fair-coin feedback per ant.
* :class:`PushAwayFromDemand` — drives the load away from the demand:
  reports LACK when overloaded and OVERLOAD when lacking (the natural
  "worst case" for gradient-like algorithms).
* :class:`IndistinguishableDemandAdversary` — the Theorem 3.5
  construction: answers as if the grey-zone boundary were shifted so the
  transcript is identical for two demand vectors ``d`` and ``d - 2 tau``,
  forcing regret ``>= (1-o(1)) t gamma* sum d`` on any algorithm.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "AdversaryStrategy",
    "CorrectInGreyZone",
    "InvertedInGreyZone",
    "AlwaysLackInGreyZone",
    "AlwaysOverloadInGreyZone",
    "RandomInGreyZone",
    "PushAwayFromDemand",
    "IndistinguishableDemandAdversary",
    "make_adversary",
]


class AdversaryStrategy(abc.ABC):
    """Chooses feedback for tasks whose deficit lies inside the grey zone."""

    @abc.abstractmethod
    def grey_feedback(
        self,
        *,
        t: int,
        deficits: np.ndarray,
        demands: np.ndarray,
        grey_mask: np.ndarray,
        n_ants: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Signals for grey tasks; True == LACK.

        Parameters
        ----------
        t:
            Current round number (1-based).
        deficits, demands:
            Full per-task vectors (shape ``(k,)``).
        grey_mask:
            Boolean mask (shape ``(k,)``) of tasks in the grey zone.
        n_ants:
            Number of ants receiving feedback this round.
        rng:
            Random generator (strategies may be randomized).

        Returns
        -------
        Array of shape ``(g,)`` (shared across ants) or ``(n_ants, g)``
        where ``g = grey_mask.sum()``.
        """

    def reset(self) -> None:
        """Forget all cross-round state.  Default: stateless no-op."""


class CorrectInGreyZone(AdversaryStrategy):
    """Benign adversary: reports the true sign of the deficit.

    Ties (deficit exactly 0) read LACK, matching the noise-free model of
    [11] where load equal to demand still reads lack.
    """

    def grey_feedback(self, *, t, deficits, demands, grey_mask, n_ants, rng):
        return deficits[grey_mask] >= 0.0


class InvertedInGreyZone(AdversaryStrategy):
    """Malicious adversary: always reports the wrong sign."""

    def grey_feedback(self, *, t, deficits, demands, grey_mask, n_ants, rng):
        return deficits[grey_mask] < 0.0


class AlwaysLackInGreyZone(AdversaryStrategy):
    """Reports LACK for every grey task, luring idle ants to pile on."""

    def grey_feedback(self, *, t, deficits, demands, grey_mask, n_ants, rng):
        return np.ones(int(grey_mask.sum()), dtype=bool)


class AlwaysOverloadInGreyZone(AdversaryStrategy):
    """Reports OVERLOAD for every grey task, bleeding workers away."""

    def grey_feedback(self, *, t, deficits, demands, grey_mask, n_ants, rng):
        return np.zeros(int(grey_mask.sum()), dtype=bool)


class RandomInGreyZone(AdversaryStrategy):
    """Fair-coin feedback, independently per ant and task.

    This makes the adversarial model look locally like the sigmoid model
    at deficit 0 (where ``s(0) = 1/2``).
    """

    def grey_feedback(self, *, t, deficits, demands, grey_mask, n_ants, rng):
        g = int(grey_mask.sum())
        return rng.random((n_ants, g)) < 0.5


class PushAwayFromDemand(AdversaryStrategy):
    """Destabilizing adversary: amplifies whatever imbalance exists.

    Overloaded task (deficit < 0) -> LACK (recruit even more ants);
    lacking task (deficit >= 0) -> OVERLOAD (drive workers away).
    This is the pointwise-worst feedback for gradient-descent-like
    algorithms and is used in robustness tests of Algorithm Ant.
    """

    def grey_feedback(self, *, t, deficits, demands, grey_mask, n_ants, rng):
        return deficits[grey_mask] < 0.0


class IndistinguishableDemandAdversary(AdversaryStrategy):
    """The Theorem 3.5 lower-bound construction.

    Consider demands ``d`` and ``d' = d - 2 tau`` with
    ``tau = (1-o(1)) gamma_ad d``.  The adversary answers

    * under ``d`` : LACK iff ``Delta >= -gamma_ad d``   (lower boundary),
    * under ``d'``: LACK iff ``Delta' >= +gamma_ad d'`` (upper boundary),

    which produce *identical transcripts* for every load history, so no
    algorithm can tell the two worlds apart; whatever load it settles on
    is ``>= tau`` away from the demand in at least one world.  In the
    simulator we pick one world (``which``) and emit its boundary rule;
    the harness runs both worlds with the same algorithm seed and adds the
    regrets (experiment E8).

    Parameters
    ----------
    gamma_ad:
        Grey-zone parameter; must match the enclosing
        :class:`~repro.env.feedback.AdversarialFeedback`.
    which:
        ``"low"`` for world ``d`` (boundary at ``-gamma_ad d``) or
        ``"high"`` for world ``d'`` (boundary at ``+gamma_ad d'``).
    """

    def __init__(self, gamma_ad: float, which: str = "low") -> None:
        if which not in ("low", "high"):
            raise ConfigurationError(f"which must be 'low' or 'high', got {which!r}")
        if not 0.0 < gamma_ad < 1.0:
            raise ConfigurationError(f"gamma_ad must be in (0,1), got {gamma_ad}")
        self.gamma_ad = float(gamma_ad)
        self.which = which

    def grey_feedback(self, *, t, deficits, demands, grey_mask, n_ants, rng):
        half = self.gamma_ad * demands[grey_mask]
        delta = deficits[grey_mask]
        if self.which == "low":
            return delta >= -half
        return delta >= half

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"IndistinguishableDemandAdversary(gamma_ad={self.gamma_ad:g}, which={self.which!r})"


_REGISTRY: dict[str, type[AdversaryStrategy]] = {
    "correct": CorrectInGreyZone,
    "inverted": InvertedInGreyZone,
    "always_lack": AlwaysLackInGreyZone,
    "always_overload": AlwaysOverloadInGreyZone,
    "random": RandomInGreyZone,
    "push_away": PushAwayFromDemand,
}


def make_adversary(name: str, **kwargs) -> AdversaryStrategy:
    """Instantiate a registered adversary strategy by name.

    ``indistinguishable`` requires ``gamma_ad`` (and optional ``which``);
    all other registered strategies take no arguments.
    """
    if name == "indistinguishable":
        return IndistinguishableDemandAdversary(**kwargs)
    try:
        cls = _REGISTRY[name]
    except KeyError:
        known = sorted(_REGISTRY) + ["indistinguishable"]
        raise ConfigurationError(f"unknown adversary {name!r}; known: {known}") from None
    if kwargs:
        raise ConfigurationError(f"adversary {name!r} takes no arguments, got {kwargs}")
    return cls()
