"""Demand vectors and demand schedules.

The paper fixes a demand vector ``d`` with two structural assumptions
(Assumptions 2.1):

* every demand is at least logarithmic in the colony size,
  ``d(j) = Omega(log n)``, and
* there is slack: ``sum_j d(j) <= n/2`` (relaxable to
  ``sum_j (1 + 5 gamma*) d(j) <= c* n`` for a constant ``c* < 1``,
  Remark at end of Section 3.3).

Remark 3.4 notes the algorithms are self-stabilizing and therefore handle
*changing* demands for free; we model that with :class:`DemandSchedule`
objects that map a round number to a demand vector, which the experiment
harness uses for the dynamic-demand reproduction (E13).
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import AssumptionViolation, ConfigurationError
from repro.types import IntTaskVector
from repro.util.validation import check_integer, check_positive

__all__ = [
    "DemandVector",
    "DemandSchedule",
    "StaticDemandSchedule",
    "StepDemandSchedule",
    "PeriodicDemandSchedule",
    "uniform_demands",
    "proportional_demands",
    "powerlaw_demands",
    "lognormal_demands",
]


@dataclass(frozen=True)
class DemandVector:
    """Validated demand vector ``d`` for a colony of ``n`` ants.

    Parameters
    ----------
    demands:
        Per-task demands, positive integers, shape ``(k,)``.
    n:
        Colony size.
    strict:
        When True (default) enforce Assumptions 2.1; when False only basic
        sanity (positivity, ``sum <= n``) is checked, which out-of-model
        experiments (e.g. the trivial-algorithm divergence demo with
        ``d = n/4``) rely on.
    log_floor_factor:
        The constant in ``d(j) >= log_floor_factor * ln(n)`` used by the
        strict check.  The paper only requires Omega(log n); a factor of 1
        is the pragmatic default.
    """

    demands: IntTaskVector
    n: int
    strict: bool = True
    log_floor_factor: float = 1.0
    slack_fraction: float = 0.5

    def __post_init__(self) -> None:
        arr = np.asarray(self.demands, dtype=np.int64)
        if arr.ndim != 1 or arr.size == 0:
            raise ConfigurationError("demands must be a non-empty 1-d vector")
        if np.any(arr <= 0):
            raise ConfigurationError("every demand must be a positive integer")
        object.__setattr__(self, "demands", arr)
        object.__setattr__(self, "n", check_integer("n", self.n, minimum=1))
        check_positive("log_floor_factor", self.log_floor_factor)
        check_positive("slack_fraction", self.slack_fraction)
        total = int(arr.sum())
        if total > self.n:
            raise ConfigurationError(
                f"total demand {total} exceeds the number of ants n={self.n}"
            )
        if self.strict:
            floor = self.log_floor_factor * math.log(max(self.n, 2))
            if np.any(arr < floor):
                raise AssumptionViolation(
                    f"Assumptions 2.1 require d(j) = Omega(log n); "
                    f"minimum demand {int(arr.min())} < {floor:.2f} "
                    f"(pass strict=False for out-of-model experiments)"
                )
            if total > self.slack_fraction * self.n:
                raise AssumptionViolation(
                    f"Assumptions 2.1 require sum of demands <= {self.slack_fraction}*n; "
                    f"got {total} > {self.slack_fraction * self.n:.1f}"
                )

    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        """Number of tasks."""
        return int(self.demands.size)

    @property
    def total(self) -> int:
        """Sum of demands ``sum_j d(j)``."""
        return int(self.demands.sum())

    @property
    def min_demand(self) -> int:
        """Smallest demand, which controls the critical value."""
        return int(self.demands.min())

    def as_array(self) -> IntTaskVector:
        """Return the underlying (copied) integer demand array."""
        return self.demands.copy()

    def deficits(self, loads: Sequence[int] | np.ndarray) -> np.ndarray:
        """Per-task deficits ``Delta(j) = d(j) - W(j)`` for given loads."""
        loads = np.asarray(loads, dtype=np.int64)
        if loads.shape != self.demands.shape:
            raise ConfigurationError(
                f"loads shape {loads.shape} does not match demands {self.demands.shape}"
            )
        return self.demands - loads

    def slack_ok_for_gamma(self, gamma_star: float, c_star: float = 0.95) -> bool:
        """Check the relaxed slack condition ``sum (1+5 gamma*) d <= c* n``.

        This is the weakest form of Assumptions 2.1 the proofs need
        (Section 3.3, final remark).
        """
        return (1.0 + 5.0 * gamma_star) * self.total <= c_star * self.n

    def with_demands(self, new_demands: Iterable[int]) -> "DemandVector":
        """Return a copy with a different demand array (same n / flags)."""
        return DemandVector(
            demands=np.asarray(list(new_demands), dtype=np.int64),
            n=self.n,
            strict=self.strict,
            log_floor_factor=self.log_floor_factor,
            slack_fraction=self.slack_fraction,
        )


# ----------------------------------------------------------------------
# Convenience constructors


def uniform_demands(
    n: int, k: int, *, load_fraction: float = 0.5, strict: bool = True
) -> DemandVector:
    """Build ``k`` equal demands consuming ``load_fraction`` of ``n`` ants.

    ``load_fraction=0.5`` saturates the Assumptions 2.1 slack exactly.
    """
    n = check_integer("n", n, minimum=1)
    k = check_integer("k", k, minimum=1)
    check_positive("load_fraction", load_fraction)
    per_task = int(load_fraction * n / k)
    if per_task < 1:
        raise ConfigurationError(
            f"n={n}, k={k}, load_fraction={load_fraction} leaves no ants per task"
        )
    return DemandVector(np.full(k, per_task, dtype=np.int64), n=n, strict=strict)


def proportional_demands(
    n: int,
    weights: Sequence[float],
    *,
    load_fraction: float = 0.5,
    strict: bool = True,
) -> DemandVector:
    """Split ``load_fraction * n`` ants across tasks proportionally to ``weights``.

    Weights need not be normalized.  Rounding is largest-remainder so the
    total is exactly ``floor(load_fraction * n)`` (then clipped to >= 1 per
    task, shaving the excess off the largest task).
    """
    n = check_integer("n", n, minimum=1)
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 1 or w.size == 0 or np.any(w <= 0):
        raise ConfigurationError("weights must be a non-empty vector of positive numbers")
    budget = int(load_fraction * n)
    if budget < w.size:
        raise ConfigurationError("not enough ants to give every task demand >= 1")
    shares = w / w.sum() * budget
    base = np.floor(shares).astype(np.int64)
    remainder = budget - int(base.sum())
    # Largest fractional remainders get the leftover ants.
    order = np.argsort(-(shares - base))
    base[order[:remainder]] += 1
    base = np.maximum(base, 1)
    excess = int(base.sum()) - budget
    if excess > 0:
        base[np.argmax(base)] -= excess
    return DemandVector(base, n=n, strict=strict)


def powerlaw_demands(
    n: int,
    k: int,
    *,
    alpha: float = 1.0,
    load_fraction: float = 0.5,
    strict: bool = False,
) -> DemandVector:
    """Zipf-like demand spectrum: task ``j`` gets weight ``(j+1)^-alpha``.

    Heterogeneous many-task scenarios (k in the hundreds) need demand
    *spectra*, not uniform splits: a few heavy tasks and a long tail of
    light ones, the shape observed in real division-of-labor data.
    ``alpha = 0`` degenerates to the uniform split; larger ``alpha``
    steepens the head.  Light-tail demands are clipped to 1 ant, so
    ``strict`` defaults to False — at large ``k`` the tail necessarily
    violates the ``d(j) = Omega(log n)`` floor of Assumptions 2.1.
    """
    k = check_integer("k", k, minimum=1)
    check_positive("alpha", alpha, allow_zero=True)
    weights = np.arange(1, k + 1, dtype=np.float64) ** (-float(alpha))
    return proportional_demands(n, weights, load_fraction=load_fraction, strict=strict)


def lognormal_demands(
    n: int,
    k: int,
    *,
    sigma: float = 1.0,
    seed: int = 0,
    load_fraction: float = 0.5,
    strict: bool = False,
) -> DemandVector:
    """Log-normal demand spectrum, sorted heaviest-first.

    Weights are ``exp(sigma * Z)`` for standard-normal ``Z`` drawn from
    ``default_rng(seed)`` — deterministic given ``(k, sigma, seed)``, so
    specs serialize and round-trip.  ``sigma`` controls dispersion
    (``sigma -> 0`` degenerates to uniform); sorting makes the spectrum
    comparable across seeds.  As with :func:`powerlaw_demands`, ``strict``
    defaults to False because the tail undercuts the log-floor at scale.
    """
    k = check_integer("k", k, minimum=1)
    check_positive("sigma", sigma, allow_zero=True)
    seed = check_integer("seed", seed, minimum=0)
    weights = np.exp(float(sigma) * np.sort(np.random.default_rng(seed).standard_normal(k))[::-1])
    return proportional_demands(n, weights, load_fraction=load_fraction, strict=strict)


# ----------------------------------------------------------------------
# Schedules (dynamic demands, Remark 3.4 / experiment E13)


class DemandSchedule:
    """Maps a round number ``t >= 0`` to the demand vector in force.

    Subclasses implement :meth:`demands_at`.  The simulator queries the
    schedule once per round; schedules must be pure functions of ``t``.
    """

    def demands_at(self, t: int) -> DemandVector:
        """Demand vector in force during round ``t``."""
        raise NotImplementedError

    @property
    def k(self) -> int:
        """Number of tasks (constant across the schedule)."""
        return self.demands_at(0).k

    @property
    def n(self) -> int:
        """Colony size (constant across the schedule)."""
        return self.demands_at(0).n

    def change_points(self, horizon: int) -> list[int]:
        """Rounds ``t`` in ``[1, horizon]`` where the demands differ from ``t-1``.

        The default implementation scans; subclasses with analytic change
        points may override.
        """
        points: list[int] = []
        prev = self.demands_at(0).demands
        for t in range(1, horizon + 1):
            cur = self.demands_at(t).demands
            if not np.array_equal(cur, prev):
                points.append(t)
                prev = cur
        return points


@dataclass(frozen=True)
class StaticDemandSchedule(DemandSchedule):
    """Constant demands for all time (the paper's base model)."""

    demand: DemandVector

    def demands_at(self, t: int) -> DemandVector:
        return self.demand

    def change_points(self, horizon: int) -> list[int]:
        return []


@dataclass(frozen=True)
class StepDemandSchedule(DemandSchedule):
    """Piecewise-constant demands: ``steps[i] = (start_round, demand)``.

    ``steps`` must be sorted by ``start_round`` with ``steps[0][0] == 0``;
    all demand vectors must share ``n`` and ``k``.
    """

    steps: tuple[tuple[int, DemandVector], ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise ConfigurationError("StepDemandSchedule needs at least one step")
        starts = [s for s, _ in self.steps]
        if starts[0] != 0:
            raise ConfigurationError("first step must start at round 0")
        if any(b <= a for a, b in zip(starts, starts[1:])):
            raise ConfigurationError("step start rounds must be strictly increasing")
        ks = {d.k for _, d in self.steps}
        ns = {d.n for _, d in self.steps}
        if len(ks) != 1 or len(ns) != 1:
            raise ConfigurationError("all steps must share the same k and n")

    def demands_at(self, t: int) -> DemandVector:
        current = self.steps[0][1]
        for start, demand in self.steps:
            if t >= start:
                current = demand
            else:
                break
        return current

    def change_points(self, horizon: int) -> list[int]:
        return [s for s, _ in self.steps[1:] if 1 <= s <= horizon]


@dataclass(frozen=True)
class PeriodicDemandSchedule(DemandSchedule):
    """Cycles through ``phases`` demand vectors, each held ``period`` rounds.

    Models diurnal demand patterns (e.g. foraging demand high by day,
    brood care high by night) — the motivating scenario for the paper's
    self-stabilization claims.
    """

    phases: tuple[DemandVector, ...]
    period: int = field(default=1000)

    def __post_init__(self) -> None:
        if not self.phases:
            raise ConfigurationError("PeriodicDemandSchedule needs at least one phase")
        check_integer("period", self.period, minimum=1)
        ks = {d.k for d in self.phases}
        ns = {d.n for d in self.phases}
        if len(ks) != 1 or len(ns) != 1:
            raise ConfigurationError("all phases must share the same k and n")

    def demands_at(self, t: int) -> DemandVector:
        idx = (t // self.period) % len(self.phases)
        return self.phases[idx]

    def change_points(self, horizon: int) -> list[int]:
        if len(self.phases) == 1:
            return []
        pts = []
        t = self.period
        while t <= horizon:
            prev = self.demands_at(t - 1).demands
            cur = self.demands_at(t).demands
            if not np.array_equal(prev, cur):
                pts.append(t)
            t += self.period
        return pts
