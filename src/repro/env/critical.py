"""Critical value and grey zone (Definition 2.3).

The *critical value* ``gamma*`` is the relative deficit at which feedback
becomes reliable: for the sigmoid model it is the smallest ``c`` such that
``s(-c * d(j)) <= p_fail`` for **all** tasks ``j`` (the paper uses
``p_fail = 1/n^8``); for the adversarial model it is the model parameter
``gamma_ad`` itself.

Solving ``1/(1+exp(lambda c d)) = p_fail`` gives

    ``gamma* = logit(1 - p_fail) / (lambda * min_j d(j))``
             ``= ln((1-p_fail)/p_fail) / (lambda * d_min)``.

For laptop-scale ``n`` the literal ``1/n^8`` would force either a huge
``lambda`` or a ``gamma*`` near ``1/2``; the failure probability is
therefore a parameter (default the paper's ``n**-8``), and
:func:`lambda_for_critical_value` inverts the relation so experiments can
*choose* ``gamma*`` and derive the sigmoid steepness — the calibration
"substitution" documented in DESIGN.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.env.demands import DemandVector
from repro.exceptions import ConfigurationError
from repro.util.validation import check_in_range, check_positive

__all__ = [
    "critical_value_sigmoid",
    "lambda_for_critical_value",
    "grey_zone",
    "GreyZone",
]


def _logit_reliability(p_fail: float) -> float:
    """``ln((1-p)/p)``, the sigmoid argument at which failure prob is ``p``."""
    check_in_range("p_fail", p_fail, 0.0, 0.5, inclusive_low=False, inclusive_high=False)
    return math.log((1.0 - p_fail) / p_fail)


def critical_value_sigmoid(
    demands: DemandVector | np.ndarray,
    lam: float,
    *,
    n: int | None = None,
    p_fail: float | None = None,
) -> float:
    """Critical value ``gamma*`` for the sigmoid noise model.

    Parameters
    ----------
    demands:
        Demand vector (or raw array of demands).
    lam:
        Sigmoid steepness ``lambda``.
    n:
        Colony size; required when ``p_fail`` is None (to form ``n**-8``)
        and ``demands`` is a raw array.
    p_fail:
        Per-(ant, task, round) feedback failure probability outside the
        grey zone.  Defaults to the paper's ``n**-8``.

    Returns
    -------
    ``gamma* = ln((1-p_fail)/p_fail) / (lambda * d_min)``.  Note the paper
    assumes ``gamma* < 1/2``; a warning-level check raises if the computed
    value is >= 1 (feedback would never be reliable at any sub-demand
    deficit), since no theorem applies there.
    """
    check_positive("lam", lam)
    if isinstance(demands, DemandVector):
        d_min = demands.min_demand
        if n is None:
            n = demands.n
    else:
        arr = np.asarray(demands, dtype=np.int64)
        if arr.size == 0 or np.any(arr <= 0):
            raise ConfigurationError("demands must be positive")
        d_min = int(arr.min())
    if p_fail is None:
        if n is None:
            raise ConfigurationError("n is required when p_fail is not given")
        p_fail = float(n) ** -8
        # Guard against underflow to 0 for large n.
        p_fail = max(p_fail, 1e-300)
    gamma_star = _logit_reliability(p_fail) / (lam * d_min)
    if gamma_star >= 1.0:
        raise ConfigurationError(
            f"computed gamma*={gamma_star:.3f} >= 1: the sigmoid (lambda={lam}) is too "
            f"flat for these demands; increase lambda or p_fail"
        )
    return gamma_star


def lambda_for_critical_value(
    demands: DemandVector | np.ndarray,
    gamma_star: float,
    *,
    n: int | None = None,
    p_fail: float | None = None,
) -> float:
    """Sigmoid steepness ``lambda`` that realizes a desired ``gamma*``.

    Inverse of :func:`critical_value_sigmoid`; used by experiments that
    sweep ``gamma*`` directly ("calibrated sigmoid").
    """
    check_in_range("gamma_star", gamma_star, 0.0, 1.0, inclusive_low=False, inclusive_high=False)
    if isinstance(demands, DemandVector):
        d_min = demands.min_demand
        if n is None:
            n = demands.n
    else:
        arr = np.asarray(demands, dtype=np.int64)
        if arr.size == 0 or np.any(arr <= 0):
            raise ConfigurationError("demands must be positive")
        d_min = int(arr.min())
    if p_fail is None:
        if n is None:
            raise ConfigurationError("n is required when p_fail is not given")
        p_fail = max(float(n) ** -8, 1e-300)
    return _logit_reliability(p_fail) / (gamma_star * d_min)


@dataclass(frozen=True)
class GreyZone:
    """The per-task deficit band where feedback is unreliable.

    ``g_j = [-gamma* d(j), +gamma* d(j)]`` (Definition 2.3).
    """

    gamma_star: float
    demands: np.ndarray

    @property
    def half_widths(self) -> np.ndarray:
        """``gamma* * d(j)`` per task."""
        return self.gamma_star * self.demands.astype(np.float64)

    def contains(self, deficits: np.ndarray) -> np.ndarray:
        """Boolean mask of tasks whose deficit lies inside the grey zone."""
        deficits = np.asarray(deficits, dtype=np.float64)
        return np.abs(deficits) <= self.half_widths

    def signed_excess(self, deficits: np.ndarray) -> np.ndarray:
        """How far (signed) each deficit sits outside its grey zone (0 inside)."""
        deficits = np.asarray(deficits, dtype=np.float64)
        hw = self.half_widths
        return np.sign(deficits) * np.maximum(np.abs(deficits) - hw, 0.0)


def grey_zone(demands: DemandVector | np.ndarray, gamma_star: float) -> GreyZone:
    """Construct the :class:`GreyZone` for a demand vector."""
    check_in_range("gamma_star", gamma_star, 0.0, 1.0, inclusive_low=False)
    arr = (
        demands.as_array()
        if isinstance(demands, DemandVector)
        else np.asarray(demands, dtype=np.int64)
    )
    if arr.size == 0 or np.any(arr <= 0):
        raise ConfigurationError("demands must be positive")
    return GreyZone(gamma_star=float(gamma_star), demands=arr)
