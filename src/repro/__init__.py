"""repro — Self-stabilizing distributed task allocation under noisy feedback.

A production-quality reproduction of

    Dornhaus, Lynch, Mallmann-Trenn, Pajak, Radeva:
    "Self-Stabilizing Task Allocation In Spite of Noise", SPAA 2020
    (arXiv:1805.03691).

Quickstart
----------
>>> from repro import (
...     AntAlgorithm, SigmoidFeedback, Simulator, uniform_demands,
...     lambda_for_critical_value,
... )
>>> demand = uniform_demands(n=2000, k=4)
>>> lam = lambda_for_critical_value(demand, gamma_star=0.02)
>>> sim = Simulator(AntAlgorithm(gamma=0.02), demand,
...                 SigmoidFeedback(lam), seed=0)
>>> result = sim.run(4000, burn_in=2000)
>>> result.metrics.closeness(0.02, demand.total) < 5.0
True

Layout
------
``repro.env``         demands / noise models / critical value (substrates)
``repro.core``        the paper's algorithms (Ant, Precise Sigmoid,
                      Precise Adversarial, trivial baseline)
``repro.sim``         simulation engines, metrics, multi-trial runner
``repro.automaton``   finite-state-machine substrate (Assumption 2.2,
                      Theorem 3.3 memory-bounded algorithm family)
``repro.analysis``    statistics, oscillation detection, theorem bounds
``repro.baselines``   the noise-free algorithm of Cornejo et al. [11]
``repro.experiments`` harness regenerating every figure/theorem claim
"""

from repro._version import __version__
from repro.types import IDLE, Feedback, NoiseKind, loads_from_assignment, idle_count
from repro.exceptions import (
    ReproError,
    ConfigurationError,
    AssumptionViolation,
    SimulationError,
    AnalysisError,
)
from repro.env import (
    DemandVector,
    DemandSchedule,
    StaticDemandSchedule,
    StepDemandSchedule,
    PeriodicDemandSchedule,
    uniform_demands,
    proportional_demands,
    PopulationSchedule,
    StaticPopulation,
    StepPopulation,
    critical_value_sigmoid,
    lambda_for_critical_value,
    grey_zone,
    GreyZone,
    FeedbackModel,
    SigmoidFeedback,
    AdversarialFeedback,
    ExactBinaryFeedback,
    CorrelatedSigmoidFeedback,
    make_adversary,
)
from repro.core import (
    ColonyAlgorithm,
    InitialAssignment,
    AlgorithmConstants,
    DEFAULT_CONSTANTS,
    AntAlgorithm,
    OneSampleAntAlgorithm,
    ScoutAntAlgorithm,
    PreciseSigmoidAlgorithm,
    PreciseAdversarialAlgorithm,
    TrivialAlgorithm,
    make_algorithm,
    available_algorithms,
)
from repro.sim import (
    Simulator,
    CountingSimulator,
    SequentialSimulator,
    SimulationResult,
    RegretTracker,
    RunMetrics,
    Trace,
    run_trials,
    sweep,
    TrialSummary,
    SweepResult,
)

__all__ = [
    "__version__",
    # types / errors
    "IDLE",
    "Feedback",
    "NoiseKind",
    "loads_from_assignment",
    "idle_count",
    "ReproError",
    "ConfigurationError",
    "AssumptionViolation",
    "SimulationError",
    "AnalysisError",
    # env
    "DemandVector",
    "DemandSchedule",
    "StaticDemandSchedule",
    "StepDemandSchedule",
    "PeriodicDemandSchedule",
    "uniform_demands",
    "proportional_demands",
    "PopulationSchedule",
    "StaticPopulation",
    "StepPopulation",
    "critical_value_sigmoid",
    "lambda_for_critical_value",
    "grey_zone",
    "GreyZone",
    "FeedbackModel",
    "SigmoidFeedback",
    "AdversarialFeedback",
    "ExactBinaryFeedback",
    "CorrelatedSigmoidFeedback",
    "make_adversary",
    # core
    "ColonyAlgorithm",
    "InitialAssignment",
    "AlgorithmConstants",
    "DEFAULT_CONSTANTS",
    "AntAlgorithm",
    "OneSampleAntAlgorithm",
    "ScoutAntAlgorithm",
    "PreciseSigmoidAlgorithm",
    "PreciseAdversarialAlgorithm",
    "TrivialAlgorithm",
    "make_algorithm",
    "available_algorithms",
    # sim
    "Simulator",
    "CountingSimulator",
    "SequentialSimulator",
    "SimulationResult",
    "RegretTracker",
    "RunMetrics",
    "Trace",
    "run_trials",
    "sweep",
    "TrialSummary",
    "SweepResult",
]
