"""repro — Self-stabilizing distributed task allocation under noisy feedback.

A production-quality reproduction of

    Dornhaus, Lynch, Mallmann-Trenn, Pajak, Radeva:
    "Self-Stabilizing Task Allocation In Spite of Noise", SPAA 2020
    (arXiv:1805.03691).

Quickstart
----------
Every simulation is a declarative, serializable :class:`ScenarioSpec`:
pick components by registry name, run through one entry point.

>>> from repro import ScenarioSpec, run_scenario
>>> spec = ScenarioSpec(
...     algorithm={"name": "ant", "params": {"gamma": 0.02}},
...     demand={"name": "uniform", "params": {"n": 2000, "k": 4}},
...     feedback={"name": "calibrated_sigmoid", "params": {"gamma_star": 0.02}},
...     rounds=4000, seed=0,
... )
>>> result = run_scenario(spec, burn_in=2000)
>>> result.metrics.closeness(0.02, spec.initial_demand().total) < 5.0
True

The classic imperative API remains available (and is what the spec
layer builds): construct ``AntAlgorithm`` / ``SigmoidFeedback`` /
``Simulator`` directly when you need non-serializable components.

Scenario
--------
Specs round-trip through JSON (``spec.to_json()`` /
``ScenarioSpec.from_json``), so whole experiments live in config files
and run from the command line::

    repro-experiments scenario run examples/scenarios/quickstart.json

Multi-trial statistics and parameter sweeps route through the trial
runner with picklable spec-based factories, so ``run_scenario(spec,
trials=16, parallel=8)`` farms trials to worker processes for *any*
registered configuration — with statistics bit-identical to the serial
path.  Components are pluggable: ``register_algorithm``,
``register_feedback``, ``register_demand``, ``register_population`` and
``repro.scenario.register_engine`` add new names; every registry lists
its known names in its error messages.

Layout
------
``repro.env``         demands / noise models / critical value (substrates)
``repro.core``        the paper's algorithms (Ant, Precise Sigmoid,
                      Precise Adversarial, trivial baseline)
``repro.sim``         simulation engines, metrics, multi-trial runner
``repro.scenario``    declarative specs, registries, ``run_scenario``
``repro.store``       disk-backed result store: resumable sweeps,
                      persistent join-kernel caches
``repro.automaton``   finite-state-machine substrate (Assumption 2.2,
                      Theorem 3.3 memory-bounded algorithm family)
``repro.analysis``    statistics, oscillation detection, theorem bounds
``repro.baselines``   the noise-free algorithm of Cornejo et al. [11]
``repro.experiments`` harness regenerating every figure/theorem claim
"""

from repro._version import __version__
from repro.types import IDLE, Feedback, NoiseKind, loads_from_assignment, idle_count
from repro.exceptions import (
    ReproError,
    ConfigurationError,
    AssumptionViolation,
    SimulationError,
    SweepInterrupted,
    AnalysisError,
)
from repro.store import DiskPiCache, ResultStore
from repro.env import (
    make_feedback,
    make_demand,
    make_population,
    available_feedbacks,
    available_demands,
    available_populations,
    register_feedback,
    register_demand,
    register_population,
    DemandVector,
    DemandSchedule,
    StaticDemandSchedule,
    StepDemandSchedule,
    PeriodicDemandSchedule,
    uniform_demands,
    proportional_demands,
    PopulationSchedule,
    StaticPopulation,
    StepPopulation,
    critical_value_sigmoid,
    lambda_for_critical_value,
    grey_zone,
    GreyZone,
    FeedbackModel,
    SigmoidFeedback,
    AdversarialFeedback,
    ExactBinaryFeedback,
    CorrelatedSigmoidFeedback,
    make_adversary,
)
from repro.core import (
    ColonyAlgorithm,
    InitialAssignment,
    AlgorithmConstants,
    DEFAULT_CONSTANTS,
    AntAlgorithm,
    OneSampleAntAlgorithm,
    ScoutAntAlgorithm,
    PreciseSigmoidAlgorithm,
    PreciseAdversarialAlgorithm,
    TrivialAlgorithm,
    make_algorithm,
    available_algorithms,
    register_algorithm,
    unregister_algorithm,
)
from repro.scenario import (
    AlgorithmSpec,
    FeedbackSpec,
    DemandSpec,
    PopulationSpec,
    EngineSpec,
    ScenarioSpec,
    ScenarioFactory,
    run_scenario,
    sweep_scenario,
    available_engines,
)
from repro.sim import (
    Simulator,
    CountingSimulator,
    SequentialSimulator,
    SimulationResult,
    RegretTracker,
    RunMetrics,
    Trace,
    run_trials,
    sweep,
    TrialSummary,
    SweepResult,
)

__all__ = [
    "__version__",
    # types / errors
    "IDLE",
    "Feedback",
    "NoiseKind",
    "loads_from_assignment",
    "idle_count",
    "ReproError",
    "ConfigurationError",
    "AssumptionViolation",
    "SimulationError",
    "SweepInterrupted",
    "AnalysisError",
    # store
    "ResultStore",
    "DiskPiCache",
    # env
    "DemandVector",
    "DemandSchedule",
    "StaticDemandSchedule",
    "StepDemandSchedule",
    "PeriodicDemandSchedule",
    "uniform_demands",
    "proportional_demands",
    "PopulationSchedule",
    "StaticPopulation",
    "StepPopulation",
    "critical_value_sigmoid",
    "lambda_for_critical_value",
    "grey_zone",
    "GreyZone",
    "FeedbackModel",
    "SigmoidFeedback",
    "AdversarialFeedback",
    "ExactBinaryFeedback",
    "CorrelatedSigmoidFeedback",
    "make_adversary",
    "make_feedback",
    "make_demand",
    "make_population",
    "available_feedbacks",
    "available_demands",
    "available_populations",
    "register_feedback",
    "register_demand",
    "register_population",
    # core
    "ColonyAlgorithm",
    "InitialAssignment",
    "AlgorithmConstants",
    "DEFAULT_CONSTANTS",
    "AntAlgorithm",
    "OneSampleAntAlgorithm",
    "ScoutAntAlgorithm",
    "PreciseSigmoidAlgorithm",
    "PreciseAdversarialAlgorithm",
    "TrivialAlgorithm",
    "make_algorithm",
    "available_algorithms",
    "register_algorithm",
    "unregister_algorithm",
    # scenario
    "AlgorithmSpec",
    "FeedbackSpec",
    "DemandSpec",
    "PopulationSpec",
    "EngineSpec",
    "ScenarioSpec",
    "ScenarioFactory",
    "run_scenario",
    "sweep_scenario",
    "available_engines",
    # sim
    "Simulator",
    "CountingSimulator",
    "SequentialSimulator",
    "SimulationResult",
    "RegretTracker",
    "RunMetrics",
    "Trace",
    "run_trials",
    "sweep",
    "TrialSummary",
    "SweepResult",
]
