"""Per-file analysis context shared by every AST rule.

A :class:`FileContext` owns the parsed tree plus the three derived
structures the rules keep needing:

* an **import map** — local name -> fully qualified module/object name,
  so a rule matches ``numpy.random.random`` whether the file wrote
  ``np.random.random(...)``, ``numpy.random.random(...)``, or
  ``from numpy.random import random``;
* **parent links** — child node -> enclosing node, so a rule can ask
  "is this call inside a dict literal with manifest-ish keys?";
* the **pragma table** (:mod:`repro.lint.pragmas`).

Module scoping uses :meth:`FileContext.in_module`: rules describe the
files they quarantine as ``repro/...`` path suffixes, which works for
an installed tree, a ``src/`` layout checkout, and the copied-fixture
trees the lint tests build under ``tmp_path``.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from repro.lint.pragmas import FilePragmas, parse_pragmas

__all__ = ["FileContext", "qualified_name"]


def _build_import_map(tree: ast.AST) -> dict[str, str]:
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    imports[alias.asname] = alias.name
                else:
                    # ``import numpy.random`` binds the top-level name;
                    # attribute chains below it resolve through it.
                    top = alias.name.split(".")[0]
                    imports[top] = top
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative imports never name stdlib/numpy
                continue
            module = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{module}.{alias.name}" if module else alias.name
    return imports


def qualified_name(node: ast.AST, imports: dict[str, str]) -> str | None:
    """The fully qualified name an attribute chain resolves to.

    ``np.random.random`` with ``import numpy as np`` resolves to
    ``"numpy.random.random"``; chains rooted in anything but an imported
    name (locals, call results) resolve to ``None``.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = imports.get(node.id)
    if base is None:
        return None
    return ".".join([base, *reversed(parts)]) if parts else base


class FileContext:
    """Everything a rule needs to know about one parsed source file."""

    def __init__(self, path: Path, source: str, tree: ast.Module) -> None:
        self.path = Path(path)
        self.source = source
        self.tree = tree
        self.imports = _build_import_map(tree)
        self.pragmas: FilePragmas = parse_pragmas(source)
        self._parents: dict[int, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, path: Path, source: str | None = None) -> "FileContext":
        """Parse ``path`` (raises ``SyntaxError`` for unparsable files)."""
        if source is None:
            source = Path(path).read_text(encoding="utf-8")
        return cls(path, source, ast.parse(source, filename=str(path)))

    # ------------------------------------------------------------------
    @property
    def posix(self) -> str:
        return self.path.as_posix()

    def in_module(self, *suffixes: str) -> bool:
        """True when this file is one of the named ``repro/...`` modules."""
        return any(self.posix.endswith(suffix) for suffix in suffixes)

    def in_package(self, *prefixes: str) -> bool:
        """True when this file lives under one of the named packages
        (prefixes like ``repro/store/`` matched anywhere in the path)."""
        return any(prefix in self.posix for prefix in prefixes)

    # ------------------------------------------------------------------
    def resolve(self, node: ast.AST) -> str | None:
        return qualified_name(node, self.imports)

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """The enclosing nodes of ``node``, innermost first."""
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)
