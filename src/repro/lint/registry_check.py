"""RPR006 — registry/spec consistency, checked against the live registries.

Unlike RPR001–005 this is not an AST pass: it imports the component
registries (algorithms, feedbacks, demands, populations, engines) and
verifies, for every registered name, the three properties the
declarative scenario layer and the process-parallel runners assume:

* the factory **resolves** (``Registry.get`` succeeds — a registration
  that raises lazily would otherwise only fail inside a worker);
* the factory is **picklable** — ``ScenarioFactory`` ships specs to
  ``ProcessPoolExecutor`` workers and ``sched`` forks worker processes,
  so a lambda or closure factory would die only at sweep time;
* its declared **example params JSON-round-trip canonically**
  (``json.loads(canonical_json(example)) == example``) — the params of
  every component reach :func:`~repro.store.digest_hex`, so an example
  that cannot round-trip means the component cannot be content-addressed.

Every registration must declare an example (``Registry.register(...,
example={...})``): the example doubles as executable documentation and
as the probe object for the round-trip property.

Findings point at the module that performed the registration, so the
fix is one hop from the report.
"""

from __future__ import annotations

import inspect
import pickle
from typing import Any, Iterator

from repro.lint.findings import Finding

__all__ = ["RegistryConsistencyCheck", "check_registries"]


class RegistryConsistencyCheck:
    """RPR006: every registered factory resolves, pickles, round-trips."""

    rule_id = "RPR006"
    title = "registry/spec consistency (resolvable, picklable, JSON-round-trip examples)"


def _location(registry_module: Any, factory: Any) -> tuple[str, int]:
    """Best-effort source location: the factory def, else the registry."""
    for obj in (factory, registry_module):
        try:
            path = inspect.getsourcefile(obj)
            if path is None:
                continue
            try:
                # getsourcelines reports 0 for whole modules; clamp to 1.
                line = max(inspect.getsourcelines(obj)[1], 1)
            except (OSError, TypeError):
                line = 1
            return path, line
        except TypeError:
            continue
    return getattr(registry_module, "__name__", "<registry>"), 1


def _finding(registry_module: Any, factory: Any, message: str) -> Finding:
    path, line = _location(registry_module, factory)
    return Finding(
        rule=RegistryConsistencyCheck.rule_id, path=path, line=line, col=1, message=message
    )


def _check_registry(kind: str, registry: Any, registry_module: Any) -> Iterator[Finding]:
    import json

    from repro.store.digest import canonical_json

    for name in registry.names():
        try:
            factory = registry.get(name)
        except Exception as exc:  # resolution is the property under test
            yield _finding(
                registry_module, None, f"{kind} {name!r} does not resolve: {exc}"
            )
            continue
        try:
            pickle.dumps(factory)
        except Exception as exc:
            yield _finding(
                registry_module,
                factory,
                f"{kind} {name!r} factory is not picklable ({exc}); sweeps ship "
                "factories to worker processes — register a module-level callable",
            )
        example = registry.example(name)
        if example is None:
            yield _finding(
                registry_module,
                factory,
                f"{kind} {name!r} declares no example params; register with "
                "example={...} so the canonical round-trip property is checked",
            )
            continue
        try:
            rendered = canonical_json(example)
        except Exception as exc:
            yield _finding(
                registry_module,
                factory,
                f"{kind} {name!r} example params are not canonical-JSON "
                f"serializable: {exc}",
            )
            continue
        if json.loads(rendered) != example:
            yield _finding(
                registry_module,
                factory,
                f"{kind} {name!r} example params do not JSON-round-trip "
                "(non-string keys, tuples, or numpy scalars?); digested params "
                "must be plain JSON data",
            )


def check_registries() -> list[Finding]:
    """Run RPR006 over every built-in component registry."""
    import repro.core.registry as core_registry
    import repro.env.registry as env_registry
    import repro.scenario.engines as engines

    findings: list[Finding] = []
    for kind, registry, module in (
        ("algorithm", core_registry.ALGORITHMS, core_registry),
        ("feedback", env_registry.FEEDBACKS, env_registry),
        ("demand", env_registry.DEMANDS, env_registry),
        ("population", env_registry.POPULATIONS, env_registry),
        ("engine", engines.ENGINES, engines),
    ):
        findings.extend(_check_registry(kind, registry, module))
    return findings
