"""repro.lint — AST-based determinism & store-protocol linter.

Every guarantee the store/sched stack ships — bit-identical resume,
byte-diffable stores, crash-safe leases — rests on coding conventions
that are invisible to a type checker: RNG flows through seeded
generators, wall-clock never reaches record manifests, digest-bound
JSON is canonical, store writes are tmp-then-rename.  This package
enforces those conventions statically, so a future PR cannot break a
determinism invariant without either fixing the code or writing an
explicit ``# repro-lint: disable=RPRxxx`` pragma into the diff.

Rules
-----

========  ==============================================================
RPR001    no global-state RNG outside ``repro/util/rng.py``
RPR002    wall-clock quarantine (digest/record/manifest code)
RPR003    canonical ``json.dumps`` in store/sched/CLI-JSON paths
RPR004    atomic-write protocol under store/sched packages
RPR005    no float ``==``/``!=`` against computed expressions
RPR006    registry/spec consistency (live import-time check)
========  ==============================================================

Run ``python -m repro.lint src benchmarks`` (or ``repro-experiments
lint``); see :mod:`repro.lint.cli` for flags and exit codes and
:mod:`repro.lint.pragmas` for suppression syntax.
"""

from repro.lint.cli import lint_file, lint_paths, main
from repro.lint.findings import EXIT_CLEAN, EXIT_FINDINGS, PARSE_ERROR_ID, Finding
from repro.lint.registry_check import check_registries
from repro.lint.rules import AST_RULES, rule_table

__all__ = [
    "AST_RULES",
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "PARSE_ERROR_ID",
    "Finding",
    "check_registries",
    "lint_file",
    "lint_paths",
    "main",
    "rule_table",
]
