"""Pragma suppression: ``# repro-lint: disable=RPRxxx``.

Two scopes:

* **line** — ``# repro-lint: disable=RPR002`` trailing (or sharing a
  line with) the offending statement suppresses the named rules on that
  line only;
* **file** — ``# repro-lint: disable-file=RPR004`` anywhere in the file
  suppresses the named rules for the whole file (for modules that *are*
  the sanctioned implementation of a protocol, e.g. the atomic-write
  helpers themselves).

Several IDs separate with commas (``disable=RPR001,RPR005``) and
``disable=all`` suppresses every rule.  Pragmas are read from real
comment tokens via :mod:`tokenize`, so pragma-looking text inside string
literals never suppresses anything.

Suppression is deliberately *loud* in review: the pragma sits on the
line it silences, so every exemption from a determinism invariant is
visible in the diff that introduces it.
"""

from __future__ import annotations

import io
import re
import tokenize

__all__ = ["FilePragmas", "parse_pragmas"]

_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<scope>disable(?:-file)?)\s*=\s*(?P<ids>[A-Za-z0-9_,\s]+)"
)


class FilePragmas:
    """The suppression state of one source file."""

    def __init__(self) -> None:
        self.by_line: dict[int, set[str]] = {}
        self.file_wide: set[str] = set()

    def add(self, scope: str, line: int, rule_ids: set[str]) -> None:
        if scope == "disable-file":
            self.file_wide |= rule_ids
        else:
            self.by_line.setdefault(line, set()).update(rule_ids)

    def suppresses(self, rule: str, line: int) -> bool:
        """True when ``rule`` is disabled at ``line`` (or file-wide)."""
        for scope in (self.file_wide, self.by_line.get(line, ())):
            if rule in scope or "all" in scope:
                return True
        return False


def _parse_ids(text: str) -> set[str]:
    return {part.strip() for part in text.split(",") if part.strip()}


def parse_pragmas(source: str) -> FilePragmas:
    """Extract every pragma comment from ``source``.

    Tolerates tokenization failures (the caller reports the syntax error
    as its own finding): whatever prefix tokenizes still contributes its
    pragmas.
    """
    pragmas = FilePragmas()
    tokens = tokenize.generate_tokens(io.StringIO(source).readline)
    try:
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _PRAGMA_RE.search(token.string)
            if match is None:
                continue
            pragmas.add(match.group("scope"), token.start[0], _parse_ids(match.group("ids")))
    except (tokenize.TokenError, IndentationError, SyntaxError, ValueError):
        pass
    return pragmas
