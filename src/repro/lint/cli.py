"""``python -m repro.lint`` — the linter's command line.

Usage::

    python -m repro.lint src benchmarks            # lint trees (CI gate)
    python -m repro.lint --list-rules              # rule IDs and titles
    python -m repro.lint src --disable RPR005      # turn rules off
    python -m repro.lint src --no-registry         # skip the RPR006 import check
    python -m repro.lint src --json                # canonical JSON report

Exit status: 0 with no findings, 1 with findings (including unparsable
files, reported as RPR000), 2 for usage errors (argparse).  The same
pass is reachable as ``repro-experiments lint`` so one console entry
point covers running experiments and checking the invariants they rely
on.
"""

from __future__ import annotations

import argparse
import ast
from pathlib import Path
from typing import Iterable, Iterator

from repro.lint.context import FileContext
from repro.lint.findings import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    PARSE_ERROR_ID,
    Finding,
    sort_findings,
)
from repro.lint.rules import AST_RULES, rule_table

__all__ = ["build_parser", "iter_python_files", "lint_file", "lint_paths", "main"]

#: Directory names never descended into: caches and VCS internals hold
#: generated or foreign code the invariants do not govern.
SKIP_DIRS = frozenset({"__pycache__", ".git", ".ruff_cache", ".pytest_cache", ".venv"})


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Every ``.py`` file under ``paths`` (files pass through), sorted."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if set(candidate.parts) & SKIP_DIRS:
                continue
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def lint_file(path: str | Path, *, disabled: frozenset[str] = frozenset()) -> list[Finding]:
    """All unsuppressed findings for one file."""
    path = Path(path)
    try:
        ctx = FileContext.parse(path)
    except (SyntaxError, UnicodeDecodeError, OSError) as exc:
        line = getattr(exc, "lineno", 1) or 1
        return [
            Finding(
                rule=PARSE_ERROR_ID,
                path=str(path),
                line=line,
                col=1,
                message=f"file cannot be parsed ({exc.__class__.__name__}: {exc})",
            )
        ]
    findings = []
    for rule in AST_RULES:
        if rule.rule_id in disabled:
            continue
        for finding in rule.check(ctx):
            if not ctx.pragmas.suppresses(finding.rule, finding.line):
                findings.append(finding)
    return findings


def lint_paths(
    paths: Iterable[str | Path],
    *,
    disabled: frozenset[str] = frozenset(),
    registry: bool = True,
) -> list[Finding]:
    """Lint whole trees; optionally run the RPR006 registry check."""
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, disabled=disabled))
    if registry and "RPR006" not in disabled:
        from repro.lint.registry_check import check_registries

        findings.extend(check_registries())
    return sort_findings(findings)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="AST-based determinism & store-protocol linter (rules RPR001-RPR006).",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--disable",
        default="",
        metavar="IDS",
        help="comma-separated rule IDs to skip (e.g. RPR005,RPR006)",
    )
    parser.add_argument(
        "--no-registry",
        action="store_true",
        help="skip the RPR006 live registry consistency check",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="report as canonical JSON instead of compiler-style lines",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print rule IDs and titles, then exit"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule_id, title in rule_table():
            print(f"{rule_id}  {title}")
        return EXIT_CLEAN
    if not args.paths:
        build_parser().error("provide at least one path to lint (or --list-rules)")
    disabled = frozenset(
        part.strip() for part in args.disable.split(",") if part.strip()
    )
    findings = lint_paths(args.paths, disabled=disabled, registry=not args.no_registry)
    if args.json:
        from repro.store.digest import canonical_json

        print(canonical_json({"findings": [f.to_dict() for f in findings]}))
    else:
        for finding in findings:
            print(finding.render())
        n = len(findings)
        print(f"{n} finding(s)" if n else "clean: no findings")
    return EXIT_FINDINGS if findings else EXIT_CLEAN
