"""The AST rules: determinism and store-protocol invariants, statically.

Each rule is a class with a ``rule_id``, a one-line ``title``, and a
``check(ctx)`` generator over :class:`~repro.lint.findings.Finding`.
The rules encode the conventions the store/sched guarantees rest on
(see the README's "Correctness tooling" table for the invariant each
one protects):

* **RPR001** — no global-state RNG outside ``repro/util/rng.py``;
* **RPR002** — wall-clock quarantine in digest/record-critical modules
  and manifest-ish dict literals;
* **RPR003** — ``json.dumps`` in store/sched/CLI-JSON paths must be
  canonical (``sort_keys=True`` + pinned formatting);
* **RPR004** — no direct file writes under store packages outside the
  atomic-write helper modules;
* **RPR005** — no float ``==``/``!=`` against computed expressions;
* **RPR007** — observability isolation: ``repro.obs`` never reaches
  digest/manifest/record construction paths.

RPR006 (registry/spec consistency) is not an AST rule — it imports the
registries and checks them live; see :mod:`repro.lint.registry_check`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import FileContext
from repro.lint.findings import Finding

__all__ = ["AST_RULES", "Rule", "rule_table"]


class Rule:
    """Base class: subclasses define ``rule_id``, ``title``, ``check``."""

    rule_id: str = ""
    title: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:  # pragma: no cover - interface
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.rule_id,
            path=str(ctx.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


# ----------------------------------------------------------------------
# RPR001 — global-state RNG


class GlobalRngRule(Rule):
    """Randomness must flow through explicit, seeded generators.

    Bit-identical resume and byte-diffable stores require every random
    draw to come from a ``numpy.random.Generator`` threaded as a
    parameter (or derived from a ``SeedSequence``) — never from the
    process-global numpy state, the stdlib ``random`` module, or an
    OS-entropy ``default_rng()``.  Only :mod:`repro.util.rng`, the
    sanctioned seed-management module, is exempt.

    Explicit-state constructions pass without exemption: the batched
    engine (:mod:`repro.sim.batched`) derives one per-lane substream via
    each lane's ``RngFactory.stream("counting")`` — the same
    ``SeedSequence`` spawn scheme as the serial engine — and
    :mod:`repro.util.rng_block` replays draws from those ``Generator``
    objects, so neither opens a new global-RNG surface (pinned by
    ``tests/lint/test_rules.py``).
    """

    rule_id = "RPR001"
    title = "no global-state RNG outside repro/util/rng.py"

    EXEMPT_MODULES = ("repro/util/rng.py",)

    #: ``numpy.random`` attributes that are explicit-state constructors,
    #: not draws from the hidden global ``RandomState``.
    ALLOWED_NP_RANDOM = frozenset(
        {
            "Generator",
            "SeedSequence",
            "BitGenerator",
            "PCG64",
            "PCG64DXSM",
            "Philox",
            "SFC64",
            "MT19937",
            "default_rng",
        }
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.in_module(*self.EXEMPT_MODULES):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                yield from self._check_import(ctx, node)
            elif isinstance(node, ast.Attribute):
                yield from self._check_attribute(ctx, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)

    def _check_import(self, ctx: FileContext, node: ast.AST) -> Iterator[Finding]:
        if isinstance(node, ast.Import):
            modules = [alias.name for alias in node.names]
        else:
            assert isinstance(node, ast.ImportFrom)
            if node.level:
                return
            modules = [node.module or ""]
        for module in modules:
            if module == "random" or module.startswith("random."):
                yield self.finding(
                    ctx,
                    node,
                    "stdlib 'random' draws from hidden global state; thread a "
                    "numpy.random.Generator (see repro.util.rng) instead",
                )

    def _check_attribute(self, ctx: FileContext, node: ast.Attribute) -> Iterator[Finding]:
        qname = ctx.resolve(node)
        if qname is None or not qname.startswith("numpy.random."):
            return
        leaf = qname.removeprefix("numpy.random.").split(".")[0]
        if leaf not in self.ALLOWED_NP_RANDOM:
            yield self.finding(
                ctx,
                node,
                f"'{qname}' uses numpy's global RandomState; draw from a "
                "Generator threaded as a parameter or SeedSequence-derived "
                "(repro.util.rng.as_generator)",
            )

    def _check_call(self, ctx: FileContext, node: ast.Call) -> Iterator[Finding]:
        qname = ctx.resolve(node.func)
        if qname != "numpy.random.default_rng":
            return
        seeded = bool(node.keywords) or (
            node.args and not (isinstance(node.args[0], ast.Constant) and node.args[0].value is None)
        )
        if not seeded:
            yield self.finding(
                ctx,
                node,
                "argless default_rng() seeds from OS entropy — results become "
                "unreproducible; pass an explicit seed or SeedSequence",
            )


# ----------------------------------------------------------------------
# RPR002 — wall-clock quarantine


class WallClockRule(Rule):
    """Wall-clock must never reach digests, records, or manifests.

    A timestamp inside anything content-addressed breaks byte-identity:
    two runs of the same point would produce different record bytes, and
    the store's resume/chaos guarantees are checked by ``diff``.  The
    digest/record/grid modules — and the whole ``repro/serve/`` package,
    whose response bodies are byte-compared — are quarantined outright
    (lock/lease heartbeat code carries explicit
    ``# repro-lint: disable=RPR002`` pragmas — mtime freshness
    legitimately needs the clock); elsewhere,
    a wall-clock call inside a dict literal with manifest-ish keys
    (``kind`` / ``digest`` / ``meta``) is flagged wherever it appears.
    """

    rule_id = "RPR002"
    title = "wall-clock quarantine (digest/record/manifest code)"

    QUARANTINED_MODULES = (
        "repro/store/digest.py",
        "repro/store/records.py",
        "repro/store/locks.py",
        "repro/sched/grid.py",
        "repro/sched/leases.py",
    )
    #: Whole packages under quarantine: every response body the scenario
    #: service emits is digest-keyed canonical JSON, so a timestamp
    #: anywhere in ``repro/serve/`` could leak into a byte-compared
    #: response or a committed manifest.
    QUARANTINED_PACKAGES = ("repro/serve/",)

    #: The observability package is quarantined *harder*: every clock
    #: read — wall AND monotonic — must flow through the one sanctioned
    #: seam, ``repro/obs/clock.py`` (the clock analogue of
    #: ``repro/util/rng.py``), so instrumented timings stay injectable
    #: and trace files can be made deterministic with a FakeClock.
    OBS_PACKAGES = ("repro/obs/",)
    SANCTIONED_MODULES = ("repro/obs/clock.py",)

    BANNED_CALLS = frozenset(
        {
            "time.time",
            "time.time_ns",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.datetime.today",
            "datetime.date.today",
        }
    )

    #: Additionally banned inside ``repro/obs/`` (outside clock.py).
    MONOTONIC_CALLS = frozenset(
        {
            "time.monotonic",
            "time.monotonic_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
        }
    )

    MANIFEST_KEYS = frozenset({"kind", "digest", "meta"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.in_module(*self.SANCTIONED_MODULES):
            return
        in_obs = ctx.in_package(*self.OBS_PACKAGES)
        quarantined = (
            ctx.in_module(*self.QUARANTINED_MODULES)
            or ctx.in_package(*self.QUARANTINED_PACKAGES)
            or in_obs
        )
        banned = self.BANNED_CALLS | self.MONOTONIC_CALLS if in_obs else self.BANNED_CALLS
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qname = ctx.resolve(node.func)
            if qname not in banned:
                continue
            if in_obs:
                yield self.finding(
                    ctx,
                    node,
                    f"clock call {qname}() inside repro/obs/; every clock read "
                    "must go through repro.obs.clock (the one sanctioned seam) "
                    "so timings stay injectable and traces deterministic",
                )
            elif quarantined:
                yield self.finding(
                    ctx,
                    node,
                    f"wall-clock call {qname}() in a digest/record-critical "
                    "module; derive identity from content, not time (allowlist "
                    "heartbeat code with '# repro-lint: disable=RPR002')",
                )
            elif self._inside_manifest_dict(ctx, node):
                yield self.finding(
                    ctx,
                    node,
                    f"wall-clock call {qname}() inside a manifest-ish dict "
                    "literal (kind/digest/meta keys); timestamps in record "
                    "metadata break byte-identical stores — move it to a "
                    "non-digest sidecar",
                )

    def _inside_manifest_dict(self, ctx: FileContext, node: ast.Call) -> bool:
        for ancestor in ctx.ancestors(node):
            if not isinstance(ancestor, ast.Dict):
                continue
            keys = {
                key.value
                for key in ancestor.keys
                if isinstance(key, ast.Constant) and isinstance(key.value, str)
            }
            if keys & self.MANIFEST_KEYS:
                return True
        return False


# ----------------------------------------------------------------------
# RPR003 — canonical JSON discipline


class CanonicalJsonRule(Rule):
    """Digest-bound and machine-compared JSON must serialize canonically.

    Anything under ``repro/store/``, ``repro/sched/`` or ``repro/serve/``
    (HTTP response bodies are byte-diffed by the service smoke) — and
    the CLI, whose ``--json`` output the CI smokes byte-diff — may only
    call
    ``json.dumps``/``json.dump`` with ``sort_keys=True`` and pinned
    formatting (an explicit ``separators=`` or ``indent=``), so key
    order and whitespace can never vary between runs.
    """

    rule_id = "RPR003"
    title = "canonical json.dumps in store/sched/CLI-JSON paths"

    SCOPED_PACKAGES = ("repro/store/", "repro/sched/", "repro/serve/", "repro/obs/")
    SCOPED_MODULES = ("repro/experiments/cli.py",)

    JSON_CALLS = frozenset({"json.dumps", "json.dump"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not (ctx.in_package(*self.SCOPED_PACKAGES) or ctx.in_module(*self.SCOPED_MODULES)):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qname = ctx.resolve(node.func)
            if qname not in self.JSON_CALLS:
                continue
            keywords = {kw.arg: kw.value for kw in node.keywords if kw.arg is not None}
            sort_keys = keywords.get("sort_keys")
            sorted_ok = isinstance(sort_keys, ast.Constant) and sort_keys.value is True
            indent = keywords.get("indent")
            pinned = "separators" in keywords or (
                indent is not None
                and not (isinstance(indent, ast.Constant) and indent.value is None)
            )
            if not (sorted_ok and pinned):
                yield self.finding(
                    ctx,
                    node,
                    f"{qname} in a digest/store-comparable path must pass "
                    "sort_keys=True and pinned formatting (separators= or "
                    "indent=); prefer repro.store.canonical_json",
                )


# ----------------------------------------------------------------------
# RPR004 — atomic-write protocol


class AtomicWriteRule(Rule):
    """Store-layer writes must go through write-tmp-then-``os.replace``.

    A direct ``open(path, "w")`` under the store packages can be seen
    half-written by a concurrent reader or survive a crash as a corrupt
    record.  Only the sanctioned helper modules (``records.py``,
    ``locks.py``, ``pi_disk.py``) implement raw writes; everything else
    must publish bytes through their atomic helpers.
    """

    rule_id = "RPR004"
    title = "atomic-write protocol under store/sched/serve packages"

    SCOPED_PACKAGES = ("repro/store/", "repro/sched/", "repro/serve/", "repro/obs/")
    HELPER_MODULES = (
        "repro/store/records.py",
        "repro/store/locks.py",
        "repro/store/pi_disk.py",
        # The tracer appends whole O_APPEND lines (the reclaim-log
        # protocol) — it is obs's sanctioned raw-write module.
        "repro/obs/trace.py",
    )

    WRITE_MODES = frozenset("wax+")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package(*self.SCOPED_PACKAGES) or ctx.in_module(*self.HELPER_MODULES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            yield from self._check_open(ctx, node)
            yield from self._check_path_write(ctx, node)

    def _check_open(self, ctx: FileContext, node: ast.Call) -> Iterator[Finding]:
        func = node.func
        is_open = (
            isinstance(func, ast.Name) and func.id == "open" and "open" not in ctx.imports
        ) or ctx.resolve(func) in {"io.open", "builtins.open"}
        if not is_open:
            return
        mode = None
        if len(node.args) >= 2:
            mode = node.args[1]
        for kw in node.keywords:
            if kw.arg == "mode":
                mode = kw.value
        if mode is None:
            return  # default "r": reads are always safe
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
            if not (set(mode.value) & self.WRITE_MODES):
                return
        yield self.finding(
            ctx,
            node,
            "direct open() for writing under a store package; publish bytes "
            "via repro.store.records.atomic_write_bytes (write-tmp-then-"
            "os.replace) so readers never see partial files",
        )

    def _check_path_write(self, ctx: FileContext, node: ast.Call) -> Iterator[Finding]:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in {"write_text", "write_bytes"}:
            yield self.finding(
                ctx,
                node,
                f"Path.{func.attr}() under a store package writes in place; "
                "use repro.store.records.atomic_write_bytes instead",
            )


# ----------------------------------------------------------------------
# RPR005 — float equality


class FloatEqualityRule(Rule):
    """No ``==``/``!=`` between floats that were ever computed.

    Exact float comparison against a computed value encodes an
    assumption that two code paths round identically — the class of bug
    the kernel-equivalence suites exist to catch statistically.  The
    only sanctioned exact compare is the ``== 0.0`` sentinel (zero is
    preserved exactly by IEEE arithmetic entry points in this codebase);
    everything else should use ``np.isclose``/``math.isclose`` with an
    explicit tolerance.
    """

    rule_id = "RPR005"
    title = "no float ==/!= against computed expressions"

    ARITH_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.Pow, ast.FloorDiv, ast.Mod)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            if any(self._floaty(operand) for operand in operands):
                yield self.finding(
                    ctx,
                    node,
                    "exact ==/!= on float values; compare with an explicit "
                    "tolerance (np.isclose) — only the literal-0.0 sentinel "
                    "compare is exempt",
                )
                continue

    @classmethod
    def _floaty(cls, node: ast.AST) -> bool:
        if isinstance(node, ast.Constant):
            # The literal-zero sentinel (x == 0.0) is the allowlisted idiom.
            return isinstance(node.value, float) and node.value != 0.0
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
            return cls._floaty(node.operand)
        if isinstance(node, ast.BinOp) and isinstance(node.op, cls.ARITH_OPS):
            return any(
                isinstance(sub, ast.Constant) and isinstance(sub.value, float)
                for sub in ast.walk(node)
            )
        return False


# ----------------------------------------------------------------------
# RPR007 — observability isolation


class ObsIsolationRule(Rule):
    """``repro.obs`` must never feed digests, manifests, or records.

    Observability is read-only on determinism: a metric value, clock
    reading, or trace artifact inside anything content-addressed would
    make record bytes depend on *how the run was observed* — breaking
    the null-overhead invariant (records byte-identical with tracing
    on, off, or disabled mid-run).  Two enforcement surfaces:

    * importing ``repro.obs`` at all is banned inside the modules that
      *construct* digests/manifests/records (the whole store layer plus
      the grid/request/scenario record builders) — instrumentation of
      those flows lives in their callers;
    * everywhere else, passing an obs-imported name into a digest/record
      sink call (``write_record``, ``point_record``, ``request_record``,
      ``sweep_point_digest``, ``digest_hex``) is flagged.
    """

    rule_id = "RPR007"
    title = "repro.obs never feeds digest/manifest/record construction"

    #: Digest/manifest/record constructors: no ``repro.obs`` import here.
    QUARANTINED_PACKAGES = ("repro/store/",)
    QUARANTINED_MODULES = (
        "repro/sched/grid.py",
        "repro/serve/request.py",
        "repro/scenario/spec.py",
        "repro/scenario/runner.py",
    )

    #: Calls whose arguments become digests or record contents.
    SINK_CALLS = frozenset(
        {
            "write_record",
            "point_record",
            "request_record",
            "sweep_point_digest",
            "digest_hex",
        }
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.in_package("repro/obs/"):
            return  # obs handles its own values; sinks are banned here anyway
        quarantined = ctx.in_package(*self.QUARANTINED_PACKAGES) or ctx.in_module(
            *self.QUARANTINED_MODULES
        )
        for node in ast.walk(ctx.tree):
            if quarantined and isinstance(node, (ast.Import, ast.ImportFrom)):
                yield from self._check_import(ctx, node)
            elif isinstance(node, ast.Call):
                yield from self._check_sink(ctx, node)

    def _check_import(self, ctx: FileContext, node: ast.AST) -> Iterator[Finding]:
        if isinstance(node, ast.Import):
            modules = [alias.name for alias in node.names]
        else:
            assert isinstance(node, ast.ImportFrom)
            if node.level:
                return
            modules = [node.module or ""]
        for module in modules:
            if module == "repro.obs" or module.startswith("repro.obs."):
                yield self.finding(
                    ctx,
                    node,
                    "repro.obs imported in a digest/manifest/record "
                    "construction module; observability is read-only on "
                    "determinism — instrument the caller, not the "
                    "record builder",
                )

    def _check_sink(self, ctx: FileContext, node: ast.Call) -> Iterator[Finding]:
        func = node.func
        if isinstance(func, ast.Attribute):
            name = func.attr
        elif isinstance(func, ast.Name):
            name = func.id
        else:
            return
        if name not in self.SINK_CALLS:
            return
        arguments: list[ast.AST] = [*node.args]
        arguments.extend(kw.value for kw in node.keywords)
        for argument in arguments:
            for sub in ast.walk(argument):
                qname: str | None = None
                if isinstance(sub, ast.Name):
                    qname = ctx.imports.get(sub.id)
                elif isinstance(sub, ast.Attribute):
                    qname = ctx.resolve(sub)
                if qname is not None and (
                    qname == "repro.obs" or qname.startswith("repro.obs.")
                ):
                    yield self.finding(
                        ctx,
                        sub,
                        f"obs-derived value ({qname}) flows into digest/record "
                        f"sink {name}(); metric and trace values must never "
                        "reach content-addressed bytes",
                    )
                    break  # one finding per argument expression


# ----------------------------------------------------------------------

AST_RULES: tuple[Rule, ...] = (
    GlobalRngRule(),
    WallClockRule(),
    CanonicalJsonRule(),
    AtomicWriteRule(),
    FloatEqualityRule(),
    ObsIsolationRule(),
)


def rule_table() -> list[tuple[str, str]]:
    """``(rule_id, title)`` for every rule, AST and dynamic alike."""
    from repro.lint.registry_check import RegistryConsistencyCheck

    rows = [(rule.rule_id, rule.title) for rule in AST_RULES]
    rows.append((RegistryConsistencyCheck.rule_id, RegistryConsistencyCheck.title))
    return rows
