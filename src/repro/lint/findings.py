"""Findings: what the linter reports, and how it is rendered.

A :class:`Finding` is one rule violation pinned to a file and line.
Findings are plain frozen data so rule implementations stay trivially
testable, and they render in the classic ``path:line:col: ID message``
compiler format that editors and CI annotators already parse.

Exit codes (:data:`EXIT_CLEAN` / :data:`EXIT_FINDINGS` / ``2`` from
argparse for usage errors) mirror ruff/flake8 so the CI job needs no
adapter logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = [
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "PARSE_ERROR_ID",
    "Finding",
    "sort_findings",
]

#: No findings: the tree satisfies every enabled rule.
EXIT_CLEAN = 0

#: At least one unsuppressed finding (or an unparsable file).
EXIT_FINDINGS = 1

#: Pseudo-rule ID for files the linter cannot parse at all.  A syntax
#: error is always a finding — an unparsable file is an unverifiable
#: file, and silently skipping it would make the gate vacuous.
PARSE_ERROR_ID = "RPR000"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        """``path:line:col: RPRxxx message`` (compiler-style)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly form (the ``--json`` report payload)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


def sort_findings(findings: list[Finding]) -> list[Finding]:
    """Deterministic report order: by path, then line, then rule."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))
