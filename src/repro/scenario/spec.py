"""Declarative scenario specs: every simulation as serializable data.

A :class:`ScenarioSpec` is a frozen, JSON-round-trippable description of
one complete simulation: which algorithm, which feedback model, which
demand (vector or schedule), which engine, optional colony-size
dynamics, the seed and the default horizon.  Component choices are
``(name, params)`` pairs resolved against the shared registries, so a
spec is

* **validated on construction** — unknown component names and
  non-JSON-serializable params fail immediately with the list of known
  names;
* **serializable** — ``to_dict()/from_dict()/to_json()/from_json()``
  round-trip to an equal spec;
* **picklable** — specs contain only plain data, so spec-based factories
  can be shipped to ``ProcessPoolExecutor`` workers for parallel trials.

Construction accepts plain dicts wherever a component spec is expected,
so ``ScenarioSpec.from_dict(json.load(f))`` and hand-written literals
both work::

    spec = ScenarioSpec(
        algorithm={"name": "ant", "params": {"gamma": 0.025}},
        demand={"name": "uniform", "params": {"n": 4000, "k": 4}},
        feedback={"name": "calibrated_sigmoid", "params": {"gamma_star": 0.01}},
        engine={"name": "counting"},
        rounds=10_000,
        seed=42,
    )
    sim = spec.build()          # ready-to-run simulator
    result = sim.run(spec.rounds)
"""

from __future__ import annotations

import dataclasses
import inspect
import json
from dataclasses import dataclass, field
from typing import Any, ClassVar

from repro.core.registry import ALGORITHMS
from repro.env.demands import DemandSchedule, DemandVector
from repro.env.registry import DEMANDS, FEEDBACKS, POPULATIONS
from repro.exceptions import ConfigurationError
from repro.scenario.engines import ENGINES, POPULATION_AWARE_ENGINES
from repro.util.registry import Registry
from repro.util.validation import check_integer

__all__ = [
    "AlgorithmSpec",
    "FeedbackSpec",
    "DemandSpec",
    "PopulationSpec",
    "EngineSpec",
    "ScenarioSpec",
]


def _normalize_params(kind: str, params: Any) -> dict[str, Any]:
    """Validate and canonicalize a component's params to plain JSON data.

    The JSON round-trip canonicalizes containers (tuples become lists)
    so that ``from_json(to_json(spec)) == spec`` holds exactly.
    """
    if params is None:
        return {}
    if not isinstance(params, dict):
        raise ConfigurationError(
            f"{kind} params must be a dict of keyword arguments, "
            f"got {type(params).__name__}"
        )
    for key in params:
        if not isinstance(key, str) or not key:
            raise ConfigurationError(f"{kind} param names must be strings, got {key!r}")
    try:
        return json.loads(json.dumps(params))
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"{kind} params must be JSON-serializable "
            f"(plain numbers / strings / lists / dicts): {exc}"
        ) from exc


def _accepts_param(factory: Any, name: str) -> bool:
    """True when ``factory`` declares an explicit parameter ``name``."""
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):  # builtins without introspectable signatures
        return False
    param = signature.parameters.get(name)
    return param is not None and param.kind in (
        inspect.Parameter.POSITIONAL_OR_KEYWORD,
        inspect.Parameter.KEYWORD_ONLY,
    )


@dataclass(frozen=True)
class ComponentSpec:
    """Base for ``(name, params)`` component choices.

    Subclasses bind a registry (class attribute ``registry``) and a
    human-readable ``kind``; the name is validated against the registry
    at construction time so typos fail early with the available names.
    """

    name: str
    params: dict[str, Any] = field(default_factory=dict)

    kind: ClassVar[str] = "component"
    registry: ClassVar[Registry]

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ConfigurationError(f"{self.kind} name must be a non-empty string")
        self.registry.check(self.name)
        object.__setattr__(self, "params", _normalize_params(self.kind, self.params))

    # ------------------------------------------------------------------
    def build(self, **extra: Any) -> Any:
        """Instantiate the component; ``extra`` kwargs override params."""
        return self.registry.make(self.name, **{**self.params, **extra})

    def with_params(self, **updates: Any) -> "ComponentSpec":
        """A copy with ``updates`` merged into (and revalidated with) params."""
        return dataclasses.replace(self, params={**self.params, **updates})

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "params": json.loads(json.dumps(self.params))}

    @classmethod
    def from_dict(cls, data: "dict | ComponentSpec") -> "ComponentSpec":
        if isinstance(data, cls):
            return data
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"{cls.kind} spec must be a dict or {cls.__name__}, "
                f"got {type(data).__name__}"
            )
        unknown = set(data) - {"name", "params"}
        if unknown:
            raise ConfigurationError(
                f"unknown {cls.kind} spec keys {sorted(unknown)}; "
                "expected 'name' and optional 'params'"
            )
        if "name" not in data:
            raise ConfigurationError(f"{cls.kind} spec needs a 'name'")
        return cls(name=data["name"], params=data.get("params", {}))


@dataclass(frozen=True)
class AlgorithmSpec(ComponentSpec):
    """Which colony algorithm to run (``repro.core`` registry)."""

    kind: ClassVar[str] = "algorithm"
    registry: ClassVar[Registry] = ALGORITHMS


@dataclass(frozen=True)
class FeedbackSpec(ComponentSpec):
    """Which noise model produces the ants' signals (``repro.env``)."""

    kind: ClassVar[str] = "feedback"
    registry: ClassVar[Registry] = FEEDBACKS

    def build(self, **extra: Any) -> Any:
        """Instantiate the model, injecting scenario context the factory
        declares it wants: ``demand`` for demand-aware factories
        (``calibrated_sigmoid``, ``threshold``) and the task count ``k``
        for k-aware ones (``sigmoid`` validates per-task ``lam`` vectors
        against it at build time)."""
        kwargs = {**self.params, **extra}
        factory = self.registry.get(self.name)
        demand = kwargs.get("demand")
        if demand is not None and "k" not in kwargs and _accepts_param(factory, "k"):
            kwargs["k"] = demand.k
        if "demand" in kwargs and not _accepts_param(factory, "demand"):
            kwargs.pop("demand")
        return self.registry.make(self.name, **kwargs)


@dataclass(frozen=True)
class DemandSpec(ComponentSpec):
    """Which demand vector or dynamic demand schedule to serve."""

    kind: ClassVar[str] = "demand"
    registry: ClassVar[Registry] = DEMANDS


@dataclass(frozen=True)
class PopulationSpec(ComponentSpec):
    """Colony-size dynamics (counting engine only)."""

    kind: ClassVar[str] = "population"
    registry: ClassVar[Registry] = POPULATIONS


@dataclass(frozen=True)
class EngineSpec(ComponentSpec):
    """Which simulation engine executes the scenario."""

    kind: ClassVar[str] = "engine"
    registry: ClassVar[Registry] = ENGINES


# ----------------------------------------------------------------------


#: ScenarioSpec fields holding a component spec, with their spec class.
_COMPONENT_FIELDS: dict[str, type[ComponentSpec]] = {
    "algorithm": AlgorithmSpec,
    "demand": DemandSpec,
    "feedback": FeedbackSpec,
    "engine": EngineSpec,
    "population": PopulationSpec,
}

#: Top-level scalar fields that ``with_param`` may override directly.
_SCALAR_FIELDS = frozenset({"seed", "rounds", "gamma_star", "label"})


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete simulation as declarative, serializable data.

    Parameters
    ----------
    algorithm, demand, feedback:
        Component choices (spec objects or plain ``{"name", "params"}``
        dicts).
    engine:
        Execution engine; defaults to the exact agent-level engine.
    population:
        Optional colony-size schedule; requires a population-aware
        engine (currently ``counting``).
    seed:
        Root seed: the single-run seed and the root for per-trial seed
        derivation in multi-trial runs.
    rounds:
        Default horizon; ``run_scenario`` may override per call.
    run_params:
        Extra kwargs forwarded to the engine's ``run`` (``burn_in``,
        ``trace_stride``, ``tail_window``).
    gamma_star:
        Critical value used for closeness statistics in trial summaries.
    label:
        Human-readable tag; defaults to ``"<algorithm>@<engine>"``.
    """

    algorithm: AlgorithmSpec
    demand: DemandSpec
    feedback: FeedbackSpec
    engine: EngineSpec = field(default_factory=lambda: EngineSpec("agent"))
    population: PopulationSpec | None = None
    seed: int = 0
    rounds: int = 1000
    run_params: dict[str, Any] = field(default_factory=dict)
    gamma_star: float | None = None
    label: str = ""

    def __post_init__(self) -> None:
        for name, spec_cls in _COMPONENT_FIELDS.items():
            value = getattr(self, name)
            if name == "population" and value is None:
                continue
            object.__setattr__(self, name, spec_cls.from_dict(value))
        object.__setattr__(self, "rounds", check_integer("rounds", self.rounds, minimum=1))
        if not isinstance(self.seed, int) or isinstance(self.seed, bool) or self.seed < 0:
            raise ConfigurationError(
                f"seed must be a non-negative int (numpy SeedSequence rejects "
                f"negatives), got {self.seed!r}"
            )
        object.__setattr__(
            self, "run_params", _normalize_params("run_params", self.run_params)
        )
        burn_in = self.run_params.get("burn_in")
        if burn_in is not None:
            burn_in = check_integer("run_params burn_in", burn_in, minimum=0)
            if burn_in >= self.rounds:
                raise ConfigurationError(
                    f"run_params burn_in={burn_in} must be < rounds={self.rounds}; "
                    "such a run would exclude every round from its metrics"
                )
        if self.gamma_star is not None:
            if not isinstance(self.gamma_star, (int, float)) or not 0.0 < self.gamma_star < 1.0:
                raise ConfigurationError(
                    f"gamma_star must lie in (0, 1), got {self.gamma_star!r}"
                )
            object.__setattr__(self, "gamma_star", float(self.gamma_star))
        if not isinstance(self.label, str):
            raise ConfigurationError(f"label must be a string, got {self.label!r}")
        if self.population is not None and self.engine.name not in POPULATION_AWARE_ENGINES:
            raise ConfigurationError(
                f"population schedules require a population-aware engine "
                f"({sorted(POPULATION_AWARE_ENGINES)}); got engine {self.engine.name!r}"
            )

    # ------------------------------------------------------------------
    # Construction of the live objects

    def build_demand(self) -> DemandVector | DemandSchedule:
        """The demand vector / schedule this scenario serves."""
        return self.demand.build()

    def initial_demand(self) -> DemandVector:
        """The demand vector in force at round 0 (for calibration)."""
        demand = self.build_demand()
        if isinstance(demand, DemandVector):
            return demand
        return demand.demands_at(0)

    def build(self, *, seed: int | None = None, shared_pi_cache: Any = None) -> Any:
        """Construct the ready-to-run simulator for this scenario.

        ``seed`` overrides the spec's seed (used for per-trial seeds).
        ``shared_pi_cache`` is runtime context, not spec data: a live
        :class:`~repro.sim.pi_cache.SharedPiCache` threaded in by
        ``run_scenario``/``sweep_scenario`` so counting-engine trials
        can share join-distribution work.  Passing one requires an
        engine whose builder declares the ``shared_pi_cache`` parameter.
        """
        demand = self.build_demand()
        d0 = demand if isinstance(demand, DemandVector) else demand.demands_at(0)
        extra: dict[str, Any] = {}
        if shared_pi_cache is not None:
            if not _accepts_param(self.engine.registry.get(self.engine.name), "shared_pi_cache"):
                raise ConfigurationError(
                    f"engine {self.engine.name!r} does not accept a shared pi "
                    "cache (its builder declares no 'shared_pi_cache' "
                    "parameter); use the counting engine or drop the cache"
                )
            extra["shared_pi_cache"] = shared_pi_cache
        return self.engine.build(
            algorithm=self.algorithm.build(),
            demand=demand,
            feedback=self.feedback.build(demand=d0),
            population=self.population.build() if self.population is not None else None,
            seed=self.seed if seed is None else seed,
            **extra,
        )

    # ------------------------------------------------------------------
    # Derivation

    def describe(self) -> str:
        """The label, or a ``"<algorithm>@<engine>"`` default."""
        return self.label or f"{self.algorithm.name}@{self.engine.name}"

    def with_param(self, path: str, value: Any) -> "ScenarioSpec":
        """A copy with one parameter replaced, addressed by dotted path.

        ``"algorithm.gamma"`` updates a component param; a bare field
        name (``"rounds"``, ``"seed"``, ``"gamma_star"``, ``"label"``)
        updates the top-level field.  The copy is fully revalidated.
        """
        head, _, key = path.partition(".")
        if not key:
            if head not in _SCALAR_FIELDS:
                raise ConfigurationError(
                    f"cannot set {path!r}; top-level fields: {sorted(_SCALAR_FIELDS)}, "
                    f"component params: {sorted(_COMPONENT_FIELDS)} (as 'component.param')"
                )
            return dataclasses.replace(self, **{head: value})
        if head not in _COMPONENT_FIELDS:
            raise ConfigurationError(
                f"unknown component {head!r} in {path!r}; "
                f"known components: {sorted(_COMPONENT_FIELDS)}"
            )
        component = getattr(self, head)
        if component is None:
            raise ConfigurationError(
                f"cannot set {path!r}: the scenario has no {head} spec"
            )
        return dataclasses.replace(self, **{head: component.with_params(**{key: value})})

    # ------------------------------------------------------------------
    # Serialization

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form, suitable for JSON / YAML config files."""
        return {
            "algorithm": self.algorithm.to_dict(),
            "demand": self.demand.to_dict(),
            "feedback": self.feedback.to_dict(),
            "engine": self.engine.to_dict(),
            "population": None if self.population is None else self.population.to_dict(),
            "seed": self.seed,
            "rounds": self.rounds,
            "run_params": json.loads(json.dumps(self.run_params)),
            "gamma_star": self.gamma_star,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output (strict on keys)."""
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"scenario spec must be a dict, got {type(data).__name__}"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown scenario spec keys {sorted(unknown)}; known: {sorted(known)}"
            )
        for required in ("algorithm", "demand", "feedback"):
            if data.get(required) is None:
                raise ConfigurationError(f"scenario spec needs {required!r}")
        # Explicit nulls for optional fields mean "use the default"
        # (population and gamma_star legitimately default to None).
        kwargs = {
            k: v
            for k, v in data.items()
            if not (v is None and k in ("engine", "run_params", "label", "seed", "rounds"))
        }
        return cls(**kwargs)

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid scenario JSON: {exc}") from exc
        return cls.from_dict(data)
