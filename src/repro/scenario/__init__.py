"""Declarative scenario layer: specs in, results out.

Makes every simulation a serializable configuration (see
:mod:`repro.scenario.spec`) and provides the single entry point
:func:`run_scenario` plus the declarative :func:`sweep_scenario`.

Quick use::

    from repro.scenario import ScenarioSpec, run_scenario

    spec = ScenarioSpec(
        algorithm={"name": "ant", "params": {"gamma": 0.025}},
        demand={"name": "uniform", "params": {"n": 4000, "k": 4}},
        feedback={"name": "calibrated_sigmoid", "params": {"gamma_star": 0.01}},
        engine={"name": "counting"},
        rounds=10_000,
        gamma_star=0.01,
    )
    summary = run_scenario(spec, trials=8, parallel=4, burn_in=5000)
    print(summary.describe())
    open("scenario.json", "w").write(spec.to_json())
"""

from repro.scenario.engines import (
    ENGINES,
    available_engines,
    make_engine,
    register_engine,
    unregister_engine,
)
from repro.scenario.spec import (
    AlgorithmSpec,
    DemandSpec,
    EngineSpec,
    FeedbackSpec,
    PopulationSpec,
    ScenarioSpec,
)
from repro.scenario.runner import (
    SEED_MODES,
    ScenarioFactory,
    run_scenario,
    sweep_point_digest,
    sweep_point_seed,
    sweep_scenario,
)

__all__ = [
    "SEED_MODES",
    "sweep_point_digest",
    "sweep_point_seed",
    "AlgorithmSpec",
    "FeedbackSpec",
    "DemandSpec",
    "PopulationSpec",
    "EngineSpec",
    "ScenarioSpec",
    "ScenarioFactory",
    "run_scenario",
    "sweep_scenario",
    "ENGINES",
    "make_engine",
    "available_engines",
    "register_engine",
    "unregister_engine",
]
