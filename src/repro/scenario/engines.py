"""Engine registry: simulation engines constructible by name.

Each engine builder receives the already-built components (algorithm,
demand, feedback, optional population schedule) plus the run seed and
the engine-specific options from :class:`~repro.scenario.spec.EngineSpec`
params.  Three engines ship with the library:

* ``agent`` — :class:`~repro.sim.engine.Simulator`, the exact per-ant
  synchronous engine (any algorithm / feedback);
* ``counting`` — :class:`~repro.sim.counting.CountingSimulator`, the
  O(k)-per-round load-level engine (Ant / trivial / precise sigmoid
  under i.i.d. noise; the only engine supporting dynamic populations);
* ``counting_batched`` — the counting engine plus batched multi-trial
  execution: its ``batch`` / ``backend`` params make ``run_scenario`` /
  ``sweep_scenario`` advance trials through
  :class:`~repro.sim.batched.BatchedCountingSimulator` (bit-identical
  to serial trials, several times faster at moderate k);
* ``sequential`` — :class:`~repro.sim.sequential.SequentialSimulator`,
  the Appendix D.1 one-ant-per-round scheduler.
"""

from __future__ import annotations

import numpy as np

from repro.env.population import PopulationSchedule
from repro.exceptions import ConfigurationError
from repro.sim.batched import DEFAULT_BATCH
from repro.sim.counting import CountingSimulator
from repro.sim.engine import Simulator
from repro.sim.sequential import SequentialSimulator
from repro.util.array_api import available_array_backends
from repro.util.registry import Registry
from repro.util.validation import check_integer

__all__ = [
    "ENGINES",
    "make_engine",
    "available_engines",
    "register_engine",
    "unregister_engine",
    "POPULATION_AWARE_ENGINES",
    "BATCHED_ENGINES",
]

ENGINES = Registry("engine")

#: Engine names that accept a population schedule (colony-size dynamics).
#: Extended by ``register_engine(..., population_aware=True)``.
POPULATION_AWARE_ENGINES: set[str] = {"counting", "counting_batched"}

#: Engine names whose specs opt multi-trial runs into the batched
#: executor (``run_scenario``/``sweep_scenario`` read the spec's
#: ``batch``/``backend`` engine params and route trials through
#: :class:`~repro.sim.batched.BatchedCountingSimulator`).
BATCHED_ENGINES: set[str] = {"counting_batched"}


def _require_no_population(engine: str, population: PopulationSchedule | None) -> None:
    if population is not None:
        raise ConfigurationError(
            f"the {engine!r} engine does not support population schedules "
            "(only the counting engine tracks colony-size dynamics)"
        )


def _build_agent(
    algorithm,
    demand,
    feedback,
    *,
    seed=None,
    population=None,
    initial_assignment: str = "all_idle",
    check_invariants_every: int = 0,
) -> Simulator:
    _require_no_population("agent", population)
    return Simulator(
        algorithm,
        demand,
        feedback,
        initial_assignment=initial_assignment,
        seed=seed,
        check_invariants_every=check_invariants_every,
    )


def _build_counting(
    algorithm,
    demand,
    feedback,
    *,
    seed=None,
    population=None,
    shared_pi_cache=None,
    initial_loads=None,
    join_strategy: str = "exact",
    join_kernel_method: str = "auto",
    pi_cache: bool = True,
) -> CountingSimulator:
    # No task-count cap here: the exact join kernel (O(k^2) DP, FFT PMF
    # past FFT_K_THRESHOLD, Gauss-Legendre quadrature past
    # QUADRATURE_K_THRESHOLD) plus the join-distribution caches make
    # counting scenarios with k in the thousands declarable and runnable
    # (the old subset enumerator's k <= 14 cliff survives only as a test
    # oracle).  ``shared_pi_cache`` is runtime context injected by
    # run_scenario/sweep_scenario, never spec data.
    if initial_loads is not None:
        initial_loads = np.asarray(initial_loads, dtype=np.int64)
    return CountingSimulator(
        algorithm,
        demand,
        feedback,
        initial_loads=initial_loads,
        seed=seed,
        population=population,
        join_strategy=join_strategy,
        join_kernel_method=join_kernel_method,
        pi_cache=pi_cache,
        shared_pi_cache=shared_pi_cache,
    )


def _build_counting_batched(
    algorithm,
    demand,
    feedback,
    *,
    seed=None,
    population=None,
    shared_pi_cache=None,
    initial_loads=None,
    join_strategy: str = "exact",
    join_kernel_method: str = "auto",
    pi_cache: bool = True,
    batch: int = DEFAULT_BATCH,
    backend: str = "numpy",
) -> CountingSimulator:
    # ``batch`` / ``backend`` are *orchestration* knobs: a single build
    # still returns one serial CountingSimulator (a one-lane batch would
    # only add overhead, and trials are bit-identical either way).  The
    # scenario runners read them off the spec and group factory-built
    # lanes into a BatchedCountingSimulator per chunk of trials.
    check_integer("batch", batch, minimum=1)
    if backend not in available_array_backends():
        raise ConfigurationError(
            f"unknown array backend {backend!r}; known: {available_array_backends()}"
        )
    return _build_counting(
        algorithm,
        demand,
        feedback,
        seed=seed,
        population=population,
        shared_pi_cache=shared_pi_cache,
        initial_loads=initial_loads,
        join_strategy=join_strategy,
        join_kernel_method=join_kernel_method,
        pi_cache=pi_cache,
    )


def _build_sequential(
    algorithm,
    demand,
    feedback,
    *,
    seed=None,
    population=None,
    initial_assignment: str = "all_idle",
) -> SequentialSimulator:
    _require_no_population("sequential", population)
    return SequentialSimulator(
        algorithm,
        demand,
        feedback,
        initial_assignment=initial_assignment,
        seed=seed,
    )


# ``example=`` lists each engine's spec-level params (what EngineSpec
# params may carry) — the components and seed are injected at build time.
# Kept honest by the RPR006 registry-consistency lint check.
ENGINES.register("agent", _build_agent, example={"initial_assignment": "all_idle"})
ENGINES.register(
    "counting",
    _build_counting,
    example={"join_strategy": "exact", "join_kernel_method": "auto", "pi_cache": True},
)
ENGINES.register(
    "counting_batched",
    _build_counting_batched,
    example={
        "join_strategy": "exact",
        "join_kernel_method": "auto",
        "pi_cache": True,
        "batch": 16,
        "backend": "numpy",
    },
)
ENGINES.register("sequential", _build_sequential, example={"initial_assignment": "all_idle"})


def make_engine(name: str, **kwargs):
    """Build a registered engine (see the engine builders for kwargs)."""
    return ENGINES.make(name, **kwargs)


def available_engines() -> list[str]:
    return ENGINES.names()


def register_engine(
    name: str,
    factory,
    *,
    allow_overwrite: bool = False,
    population_aware: bool = False,
    example=None,
) -> None:
    """Register a custom engine builder.

    The builder is called as ``factory(algorithm, demand, feedback, *,
    seed, population, **engine_params)`` and must return an object with
    a ``run(rounds, **run_kwargs)`` method.  Pass ``population_aware=True``
    when the builder actually consumes a population schedule; otherwise
    specs pairing it with a population are rejected at construction.
    ``example`` (representative JSON-safe engine params) is optional for
    plugins but required by the RPR006 lint check for built-ins.
    """
    ENGINES.register(name, factory, allow_overwrite=allow_overwrite, example=example)
    if population_aware:
        POPULATION_AWARE_ENGINES.add(name)
    else:
        POPULATION_AWARE_ENGINES.discard(name)


def unregister_engine(name: str) -> None:
    """Remove a registered engine (e.g. to undo a test-local plugin)."""
    ENGINES.unregister(name)
    POPULATION_AWARE_ENGINES.discard(name)
    BATCHED_ENGINES.discard(name)
