"""One entry point from spec to results: ``run_scenario`` / ``sweep_scenario``.

``run_scenario(spec)`` runs a single simulation and returns a
:class:`~repro.sim.engine.SimulationResult`; ``run_scenario(spec,
trials=...)`` routes through :func:`repro.sim.runner.run_trials` and
returns a :class:`~repro.sim.runner.TrialSummary`.  The trial factory is
:class:`ScenarioFactory` — a picklable wrapper around the spec — so
``parallel=P`` farms trials to ``P`` worker processes for *any*
configuration, with results bit-identical to the serial path (per-trial
seeds are derived from the root seed either way).

``sweep_scenario`` generalizes the one-parameter sweep: each swept value
is applied to the spec via :meth:`ScenarioSpec.with_param` dotted paths
(``"algorithm.gamma"``, ``"feedback.lam"``, ...), so the entire sweep
stays declarative and process-parallel.

Both entry points accept a ``shared_pi_cache``: one
:class:`~repro.sim.pi_cache.SharedPiCache` threaded through every trial
(and, for sweeps, every sweep point) so counting-engine trials whose
deficit signatures repeat reuse each other's join-kernel work.  The
cache is runtime context, never spec data; results are bit-identical
with or without it, serial or process-parallel (workers amortize
per-process — see :mod:`repro.sim.pi_cache`).

Sweeps are additionally *resumable*: pass ``store=`` (a
:class:`~repro.store.ResultStore` or a directory path) and every
completed point is committed to disk as an atomic record keyed by a
content digest of everything that determines its result — the derived
spec's JSON, the swept parameter and value, horizon, trial count, run
params, and the point's seed root.  Re-invoking the same sweep skips
committed points and returns aggregates *bit-identical* to an
uninterrupted run (float64 arrays round-trip exactly); only missing
points execute.  Point seed roots are themselves digest-derived by
default (``seed_mode="digest"``): a pure function of the point's own
identity, so inserting a value into a sweep cannot silently reshuffle
the seeds — and therefore the results — of existing points.
``seed_mode="index"`` restores the legacy index-based derivation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

import numpy as np

from repro._version import __version__
from repro.exceptions import ConfigurationError, SweepInterrupted
from repro.sim.engine import SimulationResult
from repro.sim.pi_cache import SharedPiCache
from repro.sim.runner import SweepResult, TrialSummary, run_trials
from repro.store import STORE_FORMAT, ResultStore, digest_hex, seed_from_digest
from repro.store.records import Record
from repro.util.validation import check_integer

from repro.scenario.engines import BATCHED_ENGINES
from repro.scenario.spec import ScenarioSpec

__all__ = [
    "ScenarioFactory",
    "run_scenario",
    "sweep_scenario",
    "sweep_point_digest",
    "sweep_point_seed",
    "SEED_MODES",
]

#: How sweep-point seed roots are derived.  ``"digest"`` (default) folds
#: the point's content digest into the root seed — insertion-stable and
#: required for sound resume; ``"index"`` is the legacy
#: ``SeedSequence(seed).spawn(len(values))`` derivation kept for
#: reproducing pre-store sweep results.
SEED_MODES = ("digest", "index")


@dataclass(frozen=True)
class ScenarioFactory:
    """Picklable ``seed -> simulator`` factory for multi-trial runs.

    Specs are plain data, so instances survive ``pickle`` and can be
    shipped to ``ProcessPoolExecutor`` workers — unlike closures over
    live simulator components.  An attached shared pi cache survives the
    trip too: it pickles as an identity token that resolves to one live
    cache per worker process.
    """

    spec: ScenarioSpec
    shared_pi_cache: SharedPiCache | None = None

    def __call__(self, seed: int) -> Any:
        return self.spec.build(seed=seed, shared_pi_cache=self.shared_pi_cache)


def _resolve_batch(
    spec: ScenarioSpec, batch: int | None, parallel: int
) -> tuple[int, str]:
    """``(batch, array_backend)`` for a spec's multi-trial runs.

    An explicit ``batch=`` wins outright (``run_trials`` rejects the
    combination with ``processes``).  Otherwise a batched engine spec
    (``counting_batched``) supplies its ``batch``/``backend`` params as
    the default — unless the caller asked for process parallelism, which
    takes precedence as the explicitly requested axis.
    """
    params = spec.engine.params
    backend = str(params.get("backend", "numpy"))
    if batch is not None:
        return check_integer("batch", batch, minimum=0), backend
    if spec.engine.name in BATCHED_ENGINES and parallel == 0:
        from repro.sim.batched import DEFAULT_BATCH

        return int(params.get("batch", DEFAULT_BATCH)), backend
    return 0, backend


def _closeness_inputs(spec: ScenarioSpec) -> tuple[float | None, float | None]:
    """``(gamma_star, total_demand)`` for trial summaries, when available."""
    if spec.gamma_star is None:
        return None, None
    return spec.gamma_star, float(spec.initial_demand().total)


def run_scenario(
    spec: ScenarioSpec,
    *,
    rounds: int | None = None,
    trials: int = 1,
    parallel: int = 0,
    batch: int | None = None,
    seed: int | None = None,
    label: str | None = None,
    keep_results: bool = True,
    shared_pi_cache: SharedPiCache | None = None,
    **run_overrides: Any,
) -> SimulationResult | TrialSummary:
    """Run a declarative scenario end to end.

    Parameters
    ----------
    spec:
        The scenario to run.
    rounds:
        Horizon; defaults to ``spec.rounds``.
    trials:
        Number of independent trials.  ``trials=1`` (default) runs once
        and returns the full :class:`SimulationResult`; ``trials > 1``
        returns a :class:`TrialSummary` with per-trial seeds derived
        from the root seed.
    parallel:
        Worker processes for multi-trial runs (0 = in-process).  The
        statistics are bit-identical to the serial path.
    batch:
        Lanes per :class:`~repro.sim.batched.BatchedCountingSimulator`
        chunk for multi-trial runs (counting engines only; bit-identical
        to serial trials).  ``None`` (default) defers to the spec: a
        ``counting_batched`` engine supplies its ``batch``/``backend``
        params, any other engine runs unbatched.  ``0`` forces serial.
    seed:
        Root seed override; defaults to ``spec.seed``.
    label:
        Summary label override; defaults to ``spec.describe()``.
    shared_pi_cache:
        Optional cross-trial join-distribution cache shared by every
        trial (counting engine; see :mod:`repro.sim.pi_cache`).  Purely
        a performance knob — results are bit-identical without it.
    run_overrides:
        Extra ``run()`` kwargs, overriding ``spec.run_params`` (e.g.
        ``burn_in``, ``trace_stride``).
    """
    rounds = check_integer("rounds", spec.rounds if rounds is None else rounds, minimum=1)
    trials = check_integer("trials", trials, minimum=1)
    parallel = check_integer("parallel", parallel, minimum=0)
    run_kwargs = {**spec.run_params, **run_overrides}
    root_seed = spec.seed if seed is None else check_integer("seed", seed, minimum=0)

    if trials == 1:
        if parallel > 0:
            raise ConfigurationError(
                "parallel workers only apply to multi-trial runs; pass trials > 1 "
                f"(got trials=1, parallel={parallel})"
            )
        simulator = spec.build(seed=root_seed, shared_pi_cache=shared_pi_cache)
        return simulator.run(rounds, **run_kwargs)

    gamma_star, total_demand = _closeness_inputs(spec)
    batch, array_backend = _resolve_batch(spec, batch, parallel)
    return run_trials(
        ScenarioFactory(spec, shared_pi_cache),
        rounds,
        trials,
        seed=root_seed,
        label=spec.describe() if label is None else label,
        gamma_star=gamma_star,
        total_demand=total_demand,
        processes=parallel,
        batch=batch,
        array_backend=array_backend,
        keep_results=keep_results,
        **run_kwargs,
    )


def _coordinate_key(parameter: str | Sequence[str], value: Any) -> tuple[Any, Any]:
    """Canonical ``(parameter, value)`` digest-key forms of a coordinate.

    A plain dotted path keeps its scalar form, so single-axis grid
    points digest identically to classic ``sweep_scenario`` points — a
    store populated by one is resumable by the other.  A multi-parameter
    grid coordinate (sequences of paths and values, same length) is
    keyed as parallel lists; a length-1 sequence collapses to the scalar
    form for the same reason.
    """
    if isinstance(parameter, str):
        return parameter, value
    parameters = list(parameter)
    values = list(value)
    if len(parameters) != len(values):
        raise ConfigurationError(
            f"coordinate has {len(parameters)} parameter(s) but {len(values)} value(s)"
        )
    if not parameters:
        raise ConfigurationError("a sweep coordinate needs at least one parameter")
    if len(parameters) == 1:
        return parameters[0], values[0]
    return parameters, values


def sweep_point_digest(
    derived_spec: ScenarioSpec,
    parameter: str | Sequence[str],
    value: Any,
    *,
    rounds: int,
    trials: int,
    run_params: dict[str, Any],
    point_seed: int,
) -> str:
    """Content digest keying one sweep point's persisted record.

    Covers everything that determines the point's summary: the derived
    spec (components, engine, base seed), the swept coordinate, the
    horizon and trial count, the merged run params, and the point's seed
    root.  Two sweep invocations that agree on all of these are
    interchangeable — their records may be shared — and any difference
    produces a different digest, so stale reuse is structurally
    impossible.

    ``parameter`` is a dotted path for classic one-parameter sweeps, or
    a sequence of paths (with ``value`` the matching sequence of values)
    for one point of a multi-parameter grid
    (:class:`repro.sched.GridSpec`); see :func:`_coordinate_key` for the
    compatibility guarantee between the two forms.
    """
    parameter, value = _coordinate_key(parameter, value)
    return digest_hex(
        {
            "format": STORE_FORMAT,
            "kind": "sweep_point",
            "spec": derived_spec.to_dict(),
            "parameter": parameter,
            "value": value,
            "rounds": rounds,
            "trials": trials,
            "run_params": run_params,
            "point_seed": point_seed,
        }
    )


def sweep_point_seed(
    derived_spec: ScenarioSpec,
    parameter: str | Sequence[str],
    value: Any,
    root_seed: int,
) -> int:
    """Insertion-stable seed root: a function of the point, not its index.

    Deliberately excludes ``rounds`` / ``trials`` / run params: like the
    index derivation, the seed root identifies the *point*, and the
    trial runner spawns per-trial seeds beneath it — so extending a
    sweep's horizon or trial count later keeps the point on the same
    stream family.  Accepts the same scalar-or-sequence coordinate forms
    as :func:`sweep_point_digest`.
    """
    parameter, value = _coordinate_key(parameter, value)
    seed_key = {
        "format": STORE_FORMAT,
        "kind": "sweep_point_seed",
        "spec": derived_spec.to_dict(),
        "parameter": parameter,
        "value": value,
    }
    return seed_from_digest(digest_hex(seed_key), root_seed)


def _summary_record(
    summary: TrialSummary, parameter: str, value: Any
) -> tuple[dict[str, np.ndarray], dict[str, Any]]:
    """``(arrays, meta)`` persisting a point summary (results excluded)."""
    arrays: dict[str, np.ndarray] = {
        "average_regrets": summary.average_regrets,
        "max_abs_deficits": summary.max_abs_deficits,
        "switches_per_round": summary.switches_per_round,
    }
    if summary.closenesses is not None:
        arrays["closenesses"] = summary.closenesses
    # Deliberately no wall-clock field (RPR002): record bytes must be a
    # pure function of the point's content so sweep stores byte-compare
    # — the same guarantee sched's point_record already made.
    meta = {
        "kind": "sweep_point",
        "label": summary.label,
        "trials": summary.trials,
        "rounds": summary.rounds,
        "parameter": parameter,
        "value": value,
        "repro_version": __version__,
    }
    return arrays, meta


def _summary_from_record(
    record: Record, parameter: str, value: Any
) -> TrialSummary | None:
    """Rebuild the point summary, or ``None`` when the record is foreign."""
    meta, arrays = record.meta, record.arrays
    if meta.get("kind") != "sweep_point":
        return None
    try:
        return TrialSummary(
            label=str(meta["label"]),
            trials=int(meta["trials"]),
            rounds=int(meta["rounds"]),
            average_regrets=arrays["average_regrets"],
            closenesses=arrays.get("closenesses"),
            max_abs_deficits=arrays["max_abs_deficits"],
            switches_per_round=arrays["switches_per_round"],
            results=[],
            params={parameter: value},
        )
    except (KeyError, TypeError, ValueError):
        return None


def sweep_scenario(
    spec: ScenarioSpec,
    parameter: str,
    values: Iterable[Any],
    *,
    rounds: int | None = None,
    trials: int = 5,
    parallel: int = 0,
    batch: int | None = None,
    keep_results: bool = False,
    shared_pi_cache: SharedPiCache | bool | None = None,
    store: "ResultStore | str | None" = None,
    resume: bool = True,
    seed_mode: str = "digest",
    max_new_points: int | None = None,
    **run_overrides: Any,
) -> SweepResult:
    """Sweep one spec parameter (dotted path) over ``values``.

    Each value produces a derived spec via ``spec.with_param(parameter,
    value)`` and runs ``trials`` trials; closeness uses the *base*
    spec's ``gamma_star`` and total demand (sweeping the demand size
    itself therefore reports closeness against the base demand).

    ``shared_pi_cache=True`` creates one cross-trial join-distribution
    cache spanning *all* sweep points (sweep points with repeating
    deficit signatures amortize the kernel across trials); passing a
    :class:`~repro.sim.pi_cache.SharedPiCache` instance instead lets the
    caller inspect its hit statistics afterwards.  Either way the sweep
    statistics are bit-identical to an uncached sweep.  When a ``store``
    is also given, ``shared_pi_cache=True`` roots the cache's persistent
    disk tier inside the store, so join-kernel work is amortized across
    sweeps and sessions, not just trials.

    Store-backed sweeps (``store=`` a :class:`~repro.store.ResultStore`
    or directory path) persist every completed point as an atomic record
    keyed by :func:`sweep_point_digest`.  With ``resume=True`` (default)
    committed points are served from disk — bit-identical to a fresh
    run — and only missing points execute; ``resume=False`` recomputes
    (and overwrites) every record.  ``SweepResult.resumed`` reports, per
    point, which path it took.  ``max_new_points`` bounds how many
    points may be *computed* before the sweep raises
    :class:`~repro.exceptions.SweepInterrupted` (the deterministic
    stand-in for a killed process in the resume tests and CI smoke).

    ``seed_mode`` selects the point seed-root derivation (see
    :data:`SEED_MODES`).  The default ``"digest"`` derivation is
    insertion-stable: adding a value to a sweep leaves every other
    point's seeds — and records — untouched.  The legacy ``"index"``
    derivation (``SeedSequence(seed).spawn(len(values))``) reshuffles
    seeds when a value is inserted, so it refuses to run store-backed.

    ``batch`` behaves as in :func:`run_scenario`: ``None`` (default)
    defers to the spec — a ``counting_batched`` engine runs each point's
    trials through the batched executor — and ``0`` forces serial
    trials.  Either way the sweep statistics are bit-identical.

    Only component params (``"component.param"`` paths) are sweepable:
    the trial runner controls the horizon and seed derivation itself,
    so a derived spec's ``rounds`` / ``seed`` fields would be silently
    ignored — pass ``rounds=`` here (or run separate sweeps) instead.
    """
    if "." not in parameter:
        raise ConfigurationError(
            f"sweep_scenario sweeps component params like 'algorithm.gamma'; "
            f"top-level field {parameter!r} is fixed per sweep (the trial runner "
            "supplies rounds and per-trial seeds) — pass it as a keyword instead"
        )
    if seed_mode not in SEED_MODES:
        raise ConfigurationError(f"seed_mode must be one of {SEED_MODES}, got {seed_mode!r}")
    values = list(values)
    if not values:
        raise ConfigurationError("sweep needs at least one value")
    rounds = check_integer("rounds", spec.rounds if rounds is None else rounds, minimum=1)
    trials = check_integer("trials", trials, minimum=1)
    if max_new_points is not None:
        max_new_points = check_integer("max_new_points", max_new_points, minimum=0)

    if store is not None:
        store = ResultStore.coerce(store)
        if keep_results:
            raise ConfigurationError(
                "store-backed sweeps persist summary records only, so resumed "
                "points can never return full SimulationResults — pass "
                "keep_results=False (or drop the store)"
            )
        if seed_mode == "index":
            raise ConfigurationError(
                "seed_mode='index' derives point seeds from sweep positions, so "
                "records of one sweep would silently mismatch a reordered or "
                "extended re-invocation; store-backed sweeps require "
                "seed_mode='digest'"
            )

    if shared_pi_cache is True:
        disk = store.pi_cache() if store is not None else None
        shared_pi_cache = SharedPiCache(disk=disk)
    elif shared_pi_cache is False:
        shared_pi_cache = None

    run_kwargs = {**spec.run_params, **run_overrides}
    gamma_star, total_demand = _closeness_inputs(spec)
    # Resolved once from the base spec: engine params are performance
    # knobs (results are bit-identical at any batch), so even a sweep
    # over an engine param keeps the base spec's batching.
    batch, array_backend = _resolve_batch(spec, batch, parallel)
    derived = [spec.with_param(parameter, value) for value in values]

    if seed_mode == "index":
        root = np.random.SeedSequence(spec.seed)
        point_seeds = [int(s.generate_state(1)[0]) for s in root.spawn(len(values))]
    else:
        point_seeds = [
            sweep_point_seed(dspec, parameter, value, spec.seed)
            for dspec, value in zip(derived, values)
        ]

    digests: list[str | None] = [None] * len(values)
    if store is not None:
        digests = [
            sweep_point_digest(
                dspec,
                parameter,
                value,
                rounds=rounds,
                trials=trials,
                run_params=run_kwargs,
                point_seed=point_seed,
            )
            for dspec, value, point_seed in zip(derived, values, point_seeds)
        ]

    summaries: list[TrialSummary] = []
    resumed: list[bool] = []
    new_points = 0
    for dspec, value, point_seed, digest in zip(derived, values, point_seeds, digests):
        if store is not None and resume:
            record = store.read_record(digest)
            summary = None if record is None else _summary_from_record(record, parameter, value)
            if summary is not None:
                summaries.append(summary)
                resumed.append(True)
                continue
        if max_new_points is not None and new_points >= max_new_points:
            raise SweepInterrupted(
                f"sweep over {parameter!r} stopped after computing "
                f"{new_points} new point(s) (max_new_points={max_new_points}); "
                f"{len(summaries)} of {len(values)} points are committed — "
                "re-run with resume=True to continue"
            )
        summary = run_trials(
            ScenarioFactory(dspec, shared_pi_cache),
            rounds,
            trials,
            seed=point_seed,
            label=f"{parameter}={value}",
            gamma_star=gamma_star,
            total_demand=total_demand,
            processes=parallel,
            batch=batch,
            array_backend=array_backend,
            keep_results=keep_results,
            params={parameter: value},
            **run_kwargs,
        )
        new_points += 1
        if store is not None:
            arrays, meta = _summary_record(summary, parameter, value)
            store.write_record(digest, arrays, meta)
        summaries.append(summary)
        resumed.append(False)
    return SweepResult(
        parameter=parameter,
        values=values,
        summaries=summaries,
        resumed=resumed if store is not None else None,
    )
