"""One entry point from spec to results: ``run_scenario`` / ``sweep_scenario``.

``run_scenario(spec)`` runs a single simulation and returns a
:class:`~repro.sim.engine.SimulationResult`; ``run_scenario(spec,
trials=...)`` routes through :func:`repro.sim.runner.run_trials` and
returns a :class:`~repro.sim.runner.TrialSummary`.  The trial factory is
:class:`ScenarioFactory` — a picklable wrapper around the spec — so
``parallel=P`` farms trials to ``P`` worker processes for *any*
configuration, with results bit-identical to the serial path (per-trial
seeds are derived from the root seed either way).

``sweep_scenario`` generalizes the one-parameter sweep: each swept value
is applied to the spec via :meth:`ScenarioSpec.with_param` dotted paths
(``"algorithm.gamma"``, ``"feedback.lam"``, ...), so the entire sweep
stays declarative and process-parallel.

Both entry points accept a ``shared_pi_cache``: one
:class:`~repro.sim.pi_cache.SharedPiCache` threaded through every trial
(and, for sweeps, every sweep point) so counting-engine trials whose
deficit signatures repeat reuse each other's join-kernel work.  The
cache is runtime context, never spec data; results are bit-identical
with or without it, serial or process-parallel (workers amortize
per-process — see :mod:`repro.sim.pi_cache`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.exceptions import ConfigurationError
from repro.sim.engine import SimulationResult
from repro.sim.pi_cache import SharedPiCache
from repro.sim.runner import SweepResult, TrialSummary, run_trials, sweep
from repro.util.validation import check_integer

from repro.scenario.spec import ScenarioSpec

__all__ = ["ScenarioFactory", "run_scenario", "sweep_scenario"]


@dataclass(frozen=True)
class ScenarioFactory:
    """Picklable ``seed -> simulator`` factory for multi-trial runs.

    Specs are plain data, so instances survive ``pickle`` and can be
    shipped to ``ProcessPoolExecutor`` workers — unlike closures over
    live simulator components.  An attached shared pi cache survives the
    trip too: it pickles as an identity token that resolves to one live
    cache per worker process.
    """

    spec: ScenarioSpec
    shared_pi_cache: SharedPiCache | None = None

    def __call__(self, seed: int) -> Any:
        return self.spec.build(seed=seed, shared_pi_cache=self.shared_pi_cache)


def _closeness_inputs(spec: ScenarioSpec) -> tuple[float | None, float | None]:
    """``(gamma_star, total_demand)`` for trial summaries, when available."""
    if spec.gamma_star is None:
        return None, None
    return spec.gamma_star, float(spec.initial_demand().total)


def run_scenario(
    spec: ScenarioSpec,
    *,
    rounds: int | None = None,
    trials: int = 1,
    parallel: int = 0,
    seed: int | None = None,
    label: str | None = None,
    keep_results: bool = True,
    shared_pi_cache: SharedPiCache | None = None,
    **run_overrides: Any,
) -> SimulationResult | TrialSummary:
    """Run a declarative scenario end to end.

    Parameters
    ----------
    spec:
        The scenario to run.
    rounds:
        Horizon; defaults to ``spec.rounds``.
    trials:
        Number of independent trials.  ``trials=1`` (default) runs once
        and returns the full :class:`SimulationResult`; ``trials > 1``
        returns a :class:`TrialSummary` with per-trial seeds derived
        from the root seed.
    parallel:
        Worker processes for multi-trial runs (0 = in-process).  The
        statistics are bit-identical to the serial path.
    seed:
        Root seed override; defaults to ``spec.seed``.
    label:
        Summary label override; defaults to ``spec.describe()``.
    shared_pi_cache:
        Optional cross-trial join-distribution cache shared by every
        trial (counting engine; see :mod:`repro.sim.pi_cache`).  Purely
        a performance knob — results are bit-identical without it.
    run_overrides:
        Extra ``run()`` kwargs, overriding ``spec.run_params`` (e.g.
        ``burn_in``, ``trace_stride``).
    """
    rounds = check_integer("rounds", spec.rounds if rounds is None else rounds, minimum=1)
    trials = check_integer("trials", trials, minimum=1)
    parallel = check_integer("parallel", parallel, minimum=0)
    run_kwargs = {**spec.run_params, **run_overrides}
    root_seed = spec.seed if seed is None else check_integer("seed", seed, minimum=0)

    if trials == 1:
        if parallel > 0:
            raise ConfigurationError(
                "parallel workers only apply to multi-trial runs; pass trials > 1 "
                f"(got trials=1, parallel={parallel})"
            )
        simulator = spec.build(seed=root_seed, shared_pi_cache=shared_pi_cache)
        return simulator.run(rounds, **run_kwargs)

    gamma_star, total_demand = _closeness_inputs(spec)
    return run_trials(
        ScenarioFactory(spec, shared_pi_cache),
        rounds,
        trials,
        seed=root_seed,
        label=spec.describe() if label is None else label,
        gamma_star=gamma_star,
        total_demand=total_demand,
        processes=parallel,
        keep_results=keep_results,
        **run_kwargs,
    )


def sweep_scenario(
    spec: ScenarioSpec,
    parameter: str,
    values: Iterable[Any],
    *,
    rounds: int | None = None,
    trials: int = 5,
    parallel: int = 0,
    keep_results: bool = False,
    shared_pi_cache: SharedPiCache | bool | None = None,
    **run_overrides: Any,
) -> SweepResult:
    """Sweep one spec parameter (dotted path) over ``values``.

    Each value produces a derived spec via ``spec.with_param(parameter,
    value)`` and runs ``trials`` trials; closeness uses the *base*
    spec's ``gamma_star`` and total demand (sweeping the demand size
    itself therefore reports closeness against the base demand).

    ``shared_pi_cache=True`` creates one cross-trial join-distribution
    cache spanning *all* sweep points (sweep points with repeating
    deficit signatures amortize the kernel across trials); passing a
    :class:`~repro.sim.pi_cache.SharedPiCache` instance instead lets the
    caller inspect its hit statistics afterwards.  Either way the sweep
    statistics are bit-identical to an uncached sweep.

    Only component params (``"component.param"`` paths) are sweepable:
    the trial runner controls the horizon and seed derivation itself,
    so a derived spec's ``rounds`` / ``seed`` fields would be silently
    ignored — pass ``rounds=`` here (or run separate sweeps) instead.
    """
    if "." not in parameter:
        raise ConfigurationError(
            f"sweep_scenario sweeps component params like 'algorithm.gamma'; "
            f"top-level field {parameter!r} is fixed per sweep (the trial runner "
            "supplies rounds and per-trial seeds) — pass it as a keyword instead"
        )
    rounds = check_integer("rounds", spec.rounds if rounds is None else rounds, minimum=1)
    if shared_pi_cache is True:
        shared_pi_cache = SharedPiCache()
    elif shared_pi_cache is False:
        shared_pi_cache = None
    gamma_star, total_demand = _closeness_inputs(spec)
    return sweep(
        parameter,
        values,
        lambda value: ScenarioFactory(spec.with_param(parameter, value), shared_pi_cache),
        rounds,
        trials,
        seed=spec.seed,
        gamma_star_for=None if gamma_star is None else (lambda value: gamma_star),
        total_demand=total_demand,
        processes=parallel,
        keep_results=keep_results,
        **{**spec.run_params, **run_overrides},
    )
