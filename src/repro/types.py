"""Shared types for the task-allocation reproduction.

The paper models a colony of ``n`` ants and ``k`` tasks.  An ant's *action*
in a round is either ``IDLE`` or a task index in ``0..k-1``; feedback is a
binary signal per (ant, task).  These encodings are shared by every engine
and algorithm in the library, so they live in one tiny module with no
internal dependencies.
"""

from __future__ import annotations

import enum
from typing import TypeAlias

import numpy as np
import numpy.typing as npt

#: Sentinel action value meaning "the ant is idle" in assignment arrays.
#: Task indices are ``0..k-1``; idle is encoded as ``-1`` so that the whole
#: assignment vector fits in one signed integer array (HPC guide: struct of
#: arrays, no per-ant Python objects).
IDLE: int = -1


class Feedback(enum.IntEnum):
    """Binary environment feedback for a single (ant, task) pair.

    The paper's signals are ``lack`` (too few workers) and ``overload``
    (too many).  We encode ``LACK = 1`` so that a boolean "lack matrix"
    can be used interchangeably with arrays of :class:`Feedback`.
    """

    OVERLOAD = 0
    LACK = 1


class NoiseKind(enum.StrEnum):
    """Which of the paper's two noise models a feedback model implements."""

    SIGMOID = "sigmoid"
    ADVERSARIAL = "adversarial"
    EXACT = "exact"


#: A vector of per-task values indexed by task id (float64, shape ``(k,)``).
TaskVector: TypeAlias = npt.NDArray[np.float64]

#: Integer per-task vector, e.g. loads or demands (shape ``(k,)``).
IntTaskVector: TypeAlias = npt.NDArray[np.int64]

#: Assignment of every ant: ``-1`` (IDLE) or a task index (shape ``(n,)``).
AssignmentVector: TypeAlias = npt.NDArray[np.int64]

#: Boolean matrix of per-(ant, task) feedback, True == LACK (shape ``(n, k)``).
LackMatrix: TypeAlias = npt.NDArray[np.bool_]


def loads_from_assignment(assignment: AssignmentVector, k: int) -> IntTaskVector:
    """Compute per-task loads ``W(j)`` from an assignment vector.

    Parameters
    ----------
    assignment:
        Array of shape ``(n,)`` with values in ``{-1, 0, .., k-1}``.
    k:
        Number of tasks.

    Returns
    -------
    Array of shape ``(k,)`` where entry ``j`` counts ants assigned to task
    ``j``.  Idle ants are not counted.
    """
    working = assignment[assignment >= 0]
    return np.bincount(working, minlength=k).astype(np.int64)


def idle_count(assignment: AssignmentVector) -> int:
    """Number of idle ants in an assignment vector."""
    return int(np.count_nonzero(assignment == IDLE))


def assignment_from_loads(loads: npt.ArrayLike, n: int) -> AssignmentVector:
    """Materialize an assignment vector realizing the given per-task loads.

    The first ``W(0)`` ants go to task 0, the next ``W(1)`` to task 1, and
    so on; the remainder are idle.  (Ants are exchangeable, so any
    assignment with these loads induces the same process law.)  Used to
    start simulations from a prescribed load vector, e.g. inside
    Algorithm Ant's stable zone.
    """
    loads = np.asarray(loads, dtype=np.int64)
    if loads.ndim != 1 or np.any(loads < 0):
        raise ValueError("loads must be a 1-d vector of non-negative counts")
    total = int(loads.sum())
    if total > n:
        raise ValueError(f"loads sum to {total} > n={n}")
    out = np.full(n, IDLE, dtype=np.int64)
    pos = 0
    for j, w in enumerate(loads):
        out[pos : pos + int(w)] = j
        pos += int(w)
    return out
