"""Simulation engines and instrumentation.

* :class:`~repro.sim.engine.Simulator` — agent-level synchronous engine:
  exact implementation of the model for any algorithm / noise model.
* :class:`~repro.sim.counting.CountingSimulator` — task-level engine for
  Algorithm Ant and the trivial algorithm under i.i.d. noise: O(k) work
  per round via binomial/multinomial draws, exact in distribution.
* :class:`~repro.sim.batched.BatchedCountingSimulator` — B counting
  trials advanced as one (B, k) array program, bit-identical per lane to
  the serial engine.
* :class:`~repro.sim.sequential.SequentialSimulator` — the Appendix D.1
  one-ant-per-round schedule.
* :mod:`~repro.sim.metrics` — regret / closeness / deficit traces.
* :mod:`~repro.sim.runner` — multi-trial orchestration and sweeps.
"""

from repro.sim.metrics import (
    RegretTracker,
    RunMetrics,
    average_regret,
    closeness,
    regret_from_loads,
    split_regret,
)
from repro.sim.trace import Trace
from repro.sim.engine import Simulator, SimulationResult
from repro.sim.counting import CountingSimulator, JoinDistributionCache
from repro.sim.batched import BatchedCountingSimulator, BatchedRegretTracker, DEFAULT_BATCH
from repro.sim.pi_cache import SharedPiCache
from repro.sim.sequential import SequentialSimulator
from repro.sim.runner import TrialRunner, TrialSummary, SweepResult, run_trials, sweep

__all__ = [
    "RegretTracker",
    "RunMetrics",
    "average_regret",
    "closeness",
    "regret_from_loads",
    "split_regret",
    "Trace",
    "Simulator",
    "SimulationResult",
    "CountingSimulator",
    "JoinDistributionCache",
    "BatchedCountingSimulator",
    "BatchedRegretTracker",
    "DEFAULT_BATCH",
    "SharedPiCache",
    "SequentialSimulator",
    "TrialRunner",
    "TrialSummary",
    "SweepResult",
    "run_trials",
    "sweep",
]
