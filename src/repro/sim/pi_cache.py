"""Cross-trial join-distribution cache for the counting engine.

Sweeps re-derive identical join distributions: every trial of a sweep
point starts from the same loads, and with integer-valued feedback the
same deficit signatures recur across trials and even across sweep
points.  A :class:`SharedPiCache` is one content-addressed store that
many :class:`~repro.sim.counting.CountingSimulator` instances read
through, so the deconvolution/quadrature kernel runs once per *distinct*
``(back end, signature)`` pair per process instead of once per trial.

Correctness is structural, exactly as for the per-simulator cache: the
key embeds the mark-probability vector ``u`` byte-for-byte plus the
*resolved* kernel back end (``dp``/``fft``/``quadrature``), so a hit can
only ever return the very array the same computation would produce —
shared-cache runs are bit-identical to per-trial-cache runs.  Stored
arrays are marked read-only so no simulator can corrupt another's view.

Process-pool safety: instances pickle as a lightweight *token*, not as
their contents.  Unpickling resolves the token against a per-process
registry, creating one empty cache per worker process on first use and
returning the **same** object for every later trial shipped to that
worker — so ``ProcessPoolExecutor`` workers amortize the kernel across
all trials they execute, while the parent process keeps its own live
instance (unpickling there resolves back to the original object).  The
caches never synchronize across processes; they don't need to, because
a miss just recomputes the identical distribution.

A third tier extends the reuse across processes *and sessions*: pass
``disk=`` (a :class:`~repro.store.pi_disk.DiskPiCache` or a directory
path) and every memory miss consults the persistent cache before
running the kernel, every kernel result is published to it, and the
disk root travels through pickling — so pool workers share one
machine-level cache and the second sweep on a machine pays the kernel
for none of the signatures the first one saw.  Disk entries are
memory-mapped read-only, and concurrent writers are safe (atomic
write-then-rename; racing writers of one key produce byte-identical
files).  Lookup traffic is split into :attr:`hits` (memory),
:attr:`disk_hits`, and :attr:`misses` (kernel actually required).
"""

from __future__ import annotations

import uuid
import weakref

import numpy as np

from repro.obs import get_registry
from repro.obs import monotonic as obs_monotonic
from repro.store.pi_disk import DiskPiCache
from repro.util.validation import check_integer

__all__ = ["SharedPiCache", "SHARED_PI_CACHE_MAX_ENTRIES"]

#: Default capacity of a shared cache.  Each entry holds one ``(k + 1,)``
#: float64 array; at k = 8192 a full cache is ~270 MB, so bound it well
#: below that for typical sweeps.  Eviction is FIFO, like the
#: per-simulator cache.
SHARED_PI_CACHE_MAX_ENTRIES = 4096

#: token -> live cache, per process.  Weak values: in the cache's *home*
#: process (where it was constructed) the owner holds the reference, and
#: dropping it must actually free the entries.
_PROCESS_REGISTRY: weakref.WeakValueDictionary[str, "SharedPiCache"] = (
    weakref.WeakValueDictionary()
)

#: Strong pins for caches materialized by *unpickling* a token (i.e. in
#: pool worker processes).  Between two trials nothing else in a worker
#: references the cache — the executor drops the factory as soon as a
#: trial returns — so without this pin the weak registry entry would be
#: garbage-collected and every trial would start cold, silently
#: defeating the cross-trial amortization the cache exists for.  Pinned
#: caches live for the process (worker) lifetime, which is the intended
#: scope.
_PROCESS_PINNED: dict[str, "SharedPiCache"] = {}


def _resolve_token(
    token: str, max_entries: int, disk_root: str | None = None
) -> "SharedPiCache":
    """Per-process unpickling hook: one live cache per token per process.

    ``disk_root`` re-attaches the persistent tier in worker processes:
    the in-memory contents stay process-local, but every worker reads
    and writes the same on-disk cache, which is what makes pool workers
    amortize each other's kernel work across process boundaries.
    """
    cache = _PROCESS_REGISTRY.get(token)
    if cache is None:
        cache = SharedPiCache(max_entries=max_entries, disk=disk_root, _token=token)
        _PROCESS_PINNED[token] = cache
    return cache


class SharedPiCache:
    """Read-through, content-addressed join-distribution store.

    Keys are ``(resolved_method, u.tobytes())`` pairs built by
    :meth:`key`; values are read-only ``(k + 1,)`` float64 arrays.  The
    cache is deliberately dumb — no locking (simulators use it from one
    thread per process), FIFO eviction at ``max_entries``, and
    :attr:`hits` / :attr:`disk_hits` / :attr:`misses` counters so sweeps
    can report how much kernel work was amortized across trials (and,
    with a ``disk`` tier, across sweeps and sessions).

    ``disk`` attaches the persistent tier: a
    :class:`~repro.store.pi_disk.DiskPiCache`, or a directory path to
    root one at.  Disk-served entries are pinned into the memory tier so
    each is read at most once per process.
    """

    def __init__(
        self,
        *,
        max_entries: int = SHARED_PI_CACHE_MAX_ENTRIES,
        disk: "DiskPiCache | str | None" = None,
        _token: str | None = None,
    ) -> None:
        self.max_entries = check_integer("max_entries", max_entries, minimum=1)
        if disk is None or isinstance(disk, DiskPiCache):
            self.disk = disk
        else:
            self.disk = DiskPiCache(disk)
        self._token = uuid.uuid4().hex if _token is None else _token
        self._entries: dict[tuple[str, bytes], np.ndarray] = {}
        self.hits = 0
        self.disk_hits = 0
        self.misses = 0
        # Cumulative process-wide observability (never reset by clear()):
        # one counter per tier outcome, plus disk-read latency.
        registry = get_registry()
        self._obs_tiers = {
            tier: registry.counter("repro_shared_pi_cache_fetch_total", tier=tier)
            for tier in ("memory", "disk", "miss")
        }
        self._obs_disk_seconds = registry.histogram("repro_disk_pi_cache_read_seconds")
        _PROCESS_REGISTRY[self._token] = self

    # ------------------------------------------------------------------
    @staticmethod
    def key(resolved_method: str, u: np.ndarray) -> tuple[str, bytes]:
        """The cache key for mark probabilities ``u`` under a back end.

        The method component must be a *resolved* back end name (use
        :func:`repro.util.mathx.resolve_join_kernel_method`), never
        ``"auto"``: two simulators whose ``"auto"`` resolves differently
        must not share entries, or runs would stop being bit-identical
        to their uncached counterparts.
        """
        return (resolved_method, u.tobytes())

    def fetch(self, key: tuple[str, bytes]) -> tuple[np.ndarray | None, str | None]:
        """``(distribution, tier)`` — tier ``"memory"``, ``"disk"``, or ``None``.

        The tiered lookup: memory first, then the persistent tier (when
        attached).  Disk-served entries are pinned into memory so the
        file is read once per process; a full miss returns
        ``(None, None)`` and counts toward :attr:`misses`.
        """
        pi = self._entries.get(key)
        if pi is not None:
            self.hits += 1
            self._obs_tiers["memory"].inc()
            return pi, "memory"
        if self.disk is not None:
            start = obs_monotonic()
            pi = self.disk.get(key)
            self._obs_disk_seconds.observe(obs_monotonic() - start)
            if pi is not None:
                # Pin an in-memory copy, not the memmap itself: a pinned
                # memmap would hold its file mapping (and descriptor)
                # open for as long as the entry lives, and thousands of
                # distinct signatures would exhaust the process fd limit.
                # The copy costs one (k + 1) float64 array — identical
                # bytes, so bit-identity is untouched.
                pi = np.array(pi, dtype=np.float64)
                pi.setflags(write=False)
                self.disk_hits += 1
                self._obs_tiers["disk"].inc()
                self._pin(key, pi)
                return pi, "disk"
        self.misses += 1
        self._obs_tiers["miss"].inc()
        return None, None

    def get(self, key: tuple[str, bytes]) -> np.ndarray | None:
        """The cached distribution, or ``None`` (counted as hit/miss)."""
        return self.fetch(key)[0]

    def put(self, key: tuple[str, bytes], pi: np.ndarray) -> np.ndarray:
        """Store ``pi`` (read-only copy, all tiers); returns the stored array."""
        stored = np.array(pi, dtype=np.float64, copy=True)
        stored.setflags(write=False)
        self._pin(key, stored)
        if self.disk is not None:
            self.disk.put(key, stored)
        return stored

    def _pin(self, key: tuple[str, bytes], pi: np.ndarray) -> None:
        if len(self._entries) >= self.max_entries:
            self._entries.pop(next(iter(self._entries)))
        self._entries[key] = pi

    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop all in-memory entries and reset the counters.

        The persistent tier is deliberately untouched — it belongs to
        the machine, not this object; remove its directory (or run
        ``store gc``) to reclaim it.
        """
        self._entries.clear()
        self.hits = 0
        self.disk_hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SharedPiCache(entries={len(self._entries)}, hits={self.hits}, "
            f"disk_hits={self.disk_hits}, misses={self.misses}, "
            f"token={self._token[:8]})"
        )

    # ------------------------------------------------------------------
    def __reduce__(self):
        # Pickle as an identity token: contents stay process-local, and
        # every unpickle within one process yields the same live cache.
        # The disk root travels as a plain path so worker processes
        # re-attach the same machine-level persistent tier.
        disk_root = None if self.disk is None else str(self.disk.root)
        return (_resolve_token, (self._token, self.max_entries, disk_root))
