"""Agent-level synchronous simulation engine.

Implements the paper's round structure exactly (Section 2.1): in round
``t`` every ant first receives feedback sampled from the deficits at time
``t-1`` (sub-round 1), then the algorithm updates every ant's action
(sub-round 2), producing the assignment in force during round ``t``.
Regret is charged on the resulting loads each round — including the
mid-phase rounds where Algorithm Ant's temporary pauses thin the load,
exactly as the paper's ``R~`` term accounts.

The engine is generic over :class:`~repro.core.base.ColonyAlgorithm` and
:class:`~repro.env.feedback.FeedbackModel` and supports dynamic demand
schedules (Remark 3.4).  Hot-path work per round is one ``(n, k)``
Bernoulli draw plus O(n) mask updates — no per-ant Python loops.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.base import ColonyAlgorithm, InitialAssignment, initial_assignment_array
from repro.env.demands import DemandSchedule, DemandVector, StaticDemandSchedule
from repro.env.feedback import FeedbackModel
from repro.exceptions import ConfigurationError, SimulationError
from repro.sim.metrics import RegretTracker, RunMetrics, count_switches
from repro.sim.trace import Trace
from repro.types import AssignmentVector, loads_from_assignment
from repro.util.rng import RngFactory
from repro.util.validation import check_integer

__all__ = ["Simulator", "SimulationResult"]


@dataclass
class SimulationResult:
    """Output of one simulation run.

    ``n`` is the colony *capacity* (the size the simulator was built
    for); ``n_current`` is the number of ants alive at the end of the
    run.  They differ only for engines with dynamic populations (the
    counting engine under a :class:`~repro.env.population
    .PopulationSchedule`); fixed-population engines report both equal.
    """

    metrics: RunMetrics
    trace: Trace
    final_assignment: AssignmentVector
    rounds: int
    n: int
    k: int
    n_current: int | None = None

    def __post_init__(self) -> None:
        if self.n_current is None:
            self.n_current = self.n

    @property
    def final_loads(self) -> np.ndarray:
        return self.metrics.final_loads

    @property
    def final_deficits(self) -> np.ndarray:
        return self.metrics.final_deficits


def _coerce_schedule(demand: DemandVector | DemandSchedule) -> DemandSchedule:
    if isinstance(demand, DemandVector):
        return StaticDemandSchedule(demand)
    if isinstance(demand, DemandSchedule):
        return demand
    raise ConfigurationError(
        f"demand must be a DemandVector or DemandSchedule, got {type(demand).__name__}"
    )


class Simulator:
    """Synchronous agent-level simulator.

    Parameters
    ----------
    algorithm:
        The colony algorithm every ant runs.
    demand:
        Static :class:`DemandVector` or dynamic :class:`DemandSchedule`.
    feedback:
        Noise model producing per-(ant, task) signals.
    initial_assignment:
        Named start (:class:`InitialAssignment`), explicit array, or a
        string; defaults to ``all_idle``.
    seed:
        Root seed / generator; independent named streams are derived for
        feedback, algorithm decisions, and initialization so results are
        reproducible bit-for-bit.
    check_invariants_every:
        If positive, verify load-conservation every that many rounds
        (cheap, catches engine bugs in long runs).
    """

    def __init__(
        self,
        algorithm: ColonyAlgorithm,
        demand: DemandVector | DemandSchedule,
        feedback: FeedbackModel,
        *,
        initial_assignment: InitialAssignment | str | np.ndarray = InitialAssignment.ALL_IDLE,
        seed: int | np.random.Generator | None = None,
        check_invariants_every: int = 0,
    ) -> None:
        self.algorithm = algorithm
        self.schedule = _coerce_schedule(demand)
        self.feedback = feedback
        self.n = self.schedule.n
        self.k = self.schedule.k
        self._rng_factory = RngFactory(seed)
        self._init_spec = initial_assignment
        self.check_invariants_every = check_integer(
            "check_invariants_every", check_invariants_every, minimum=0
        )

    def run(
        self,
        rounds: int,
        *,
        tracker: RegretTracker | None = None,
        trace_stride: int = 0,
        tail_window: int = 0,
        burn_in: int = 0,
    ) -> SimulationResult:
        """Run ``rounds`` rounds and return the collected metrics.

        Parameters
        ----------
        rounds:
            Number of rounds ``t = 1 .. rounds``.
        tracker:
            Custom :class:`RegretTracker`; by default one is created with
            the algorithm's ``gamma`` (when it has one) and ``burn_in``.
        trace_stride:
            If positive, record loads every that many rounds.
        tail_window:
            Keep the last ``tail_window`` rounds densely (for
            oscillation analysis).
        burn_in:
            Rounds excluded from cumulative metrics (ignored when an
            explicit ``tracker`` is supplied).  Must be < ``rounds``.
        """
        rounds = check_integer("rounds", rounds, minimum=1)
        burn_in = check_integer("burn_in", burn_in, minimum=0)
        if burn_in >= rounds:
            raise ConfigurationError(
                f"burn_in={burn_in} must be < rounds={rounds}; no rounds would "
                "contribute to the cumulative metrics"
            )
        if tracker is None:
            gamma = getattr(self.algorithm, "gamma", 1.0 / 16.0)
            tracker = RegretTracker(gamma=float(gamma), burn_in=burn_in)
        trace = Trace(stride=trace_stride or max(rounds, 1), tail_window=tail_window)
        record_trace = trace_stride > 0 or tail_window > 0

        rng_init = self._rng_factory.stream("init")
        rng_feedback = self._rng_factory.stream("feedback")
        rng_alg = self._rng_factory.stream("algorithm")
        self.feedback.reset()

        d0 = self.schedule.demands_at(0)
        assignment = initial_assignment_array(
            self._init_spec, self.n, self.k, rng_init, demands=d0.demands
        )
        state = self.algorithm.create_state(self.n, self.k, assignment)
        prev_assignment = assignment.copy()
        loads = loads_from_assignment(assignment, self.k)

        for t in range(1, rounds + 1):
            d_prev = self.schedule.demands_at(t - 1).demands
            deficits = d_prev - loads
            lack = self.feedback.sample_lack_matrix(
                deficits, self.n, rng_feedback, t=t, demands=d_prev
            )
            assignment = self.algorithm.step(state, t, lack, rng_alg)
            loads = loads_from_assignment(assignment, self.k)
            d_now = self.schedule.demands_at(t).demands
            switches = count_switches(prev_assignment, assignment)
            r = tracker.observe(t, d_now, loads, switches)
            if record_trace:
                trace.record(t, loads, r)
            np.copyto(prev_assignment, assignment)
            if self.check_invariants_every and t % self.check_invariants_every == 0:
                self._check_invariants(assignment, loads)

        return SimulationResult(
            metrics=tracker.finalize(),
            trace=trace,
            final_assignment=assignment.copy(),
            rounds=rounds,
            n=self.n,
            k=self.k,
        )

    # ------------------------------------------------------------------
    def _check_invariants(self, assignment: AssignmentVector, loads: np.ndarray) -> None:
        if assignment.shape != (self.n,):
            raise SimulationError(f"assignment shape drifted to {assignment.shape}")
        if np.any((assignment < -1) | (assignment >= self.k)):
            raise SimulationError("assignment contains out-of-range task ids")
        total = int(loads.sum())
        idle = int(np.count_nonzero(assignment == -1))
        if total + idle != self.n:
            raise SimulationError(
                f"ant conservation violated: {total} working + {idle} idle != n={self.n}"
            )
