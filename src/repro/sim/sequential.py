"""Sequential scheduler (Appendix D.1).

One uniformly random ant acts per round, using feedback of the previous
round's loads.  Under this schedule even the memoryless trivial algorithm
converges: once a task is overloaded by ``~gamma* d``, every subsequent
ant sees the overload w.h.p. and refrains from joining, so the regret
settles at ``Theta(gamma* sum_j d(j))`` — matching the optimal
synchronous regret up to constants (experiment E10).

The scheduler accepts any algorithm exposing ``step_single(state, ant,
lack_row, rng)`` (currently :class:`~repro.core.trivial.TrivialAlgorithm`).
"""

from __future__ import annotations

import numpy as np

from repro.env.demands import DemandSchedule, DemandVector
from repro.env.feedback import FeedbackModel
from repro.exceptions import ConfigurationError
from repro.sim.engine import SimulationResult, _coerce_schedule
from repro.sim.metrics import RegretTracker, count_switches
from repro.sim.trace import Trace
from repro.core.base import InitialAssignment, initial_assignment_array
from repro.types import loads_from_assignment
from repro.util.rng import RngFactory
from repro.util.validation import check_integer

__all__ = ["SequentialSimulator"]


class SequentialSimulator:
    """One-ant-per-round scheduler (the Appendix D.1 sequential model)."""

    def __init__(
        self,
        algorithm,
        demand: DemandVector | DemandSchedule,
        feedback: FeedbackModel,
        *,
        initial_assignment: InitialAssignment | str | np.ndarray = InitialAssignment.ALL_IDLE,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if not hasattr(algorithm, "step_single"):
            raise ConfigurationError(
                f"{type(algorithm).__name__} does not implement step_single(); "
                "the sequential model needs a per-ant step"
            )
        self.algorithm = algorithm
        self.schedule = _coerce_schedule(demand)
        self.feedback = feedback
        self.n = self.schedule.n
        self.k = self.schedule.k
        self._init_spec = initial_assignment
        self._rng_factory = RngFactory(seed)

    def run(
        self,
        rounds: int,
        *,
        tracker: RegretTracker | None = None,
        trace_stride: int = 0,
        tail_window: int = 0,
        burn_in: int = 0,
    ) -> SimulationResult:
        """Run ``rounds`` single-ant rounds; same options as :class:`Simulator`."""
        rounds = check_integer("rounds", rounds, minimum=1)
        burn_in = check_integer("burn_in", burn_in, minimum=0)
        if burn_in >= rounds:
            raise ConfigurationError(
                f"burn_in={burn_in} must be < rounds={rounds}; no rounds would "
                "contribute to the cumulative metrics"
            )
        if tracker is None:
            tracker = RegretTracker(gamma=1.0 / 16.0, burn_in=burn_in)
        trace = Trace(stride=trace_stride or max(rounds, 1), tail_window=tail_window)
        record_trace = trace_stride > 0 or tail_window > 0

        rng_init = self._rng_factory.stream("init")
        rng_feedback = self._rng_factory.stream("feedback")
        rng_alg = self._rng_factory.stream("algorithm")
        rng_sched = self._rng_factory.stream("scheduler")
        self.feedback.reset()

        d0 = self.schedule.demands_at(0)
        assignment = initial_assignment_array(
            self._init_spec, self.n, self.k, rng_init, demands=d0.demands
        )
        state = self.algorithm.create_state(self.n, self.k, assignment)
        loads = loads_from_assignment(state.assignment, self.k)
        prev = state.assignment.copy()

        for t in range(1, rounds + 1):
            d_prev = self.schedule.demands_at(t - 1).demands
            deficits = d_prev - loads
            ant = int(rng_sched.integers(self.n))
            lack_row = self.feedback.sample_lack_matrix(
                deficits, 1, rng_feedback, t=t, demands=d_prev
            )[0]
            self.algorithm.step_single(state, ant, lack_row, rng_alg)
            loads = loads_from_assignment(state.assignment, self.k)
            d_now = self.schedule.demands_at(t).demands
            switches = count_switches(prev, state.assignment)
            r = tracker.observe(t, d_now, loads, switches)
            if record_trace:
                trace.record(t, loads, r)
            np.copyto(prev, state.assignment)

        return SimulationResult(
            metrics=tracker.finalize(),
            trace=trace,
            final_assignment=state.assignment.copy(),
            rounds=rounds,
            n=self.n,
            k=self.k,
        )
