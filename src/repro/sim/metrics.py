"""Regret metric and allocation-quality measures (Section 2.3).

The paper's single quality measure is the **regret**

    ``r(t) = sum_j |d(j) - W_t(j)| = sum_j |Delta_t(j)|``,

its cumulative version ``R(t) = sum_{tau <= t} r(tau)``, and the derived
*closeness*: an allocation is ``c``-close when
``lim R(t)/t <= c * gamma* * sum_j d(j) + O(1)``.

:class:`RegretTracker` accumulates these online in O(k) per round; the
split into overload / near / lack components mirrors the proof's
``R+ / R~ / R-`` decomposition (Section 4) and is what the E3 benchmark
prints.  Switch counting supports the Theorem 3.6 switch-cost comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import AnalysisError
from repro.types import AssignmentVector

__all__ = [
    "regret_from_loads",
    "split_regret",
    "average_regret",
    "closeness",
    "RegretTracker",
    "RunMetrics",
]


def regret_from_loads(demands: np.ndarray, loads: np.ndarray) -> float:
    """Instantaneous regret ``r = sum_j |d(j) - W(j)|``.

    Accepts matching 1-d arrays; also works on 2-d ``(T, k)`` load
    histories against a single demand vector, returning shape ``(T,)``.
    """
    demands = np.asarray(demands, dtype=np.float64)
    loads = np.asarray(loads, dtype=np.float64)
    diff = np.abs(demands - loads)
    return float(diff.sum()) if diff.ndim == 1 else diff.sum(axis=-1)


def split_regret(
    demands: np.ndarray,
    loads: np.ndarray,
    gamma: float,
    c_plus: float,
    c_minus: float,
) -> tuple[float, float, float]:
    """Decompose one round's regret into ``(r+, r~, r-)`` (Section 4).

    * ``r+`` counts load beyond ``(1 + c+ gamma) d`` (significant overload),
    * ``r-`` counts load short of ``(1 - c- gamma) d`` (significant lack),
    * ``r~ = r - r+ - r-`` is the near-demand remainder the algorithm pays
      for its controlled oscillations.
    """
    demands = np.asarray(demands, dtype=np.float64)
    loads = np.asarray(loads, dtype=np.float64)
    r = np.abs(demands - loads).sum()
    over = np.maximum(loads - (1.0 + c_plus * gamma) * demands, 0.0).sum()
    lackv = np.maximum((1.0 - c_minus * gamma) * demands - loads, 0.0).sum()
    return float(over), float(r - over - lackv), float(lackv)


def average_regret(cumulative_regret: float, t: int) -> float:
    """``R(t) / t`` — the steady-state regret rate estimator."""
    if t <= 0:
        raise AnalysisError(f"t must be positive, got {t}")
    return cumulative_regret / t


def closeness(avg_regret: float, gamma_star: float, total_demand: float) -> float:
    """Closeness ``c`` such that the allocation is c-close.

    ``c = (R(t)/t) / (gamma* * sum_j d(j))`` — Section 2.3.  Lower is
    better; Algorithm Ant guarantees ``5 gamma/gamma*``, the adversarial
    lower bound is 1.
    """
    denom = gamma_star * total_demand
    if denom <= 0:
        raise AnalysisError("gamma_star and total demand must be positive")
    return avg_regret / denom


@dataclass
class RunMetrics:
    """Immutable summary emitted by :class:`RegretTracker.finalize`."""

    rounds: int
    cumulative_regret: float
    regret_plus: float
    regret_near: float
    regret_minus: float
    total_switches: int
    max_abs_deficit: float
    final_loads: np.ndarray
    final_deficits: np.ndarray
    rounds_outside_band: int
    band_coefficient: float

    @property
    def average_regret(self) -> float:
        """``R(t)/t``."""
        return average_regret(self.cumulative_regret, self.rounds)

    def closeness(self, gamma_star: float, total_demand: float) -> float:
        """Closeness of this run given the environment's critical value."""
        return closeness(self.average_regret, gamma_star, total_demand)

    @property
    def switches_per_round(self) -> float:
        """Average number of ants changing action per round."""
        return self.total_switches / max(self.rounds, 1)


@dataclass
class RegretTracker:
    """Online accumulator of regret and allocation statistics.

    Parameters
    ----------
    gamma, c_plus, c_minus:
        Thresholds of the ``R+ / R~ / R-`` split (pass the algorithm's
        values; defaults match Algorithm Ant with the paper constants).
    band_coefficient:
        Per-task deficit band for Theorem 3.1's "all but O(k log n /
        gamma) rounds" claim: a round is *outside the band* when some
        task has ``|Delta(j)| > band_coefficient * gamma * d(j) + 3``.
    burn_in:
        Rounds excluded from the cumulative totals (but still counted for
        ``rounds``-keeping); used to estimate steady-state rates without
        the initial-convergence cost.
    """

    gamma: float = 0.0625
    c_plus: float = 3.0
    c_minus: float = 4.0
    band_coefficient: float = 5.0
    burn_in: int = 0

    _rounds: int = field(default=0, init=False)
    _cum: float = field(default=0.0, init=False)
    _cum_plus: float = field(default=0.0, init=False)
    _cum_near: float = field(default=0.0, init=False)
    _cum_minus: float = field(default=0.0, init=False)
    _switches: int = field(default=0, init=False)
    _max_abs_deficit: float = field(default=0.0, init=False)
    _outside_band: int = field(default=0, init=False)
    _last_loads: np.ndarray | None = field(default=None, init=False)
    _last_deficits: np.ndarray | None = field(default=None, init=False)

    def observe(
        self,
        t: int,
        demands: np.ndarray,
        loads: np.ndarray,
        switches: int = 0,
    ) -> float:
        """Record round ``t``; returns the instantaneous regret ``r(t)``."""
        demands = np.asarray(demands, dtype=np.float64)
        loads = np.asarray(loads, dtype=np.float64)
        deficits = demands - loads
        r = float(np.abs(deficits).sum())
        self._rounds = t
        self._last_loads = loads.copy()
        self._last_deficits = deficits.copy()
        if t > self.burn_in:
            self._cum += r
            p, near, m = split_regret(demands, loads, self.gamma, self.c_plus, self.c_minus)
            self._cum_plus += p
            self._cum_near += near
            self._cum_minus += m
            self._switches += int(switches)
            self._max_abs_deficit = max(self._max_abs_deficit, float(np.abs(deficits).max()))
            band = self.band_coefficient * self.gamma * demands + 3.0
            if np.any(np.abs(deficits) > band):
                self._outside_band += 1
        return r

    def finalize(self) -> RunMetrics:
        """Summarize everything observed so far.

        Raises
        ------
        AnalysisError
            If nothing was observed, or the burn-in swallowed every
            observed round — the all-zero metrics that used to come back
            (``average_regret == 0.0`` over one phantom round) silently
            read as a perfect allocation.
        """
        if self._rounds == 0 or self._last_loads is None:
            raise AnalysisError("no rounds observed")
        effective = self._rounds - self.burn_in
        if effective <= 0:
            raise AnalysisError(
                f"burn_in={self.burn_in} excludes all {self._rounds} observed "
                "rounds; cumulative metrics would be vacuously zero"
            )
        return RunMetrics(
            rounds=effective,
            cumulative_regret=self._cum,
            regret_plus=self._cum_plus,
            regret_near=self._cum_near,
            regret_minus=self._cum_minus,
            total_switches=self._switches,
            max_abs_deficit=self._max_abs_deficit,
            final_loads=self._last_loads,
            final_deficits=self._last_deficits,
            rounds_outside_band=self._outside_band,
            band_coefficient=self.band_coefficient,
        )


def count_switches(previous: AssignmentVector, current: AssignmentVector) -> int:
    """Number of ants whose action changed between two rounds.

    Includes moves to/from ``IDLE`` — the paper's switch cost counts any
    change of activity.
    """
    return int(np.count_nonzero(previous != current))


__all__.append("count_switches")
