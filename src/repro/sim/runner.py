"""Multi-trial orchestration: repeated runs, parameter sweeps, summaries.

The theorems hold "w.h.p." / in expectation, so every experiment runs
multiple independent trials and reports mean +/- spread.  Trials get
independent child seeds from one root ``SeedSequence`` (reproducible and
order-independent), and can optionally be farmed out to worker processes
(factories must then be picklable — module-level functions or partials).
"""

from __future__ import annotations

import pickle

from collections.abc import Callable, Iterable, Mapping
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.exceptions import ConfigurationError
from repro.sim.engine import SimulationResult
from repro.util.validation import check_integer

__all__ = ["TrialRunner", "TrialSummary", "SweepResult", "run_trials", "sweep"]

#: A factory mapping a trial seed to an object with ``.run(rounds, **kw)``.
SimulatorFactory = Callable[[int], Any]


@dataclass
class TrialSummary:
    """Aggregate statistics over independent trials of one configuration."""

    label: str
    trials: int
    rounds: int
    average_regrets: np.ndarray
    closenesses: np.ndarray | None
    max_abs_deficits: np.ndarray
    switches_per_round: np.ndarray
    results: list[SimulationResult] = field(repr=False, default_factory=list)
    params: dict[str, Any] = field(default_factory=dict)

    @property
    def mean_average_regret(self) -> float:
        return float(self.average_regrets.mean())

    @property
    def std_average_regret(self) -> float:
        return float(self.average_regrets.std(ddof=1)) if self.trials > 1 else 0.0

    @property
    def mean_closeness(self) -> float:
        if self.closenesses is None:
            raise ConfigurationError("closeness unavailable (no gamma_star provided)")
        return float(self.closenesses.mean())

    @property
    def mean_max_abs_deficit(self) -> float:
        return float(self.max_abs_deficits.mean())

    @property
    def mean_switches_per_round(self) -> float:
        return float(self.switches_per_round.mean())

    def describe(self) -> str:
        """One-line human-readable summary (used by the experiment CLI)."""
        parts = [
            f"{self.label}: R(t)/t = {self.mean_average_regret:.2f}"
            f" +/- {self.std_average_regret:.2f}"
        ]
        if self.closenesses is not None:
            parts.append(f"closeness = {self.mean_closeness:.3f}")
        parts.append(f"max|deficit| = {self.mean_max_abs_deficit:.1f}")
        parts.append(f"switches/round = {self.mean_switches_per_round:.2f}")
        return "  ".join(parts)


def _run_one(
    factory: SimulatorFactory, seed: int, rounds: int, run_kwargs: dict
) -> SimulationResult:
    sim = factory(seed)
    return sim.run(rounds, **run_kwargs)


def _probe_picklable(factory: SimulatorFactory, processes: int) -> None:
    """Fail fast, with a usable message, when a factory cannot cross a
    process boundary.

    Without the probe the pickling error surfaces from deep inside
    ``ProcessPoolExecutor`` (often as a worker ``BrokenProcessPool``)
    with no hint about which argument was at fault.
    """
    try:
        pickle.dumps(factory)
    except Exception as exc:
        raise ConfigurationError(
            f"processes={processes} requires a picklable simulator factory, but "
            f"pickling this one failed: {exc!r}. Lambdas and closures over live "
            "components cannot be shipped to worker processes — use a "
            "module-level function, a functools.partial of one, or a spec-based "
            "factory (repro.scenario.ScenarioFactory pickles by construction)"
        ) from exc


def _run_batched(
    factory: SimulatorFactory,
    trial_seeds: list[int],
    rounds: int,
    run_kwargs: dict,
    batch: int,
    array_backend: str,
) -> list[SimulationResult]:
    """Run trials through the batched engine, ``batch`` lanes at a time.

    Chunking preserves trial order, and each trial's result is
    bit-identical to the serial path because every lane keeps its own
    seed-derived generator (see :mod:`repro.sim.batched`).
    """
    from repro.sim.batched import BatchedCountingSimulator

    results: list[SimulationResult] = []
    for start in range(0, len(trial_seeds), batch):
        lanes = [factory(s) for s in trial_seeds[start : start + batch]]
        engine = BatchedCountingSimulator(lanes, backend=array_backend)
        results.extend(engine.run(rounds, **run_kwargs))
    return results


def run_trials(
    factory: SimulatorFactory,
    rounds: int,
    trials: int,
    *,
    seed: int | None = 0,
    label: str = "run",
    gamma_star: float | None = None,
    total_demand: float | None = None,
    processes: int = 0,
    batch: int = 0,
    array_backend: str = "numpy",
    keep_results: bool = True,
    params: Mapping[str, Any] | None = None,
    **run_kwargs: Any,
) -> TrialSummary:
    """Run ``trials`` independent simulations and summarize.

    Parameters
    ----------
    factory:
        ``factory(trial_seed)`` builds a fresh simulator; must be
        picklable when ``processes > 0``.
    rounds, trials:
        Horizon per trial and number of trials.
    seed:
        Root seed; trial seeds are derived with ``SeedSequence.spawn``.
    gamma_star, total_demand:
        When both given, per-trial closeness is computed.
    processes:
        Worker processes (0 = run in-process, sequentially).
    batch:
        When > 0, advance trials through
        :class:`~repro.sim.batched.BatchedCountingSimulator` in chunks
        of up to ``batch`` lanes (counting-engine factories only;
        results stay bit-identical to ``batch=0``).  Mutually exclusive
        with ``processes`` — pick one parallelism axis.
    array_backend:
        Array namespace for the batched math (see
        :mod:`repro.util.array_api`); only consulted when ``batch > 0``.
    keep_results:
        Keep every :class:`SimulationResult` (set False for big sweeps).
    run_kwargs:
        Forwarded to each simulator's ``.run`` (e.g. ``burn_in``,
        ``trace_stride``).
    """
    trials = check_integer("trials", trials, minimum=1)
    rounds = check_integer("rounds", rounds, minimum=1)
    batch = check_integer("batch", batch, minimum=0)
    if batch > 0 and processes > 0:
        raise ConfigurationError(
            f"batch={batch} and processes={processes} are mutually exclusive: "
            "batched lanes already amortize the per-trial overhead in-process, "
            "and nesting them inside worker processes is not supported — "
            "pass one or the other"
        )
    root = np.random.SeedSequence(seed)
    trial_seeds = [int(s.generate_state(1)[0]) for s in root.spawn(trials)]

    if batch > 0:
        results = _run_batched(
            factory, trial_seeds, rounds, dict(run_kwargs), batch, array_backend
        )
    elif processes > 0:
        _probe_picklable(factory, processes)
        with ProcessPoolExecutor(max_workers=processes) as pool:
            results = list(
                pool.map(
                    _run_one,
                    [factory] * trials,
                    trial_seeds,
                    [rounds] * trials,
                    [dict(run_kwargs)] * trials,
                )
            )
    else:
        results = [_run_one(factory, s, rounds, dict(run_kwargs)) for s in trial_seeds]

    avg = np.array([r.metrics.average_regret for r in results])
    close = None
    if gamma_star is not None and total_demand is not None:
        close = np.array([r.metrics.closeness(gamma_star, total_demand) for r in results])
    return TrialSummary(
        label=label,
        trials=trials,
        rounds=rounds,
        average_regrets=avg,
        closenesses=close,
        max_abs_deficits=np.array([r.metrics.max_abs_deficit for r in results]),
        switches_per_round=np.array([r.metrics.switches_per_round for r in results]),
        results=results if keep_results else [],
        params=dict(params or {}),
    )


@dataclass
class SweepResult:
    """Summaries of a one-dimensional parameter sweep.

    ``resumed`` is populated by store-backed sweeps
    (:func:`repro.scenario.sweep_scenario` with ``store=``): one flag
    per point, ``True`` when the summary was served from a persisted
    record instead of being recomputed.  Plain sweeps leave it ``None``.
    """

    parameter: str
    values: list[Any]
    summaries: list[TrialSummary]
    resumed: list[bool] | None = None

    def series(self, attribute: str = "mean_average_regret") -> np.ndarray:
        """Extract one summary attribute per sweep point as an array."""
        return np.array([getattr(s, attribute) for s in self.summaries], dtype=np.float64)

    def table(self) -> str:
        """Plain-text table of the sweep (one row per value)."""
        lines = [f"{self.parameter:>16}  {'R(t)/t':>12}  {'closeness':>10}  {'max|D|':>8}"]
        for v, s in zip(self.values, self.summaries):
            c = f"{s.mean_closeness:10.3f}" if s.closenesses is not None else " " * 10
            lines.append(
                f"{v!s:>16}  {s.mean_average_regret:12.2f}  {c}  {s.mean_max_abs_deficit:8.1f}"
            )
        return "\n".join(lines)


def sweep(
    parameter: str,
    values: Iterable[Any],
    factory_for: Callable[[Any], SimulatorFactory],
    rounds: int,
    trials: int,
    *,
    seed: int | None = 0,
    gamma_star_for: Callable[[Any], float] | None = None,
    total_demand: float | None = None,
    processes: int = 0,
    keep_results: bool = False,
    **run_kwargs: Any,
) -> SweepResult:
    """Sweep one parameter: for each value, build a factory and run trials.

    ``gamma_star_for(value)`` lets the critical value depend on the swept
    parameter (e.g. when sweeping the sigmoid steepness).
    """
    values = list(values)
    if not values:
        raise ConfigurationError("sweep needs at least one value")
    # One independent root seed per sweep point, spawned from the sweep's
    # root.  The old ``seed + i`` derivation aliased across sweeps: point
    # i of a seed-s sweep reused every trial seed of point i-1 of a
    # seed-(s+1) sweep, correlating runs that must be independent.
    if seed is None:
        point_seeds: list[int | None] = [None] * len(values)
    else:
        root = np.random.SeedSequence(seed)
        point_seeds = [int(s.generate_state(1)[0]) for s in root.spawn(len(values))]
    summaries = []
    for i, v in enumerate(values):
        gs = gamma_star_for(v) if gamma_star_for is not None else None
        summaries.append(
            run_trials(
                factory_for(v),
                rounds,
                trials,
                seed=point_seeds[i],
                label=f"{parameter}={v}",
                gamma_star=gs,
                total_demand=total_demand,
                processes=processes,
                keep_results=keep_results,
                params={parameter: v},
                **run_kwargs,
            )
        )
    return SweepResult(parameter=parameter, values=values, summaries=summaries)


class TrialRunner:
    """Object-style wrapper around :func:`run_trials` for repeated use.

    Stores the factory and default options once; each :meth:`run` call
    may override the horizon / trial count.
    """

    def __init__(
        self,
        factory: SimulatorFactory,
        *,
        rounds: int,
        trials: int = 5,
        seed: int | None = 0,
        gamma_star: float | None = None,
        total_demand: float | None = None,
        **run_kwargs: Any,
    ) -> None:
        self.factory = factory
        self.rounds = check_integer("rounds", rounds, minimum=1)
        self.trials = check_integer("trials", trials, minimum=1)
        self.seed = seed
        self.gamma_star = gamma_star
        self.total_demand = total_demand
        self.run_kwargs = run_kwargs

    def run(
        self, *, rounds: int | None = None, trials: int | None = None, label: str = "run"
    ) -> TrialSummary:
        return run_trials(
            self.factory,
            rounds if rounds is not None else self.rounds,
            trials if trials is not None else self.trials,
            seed=self.seed,
            label=label,
            gamma_star=self.gamma_star,
            total_demand=self.total_demand,
            **self.run_kwargs,
        )
