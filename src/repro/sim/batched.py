"""Batched counting engine: B independent trials per vectorized step.

:class:`BatchedCountingSimulator` advances a *batch* of
:class:`~repro.sim.counting.CountingSimulator` lanes — independent
trials of one configuration, differing only in their seeds — through
the same round loop as the serial engine, but with the per-round math
expressed as stacked ``(B, k)`` array programs: one demand lookup, one
feedback evaluation, one regret/metrics update per round for the whole
batch instead of one per trial.  At small and medium ``k`` the serial
engine is dominated by exactly this Python-level per-(trial, round)
overhead (BENCH_counting.json: ~5500 rounds/s at k = 4 *and* k = 256,
while a single kernel call costs microseconds), so batching trials is
the lever the ROADMAP's "100 points x 10 trials in the time of one
point" target needs.

**Bit-identity, not just law-equivalence.**  Every lane draws from its
own :class:`numpy.random.Generator`, derived exactly as the serial
engine derives it (``RngFactory(seed).stream("counting")`` — the
``SeedSequence`` entropy/spawn-key scheme of :mod:`repro.util.rng`), and
the batched loop issues the identical sequence of
``binomial``/``multinomial``/``multivariate_hypergeometric`` calls with
elementwise-identical arguments.  Trial i of a batched run is therefore
**bit-identical** to trial i of the serial engine — same loads every
round, same traces, same metrics — which is a strictly stronger claim
than distributional bisimulation and is pinned per-algorithm by
``tests/sim/test_batched.py``.  The vectorization win comes from the
shared per-round math plus **cross-lane signature deduplication**: the
batch owns one :class:`~repro.sim.counting.JoinDistributionCache`, so a
mark-probability signature appearing in several lanes the same round
(or any round) pays for at most one kernel call, with the usual
shared/disk tiers behind it.  Deduplicated kernel calls stay scalar per
*distinct* signature on purpose: stacking signatures with different
active sets would change the quadrature's summation order and break
bit-identity with the serial kernel.

Array operations route through the :mod:`repro.util.array_api` shim
(``xp = get_namespace(backend)``): ``backend="numpy"`` (default, and
the only backend the bit-identity claim covers) makes ``xp`` numpy
itself at zero overhead, while a registered CuPy/Torch backend is a
config switch.  Random draws always stay on numpy generators (see the
shim's module docstring).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from scipy import stats

from repro.core.ant import AntAlgorithm
from repro.core.precise_sigmoid import PreciseSigmoidAlgorithm
from repro.env.feedback import SigmoidFeedback
from repro.env.population import apply_population_change
from repro.exceptions import AnalysisError, ConfigurationError, SimulationError
from repro.obs import event as obs_event
from repro.obs import span as obs_span
from repro.sim.counting import CountingSimulator, JoinDistributionCache
from repro.sim.engine import SimulationResult
from repro.sim.metrics import RunMetrics
from repro.sim.trace import Trace
from repro.types import IDLE
from repro.util.array_api import get_namespace
from repro.util.rng_block import BinomialBlockSampler
from repro.util.validation import check_integer

__all__ = ["BatchedCountingSimulator", "BatchedRegretTracker", "DEFAULT_BATCH"]

#: Default lane count for ``batch=True``-style opt-ins (engine specs,
#: CLI).  Chosen to match the benchmark/acceptance operating point; any
#: B >= 1 is valid and bit-identical.
DEFAULT_BATCH = 16


def _as_numpy(x):
    """Materialize ``x`` as a numpy array at the RNG-draw boundary.

    Draws always run on numpy generators (bit-identity), so non-numpy
    backends pay one host transfer here: CuPy via ``.get()``, anything
    else through ``np.asarray`` (Torch CPU tensors support the buffer
    protocol).  Numpy arrays pass through untouched.
    """
    if isinstance(x, np.ndarray):
        return x
    get = getattr(x, "get", None)
    if callable(get) and hasattr(x, "ndim"):
        return np.asarray(get())
    return np.asarray(x)


class BatchedRegretTracker:
    """Vectorized :class:`~repro.sim.metrics.RegretTracker` over B lanes.

    Replicates the serial tracker's arithmetic exactly — same expression
    shapes, same accumulation order per lane — on stacked ``(B, k)``
    arrays, so :meth:`finalize` emits per-lane
    :class:`~repro.sim.metrics.RunMetrics` bit-identical (on the numpy
    backend) to B serial trackers fed the same rounds.
    """

    def __init__(
        self,
        batch: int,
        *,
        gamma: float = 0.0625,
        c_plus: float = 3.0,
        c_minus: float = 4.0,
        band_coefficient: float = 5.0,
        burn_in: int = 0,
        xp=np,
    ) -> None:
        self.batch = int(batch)
        self.gamma = float(gamma)
        self.c_plus = float(c_plus)
        self.c_minus = float(c_minus)
        self.band_coefficient = float(band_coefficient)
        self.burn_in = int(burn_in)
        self._xp = xp
        self._rounds = 0
        self._cum = xp.zeros(self.batch, dtype=np.float64)
        self._cum_plus = xp.zeros(self.batch, dtype=np.float64)
        self._cum_near = xp.zeros(self.batch, dtype=np.float64)
        self._cum_minus = xp.zeros(self.batch, dtype=np.float64)
        self._switches = xp.zeros(self.batch, dtype=np.int64)
        self._max_abs_deficit = xp.zeros(self.batch, dtype=np.float64)
        self._outside_band = xp.zeros(self.batch, dtype=np.int64)
        self._last_loads = None
        self._last_deficits = None
        self._demands_src = None
        self._demands_f64 = None
        self._over_threshold = None
        self._lack_threshold = None
        self._band = None

    def observe(self, t: int, demands, loads, switches):
        """Record round ``t`` for all lanes; returns per-lane ``r(t)``.

        ``demands`` is the shared ``(k,)`` vector, ``loads`` the stacked
        ``(B, k)`` integer loads, ``switches`` the per-lane ``(B,)``
        switch counts.
        """
        xp = self._xp
        # The demand vector is usually the same object round after round
        # (static and piecewise-constant schedules); cache its float64
        # image and the derived overload/lack thresholds and band.
        if demands is not self._demands_src:
            self._demands_src = demands
            d = xp.asarray(demands, dtype=np.float64)
            self._demands_f64 = d
            self._over_threshold = (1.0 + self.c_plus * self.gamma) * d
            self._lack_threshold = (1.0 - self.c_minus * self.gamma) * d
            self._band = self.band_coefficient * self.gamma * d + 3.0
        demands = self._demands_f64
        loads = xp.asarray(loads, dtype=np.float64)
        deficits = demands - loads
        abs_deficits = xp.abs(deficits)
        r = abs_deficits.sum(axis=-1)
        self._rounds = t
        # ``loads`` and ``deficits`` are freshly allocated above — safe to
        # hold without the serial tracker's defensive copies.
        self._last_loads = loads
        self._last_deficits = deficits
        if t > self.burn_in:
            self._cum += r
            # split_regret, vectorized with the serial expression shapes.
            over = xp.maximum(loads - self._over_threshold, 0.0).sum(axis=-1)
            lackv = xp.maximum(self._lack_threshold - loads, 0.0).sum(axis=-1)
            self._cum_plus += over
            self._cum_near += r - over - lackv
            self._cum_minus += lackv
            self._switches += switches
            self._max_abs_deficit = xp.maximum(
                self._max_abs_deficit, abs_deficits.max(axis=-1)
            )
            self._outside_band += (abs_deficits > self._band).any(axis=-1)
        return r

    def finalize(self) -> list[RunMetrics]:
        """Per-lane :class:`RunMetrics`, in lane order."""
        if self._rounds == 0 or self._last_loads is None:
            raise AnalysisError("no rounds observed")
        effective = self._rounds - self.burn_in
        if effective <= 0:
            raise AnalysisError(
                f"burn_in={self.burn_in} excludes all {self._rounds} observed "
                "rounds; cumulative metrics would be vacuously zero"
            )
        last_loads = _as_numpy(self._last_loads)
        last_deficits = _as_numpy(self._last_deficits)
        return [
            RunMetrics(
                rounds=effective,
                cumulative_regret=float(self._cum[b]),
                regret_plus=float(self._cum_plus[b]),
                regret_near=float(self._cum_near[b]),
                regret_minus=float(self._cum_minus[b]),
                total_switches=int(self._switches[b]),
                max_abs_deficit=float(self._max_abs_deficit[b]),
                final_loads=last_loads[b].copy(),
                final_deficits=last_deficits[b].copy(),
                rounds_outside_band=int(self._outside_band[b]),
                band_coefficient=self.band_coefficient,
            )
            for b in range(self.batch)
        ]


def _lane_signature(sim: CountingSimulator) -> tuple:
    """The configuration facets the batched loop relies on being equal."""
    alg = sim.algorithm
    return (
        type(alg).__name__,
        getattr(alg, "gamma", None),
        getattr(alg, "m", None),
        getattr(alg, "pause_probability", None),
        getattr(alg, "leave_probability", None),
        getattr(alg, "join_probability", None),
        sim.n,
        sim.k,
        sim.join_strategy,
        sim.join_kernel_method,
        sim.pi_cache_enabled,
        type(sim.feedback).__name__,
        type(sim.schedule).__name__,
        type(sim.population).__name__,
        sim.initial_loads.tobytes(),
    )


class BatchedCountingSimulator:
    """Advance B :class:`CountingSimulator` lanes as one array program.

    Parameters
    ----------
    simulators:
        The lanes: independent trials of *one* configuration (same
        algorithm/demand/feedback/population/engine options), differing
        only in their seeds — exactly what a ``factory(seed)`` loop
        produces.  Configuration facets the batched loop depends on are
        validated; build lanes from a single factory.
    backend:
        Array-namespace name for the stacked math (see
        :mod:`repro.util.array_api`).  ``"numpy"`` is the default and
        the only backend covered by the bit-identity guarantee; any
        numpy-API-compatible namespace (e.g. CuPy) is a config switch.

    :meth:`run` returns one :class:`~repro.sim.engine.SimulationResult`
    per lane, in order, each bit-identical to what ``lane.run(...)``
    would have returned on a fresh lane.  Draws consume the lanes' own
    ``"counting"`` RNG streams, so a lane should not be reused serially
    after running it batched (build fresh simulators instead — they are
    cheap relative to any run).
    """

    def __init__(
        self,
        simulators: Sequence[CountingSimulator],
        *,
        backend: str = "numpy",
    ) -> None:
        lanes = list(simulators)
        if not lanes:
            raise ConfigurationError("BatchedCountingSimulator needs at least one lane")
        for sim in lanes:
            if not isinstance(sim, CountingSimulator):
                raise ConfigurationError(
                    "every batched lane must be a CountingSimulator, got "
                    f"{type(sim).__name__} — batch applies to the counting engine "
                    "(engine spec 'counting' / 'counting_batched') only"
                )
        signature = _lane_signature(lanes[0])
        for sim in lanes[1:]:
            if _lane_signature(sim) != signature:
                raise ConfigurationError(
                    "batched lanes must share one configuration (same algorithm, "
                    "demand, feedback, population and engine options, differing "
                    "only in seed); build them from a single factory"
                )
        self.lanes = lanes
        self.batch = len(lanes)
        self._xp = get_namespace(backend)
        self.backend = backend
        lane0 = lanes[0]
        self.algorithm = lane0.algorithm
        self.schedule = lane0.schedule
        self.feedback = lane0.feedback
        self.population = lane0.population
        self.n = lane0.n
        self.k = lane0.k
        self.join_strategy = lane0.join_strategy
        self._n_current = int(self.population.population_at(0))
        # One cache for the whole batch: cross-lane signature dedup is
        # the batched engine's kernel-side win.  Same tiers and key
        # scheme as the serial engine (see JoinDistributionCache).
        self._join_cache = JoinDistributionCache(
            enabled=lane0.pi_cache_enabled,
            shared=lane0.shared_pi_cache,
            kernel_method=lane0.join_kernel_method,
            resolved_method=lane0._resolved_kernel_method,
        )
        # Exact vectorized replay of numpy's binomial inversion sampler;
        # removes the ~10-15 us *fixed* overhead of each per-lane
        # Generator.binomial broadcast call (see repro.util.rng_block).
        self._binom_block = BinomialBlockSampler()
        # Scalar-lam sigmoid feedback is a pure value map, and stacked
        # integer-load deficits take a few dozen distinct values; its
        # lack probabilities can be evaluated once per distinct value
        # and scattered back (numpy backend only — on other backends the
        # deficits are device arrays).
        self._dedup_feedback = (
            self._xp is np
            and isinstance(self.feedback, SigmoidFeedback)
            and isinstance(self.feedback.lam, float)
        )

    # ------------------------------------------------------------------
    @property
    def pi_cache_local_hits(self) -> int:
        return self._join_cache.local_hits

    @property
    def pi_cache_shared_hits(self) -> int:
        return self._join_cache.shared_hits

    @property
    def pi_cache_disk_hits(self) -> int:
        return self._join_cache.disk_hits

    @property
    def pi_cache_misses(self) -> int:
        return self._join_cache.misses

    @property
    def pi_cache_hits(self) -> int:
        return self._join_cache.hits

    # ------------------------------------------------------------------
    def run(
        self,
        rounds: int,
        *,
        trace_stride: int = 0,
        tail_window: int = 0,
        burn_in: int = 0,
    ) -> list[SimulationResult]:
        """Run all lanes for ``rounds`` rounds; one result per lane.

        Accepts the serial engine's run options except ``tracker`` (per
        lane custom trackers cannot be vectorized; run serially for
        that).  Cache statistics reset at each call, exactly like the
        serial engine's.
        """
        rounds = check_integer("rounds", rounds, minimum=1)
        burn_in = check_integer("burn_in", burn_in, minimum=0)
        if burn_in >= rounds:
            raise ConfigurationError(
                f"burn_in={burn_in} must be < rounds={rounds}; no rounds would "
                "contribute to the cumulative metrics"
            )
        gamma = getattr(self.algorithm, "gamma", 1.0 / 16.0)
        tracker = BatchedRegretTracker(
            self.batch, gamma=float(gamma), burn_in=burn_in, xp=self._xp
        )
        traces = [
            Trace(stride=trace_stride or max(rounds, 1), tail_window=tail_window)
            for _ in self.lanes
        ]
        record_trace = trace_stride > 0 or tail_window > 0
        rngs = [lane._rng_factory.stream("counting") for lane in self.lanes]
        self.feedback.reset()
        self._n_current = int(self.population.population_at(0))
        self._join_cache.reset_stats()

        if isinstance(self.algorithm, AntAlgorithm):
            loads_iter = self._run_ant(rounds, rngs)
        elif isinstance(self.algorithm, PreciseSigmoidAlgorithm):
            loads_iter = self._run_precise_sigmoid(rounds, rngs)
        else:
            loads_iter = self._run_trivial(rounds, rngs)

        W = self._stack_initial_loads()
        with obs_span(
            "batched_run",
            engine="batched",
            algorithm=type(self.algorithm).__name__,
            k=self.k,
            rounds=rounds,
            batch=self.batch,
        ):
            for t, W, switches in loads_iter:
                d_now = self.schedule.demands_at(t).demands
                r = tracker.observe(t, d_now, W, switches)
                if record_trace:
                    for b, trace in enumerate(traces):
                        trace.record(t, W[b], float(r[b]))
        obs_event("pi_cache_stats", engine="batched", **self._join_cache.stats())

        metrics = tracker.finalize()
        return [
            SimulationResult(
                metrics=metrics[b],
                trace=traces[b],
                final_assignment=self._loads_to_assignment(np.asarray(W[b])),
                rounds=rounds,
                n=self.n,
                k=self.k,
                n_current=self._n_current,
            )
            for b in range(self.batch)
        ]

    # ------------------------------------------------------------------
    def _stack_initial_loads(self) -> np.ndarray:
        return np.stack(
            [lane.initial_loads.astype(np.int64).copy() for lane in self.lanes]
        )

    def _lack_probabilities(self, deficits):
        """Feedback probabilities for the stacked deficit matrix.

        For scalar-lam sigmoid feedback the map is elementwise in the
        deficit *value*, so evaluate the few dozen distinct values once
        and gather — the gather preserves bit patterns, so this matches
        the full-matrix evaluation exactly.
        """
        if self._dedup_feedback:
            deficits = np.asarray(deficits)
            values, inverse = np.unique(deficits, return_inverse=True)
            probs = np.asarray(self.feedback.lack_probabilities(values))
            return probs[inverse].reshape(deficits.shape)
        return self.feedback.lack_probabilities(self._xp.asarray(deficits))

    def _binomial_lanes(
        self, rngs: list[np.random.Generator], counts: np.ndarray, p
    ) -> np.ndarray:
        """Per-lane ``rng.binomial(counts[b], p[b])`` — one generator per
        lane so each lane's stream consumption matches the serial engine
        call for call (``p`` may be scalar, broadcast to all lanes)."""
        if hasattr(p, "ndim"):
            p = _as_numpy(p)
            if p.ndim == 0:
                p = float(p)
        drawn = self._binom_block.draw(rngs, counts, p)
        if drawn is not None:
            return drawn
        # Outside the replay's profitable regime (large n*p, many
        # distinct p, or BTPE territory): per-lane numpy calls — slower,
        # bit-identical by construction.
        out = np.empty_like(counts)
        if isinstance(p, np.ndarray) and p.ndim > 1:
            for b, rng in enumerate(rngs):
                out[b] = rng.binomial(counts[b], p[b])
        else:
            for b, rng in enumerate(rngs):
                out[b] = rng.binomial(counts[b], p)
        return out

    def _sample_joins_batched(
        self,
        idle: np.ndarray,
        underload_probs: np.ndarray,
        rngs: list[np.random.Generator],
    ) -> np.ndarray:
        """Joint join counts for every lane's idle pool.

        Mirrors the serial ``_sample_joins`` per lane (including its
        no-draw early exit for an empty pool), but resolves each
        *distinct* mark signature through the batch-level cache exactly
        once per round — lanes whose deficits coincide (common in steady
        state) share one kernel call.
        """
        k = self.k
        joins = np.zeros((self.batch, k), dtype=np.int64)
        u = np.clip(_as_numpy(underload_probs), 0.0, 1.0)
        idle_counts = idle.tolist() if isinstance(idle, np.ndarray) else list(idle)
        if self.join_strategy == "per_ant":
            for b, rng in enumerate(rngs):
                n_idle = int(idle_counts[b])
                if n_idle > 0:
                    joins[b] = self.lanes[b]._sample_joins_per_ant(n_idle, u[b], rng)
            return joins
        distribution = self._join_cache.distribution
        if not self._join_cache.enabled:
            # Caching off: still dedup signatures within this call so the
            # batch pays at most one kernel call per distinct signature.
            round_pis: dict[bytes, np.ndarray] = {}

            def distribution(u_row: np.ndarray) -> np.ndarray:  # noqa: F811
                key = u_row.tobytes()
                pi = round_pis.get(key)
                if pi is None:
                    pi = self._join_cache.distribution(u_row)
                    round_pis[key] = pi
                return pi

        for b, rng in enumerate(rngs):
            n_idle = int(idle_counts[b])
            if n_idle <= 0:
                continue
            joins[b] = rng.multinomial(n_idle, distribution(u[b]))[:k]
        return joins

    def _apply_population_batched(
        self, t: int, W: np.ndarray, rngs: list[np.random.Generator]
    ) -> np.ndarray:
        """Resize every lane to the scheduled size at round ``t``.

        The schedule is deterministic and shared, so all lanes resize at
        the same rounds; the hypergeometric death draws stay per-lane on
        the lane's own stream (serial call parity).  Copy-on-change: the
        incoming stack (possibly still referenced by the trackers) is
        never mutated."""
        n_new = int(self.population.population_at(t))
        if n_new != self._n_current:
            W = W.copy()
            for b, rng in enumerate(rngs):
                idle = self._n_current - int(W[b].sum())
                W[b], _ = apply_population_change(W[b], idle, n_new, rng)
            self._n_current = n_new
        return W

    def _check(self, W: np.ndarray) -> None:
        if W.min() < 0 or W.sum(axis=-1).max() > self._n_current:
            raise SimulationError(
                f"load vector out of range: {W} (living ants={self._n_current})"
            )

    def _loads_to_assignment(self, loads: np.ndarray) -> np.ndarray:
        """Same layout as ``CountingSimulator._loads_to_assignment``."""
        out = np.full(self._n_current, IDLE, dtype=np.int64)
        pos = 0
        for j, w in enumerate(loads):
            out[pos : pos + int(w)] = j
            pos += int(w)
        return out

    # ------------------------------------------------------------------
    def _run_ant(self, rounds: int, rngs: list[np.random.Generator]):
        """Yield ``(t, loads, switches)`` stacks for Algorithm Ant phases.

        Every intermediate is freshly allocated (population resizes are
        copy-on-change), so yielded stacks are never mutated later and
        need no defensive copies.
        """
        xp = self._xp
        alg: AntAlgorithm = self.algorithm  # type: ignore[assignment]
        lack_probabilities = self._lack_probabilities
        demands_at = self.schedule.demands_at
        pause_p = alg.pause_probability
        leave_p = alg.leave_probability
        W = self._stack_initial_loads()
        W_phase = W
        p1 = xp.zeros((self.batch, self.k), dtype=np.float64)
        for t in range(1, rounds + 1):
            d_prev = demands_at(t - 1).demands
            if t % 2 == 1:
                W = self._apply_population_batched(t, W, rngs)
                W_phase = W
                p1 = lack_probabilities(d_prev - W)
                paused = self._binomial_lanes(rngs, W_phase, pause_p)
                W = W_phase - paused
                self._check(W)
                yield t, W, paused.sum(axis=-1)
            else:
                p2 = lack_probabilities(d_prev - W)
                q_leave = (1.0 - p1) * (1.0 - p2) * leave_p
                leavers = self._binomial_lanes(rngs, W_phase, q_leave)
                idle = self._n_current - W_phase.sum(axis=-1)
                joins = self._sample_joins_batched(idle, p1 * p2, rngs)
                prev_paused = W_phase - W
                W = W_phase - leavers + joins
                self._check(W)
                yield t, W, (leavers + joins + prev_paused).sum(axis=-1)

    def _run_precise_sigmoid(self, rounds: int, rngs: list[np.random.Generator]):
        """Yield ``(t, loads, switches)`` stacks for Precise Sigmoid phases."""
        alg: PreciseSigmoidAlgorithm = self.algorithm  # type: ignore[assignment]
        lack_probabilities = self._lack_probabilities
        demands_at = self.schedule.demands_at
        m = alg.m
        W = self._stack_initial_loads()
        W_phase = W
        P1 = self._xp.zeros((self.batch, self.k), dtype=np.float64)
        majority = m // 2
        hold = np.zeros(self.batch, dtype=np.int64)
        for t in range(1, rounds + 1):
            r = t % (2 * m)
            d_prev = demands_at(t - 1).demands
            if r == 1:
                W = self._apply_population_batched(t, W, rngs)
                W_phase = W
                p1 = lack_probabilities(d_prev - W_phase)
                P1 = stats.binom.sf(majority, m, p1)
            if r == m:
                paused = self._binomial_lanes(rngs, W_phase, alg.pause_probability)
                W = W_phase - paused
                self._check(W)
                yield t, W, paused.sum(axis=-1)
            elif r == 0:
                p2 = lack_probabilities(d_prev - W)
                P2 = stats.binom.sf(majority, m, p2)
                q_leave = (1.0 - P1) * (1.0 - P2) * alg.leave_probability
                leavers = self._binomial_lanes(rngs, W_phase, q_leave)
                idle = self._n_current - W_phase.sum(axis=-1)
                joins = self._sample_joins_batched(idle, P1 * P2, rngs)
                resumed = W_phase - W
                W = W_phase - leavers + joins
                self._check(W)
                yield t, W, (leavers + joins + resumed).sum(axis=-1)
            else:
                yield t, W, hold

    def _run_trivial(self, rounds: int, rngs: list[np.random.Generator]):
        """Yield ``(t, loads, switches)`` stacks for the trivial algorithm."""
        alg = self.algorithm
        lack_probabilities = self._lack_probabilities
        demands_at = self.schedule.demands_at
        leave_p = alg.leave_probability
        join_p = alg.join_probability
        W = self._stack_initial_loads()
        for t in range(1, rounds + 1):
            W = self._apply_population_batched(t, W, rngs)
            d_prev = demands_at(t - 1).demands
            p = lack_probabilities(d_prev - W)
            leavers = self._binomial_lanes(rngs, W, (1.0 - p) * leave_p)
            idle = self._n_current - W.sum(axis=-1)
            if join_p >= 1.0:
                attempters = idle
            else:
                attempters = np.array(
                    [
                        int(rng.binomial(n_idle, join_p))
                        for n_idle, rng in zip(idle.tolist(), rngs)
                    ],
                    dtype=np.int64,
                )
            joins = self._sample_joins_batched(attempters, p, rngs)
            W = W - leavers + joins
            self._check(W)
            yield t, W, (leavers + joins).sum(axis=-1)
