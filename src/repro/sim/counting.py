"""Task-level counting engine: O(k) work per round, exact in distribution.

For Algorithm Ant and the trivial algorithm under noise that is i.i.d.
across ants, the colony's per-round transition depends on the assignment
only through the load vector ``W`` — individual ants on the same task are
exchangeable.  The engine therefore simulates loads directly:

* temporary pauses: ``Binomial(W_j, c_s * gamma)`` per task;
* permanent leaves: each phase-start worker of task ``j`` leaves iff both
  its samples read OVERLOAD *and* its ``gamma/c_d`` coin lands, i.e.
  ``Binomial(W_j, (1-p1_j)(1-p2_j) * gamma/c_d)``;
* joins: an idle ant marks task ``j`` underloaded w.p. ``u_j = p1_j p2_j``
  independently across tasks and joins uniformly among its marked tasks —
  the exact marginal action distribution ``pi[j] = u_j E[1/(1+B_j)]``
  (``B_j`` the Poisson-binomial count of *other* marked tasks) is
  computed by the exact join kernel
  (:func:`repro.util.mathx.exact_join_probabilities`: O(k^2) DP below
  :data:`~repro.util.mathx.FFT_K_THRESHOLD` tasks, FFT Poisson-binomial
  PMF up to :data:`~repro.util.mathx.QUADRATURE_K_THRESHOLD`, and the
  loop-free Gauss-Legendre quadrature beyond) and the joint join counts
  drawn as one ``Multinomial(idle, pi)``.  A content-addressed cache
  keyed on the mark-probability vector lets rounds whose
  deficit/feedback signature repeats skip the kernel entirely, and an
  optional :class:`~repro.sim.pi_cache.SharedPiCache` extends that reuse
  across the trials of a sweep.  This keeps the engine genuinely
  polynomial in ``k`` — many-task scenarios (k = 64..16384) run exactly;
  the old ``O(2^k k)`` subset enumerator survives only as the test
  oracle, and per-idle-ant sampling (``join_strategy="per_ant"``) only
  as a distributional cross-check.

This is the guides' "algorithmic optimization first": identical law to
the agent engine (property-tested in
``tests/sim/test_engine_equivalence.py``) at a per-round cost independent
of ``n``.  It makes the ``t ~ n^4``-scale claims of Theorem 3.1
empirically checkable on a laptop.
"""

from __future__ import annotations

import numpy as np

from scipy import stats

from repro.core.ant import AntAlgorithm
from repro.core.precise_sigmoid import PreciseSigmoidAlgorithm
from repro.core.trivial import TrivialAlgorithm
from repro.env.demands import DemandSchedule, DemandVector
from repro.env.feedback import FeedbackModel
from repro.env.population import PopulationSchedule, StaticPopulation, apply_population_change
from repro.exceptions import ConfigurationError, SimulationError
from repro.obs import complete_span, get_registry
from repro.obs import event as obs_event
from repro.obs import monotonic as obs_monotonic
from repro.obs import span as obs_span
from repro.sim.engine import SimulationResult, _coerce_schedule
from repro.sim.metrics import RegretTracker
from repro.sim.pi_cache import SharedPiCache
from repro.sim.trace import Trace
from repro.types import IDLE
from repro.util.mathx import exact_join_probabilities, resolve_join_kernel_method
from repro.util.rng import RngFactory
from repro.util.validation import check_integer

__all__ = [
    "CountingSimulator",
    "JoinDistributionCache",
    "JOIN_STRATEGIES",
    "PI_CACHE_MAX_ENTRIES",
]

#: How the joint join counts of the idle pool are drawn each decision
#: round.  Both are exact in distribution: ``"exact"`` (default) is one
#: ``Multinomial(idle, pi)`` over the O(k^2) kernel's action
#: distribution; ``"per_ant"`` simulates every idle ant's marks
#: (O(idle * k)) and exists as a cross-check of the kernel.
JOIN_STRATEGIES = ("exact", "per_ant")

#: Capacity of the per-simulator join-distribution cache.  Entries are
#: content-addressed by the mark-probability vector ``u`` (the
#: deficit/feedback signature), so the cache can never serve a stale
#: distribution — a demand, load, or population change alters ``u`` and
#: therefore the key.  Eviction is FIFO once the capacity is reached;
#: each entry holds one ``(k + 1,)`` float64 array.
PI_CACHE_MAX_ENTRIES = 512


class JoinDistributionCache:
    """Content-addressed join-distribution lookup, all tiers in one place.

    One instance serves one engine run context: the serial
    :class:`CountingSimulator` owns one, and the batched engine
    (:class:`repro.sim.batched.BatchedCountingSimulator`) owns one shared
    by all of its lanes — which is exactly the cross-trial signature
    deduplication the batched engine exists for.  Lookup order is the
    local dict (FIFO-bounded by :data:`PI_CACHE_MAX_ENTRIES`), then the
    optional cross-trial :class:`~repro.sim.pi_cache.SharedPiCache`
    (memory then disk tier), then the kernel itself; fresh results are
    published back to both layers.  Keys are the byte image of the
    mark-probability vector ``u`` (shared-cache keys additionally pin
    the resolved kernel back end), so stale reuse is structurally
    impossible.  Per-tier hit/miss counters live here; engines expose
    them and :meth:`reset_stats` rewinds them at each run.
    """

    def __init__(
        self,
        *,
        enabled: bool,
        shared: SharedPiCache | None,
        kernel_method: str,
        resolved_method: str,
    ) -> None:
        self.enabled = bool(enabled)
        self.shared = shared if self.enabled else None
        self.kernel_method = kernel_method
        self.resolved_method = resolved_method
        self._local: dict[bytes, np.ndarray] = {}
        self.local_hits = 0
        self.shared_hits = 0
        self.disk_hits = 0
        self.misses = 0
        # Cumulative process-wide instruments (never reset): the per-run
        # ints above remain the engines' per-run stats view, the bound
        # registry counters are the observability view.  Bound once here
        # so the lookup hot path pays one attribute read + one add.
        registry = get_registry()
        self._obs_tiers = {
            tier: registry.counter("repro_pi_cache_lookups_total", tier=tier)
            for tier in ("local", "shared", "disk", "miss")
        }
        self._obs_kernel_seconds = registry.histogram(
            "repro_join_kernel_seconds", method=resolved_method
        )

    def reset_stats(self) -> None:
        """Rewind every per-tier counter (cache *contents* stay warm —
        they are content-addressed, so reuse across runs is correct)."""
        self.local_hits = 0
        self.shared_hits = 0
        self.disk_hits = 0
        self.misses = 0

    @property
    def hits(self) -> int:
        """Total hits (local + shared + disk) since the last reset."""
        return self.local_hits + self.shared_hits + self.disk_hits

    def stats(self) -> dict[str, int]:
        """The per-run tier counters as a plain dict (compat/trace view)."""
        return {
            "local_hits": self.local_hits,
            "shared_hits": self.shared_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
        }

    def distribution(self, u: np.ndarray) -> np.ndarray:
        """The exact action distribution for mark probabilities ``u``."""
        if not self.enabled:
            return self._run_kernel(u)
        key = u.tobytes()
        pi = self._local.get(key)
        if pi is not None:
            self.local_hits += 1
            self._obs_tiers["local"].inc()
            return pi
        shared_key = None
        if self.shared is not None:
            shared_key = SharedPiCache.key(self.resolved_method, u)
            pi, tier = self.shared.fetch(shared_key)
            if pi is not None:
                if tier == "disk":
                    self.disk_hits += 1
                    self._obs_tiers["disk"].inc()
                else:
                    self.shared_hits += 1
                    self._obs_tiers["shared"].inc()
                self._store_local(key, pi)
                return pi
        self.misses += 1
        self._obs_tiers["miss"].inc()
        pi = self._run_kernel(u)
        if shared_key is not None:
            pi = self.shared.put(shared_key, pi)
        self._store_local(key, pi)
        return pi

    def _run_kernel(self, u: np.ndarray) -> np.ndarray:
        """Dispatch the exact join kernel, timed through the clock seam.

        The duration feeds the kernel-latency histogram always and the
        trace (as a ``join_kernel`` span) only when a tracer is
        installed — misses are the expensive operation, so tracing at
        miss granularity keeps the null-overhead guarantee.
        """
        start = obs_monotonic()
        pi = exact_join_probabilities(u, method=self.kernel_method)
        dur = obs_monotonic() - start
        self._obs_kernel_seconds.observe(dur)
        complete_span(
            "join_kernel", dur, method=self.resolved_method, k=int(u.shape[0])
        )
        return pi

    def _store_local(self, key: bytes, pi: np.ndarray) -> None:
        if len(self._local) >= PI_CACHE_MAX_ENTRIES:
            self._local.pop(next(iter(self._local)))
        self._local[key] = pi


class CountingSimulator:
    """O(k)-per-round simulator for Algorithm Ant / trivial algorithm.

    Parameters mirror :class:`~repro.sim.engine.Simulator`; the initial
    state is given as per-task loads (plus implied idle ants) rather than
    per-ant assignments.  ``join_strategy`` selects how the idle pool's
    joint join counts are drawn (see :data:`JOIN_STRATEGIES`); both
    choices are exact in distribution.

    ``join_kernel_method`` selects the exact join kernel's back end
    (``"auto"``/``"dp"``/``"fft"``/``"quadrature"``, see
    :func:`repro.util.mathx.exact_join_probabilities`); ``pi_cache``
    enables the content-addressed join-distribution cache, which makes
    rounds whose mark probabilities repeat (unchanged deficits, or
    saturated feedback) skip the kernel entirely.  ``shared_pi_cache``
    additionally plugs the simulator into a cross-trial
    :class:`~repro.sim.pi_cache.SharedPiCache`, so *other* trials'
    kernel work is reused too (keyed by the resolved back end plus the
    signature — see that module for why stale or cross-method reuse is
    structurally impossible).  All three knobs are pure performance
    choices: every combination draws from the identical action
    distribution, and cached runs are bit-identical to uncached ones.
    Cache effectiveness is reported by :attr:`pi_cache_local_hits`
    (this simulator's own cache), :attr:`pi_cache_shared_hits` (served
    by the shared cache's memory tier), :attr:`pi_cache_disk_hits`
    (served by its persistent :class:`~repro.store.pi_disk.DiskPiCache`
    tier — kernel work paid for in an earlier process or session) and
    :attr:`pi_cache_misses` (kernel actually ran); :attr:`pi_cache_hits`
    is their hit total (all reset at each :meth:`run`).
    ``pi_cache=False`` disables every layer.

    Raises
    ------
    ConfigurationError
        If the algorithm is not supported or the feedback is not i.i.d.
        across ants (``feedback.iid_across_ants`` False).
    """

    def __init__(
        self,
        algorithm: AntAlgorithm | TrivialAlgorithm,
        demand: DemandVector | DemandSchedule,
        feedback: FeedbackModel,
        *,
        initial_loads: np.ndarray | None = None,
        seed: int | np.random.Generator | None = None,
        population: PopulationSchedule | None = None,
        join_strategy: str = "exact",
        join_kernel_method: str = "auto",
        pi_cache: bool = True,
        shared_pi_cache: SharedPiCache | None = None,
    ) -> None:
        if join_strategy not in JOIN_STRATEGIES:
            raise ConfigurationError(
                f"join_strategy must be one of {JOIN_STRATEGIES}, got {join_strategy!r}"
            )
        self.join_strategy = join_strategy
        try:
            resolve_join_kernel_method(0, join_kernel_method)
        except ConfigurationError as exc:
            raise ConfigurationError(f"join_kernel_method: {exc}") from exc
        self.join_kernel_method = join_kernel_method
        if shared_pi_cache is not None and not isinstance(shared_pi_cache, SharedPiCache):
            raise ConfigurationError(
                "shared_pi_cache must be a repro.sim.pi_cache.SharedPiCache, "
                f"got {type(shared_pi_cache).__name__}"
            )
        self.pi_cache_enabled = bool(pi_cache)
        self.shared_pi_cache = shared_pi_cache if self.pi_cache_enabled else None
        if not isinstance(algorithm, (AntAlgorithm, TrivialAlgorithm, PreciseSigmoidAlgorithm)):
            raise ConfigurationError(
                "CountingSimulator supports AntAlgorithm, TrivialAlgorithm and "
                f"PreciseSigmoidAlgorithm; got {type(algorithm).__name__} "
                "(use the agent-level Simulator)"
            )
        if not feedback.iid_across_ants:
            raise ConfigurationError(
                "CountingSimulator requires feedback i.i.d. across ants "
                f"({type(feedback).__name__} is not)"
            )
        self.algorithm = algorithm
        self.schedule = _coerce_schedule(demand)
        self.feedback = feedback
        self.n = self.schedule.n
        # Optional dynamic colony size (conclusion: resilience to changes
        # in the number of ants).  Changes are applied at phase starts.
        self.population = population if population is not None else StaticPopulation(self.n)
        if self.population.population_at(0) > self.n:
            raise ConfigurationError(
                "population schedule exceeds the demand vector's colony size n "
                "(n is the capacity; schedule sizes must be <= n)"
            )
        self._n_current = int(self.population.population_at(0))
        self.k = self.schedule.k
        # The concrete back end "auto" resolves to for this k: shared-cache
        # keys embed it so only identically-computed entries are reused.
        self._resolved_kernel_method = resolve_join_kernel_method(
            self.k, self.join_kernel_method
        )
        self._join_cache = JoinDistributionCache(
            enabled=self.pi_cache_enabled,
            shared=self.shared_pi_cache,
            kernel_method=self.join_kernel_method,
            resolved_method=self._resolved_kernel_method,
        )
        if initial_loads is None:
            initial_loads = np.zeros(self.k, dtype=np.int64)
        self.initial_loads = np.asarray(initial_loads, dtype=np.int64).copy()
        if self.initial_loads.shape != (self.k,):
            raise ConfigurationError(f"initial_loads must have shape ({self.k},)")
        if np.any(self.initial_loads < 0) or int(self.initial_loads.sum()) > self.n:
            raise ConfigurationError("initial loads must be non-negative and sum to <= n")
        self._rng_factory = RngFactory(seed)

    # ------------------------------------------------------------------
    # Cache statistics delegate to the JoinDistributionCache so that the
    # serial and batched engines report them identically.
    @property
    def pi_cache_local_hits(self) -> int:
        """Lookups served by this simulator's own cache since the last :meth:`run`."""
        return self._join_cache.local_hits

    @property
    def pi_cache_shared_hits(self) -> int:
        """Lookups served by the shared cache's memory tier since the last :meth:`run`."""
        return self._join_cache.shared_hits

    @property
    def pi_cache_disk_hits(self) -> int:
        """Lookups served by the shared cache's disk tier since the last :meth:`run`."""
        return self._join_cache.disk_hits

    @property
    def pi_cache_misses(self) -> int:
        """Lookups that actually ran the kernel since the last :meth:`run`."""
        return self._join_cache.misses

    @property
    def pi_cache_hits(self) -> int:
        """Total cache hits (local + shared + disk) since the last :meth:`run`."""
        return self._join_cache.hits

    @property
    def _pi_cache(self) -> dict[bytes, np.ndarray]:
        return self._join_cache._local

    # ------------------------------------------------------------------
    def run(
        self,
        rounds: int,
        *,
        tracker: RegretTracker | None = None,
        trace_stride: int = 0,
        tail_window: int = 0,
        burn_in: int = 0,
    ) -> SimulationResult:
        """Run ``rounds`` rounds; see :meth:`Simulator.run` for options."""
        rounds = check_integer("rounds", rounds, minimum=1)
        burn_in = check_integer("burn_in", burn_in, minimum=0)
        if burn_in >= rounds:
            raise ConfigurationError(
                f"burn_in={burn_in} must be < rounds={rounds}; no rounds would "
                "contribute to the cumulative metrics"
            )
        if tracker is None:
            gamma = getattr(self.algorithm, "gamma", 1.0 / 16.0)
            tracker = RegretTracker(gamma=float(gamma), burn_in=burn_in)
        trace = Trace(stride=trace_stride or max(rounds, 1), tail_window=tail_window)
        record_trace = trace_stride > 0 or tail_window > 0
        rng = self._rng_factory.stream("counting")
        self.feedback.reset()
        # Rewind colony-size state so repeated run() calls start identically.
        self._n_current = int(self.population.population_at(0))
        # Rewind every cache counter (local, shared, disk, miss) so the
        # stats of back-to-back run() calls cover exactly one run each;
        # the cache *contents* stay warm (content-addressed, so reuse
        # across runs is correct and bit-identical).
        self._join_cache.reset_stats()

        if isinstance(self.algorithm, AntAlgorithm):
            loads_iter = self._run_ant(rounds, rng)
        elif isinstance(self.algorithm, PreciseSigmoidAlgorithm):
            loads_iter = self._run_precise_sigmoid(rounds, rng)
        else:
            loads_iter = self._run_trivial(rounds, rng)

        loads = self.initial_loads
        with obs_span(
            "counting_run",
            engine="counting",
            algorithm=type(self.algorithm).__name__,
            k=self.k,
            rounds=rounds,
        ):
            for t, loads, switches in loads_iter:
                d_now = self.schedule.demands_at(t).demands
                r = tracker.observe(t, d_now, loads, switches)
                if record_trace:
                    trace.record(t, loads, r)
        obs_event("pi_cache_stats", engine="counting", **self._join_cache.stats())

        return SimulationResult(
            metrics=tracker.finalize(),
            trace=trace,
            final_assignment=self._loads_to_assignment(loads),
            rounds=rounds,
            n=self.n,
            k=self.k,
            n_current=self._n_current,
        )

    # ------------------------------------------------------------------
    def _run_ant(self, rounds: int, rng: np.random.Generator):
        """Yield ``(t, loads, switches)`` for Algorithm Ant phases."""
        alg: AntAlgorithm = self.algorithm  # type: ignore[assignment]
        W = self.initial_loads.astype(np.int64).copy()
        # Phase-start loads and sample-1 probabilities persist across the
        # two rounds of a phase.
        W_phase = W.copy()
        p1 = np.zeros(self.k, dtype=np.float64)
        for t in range(1, rounds + 1):
            d_prev = self.schedule.demands_at(t - 1).demands
            if t % 2 == 1:
                W, _ = self._apply_population(t, W, rng)
                # Round 1: sample-1 marginals, temporary pauses.
                W_phase = W.copy()
                p1 = self.feedback.lack_probabilities(d_prev - W)
                paused = rng.binomial(W_phase, alg.pause_probability)
                W = W_phase - paused
                self._check(W)
                yield t, W.copy(), int(paused.sum())
            else:
                # Round 2: sample-2 marginals (of thinned load), decisions.
                p2 = self.feedback.lack_probabilities(d_prev - W)
                # Permanent leaves among the W_phase phase-start workers.
                q_leave = (1.0 - p1) * (1.0 - p2) * alg.leave_probability
                leavers = rng.binomial(W_phase, q_leave)
                # Joins by idle-at-phase-start ants.
                idle = self._n_current - int(W_phase.sum())
                joins = self._sample_joins(idle, p1 * p2, rng)
                prev_paused = W_phase - W  # ants that resume this round
                W = W_phase - leavers + joins
                self._check(W)
                # Switches: resumed pauses counted when they paused; here
                # count leavers + joiners + resumers returning to work.
                yield t, W.copy(), int(leavers.sum() + joins.sum() + prev_paused.sum())

    def _run_precise_sigmoid(self, rounds: int, rng: np.random.Generator):
        """Yield ``(t, loads, switches)`` for Algorithm Precise Sigmoid.

        Within a phase, the loads are piecewise constant: ``W_phase``
        during the sample-1 window (assignments held), ``W_mid`` after
        the round-``m`` pause, and ``W_next`` after the end-of-phase
        decision.  Each ant's two *medians* are therefore i.i.d.
        Bernoulli with the binomially amplified probabilities
        ``P_med = P[Binom(m, s(lambda*Delta)) > m/2]``, which makes the
        phase-level colony transition identical in law to one Algorithm
        Ant phase at step size ``gamma'`` — exactly the reduction the
        Theorem 3.2 proof performs.
        """
        alg: PreciseSigmoidAlgorithm = self.algorithm  # type: ignore[assignment]
        m = alg.m
        W = self.initial_loads.astype(np.int64).copy()
        W_phase = W.copy()
        P1 = np.zeros(self.k, dtype=np.float64)
        majority = m // 2  # median LACK iff lack-count > m/2, i.e. >= majority+1
        for t in range(1, rounds + 1):
            r = t % (2 * m)
            d_prev = self.schedule.demands_at(t - 1).demands
            if r == 1:
                W, _ = self._apply_population(t, W, rng)
                # Sample-1 window opens: loads frozen at W_phase.
                W_phase = W.copy()
                p1 = self.feedback.lack_probabilities(d_prev - W_phase)
                P1 = stats.binom.sf(majority, m, p1)
            if r == m:
                # End of window 1: temporary pauses thin the load.
                paused = rng.binomial(W_phase, alg.pause_probability)
                W = W_phase - paused
                self._check(W)
                yield t, W.copy(), int(paused.sum())
            elif r == 0:
                # End of phase: medians of window 2, Ant-style decisions.
                p2 = self.feedback.lack_probabilities(d_prev - W)
                P2 = stats.binom.sf(majority, m, p2)
                q_leave = (1.0 - P1) * (1.0 - P2) * alg.leave_probability
                leavers = rng.binomial(W_phase, q_leave)
                idle = self._n_current - int(W_phase.sum())
                joins = self._sample_joins(idle, P1 * P2, rng)
                resumed = W_phase - W
                W = W_phase - leavers + joins
                self._check(W)
                yield t, W.copy(), int(leavers.sum() + joins.sum() + resumed.sum())
            else:
                # Hold rounds: loads unchanged.
                yield t, W.copy(), 0

    def _run_trivial(self, rounds: int, rng: np.random.Generator):
        """Yield ``(t, loads, switches)`` for the trivial algorithm."""
        alg: TrivialAlgorithm = self.algorithm  # type: ignore[assignment]
        W = self.initial_loads.astype(np.int64).copy()
        for t in range(1, rounds + 1):
            W, _ = self._apply_population(t, W, rng)
            d_prev = self.schedule.demands_at(t - 1).demands
            p = self.feedback.lack_probabilities(d_prev - W)
            leavers = rng.binomial(W, (1.0 - p) * alg.leave_probability)
            idle = self._n_current - int(W.sum())
            # Rate-limited variant: only a q-thinned subset of idle ants
            # attempts to join this round.
            attempters = (
                idle
                if alg.join_probability >= 1.0
                else int(rng.binomial(idle, alg.join_probability))
            )
            joins = self._sample_joins(attempters, p, rng)
            W = W - leavers + joins
            self._check(W)
            yield t, W.copy(), int(leavers.sum() + joins.sum())

    # ------------------------------------------------------------------
    def _sample_joins(
        self, idle: int, underload_probs: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Joint join counts for ``idle`` exchangeable idle ants.

        Each ant marks task ``j`` w.p. ``underload_probs[j]`` independently
        and joins a uniform marked task (idle if none).  The default draws
        one multinomial over the exact action distribution (cached by
        signature, DP or FFT PMF per ``join_kernel_method``) for any
        ``k``; ``join_strategy="per_ant"`` samples every ant (identical
        law, kept as a cross-check).
        """
        if idle <= 0:
            return np.zeros(self.k, dtype=np.int64)
        u = np.clip(underload_probs, 0.0, 1.0)
        if self.join_strategy == "per_ant":
            return self._sample_joins_per_ant(idle, u, rng)
        pi = self._join_distribution(u)
        counts = rng.multinomial(idle, pi)
        return counts[: self.k].astype(np.int64)

    def _join_distribution(self, u: np.ndarray) -> np.ndarray:
        """The exact action distribution for mark probabilities ``u``.

        Content-addressed caching: the key is the byte image of ``u``, so
        a round whose deficits (and hence feedback signature) did not
        change reuses the previously computed distribution, while any
        demand, load, or population change produces a new key — stale
        reuse is structurally impossible.  All tier logic lives in
        :class:`JoinDistributionCache` (shared with the batched engine).
        """
        return self._join_cache.distribution(u)

    def _sample_joins_per_ant(
        self, idle: int, u: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Exact O(idle * k) per-ant simulation of the join step."""
        marks = rng.random((idle, self.k)) < u[np.newaxis, :]
        counts = np.zeros(self.k, dtype=np.int64)
        row_counts = marks.sum(axis=1)
        rows = np.nonzero(row_counts > 0)[0]
        if rows.size:
            r = rng.integers(0, row_counts[rows])
            csum = np.cumsum(marks[rows], axis=1)
            chosen = np.argmax(csum > r[:, np.newaxis], axis=1)
            counts += np.bincount(chosen, minlength=self.k).astype(np.int64)
        return counts

    def _apply_population(
        self, t: int, W: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, int]:
        """Resize the colony to the scheduled size at round ``t``.

        Deaths strike uniformly at random (hypergeometric across tasks
        and the idle pool); arrivals join the idle pool.  Returns the
        adjusted loads and the new idle count.
        """
        n_new = int(self.population.population_at(t))
        idle = self._n_current - int(W.sum())
        if n_new != self._n_current:
            W, idle = apply_population_change(W, idle, n_new, rng)
            self._n_current = n_new
        return W, idle

    def _check(self, W: np.ndarray) -> None:
        if np.any(W < 0) or int(W.sum()) > self._n_current:
            raise SimulationError(
                f"load vector out of range: {W} (living ants={self._n_current})"
            )

    def _loads_to_assignment(self, loads: np.ndarray) -> np.ndarray:
        """Materialize *an* assignment consistent with the final loads.

        Sized by the *living* colony (``n_current``), not the capacity
        ``n``: after a population shrink, dead ants must not show up as
        extra IDLE workers.
        """
        out = np.full(self._n_current, IDLE, dtype=np.int64)
        pos = 0
        for j, w in enumerate(loads):
            out[pos : pos + int(w)] = j
            pos += int(w)
        return out
