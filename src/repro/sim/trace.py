"""Load / regret trace recording with optional downsampling.

Long runs (the theorems quantify behaviour over ``t`` up to ``n^4``)
cannot afford to store per-round ``(k,)`` load vectors densely, so
:class:`Trace` records every ``stride``-th round plus an optional sliding
window of the most recent rounds at full resolution (for oscillation
analysis, which needs consecutive samples).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import AnalysisError
from repro.util.validation import check_integer

__all__ = ["Trace"]


@dataclass
class Trace:
    """Records (round, loads, regret) triples.

    Parameters
    ----------
    stride:
        Record every ``stride``-th round (1 = dense).
    tail_window:
        Always keep the last ``tail_window`` rounds densely, regardless of
        stride (0 disables).
    """

    stride: int = 1
    tail_window: int = 0

    _rounds: list[int] = field(default_factory=list, init=False)
    _loads: list[np.ndarray] = field(default_factory=list, init=False)
    _regrets: list[float] = field(default_factory=list, init=False)
    _tail: deque = field(default_factory=deque, init=False)

    def __post_init__(self) -> None:
        check_integer("stride", self.stride, minimum=1)
        check_integer("tail_window", self.tail_window, minimum=0)
        self._tail = deque(maxlen=self.tail_window or None) if self.tail_window else deque(maxlen=1)

    def record(self, t: int, loads: np.ndarray, regret: float) -> None:
        """Record round ``t`` if it falls on the stride (tail always kept)."""
        if t % self.stride == 0:
            self._rounds.append(t)
            self._loads.append(np.asarray(loads, dtype=np.int64).copy())
            self._regrets.append(float(regret))
        if self.tail_window:
            self._tail.append((t, np.asarray(loads, dtype=np.int64).copy(), float(regret)))

    # -- accessors ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rounds)

    @property
    def rounds(self) -> np.ndarray:
        """Recorded round numbers, shape ``(m,)``."""
        return np.asarray(self._rounds, dtype=np.int64)

    @property
    def loads(self) -> np.ndarray:
        """Recorded load vectors, shape ``(m, k)``."""
        if not self._loads:
            return np.zeros((0, 0), dtype=np.int64)
        return np.stack(self._loads)

    @property
    def regrets(self) -> np.ndarray:
        """Recorded instantaneous regrets, shape ``(m,)``."""
        return np.asarray(self._regrets, dtype=np.float64)

    def deficits(self, demands: np.ndarray) -> np.ndarray:
        """Per-round deficits ``d - W`` for the recorded rounds, ``(m, k)``."""
        demands = np.asarray(demands, dtype=np.int64)
        loads = self.loads
        if loads.size and loads.shape[1] != demands.shape[0]:
            raise AnalysisError(
                f"trace has k={loads.shape[1]} tasks, demands have {demands.shape[0]}"
            )
        return demands[np.newaxis, :] - loads

    def tail(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Dense tail window as ``(rounds, loads, regrets)`` arrays."""
        if not self.tail_window or not self._tail:
            raise AnalysisError("no tail window recorded (tail_window=0 or empty trace)")
        ts, loads, rs = zip(*self._tail)
        return (
            np.asarray(ts, dtype=np.int64),
            np.stack(loads),
            np.asarray(rs, dtype=np.float64),
        )
