"""Atomic record IO: one result = one JSON manifest + one npz payload.

A record is two files in one directory, named by the record's digest:

* ``<digest>.npz`` — the numeric payload (float64 arrays round-trip
  bit-exactly, which is what makes resumed sweeps *bit-identical* to
  fresh ones);
* ``<digest>.json`` — the manifest: format version, the full generating
  key (for debuggability and ``store ls``), and bookkeeping metadata.

Write protocol (crash- and concurrency-safe without locks):

1. the payload is written to a same-directory temp file and published
   with :func:`os.replace` (atomic on POSIX);
2. the manifest is written the same way, *last*.

Payload bytes are **deterministic**: ``np.savez`` stamps each zip entry
with the wall clock, so two writes of the same arrays would differ at
the byte level — :func:`deterministic_npz_bytes` writes the same
npz-compatible container with a fixed entry timestamp and sorted entry
order instead.  Determinism is what lets the scheduler's kill-recovery
guarantee be checked *byte-for-byte*: a grid resumed after a worker
died must produce a ``results/`` tree identical to an uninterrupted
run's, not merely an equivalent one.

The manifest is the commit point — readers key on it, so a process
killed mid-write leaves either nothing or an orphaned payload, never a
half-visible record.  Two concurrent writers of the same digest write
byte-identical content (the digest pins the inputs), so last-rename-wins
is harmless.  Reads treat every failure mode — missing manifest,
unparsable JSON, wrong format version, missing or corrupt payload — as
*record absent*, so callers recompute instead of crashing; ``gc`` sweeps
the debris.
"""

from __future__ import annotations

import io
import json
import os
import uuid
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping
from zipfile import BadZipFile

import numpy as np
import numpy.typing as npt

from repro.exceptions import ConfigurationError
from repro.store.digest import STORE_FORMAT

__all__ = [
    "Record",
    "MANIFEST_SUFFIX",
    "PAYLOAD_SUFFIX",
    "TMP_PREFIX",
    "atomic_write_bytes",
    "deterministic_npz_bytes",
    "write_record",
    "read_record",
    "read_manifest",
    "delete_record",
]

MANIFEST_SUFFIX = ".json"
PAYLOAD_SUFFIX = ".npz"

#: Prefix of in-flight temp files (same directory as their target so the
#: final :func:`os.replace` never crosses a filesystem boundary).  ``gc``
#: removes any that outlive their writer.
TMP_PREFIX = ".tmp-"


@dataclass(frozen=True)
class Record:
    """One materialized record: its digest, manifest, and arrays."""

    digest: str
    meta: dict[str, Any]
    arrays: dict[str, npt.NDArray[Any]]


def _check_digest(digest: str) -> str:
    if not isinstance(digest, str) or not digest or not all(
        c in "0123456789abcdef" for c in digest
    ):
        raise ConfigurationError(f"record digest must be a lowercase hex string, got {digest!r}")
    return digest


#: Fixed zip-entry timestamp (the zip epoch): payload bytes must depend
#: on the arrays alone, never on when they were written.
_ZIP_EPOCH = (1980, 1, 1, 0, 0, 0)


def deterministic_npz_bytes(arrays: Mapping[str, npt.NDArray[Any]]) -> bytes:
    """An ``np.load``-compatible npz container with reproducible bytes.

    Entries are written in sorted name order with a fixed timestamp and
    fixed permissions, so the same arrays always serialize to the same
    bytes — unlike ``np.savez``, which stamps each entry with the wall
    clock.  Arrays round-trip bit-exactly (same ``.npy`` entry format).
    """
    buffer = io.BytesIO()
    with zipfile.ZipFile(buffer, "w", zipfile.ZIP_STORED) as zf:
        for name in sorted(arrays):
            entry = io.BytesIO()
            np.lib.format.write_array(entry, np.asarray(arrays[name]), allow_pickle=False)
            info = zipfile.ZipInfo(f"{name}.npy", date_time=_ZIP_EPOCH)
            info.external_attr = 0o644 << 16
            zf.writestr(info, entry.getvalue())
    return buffer.getvalue()


def atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` via a same-directory temp file + rename."""
    path = Path(path)
    tmp = path.with_name(f"{TMP_PREFIX}{uuid.uuid4().hex}-{path.name}")
    try:
        with open(tmp, "wb") as f:
            f.write(data)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def write_record(
    directory: Path,
    digest: str,
    arrays: Mapping[str, npt.NDArray[Any]],
    meta: Mapping[str, Any],
) -> Path:
    """Atomically persist a record; returns the manifest path.

    The payload lands first, the manifest last (the commit point), each
    through its own temp-file-plus-rename, so a reader either sees the
    complete record or no record at all.
    """
    directory = Path(directory)
    _check_digest(digest)
    directory.mkdir(parents=True, exist_ok=True)

    atomic_write_bytes(directory / f"{digest}{PAYLOAD_SUFFIX}", deterministic_npz_bytes(arrays))

    manifest = {"format": STORE_FORMAT, **dict(meta)}
    payload = json.dumps(manifest, indent=2, sort_keys=True, allow_nan=False)
    manifest_path = directory / f"{digest}{MANIFEST_SUFFIX}"
    atomic_write_bytes(manifest_path, payload.encode("utf-8"))
    return manifest_path


def read_manifest(directory: Path, digest: str) -> dict[str, Any] | None:
    """The parsed manifest, or ``None`` when missing/corrupt/foreign."""
    path = Path(directory) / f"{_check_digest(digest)}{MANIFEST_SUFFIX}"
    try:
        meta = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(meta, dict) or meta.get("format") != STORE_FORMAT:
        return None
    return meta


def read_record(directory: Path, digest: str) -> Record | None:
    """The complete record, or ``None`` for *any* failure mode.

    Missing manifest, unparsable manifest, format mismatch, missing
    payload, and corrupt payload all read as "record absent": the caller
    recomputes (and overwrites the debris), which is the recovery story
    for interrupted or corrupted writes.
    """
    directory = Path(directory)
    meta = read_manifest(directory, digest)
    if meta is None:
        return None
    try:
        with np.load(directory / f"{digest}{PAYLOAD_SUFFIX}") as payload:
            arrays = {name: payload[name].copy() for name in payload.files}
    except (OSError, ValueError, EOFError, KeyError, BadZipFile):
        return None
    return Record(digest=digest, meta=meta, arrays=arrays)


def delete_record(directory: Path, digest: str) -> int:
    """Remove both files of a record; returns how many existed."""
    directory = Path(directory)
    _check_digest(digest)
    removed = 0
    for suffix in (MANIFEST_SUFFIX, PAYLOAD_SUFFIX):
        try:
            os.unlink(directory / f"{digest}{suffix}")
            removed += 1
        except OSError:
            pass
    return removed
