""":class:`ResultStore` — the content-addressed store root on disk.

Layout (everything lives under one root directory, safe to tar up or
point multiple processes at)::

    <root>/
      results/<hh>/<digest>.json     record manifests (commit points)
      results/<hh>/<digest>.npz      record payloads (numeric arrays)
      pi/<backend>/<hh>/<sha>.npy    persistent join-distribution cache
      sched/<grid>/...               scheduler state (grids + leases)
      locks/gc.lock                  maintenance mutex

``<hh>`` is a 2-hex-character shard of the digest so no single directory
grows unboundedly.  Records are read and written through
:mod:`repro.store.records` (atomic, corruption-tolerant); the kernel
cache is a :class:`~repro.store.pi_disk.DiskPiCache` rooted inside the
store so one ``--store DIR`` flag provisions both.

Maintenance: :meth:`gc` sweeps debris that the crash-safety protocol can
leave behind — orphaned temp files, payloads whose manifest never landed,
manifests whose payload is missing or unreadable — under a file lock so
concurrent sweeps cannot race.  :meth:`info` and :meth:`iter_records`
power the ``repro-experiments store info|ls`` CLI.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Any, Iterator, Mapping

import numpy.typing as npt

from repro.exceptions import ConfigurationError
from repro.store.digest import STORE_FORMAT
from repro.store.locks import LEASE_SUFFIX, FileLock, break_stale
from repro.store.pi_disk import DiskPiCache
from repro.store.records import (
    MANIFEST_SUFFIX,
    PAYLOAD_SUFFIX,
    TMP_PREFIX,
    Record,
    delete_record,
    read_manifest,
    read_record,
    write_record,
)

__all__ = ["ResultStore"]


def _digest_from(path: Path, suffix: str) -> str | None:
    """The digest a record file's name encodes, or ``None`` for foreign
    files (editor backups, OS metadata, ...) — which every walk below
    must *skip*, never crash on and never delete."""
    name = path.name[: -len(suffix)]
    if name and all(c in "0123456789abcdef" for c in name):
        return name
    return None


class ResultStore:
    """Disk-backed, content-addressed store of simulation artifacts.

    ``ResultStore(root)`` never eagerly creates directories — a store
    that is only ever read from leaves the filesystem untouched until
    the first write.  Accepts a path-like or an existing instance in
    every public API that takes a store (see :meth:`coerce`).
    """

    def __init__(self, root: "ResultStore | str | Path") -> None:
        if isinstance(root, ResultStore):  # defensive: coerce() is the public path
            root = root.root
        self.root = Path(root)

    @classmethod
    def coerce(cls, store: "ResultStore | str | Path") -> "ResultStore":
        """``store`` as a :class:`ResultStore` (paths are wrapped)."""
        if isinstance(store, ResultStore):
            return store
        if isinstance(store, (str, Path)):
            return cls(store)
        raise ConfigurationError(
            f"store must be a ResultStore or a path, got {type(store).__name__}"
        )

    # ------------------------------------------------------------------
    @property
    def results_dir(self) -> Path:
        return self.root / "results"

    @property
    def pi_dir(self) -> Path:
        return self.root / "pi"

    @property
    def sched_dir(self) -> Path:
        """Scheduler state (grid manifests + lease files) under this root."""
        return self.root / "sched"

    def record_dir(self, digest: str) -> Path:
        return self.results_dir / digest[:2]

    def pi_cache(self, *, mmap: bool = True) -> DiskPiCache:
        """The persistent kernel cache living under this store's root."""
        return DiskPiCache(self.pi_dir, mmap=mmap)

    # ------------------------------------------------------------------
    # Records

    def has_record(self, digest: str) -> bool:
        """True when a committed (manifest-visible) record exists."""
        return read_manifest(self.record_dir(digest), digest) is not None

    def read_record(self, digest: str) -> Record | None:
        """The record, or ``None`` when absent or unreadable."""
        return read_record(self.record_dir(digest), digest)

    def write_record(
        self, digest: str, arrays: Mapping[str, npt.NDArray[Any]], meta: Mapping[str, Any]
    ) -> Path:
        """Atomically persist a record; returns the manifest path."""
        return write_record(self.record_dir(digest), digest, arrays, meta)

    def delete_record(self, digest: str) -> int:
        return delete_record(self.record_dir(digest), digest)

    def iter_records(self) -> Iterator[tuple[str, dict[str, Any]]]:
        """Yield ``(digest, manifest)`` for every committed record."""
        if not self.results_dir.is_dir():
            return
        for manifest_path in sorted(self.results_dir.glob(f"*/*{MANIFEST_SUFFIX}")):
            if manifest_path.name.startswith(TMP_PREFIX):
                continue
            digest = _digest_from(manifest_path, MANIFEST_SUFFIX)
            if digest is None:
                continue
            meta = read_manifest(manifest_path.parent, digest)
            if meta is not None:
                yield digest, meta

    # ------------------------------------------------------------------
    # Maintenance

    def info(self) -> dict[str, Any]:
        """Size/count summary of the store (the ``store info`` payload)."""
        n_records = 0
        record_bytes = 0
        if self.results_dir.is_dir():
            for path in self.results_dir.glob("*/*"):
                if path.name.startswith(TMP_PREFIX):
                    continue
                if path.suffix == MANIFEST_SUFFIX:
                    if _digest_from(path, MANIFEST_SUFFIX) is None:
                        continue
                    n_records += 1
                elif path.suffix != PAYLOAD_SUFFIX or _digest_from(path, PAYLOAD_SUFFIX) is None:
                    continue
                try:
                    record_bytes += path.stat().st_size
                except OSError:
                    pass
        pi = self.pi_cache()
        return {
            "root": str(self.root),
            "format": STORE_FORMAT,
            "records": n_records,
            "record_bytes": record_bytes,
            "pi_entries": len(pi),
            "pi_bytes": pi.nbytes(),
        }

    #: Files younger than this are presumed to belong to an in-flight
    #: write and are left alone by :meth:`gc`: a temp file or a
    #: payload-without-manifest is a normal transient state *during* a
    #: write, and only becomes debris when its writer is gone.
    GC_GRACE_SECONDS = 3600.0

    @staticmethod
    def _older_than(path: Path, cutoff: float) -> bool:
        try:
            return path.stat().st_mtime < cutoff
        except OSError:
            return False  # vanished — its writer is alive; leave it be

    def gc(
        self,
        *,
        grace_seconds: float | None = None,
        max_age_seconds: float | None = None,
    ) -> dict[str, int]:
        """Sweep debris; returns removal counts by category.

        Removes (under the store's maintenance lock):

        * ``tmp`` — temp files abandoned by killed writers;
        * ``orphan_payloads`` — payloads whose manifest never landed
          (a write interrupted before its commit point);
        * ``broken_records`` — committed manifests whose payload is
          missing or unreadable (both files are removed so the point is
          recomputed cleanly).

        Healthy records are never touched, and the first two categories
        — which are also the *normal transient states of an in-flight
        write* — are only swept once older than ``grace_seconds``
        (default :data:`GC_GRACE_SECONDS`), so running ``gc`` while
        sweeps are writing cannot yank a temp file or a just-landed
        payload out from under its writer.  The lock excludes concurrent
        maintenance only.  Pass ``grace_seconds=0`` to force a full
        sweep when no writer can be alive.

        ``max_age_seconds`` additionally turns on **age-based eviction**
        for the two unbounded, recomputable artifact classes:

        * ``pi_evicted`` — persistent join-distribution cache entries
          not touched for ``max_age_seconds`` (pure caches: evicting one
          costs a kernel re-run, never correctness);
        * ``stale_leases`` — scheduler lease files older than
          ``max_age_seconds``, i.e. orphans whose worker died and whose
          grid no active worker is reclaiming (live schedulers reclaim
          expired leases themselves on a much shorter TTL — this is the
          backstop for abandoned grids).  The takeover goes through the
          same atomic rename-steal as lease reclaim, so gc can never
          delete a lease a live worker just refreshed.

        Committed records are *never* age-evicted: they are results,
        not caches.
        """
        grace = self.GC_GRACE_SECONDS if grace_seconds is None else float(grace_seconds)
        cutoff = time.time() - grace
        removed = {
            "tmp": 0,
            "orphan_payloads": 0,
            "broken_records": 0,
            "pi_evicted": 0,
            "stale_leases": 0,
        }
        with FileLock(self.root / "locks" / "gc.lock"):
            for base in (self.results_dir, self.pi_dir):
                if not base.is_dir():
                    continue
                for tmp in base.rglob(f"{TMP_PREFIX}*"):
                    if not self._older_than(tmp, cutoff):
                        continue
                    try:
                        os.unlink(tmp)
                        removed["tmp"] += 1
                    except OSError:
                        pass
            if self.results_dir.is_dir():
                for payload in self.results_dir.glob(f"*/*{PAYLOAD_SUFFIX}"):
                    digest = _digest_from(payload, PAYLOAD_SUFFIX)
                    if digest is None or not self._older_than(payload, cutoff):
                        continue
                    if read_manifest(payload.parent, digest) is None:
                        try:
                            os.unlink(payload)
                            removed["orphan_payloads"] += 1
                        except OSError:
                            pass
                for manifest in self.results_dir.glob(f"*/*{MANIFEST_SUFFIX}"):
                    digest = _digest_from(manifest, MANIFEST_SUFFIX)
                    if digest is None:
                        continue
                    if (
                        read_manifest(manifest.parent, digest) is not None
                        and read_record(manifest.parent, digest) is None
                    ):
                        delete_record(manifest.parent, digest)
                        removed["broken_records"] += 1
            if max_age_seconds is not None:
                age_cutoff = time.time() - float(max_age_seconds)
                if self.pi_dir.is_dir():
                    for entry in self.pi_dir.rglob("*.npy"):
                        if entry.name.startswith(TMP_PREFIX):
                            continue
                        if not self._older_than(entry, age_cutoff):
                            continue
                        try:
                            os.unlink(entry)
                            removed["pi_evicted"] += 1
                        except OSError:
                            pass
                if self.sched_dir.is_dir():
                    for lease in self.sched_dir.rglob(f"*{LEASE_SUFFIX}"):
                        if break_stale(lease, float(max_age_seconds)) is not None:
                            removed["stale_leases"] += 1
        return removed

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultStore(root={str(self.root)!r})"
