"""Disk-backed result/artifact store: resumable sweeps, persistent caches.

The experiments of the paper are *sweeps* — over colony size, task
count, noise, and feedback shape — and the ROADMAP's production target
serves many such scenarios repeatedly.  This package makes their
artifacts durable and shareable:

* :mod:`repro.store.digest` — canonical JSON digests.  Every persisted
  artifact is keyed by a content digest of the *generating parameters*
  (spec JSON, engine, seeds, horizon), so two runs that would induce the
  same result distribution share one record — the same idea as
  distribution-based bisimulation for labelled Markov processes: equal
  signatures are interchangeable.
* :mod:`repro.store.records` — atomic npz/JSON record IO.  Records
  become visible only through an atomic rename of their JSON manifest,
  so concurrent writers and killed processes can never publish a
  partial record; corrupt or orphaned files read as *absent* and are
  swept by :meth:`ResultStore.gc`.
* :mod:`repro.store.store` — :class:`ResultStore`, the content-addressed
  store root with ``ls`` / ``gc`` / ``info`` maintenance and a
  :meth:`~repro.store.store.ResultStore.pi_cache` factory for the
  persistent kernel cache living under the same root.
* :mod:`repro.store.pi_disk` — :class:`DiskPiCache`, the disk tier of
  the counting engine's join-distribution cache: same
  ``(resolved backend, u.tobytes())`` keys as the in-memory
  :class:`~repro.sim.pi_cache.SharedPiCache`, memory-mapped read-only
  arrays, write-then-rename so concurrent ProcessPool workers are safe.
* :mod:`repro.store.locks` — a minimal advisory file lock for
  maintenance operations (``gc``) that must not race each other.

Layering: this package depends only on numpy and the standard library —
never on ``repro.sim`` / ``repro.scenario`` — so the simulation layers
can import it freely.
"""

from repro.store.digest import STORE_FORMAT, canonical_json, digest_hex, seed_from_digest
from repro.store.locks import (
    LEASE_SUFFIX,
    FileLock,
    LockTimeout,
    break_stale,
    format_owner,
    owner_token,
    read_owner,
    write_owner_file,
)
from repro.store.pi_disk import DiskPiCache
from repro.store.records import Record, delete_record, read_record, write_record
from repro.store.store import ResultStore

__all__ = [
    "STORE_FORMAT",
    "canonical_json",
    "digest_hex",
    "seed_from_digest",
    "FileLock",
    "LockTimeout",
    "LEASE_SUFFIX",
    "break_stale",
    "format_owner",
    "owner_token",
    "read_owner",
    "write_owner_file",
    "DiskPiCache",
    "Record",
    "read_record",
    "write_record",
    "delete_record",
    "ResultStore",
]
