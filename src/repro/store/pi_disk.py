"""Disk tier of the join-distribution cache: pay the kernel once per machine.

The in-memory :class:`~repro.sim.pi_cache.SharedPiCache` amortizes the
quadrature/FFT join kernels across the trials of one process;
:class:`DiskPiCache` extends that across *processes and sessions*: every
computed distribution is persisted as a ``.npy`` file named by the
SHA-256 of its cache key, so the second sweep on a machine — or the
sibling worker of a ProcessPool — reads distributions instead of
recomputing them.

Correctness is inherited from the keying scheme: the key is
``(resolved backend, u.tobytes())`` — the byte image of the mark
probabilities plus the concrete kernel back end — so a file can only
ever contain the very array the same computation would produce, and
``np.save``/``np.load`` round-trip float64 bit-exactly, keeping
disk-cached runs bit-identical to cold ones.  Reads additionally
validate dtype and shape (``(k + 1,)``, with ``k`` recovered from the
key) so a truncated or foreign file reads as a *miss*, never as data.

Concurrency: writes go through a same-directory temp file and an atomic
:func:`os.replace`.  Two workers racing on the same key write
byte-identical files, so last-rename-wins is harmless; a reader never
observes a partial file.  Reads are memory-mapped read-only
(``mmap_mode="r"``) by default: entries load lazily, stay immutable, and
are shared page-cache-backed across every process on the machine.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from pathlib import Path

import numpy as np
import numpy.typing as npt

__all__ = ["DiskPiCache"]

#: Cache keys, as produced by ``SharedPiCache.key``.
PiKey = tuple[str, bytes]

_SUFFIX = ".npy"
_TMP_PREFIX = ".tmp-"


class DiskPiCache:
    """Persistent, content-addressed store of join distributions.

    Parameters
    ----------
    root:
        Directory holding the cache (created on first write).  Layout:
        ``<root>/<backend>/<hh>/<sha256-of-u-bytes>.npy`` with a 2-hex
        shard level so no directory grows unboundedly.
    mmap:
        Memory-map reads (default).  Pass ``False`` to load entries into
        process memory instead — e.g. when a workload would hold more
        live entries than the process's open-file limit.

    The cache is deliberately unbounded: entries are a few KiB each and
    ``ResultStore.gc``/``store gc`` provides the maintenance path.
    :attr:`hits`, :attr:`misses`, and :attr:`writes` count this
    process's traffic.
    """

    def __init__(self, root: str | Path, *, mmap: bool = True) -> None:
        self.root = Path(root)
        self.mmap = bool(mmap)
        self.hits = 0
        self.misses = 0
        self.writes = 0

    # ------------------------------------------------------------------
    @staticmethod
    def _expected_length(key: PiKey) -> int:
        """``k + 1`` recovered from the key's float64 byte image."""
        return len(key[1]) // np.dtype(np.float64).itemsize + 1

    def path_for(self, key: PiKey) -> Path:
        """The file that does / would hold this key's distribution."""
        method, u_bytes = key
        name = hashlib.sha256(u_bytes).hexdigest()
        return self.root / method / name[:2] / f"{name}{_SUFFIX}"

    # ------------------------------------------------------------------
    def get(self, key: PiKey) -> npt.NDArray[np.float64] | None:
        """The stored distribution, or ``None`` (missing or corrupt)."""
        path = self.path_for(key)
        try:
            pi = np.load(path, mmap_mode="r" if self.mmap else None, allow_pickle=False)
        except (OSError, ValueError, EOFError):
            self.misses += 1
            return None
        if pi.dtype != np.float64 or pi.shape != (self._expected_length(key),):
            self.misses += 1
            return None
        if not self.mmap:
            pi.setflags(write=False)
        self.hits += 1
        return pi

    def put(self, key: PiKey, pi: npt.NDArray[np.float64]) -> None:
        """Persist ``pi`` under ``key`` (atomic write-then-rename)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(prefix=_TMP_PREFIX, suffix=_SUFFIX, dir=path.parent)
        try:
            with os.fdopen(fd, "wb") as f:
                np.save(f, np.asarray(pi, dtype=np.float64), allow_pickle=False)
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.writes += 1

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of persisted entries (walks the directory)."""
        if not self.root.is_dir():
            return 0
        return sum(
            1
            for p in self.root.rglob(f"*{_SUFFIX}")
            if not p.name.startswith(_TMP_PREFIX)
        )

    def nbytes(self) -> int:
        """Total payload bytes on disk."""
        if not self.root.is_dir():
            return 0
        total = 0
        for p in self.root.rglob(f"*{_SUFFIX}"):
            if p.name.startswith(_TMP_PREFIX):
                continue
            try:
                total += p.stat().st_size
            except OSError:
                pass
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DiskPiCache(root={str(self.root)!r}, hits={self.hits}, "
            f"misses={self.misses}, writes={self.writes})"
        )
