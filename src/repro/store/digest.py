"""Canonical digests: the content-addressing scheme of the store.

Every persisted artifact is keyed by the SHA-256 of a *canonical JSON*
rendering of the parameters that generated it.  Canonical means:

* keys sorted, no whitespace — formatting can never change a digest;
* ``allow_nan=False`` — NaN/Infinity have no canonical JSON form and
  would make digests non-portable across JSON implementations;
* plain data only — anything that does not round-trip through JSON is a
  :class:`~repro.exceptions.ConfigurationError`, because a digest of a
  lossy rendering would alias distinct configurations.

Digests also *derive seeds*: :func:`seed_from_digest` folds a digest
into a :class:`numpy.random.SeedSequence` entropy list, giving every
sweep point an independent seed root that depends only on the point's
own identity — never on its index in the sweep, so inserting a value
into a sweep cannot reshuffle the seeds of existing points (the property
resumable sweeps rely on).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "STORE_FORMAT",
    "canonical_json",
    "digest_hex",
    "digest_words",
    "seed_from_digest",
]

#: Version tag embedded in every digested key and record manifest.  Bump
#: it when the record layout or keying scheme changes incompatibly: old
#: records then simply stop matching (read as absent) instead of being
#: misinterpreted.
STORE_FORMAT = 1


def canonical_json(obj: Any) -> str:
    """The canonical JSON rendering of ``obj`` (sorted keys, compact).

    Raises
    ------
    ConfigurationError
        If ``obj`` contains values without an exact JSON form (NaN,
        Infinity, numpy arrays, arbitrary objects...).
    """
    try:
        return json.dumps(
            obj, sort_keys=True, separators=(",", ":"), allow_nan=False, ensure_ascii=True
        )
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"store keys must be canonical-JSON-serializable (plain numbers / "
            f"strings / lists / dicts, no NaN): {exc}"
        ) from exc


def digest_hex(obj: Any) -> str:
    """SHA-256 hex digest of the canonical JSON rendering of ``obj``."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


def digest_words(digest: str) -> tuple[int, ...]:
    """The digest as eight 32-bit words (SeedSequence entropy format)."""
    if len(digest) != 64:
        raise ConfigurationError(
            f"expected a 64-character SHA-256 hex digest, got {len(digest)} characters"
        )
    try:
        return tuple(int(digest[i : i + 8], 16) for i in range(0, 64, 8))
    except ValueError as exc:
        raise ConfigurationError(f"not a hex digest: {digest!r}") from exc


def seed_from_digest(digest: str, root_seed: int | None = None) -> int:
    """A deterministic seed derived from ``digest`` (and a root seed).

    The digest words and the root seed are folded into one
    :class:`numpy.random.SeedSequence`, so the result is independent for
    distinct digests, independent for distinct root seeds, and — unlike
    index-based ``spawn`` derivations — a pure function of the artifact's
    own identity.
    """
    entropy: list[int] = [] if root_seed is None else [int(root_seed)]
    entropy.extend(digest_words(digest))
    return int(np.random.SeedSequence(entropy).generate_state(1)[0])
