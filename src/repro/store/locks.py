"""Minimal advisory file lock + stale-file takeover for shared storage.

Record *writes* need no lock — the digest pins the content and the
rename publish is atomic, so concurrent writers of the same record are
idempotent.  What must not race is *maintenance*: two ``gc`` passes
sweeping the same directory, or a ``gc`` deleting a temp file another
process is about to rename.  :class:`FileLock` covers that with the
oldest portable primitive there is: ``open(O_CREAT | O_EXCL)`` on a
lockfile.

The lock is advisory (all parties must use it), reentrant-unsafe by
design (it is a process-level mutex, not a threading one), and
self-healing: a lockfile older than ``stale_after`` seconds is presumed
abandoned by a killed process and broken.  Every lockfile carries an
**owner token** — hostname, pid, and acquire wall-time as one canonical
JSON line — so stale-lock forensics work on shared filesystems where a
bare pid is meaningless (pid 1234 on *which* machine?).  The token is
parsed back into error messages and powers the lease files of
:mod:`repro.sched.leases`, which share both the file format and the
takeover protocol below.

Takeover (:func:`break_stale`) is the subtle part: a bare stat-then-
unlink would race — two waiters could both judge the file stale, the
slower unlink then deleting the *fresh* lock the faster waiter just
acquired.  Breaking therefore goes through an atomic rename to a unique
name (only one waiter's rename wins) and re-checks staleness on the
renamed file, restoring a stolen live lock via ``link``.
"""

from __future__ import annotations

import json
import os
import socket
import time
from pathlib import Path
from typing import Any

from repro.exceptions import ReproError

__all__ = [
    "FileLock",
    "LockTimeout",
    "LEASE_SUFFIX",
    "break_stale",
    "format_owner",
    "owner_token",
    "read_owner",
    "write_owner_file",
]

#: A lockfile this old belongs to a process that died without releasing
#: it; ``gc`` runs take seconds, so an hour is conservatively stale.
DEFAULT_STALE_AFTER = 3600.0

#: Suffix of sweep-point lease files (:mod:`repro.sched.leases`).  Lives
#: here, not in ``repro.sched``, so the store's ``gc`` can sweep orphaned
#: leases without importing the (higher-layer) scheduler package.
LEASE_SUFFIX = ".lease"


class LockTimeout(ReproError, TimeoutError):
    """The lock could not be acquired within the timeout."""


# ----------------------------------------------------------------------
# Owner tokens


def owner_token() -> dict[str, Any]:
    """A fresh owner token: who is claiming a lock/lease, right now.

    ``host`` + ``pid`` identify the claimant across the machines of a
    shared filesystem; ``acquired_unix`` records the claim wall-time for
    forensics (the *freshness* authority stays the file's mtime, which
    heartbeats can bump without rewriting the token).
    """
    return {
        "host": socket.gethostname(),
        "pid": os.getpid(),
        # Forensic wall-time of a *lock claim* — never digested content.
        "acquired_unix": round(time.time(), 3),  # repro-lint: disable=RPR002
    }


def format_owner(owner: dict[str, Any] | None) -> str:
    """Human-readable rendering of an owner token for error messages."""
    if not owner:
        return "unknown owner"
    host = owner.get("host", "?")
    pid = owner.get("pid", "?")
    acquired = owner.get("acquired_unix")
    when = "" if acquired is None else f" since unix time {acquired}"
    return f"pid {pid} on host {host}{when}"


def read_owner(path: str | Path) -> dict[str, Any] | None:
    """The owner token stored in a lock/lease file, or ``None``.

    Tolerates every failure mode — missing file, unreadable bytes,
    foreign content: a pre-token lockfile holding a bare pid reads as
    ``{"pid": N}``, anything else as ``None`` — forensics must never
    crash the acquire path.
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError):
        return None
    try:
        owner = json.loads(text)
    except ValueError:
        return None
    if isinstance(owner, dict):
        return owner
    # A bare pid is itself valid JSON (an int), so the legacy form must
    # be recognized on the *parsed* value, not in the except branch.
    if isinstance(owner, int) and not isinstance(owner, bool):
        return {"pid": owner}
    return None


def _owner_bytes(owner: dict[str, Any]) -> bytes:
    return (json.dumps(owner, sort_keys=True, separators=(",", ":")) + "\n").encode("utf-8")


def write_owner_file(path: str | Path, owner: dict[str, Any]) -> bool:
    """Create ``path`` exclusively with ``owner`` inside; False if it exists.

    The ``O_CREAT | O_EXCL`` create *is* the claim — exactly one claimant
    can win it, which is what makes both :class:`FileLock` acquisition
    and lease claims race-free on any POSIX filesystem.
    """
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
    except FileExistsError:
        return False
    try:
        os.write(fd, _owner_bytes(owner))
    finally:
        os.close(fd)
    return True


# ----------------------------------------------------------------------
# Stale-file takeover


def break_stale(path: str | Path, stale_after: float) -> dict[str, Any] | None:
    """Remove ``path`` if its mtime is older than ``stale_after`` seconds.

    At most one concurrent caller succeeds.  Returns the evicted
    holder's owner token (``{}`` when unreadable) if this call actually
    removed the file, ``None`` otherwise — a live file is never deleted.

    The protocol: atomically rename the file to a unique name — only one
    caller's rename wins — then re-check staleness on the renamed file.
    If a *live* file was stolen in the stat/rename window (the holder
    re-created it in between), it is restored via ``link`` (not
    ``rename``) so a lock some third waiter acquired meanwhile is never
    clobbered.
    """
    path = Path(path)
    try:
        # Heartbeat freshness is *defined* by wall-clock-vs-mtime.
        age = time.time() - path.stat().st_mtime  # repro-lint: disable=RPR002
    except OSError:
        return None  # gone already — the holder released it
    if age <= stale_after:
        return None
    stolen = path.with_name(f"{path.name}.stale-{os.getpid()}-{id(path):x}")
    try:
        os.rename(path, stolen)
    except OSError:
        return None  # another waiter broke it first
    try:
        now = time.time()  # repro-lint: disable=RPR002
        still_stale = now - stolen.stat().st_mtime > stale_after
    except OSError:
        return None
    if still_stale:
        owner = read_owner(stolen) or {}
        try:
            os.unlink(stolen)
        except OSError:
            pass
        return owner
    # We stole a *live* file created between stat and rename — restore
    # it; if a third waiter claimed the name meanwhile, the restore is
    # abandoned (best-effort, advisory).
    try:
        os.link(stolen, path)
    except OSError:
        pass
    try:
        os.unlink(stolen)
    except OSError:
        pass
    return None


# ----------------------------------------------------------------------


class FileLock:
    """``with FileLock(path):`` — exclusive advisory lock via ``O_EXCL``.

    Parameters
    ----------
    path:
        The lockfile location (created on acquire, removed on release).
    timeout:
        Seconds to keep retrying before raising :class:`LockTimeout`.
    poll:
        Sleep between attempts.
    stale_after:
        Age in seconds past which an existing lockfile is treated as
        abandoned and broken (``None`` disables takeover).
    """

    def __init__(
        self,
        path: str | Path,
        *,
        timeout: float = 30.0,
        poll: float = 0.05,
        stale_after: float | None = DEFAULT_STALE_AFTER,
    ) -> None:
        self.path = Path(path)
        self.timeout = float(timeout)
        self.poll = float(poll)
        self.stale_after = None if stale_after is None else float(stale_after)
        self._held = False

    # ------------------------------------------------------------------
    def _try_acquire(self) -> bool:
        return write_owner_file(self.path, owner_token())

    def _break_if_stale(self) -> None:
        if self.stale_after is not None:
            break_stale(self.path, self.stale_after)

    def acquire(self) -> "FileLock":
        if self._held:
            raise ReproError(f"lock {self.path} is already held by this object")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        deadline = time.monotonic() + self.timeout
        while True:
            if self._try_acquire():
                self._held = True
                return self
            self._break_if_stale()
            if time.monotonic() >= deadline:
                raise LockTimeout(
                    f"could not acquire {self.path} within {self.timeout:.1f}s "
                    f"(held by {format_owner(read_owner(self.path))}; another "
                    "maintenance operation is running, or a stale lockfile "
                    "below the stale_after age is blocking it)"
                )
            time.sleep(self.poll)

    def release(self) -> None:
        if not self._held:
            return
        self._held = False
        try:
            os.unlink(self.path)
        except OSError:
            pass

    # ------------------------------------------------------------------
    def __enter__(self) -> "FileLock":
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()
