"""Minimal advisory file lock for store maintenance.

Record *writes* need no lock — the digest pins the content and the
rename publish is atomic, so concurrent writers of the same record are
idempotent.  What must not race is *maintenance*: two ``gc`` passes
sweeping the same directory, or a ``gc`` deleting a temp file another
process is about to rename.  :class:`FileLock` covers that with the
oldest portable primitive there is: ``open(O_CREAT | O_EXCL)`` on a
lockfile.

The lock is advisory (all parties must use it), reentrant-unsafe by
design (it is a process-level mutex, not a threading one), and
self-healing: a lockfile older than ``stale_after`` seconds is presumed
abandoned by a killed process and broken.  The holder's pid is written
into the file for post-mortem debugging.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.exceptions import ReproError

__all__ = ["FileLock", "LockTimeout"]

#: A lockfile this old belongs to a process that died without releasing
#: it; ``gc`` runs take seconds, so an hour is conservatively stale.
DEFAULT_STALE_AFTER = 3600.0


class LockTimeout(ReproError, TimeoutError):
    """The lock could not be acquired within the timeout."""


class FileLock:
    """``with FileLock(path):`` — exclusive advisory lock via ``O_EXCL``.

    Parameters
    ----------
    path:
        The lockfile location (created on acquire, removed on release).
    timeout:
        Seconds to keep retrying before raising :class:`LockTimeout`.
    poll:
        Sleep between attempts.
    stale_after:
        Age in seconds past which an existing lockfile is treated as
        abandoned and broken (``None`` disables takeover).
    """

    def __init__(
        self,
        path: str | Path,
        *,
        timeout: float = 30.0,
        poll: float = 0.05,
        stale_after: float | None = DEFAULT_STALE_AFTER,
    ) -> None:
        self.path = Path(path)
        self.timeout = float(timeout)
        self.poll = float(poll)
        self.stale_after = None if stale_after is None else float(stale_after)
        self._held = False

    # ------------------------------------------------------------------
    def _try_acquire(self) -> bool:
        try:
            fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            return False
        try:
            os.write(fd, f"{os.getpid()}\n".encode("ascii"))
        finally:
            os.close(fd)
        return True

    def _break_if_stale(self) -> None:
        """Remove an abandoned lockfile — at most one waiter succeeds.

        A bare stat-then-unlink would race: two waiters could both judge
        the file stale, the slower unlink then deleting the *fresh* lock
        the faster waiter just acquired.  Breaking therefore goes
        through an atomic rename to a unique name — only one waiter's
        rename wins — and re-checks staleness on the renamed file: if a
        live lock was stolen in the stat/rename window (the holder
        re-created it in between), it is renamed straight back.
        """
        if self.stale_after is None:
            return
        try:
            age = time.time() - self.path.stat().st_mtime
        except OSError:
            return  # gone already — the holder released it
        if age <= self.stale_after:
            return
        stolen = self.path.with_name(f"{self.path.name}.stale-{os.getpid()}-{id(self):x}")
        try:
            os.rename(self.path, stolen)
        except OSError:
            return  # another waiter broke it first
        try:
            still_stale = time.time() - stolen.stat().st_mtime > self.stale_after
        except OSError:
            return
        if still_stale:
            try:
                os.unlink(stolen)
            except OSError:
                pass
        else:
            # We stole a *live* lock created between stat and rename —
            # restore it.  ``link`` (not ``rename``) so a lock some third
            # waiter acquired in the meantime is never clobbered; if one
            # exists the restore is abandoned (best-effort, advisory).
            try:
                os.link(stolen, self.path)
            except OSError:
                pass
            try:
                os.unlink(stolen)
            except OSError:
                pass

    def acquire(self) -> "FileLock":
        if self._held:
            raise ReproError(f"lock {self.path} is already held by this object")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        deadline = time.monotonic() + self.timeout
        while True:
            if self._try_acquire():
                self._held = True
                return self
            self._break_if_stale()
            if time.monotonic() >= deadline:
                raise LockTimeout(
                    f"could not acquire {self.path} within {self.timeout:.1f}s "
                    "(another maintenance operation is running, or a stale "
                    "lockfile below the stale_after age is blocking it)"
                )
            time.sleep(self.poll)

    def release(self) -> None:
        if not self._held:
            return
        self._held = False
        try:
            os.unlink(self.path)
        except OSError:
            pass

    # ------------------------------------------------------------------
    def __enter__(self) -> "FileLock":
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()
