"""Grid orchestration: persist grids, spawn workers, watch the frontier.

The scheduler side of :mod:`repro.sched` is deliberately thin, because
the hard guarantees live below it (content-addressed records, lease
reclaim).  It does four things:

* :func:`init_grid` writes the grid manifest
  (``<store>/sched/<grid digest>/grid.json``) so any process — or any
  machine sharing the filesystem — can :func:`load_grid` and start
  working with no channel beyond the store directory.
* :func:`grid_status` classifies every point of the frontier as
  committed / leased / pending by looking only at the filesystem, so
  ``sched status`` works while workers are running (or after they all
  died).
* :func:`run_grid` drives a complete run: ``workers=0`` drains the grid
  in-process (no multiprocessing, the fully deterministic path);
  ``workers=N`` spawns N local worker processes and polls the frontier
  for live progress reporting.  Orchestration is *stateless* — killing
  the orchestrator (or any worker) and re-running resumes exactly
  where the committed frontier stopped.
* :func:`collect_grid` loads every committed record back into
  :class:`TrialSummary` objects once the frontier is drained.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

import numpy as np
import numpy.typing as npt

from repro.exceptions import SchedulerError
from repro.sim.runner import SweepResult, TrialSummary
from repro.store import ResultStore
from repro.store.records import atomic_write_bytes

from repro.sched.grid import GridSpec
from repro.sched.leases import DEFAULT_LEASE_TTL, LeaseManager
from repro.sched.worker import WorkerStats, run_worker

__all__ = [
    "GRID_MANIFEST",
    "GridResult",
    "collect_grid",
    "grid_status",
    "init_grid",
    "load_grid",
    "run_grid",
]

GRID_MANIFEST = "grid.json"


# ----------------------------------------------------------------------
# Grid persistence


def init_grid(store: ResultStore | str, grid: GridSpec) -> Path:
    """Persist ``grid`` under the store; returns its directory.

    Idempotent: the manifest is written atomically under the grid's own
    content digest, so two racing inits of the same grid converge on
    identical bytes and distinct grids never collide.
    """
    store = ResultStore.coerce(store)
    grid_dir = store.sched_dir / grid.grid_digest()
    grid_dir.mkdir(parents=True, exist_ok=True)
    atomic_write_bytes(
        grid_dir / GRID_MANIFEST, (grid.to_json() + "\n").encode("utf-8")
    )
    return grid_dir


def load_grid(store: ResultStore | str, digest: str | None = None) -> GridSpec:
    """Load a persisted grid; auto-discovers when the store has one grid.

    Raises :class:`SchedulerError` when the store has no grid, when
    ``digest`` names a missing one, or when auto-discovery is ambiguous.
    """
    store = ResultStore.coerce(store)
    if digest is not None:
        manifest = store.sched_dir / digest / GRID_MANIFEST
        if not manifest.is_file():
            raise SchedulerError(
                f"no grid {digest!r} under {store.sched_dir} — run "
                "'sched run --init-only' (or init_grid) there first"
            )
        return GridSpec.from_json(manifest.read_text(encoding="utf-8"))
    manifests = sorted(store.sched_dir.glob(f"*/{GRID_MANIFEST}"))
    if not manifests:
        raise SchedulerError(
            f"no grids under {store.sched_dir} — run 'sched run --init-only' "
            "(or init_grid) there first"
        )
    if len(manifests) > 1:
        digests = [p.parent.name for p in manifests]
        raise SchedulerError(
            f"{len(manifests)} grids under {store.sched_dir}; pick one with "
            f"--grid: {digests}"
        )
    return GridSpec.from_json(manifests[0].read_text(encoding="utf-8"))


# ----------------------------------------------------------------------
# Frontier status


def grid_status(
    store: ResultStore | str,
    grid: GridSpec,
    *,
    ttl: float = DEFAULT_LEASE_TTL,
) -> dict[str, Any]:
    """Classify the frontier: committed / leased / pending counts.

    ``leased`` counts points with a *fresh* lease and no committed
    record; a stale lease reads as pending (it will be reclaimed by the
    next worker that reaches it).  ``reclaimed`` is the grid-lifetime
    count of lease takeovers from the reclaim log.
    """
    store = ResultStore.coerce(store)
    grid_digest = grid.grid_digest()
    manager = LeaseManager(store.sched_dir / grid_digest, ttl=ttl)
    committed = leased = pending = 0
    for point in grid.points():
        if store.has_record(point.digest):
            committed += 1
        elif manager.is_leased(point.digest):
            leased += 1
        else:
            pending += 1
    total = grid.n_points
    return {
        "grid": grid_digest,
        "total": total,
        "committed": committed,
        "leased": leased,
        "pending": pending,
        "reclaimed": manager.reclaimed_count(),
        "done": committed == total,
    }


def format_status(status: dict[str, Any]) -> str:
    """One-line frontier counter for live progress output."""
    return (
        f"{status['committed']}/{status['total']} committed  "
        f"{status['leased']} leased  {status['pending']} pending  "
        f"{status['reclaimed']} reclaimed"
    )


# ----------------------------------------------------------------------
# Orchestration


def _worker_main(
    root: str,
    grid_digest: str,
    ttl: float,
    poll: float,
    shared_pi_cache: bool,
    worker_id: str,
) -> None:
    """Entry point of a spawned worker process (module-level: picklable)."""
    store = ResultStore(root)
    grid = load_grid(store, grid_digest)
    run_worker(
        store,
        grid,
        ttl=ttl,
        poll=poll,
        shared_pi_cache=shared_pi_cache,
        worker_id=worker_id,
    )


def run_grid(
    store: ResultStore | str,
    grid: GridSpec,
    *,
    workers: int = 0,
    ttl: float = DEFAULT_LEASE_TTL,
    poll: float = 0.2,
    shared_pi_cache: bool = False,
    progress: Callable[[dict[str, Any]], None] | None = None,
    progress_interval: float = 0.5,
) -> dict[str, Any]:
    """Run ``grid`` to completion; returns the final status dict.

    ``workers=0`` drains the frontier in this process — the
    deterministic, debuggable path.  ``workers=N`` spawns N local
    worker processes (the multi-machine analogue is N ``sched work``
    invocations against the same directory) and polls the frontier,
    invoking ``progress`` with each status snapshot.

    Raises :class:`SchedulerError` if every worker exits while points
    remain uncommitted and unleased (e.g. all workers crashed) — the
    store keeps the committed prefix, so re-running resumes.
    """
    store = ResultStore.coerce(store)
    init_grid(store, grid)

    if workers <= 0:
        stats = run_worker(
            store, grid, ttl=ttl, poll=poll, shared_pi_cache=shared_pi_cache
        )
        status = grid_status(store, grid, ttl=ttl)
        status["computed"] = stats.computed
        if progress is not None:
            progress(status)
        return status

    # "fork" keeps worker start cheap and inherits the warmed import
    # state; fall back to the platform default elsewhere.
    ctx: multiprocessing.context.BaseContext
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        ctx = multiprocessing.get_context()
    grid_digest = grid.grid_digest()
    procs = [
        ctx.Process(
            target=_worker_main,
            args=(str(store.root), grid_digest, ttl, poll, shared_pi_cache, f"w{i}"),
            name=f"sched-worker-{i}",
        )
        for i in range(workers)
    ]
    for proc in procs:
        proc.start()
    try:
        while True:
            status = grid_status(store, grid, ttl=ttl)
            if progress is not None:
                progress(status)
            if status["done"]:
                break
            if not any(proc.is_alive() for proc in procs):
                # All workers exited with work left: either they
                # crashed, or they finished and a racing commit landed
                # after our snapshot — re-check before declaring failure.
                status = grid_status(store, grid, ttl=ttl)
                if status["done"]:
                    break
                raise SchedulerError(
                    f"all {workers} workers exited with "
                    f"{status['pending'] + status['leased']} point(s) "
                    f"uncommitted (exit codes "
                    f"{[proc.exitcode for proc in procs]}); the committed "
                    "frontier is preserved — re-run to resume"
                )
            time.sleep(progress_interval)
    finally:
        for proc in procs:
            proc.join(timeout=30.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join()
    status = grid_status(store, grid, ttl=ttl)
    if progress is not None:
        progress(status)
    return status


# ----------------------------------------------------------------------
# Collection


@dataclass(frozen=True)
class GridResult:
    """Every committed point of a drained grid, in canonical order."""

    grid: GridSpec
    summaries: list[TrialSummary]

    def series(self, attribute: str = "mean_average_regret") -> npt.NDArray[np.float64]:
        """One summary statistic per point, in grid (row-major) order.

        Reshape with ``.reshape(grid.shape)`` to index by axis value.
        """
        return np.array(
            [getattr(s, attribute) for s in self.summaries], dtype=np.float64
        )

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(len(axis.values) for axis in self.grid.axes)

    def as_sweep_result(self) -> SweepResult:
        """Single-axis grids as the classic :class:`SweepResult`."""
        if len(self.grid.axes) != 1:
            raise SchedulerError(
                f"as_sweep_result needs a single-axis grid, this one has "
                f"{len(self.grid.axes)} axes"
            )
        axis = self.grid.axes[0]
        return SweepResult(
            parameter=axis.parameter,
            values=list(axis.values),
            summaries=list(self.summaries),
            resumed=[True] * len(self.summaries),
        )


def collect_grid(store: ResultStore | str, grid: GridSpec) -> GridResult:
    """Load every point's committed summary; raises if any is missing."""
    from repro.sched.grid import point_summary

    store = ResultStore.coerce(store)
    summaries = []
    missing = []
    for point in grid.points():
        record = store.read_record(point.digest)
        summary = None if record is None else point_summary(point, record)
        if summary is None:
            missing.append(point.label)
        else:
            summaries.append(summary)
    if missing:
        raise SchedulerError(
            f"grid has {len(missing)} uncommitted point(s) "
            f"(first: {missing[0]!r}) — drain it with run_grid or "
            "'sched work' before collecting"
        )
    return GridResult(grid=grid, summaries=summaries)
