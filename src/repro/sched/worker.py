"""The worker loop: claim a pending grid point, execute, commit, repeat.

One invocation of :func:`run_worker` drains as much of a grid's
frontier as it can get leases for.  The loop per pass over the points:

1. **Skip** points whose record is already committed (the store is the
   single source of truth — a lease is only ever an optimization to
   avoid duplicate work, never a correctness requirement).
2. **Claim** the next pending point via ``O_EXCL`` lease creation,
   reclaiming leases whose heartbeat went silent for a TTL
   (:mod:`repro.sched.leases`).
3. **Re-check** the record after claiming — the previous holder may
   have committed between our staleness check and the reclaim.
4. **Execute** the point exactly as a store-backed ``sweep_scenario``
   would (same seed derivation, same label, same closeness inputs,
   same merged run kwargs), heartbeating the lease from a daemon
   thread throughout.
5. **Commit** the digest-keyed record atomically, then release the
   lease.

A worker that is SIGKILL'd anywhere in this loop leaves at most one
stale lease and some invisible temp files; both are reclaimed/swept by
other workers and ``gc``, and the recomputed record is byte-identical
— see the chaos tests.

Workers never coordinate beyond the shared filesystem: run several
``repro-experiments sched work`` processes on machines sharing the
store directory and they cooperate exactly like local ones.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.obs import get_registry
from repro.obs import monotonic as obs_monotonic
from repro.obs import span as obs_span
from repro.scenario.runner import ScenarioFactory
from repro.sim.pi_cache import SharedPiCache
from repro.sim.runner import run_trials
from repro.store import ResultStore

from repro.sched.grid import GridPoint, GridSpec, point_record
from repro.sched.leases import DEFAULT_LEASE_TTL, LeaseManager

__all__ = ["WorkerStats", "run_worker"]


@dataclass
class WorkerStats:
    """What one :func:`run_worker` invocation did."""

    computed: int = 0
    resumed_skips: int = 0  # points found committed before claiming
    lease_denied: int = 0  # points another worker held fresh leases on
    lost_leases: int = 0  # leases reclaimed from us mid-computation
    digests: list[str] = field(default_factory=list)


def run_worker(
    store: ResultStore | str,
    grid: GridSpec,
    *,
    ttl: float = DEFAULT_LEASE_TTL,
    poll: float = 0.2,
    heartbeat_interval: float | None = None,
    shared_pi_cache: SharedPiCache | bool | None = None,
    max_points: int | None = None,
    worker_id: str | None = None,
    on_point: Callable[[GridPoint, WorkerStats], None] | None = None,
) -> WorkerStats:
    """Drain a grid's frontier until every point is committed.

    Returns once every point of ``grid`` has a committed record in
    ``store`` (some computed here, some by other workers), or after
    committing ``max_points`` new points.  ``poll`` is the idle sleep
    while waiting on points other workers hold leases for; the lease
    heartbeat fires every ``heartbeat_interval`` seconds (default
    ``ttl / 4``).  ``shared_pi_cache=True`` attaches a cross-point join
    kernel cache whose disk tier lives inside the store.
    """
    store = ResultStore.coerce(store)
    if heartbeat_interval is None:
        heartbeat_interval = ttl / 4.0
    pi_cache: SharedPiCache | None
    if shared_pi_cache is True:
        pi_cache = SharedPiCache(disk=store.pi_cache())
    elif isinstance(shared_pi_cache, SharedPiCache):
        pi_cache = shared_pi_cache
    else:
        pi_cache = None

    grid_dir = store.sched_dir / grid.grid_digest()
    manager = LeaseManager(grid_dir, ttl=ttl, worker_id=worker_id)
    gamma_star, total_demand = grid.closeness_inputs()
    run_params = grid.run_params
    stats = WorkerStats()
    # Per-outcome counters + point latency; cumulative, process-wide.
    registry = get_registry()
    outcomes = {
        outcome: registry.counter("repro_sched_points_total", outcome=outcome)
        for outcome in ("computed", "resumed_skip", "lease_denied", "lost_lease")
    }
    point_seconds = registry.histogram("repro_sched_point_seconds")

    while True:
        outstanding = 0
        progressed = False
        for point in grid.points():
            if store.has_record(point.digest):
                continue
            outstanding += 1
            lease = manager.try_claim(point.digest)
            if lease is None:
                stats.lease_denied += 1
                outcomes["lease_denied"].inc()
                continue
            try:
                # The reclaimed holder may have committed after our
                # staleness check — the record, not the lease, decides.
                if store.has_record(point.digest):
                    stats.resumed_skips += 1
                    outcomes["resumed_skip"].inc()
                    progressed = True
                    continue
                started = obs_monotonic()
                with lease.heartbeat(heartbeat_interval) as lost:
                    with obs_span("sched_point", digest=point.digest, label=point.label):
                        summary = run_trials(
                            ScenarioFactory(point.spec, pi_cache),
                            grid.rounds,
                            grid.trials,
                            seed=point.seed,
                            label=point.label,
                            gamma_star=gamma_star,
                            total_demand=total_demand,
                            processes=0,
                            keep_results=False,
                            params=dict(point.coords),
                            **run_params,
                        )
                point_seconds.observe(obs_monotonic() - started)
                # Commit even when the lease was lost: the digest pins
                # the content, so a double commit writes identical bytes.
                arrays, meta = point_record(point, summary)
                with obs_span("sched_commit", digest=point.digest):
                    store.write_record(point.digest, arrays, meta)
                if lost.is_set():
                    stats.lost_leases += 1
                    outcomes["lost_lease"].inc()
                stats.computed += 1
                outcomes["computed"].inc()
                stats.digests.append(point.digest)
                progressed = True
                if on_point is not None:
                    on_point(point, stats)
            finally:
                lease.release()
            if max_points is not None and stats.computed >= max_points:
                return stats
        if outstanding == 0:
            return stats
        if not progressed:
            # Everything pending is leased by live workers — wait for
            # them to commit (or for their heartbeats to go stale).
            time.sleep(poll)


def execute_point(
    point: GridPoint,
    grid: GridSpec,
    *,
    shared_pi_cache: SharedPiCache | None = None,
) -> dict[str, Any]:
    """Compute one point in isolation (no store, no lease) — test hook."""
    gamma_star, total_demand = grid.closeness_inputs()
    summary = run_trials(
        ScenarioFactory(point.spec, shared_pi_cache),
        grid.rounds,
        grid.trials,
        seed=point.seed,
        label=point.label,
        gamma_star=gamma_star,
        total_demand=total_demand,
        processes=0,
        keep_results=False,
        params=dict(point.coords),
        **grid.run_params,
    )
    arrays, meta = point_record(point, summary)
    return {"summary": summary, "arrays": arrays, "meta": meta}
