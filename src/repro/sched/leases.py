"""Lease files: crash-tolerant exclusive claims on grid points.

A worker *claims* a grid point by creating
``<grid_dir>/leases/<point digest>.lease`` with ``O_CREAT | O_EXCL`` —
the one filesystem primitive that is atomic on every local and NFS
filesystem we care about.  The file's single JSON line records the
owner (:func:`repro.store.owner_token`: host, pid, acquire time), and
its **mtime is the heartbeat**: the owner refreshes it with
``os.utime`` while computing, and any other worker may reclaim a lease
whose mtime is older than the TTL (the owner was SIGKILL'd, lost the
machine, or hung).

Reclaim uses :func:`repro.store.break_stale`'s rename-steal protocol:
rename the lease aside to a unique name, re-check staleness on the
stolen file, and either unlink it or put it back.  Two reclaimers can
race; exactly one wins the rename, and a live owner that refreshes at
the wrong moment is restored, never deleted.  The worst case is a
point being executed twice — which is *safe*, because commits are
digest-keyed atomic records with deterministic bytes: both executions
produce the identical record and the last rename wins harmlessly.
That idempotence, not locking, is what makes the scheduler's
crash-recovery guarantee hold (see ``tests/sched``'s byte-identity
proofs).

Reclaims are logged to ``<grid_dir>/reclaimed.log`` (one canonical
JSON line per event, ``O_APPEND`` so concurrent writers interleave
whole lines) so ``sched status`` can report how many points were
rescued from dead workers.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.obs import event as obs_event
from repro.obs import get_registry
from repro.store import (
    LEASE_SUFFIX,
    break_stale,
    canonical_json,
    owner_token,
    read_owner,
    write_owner_file,
)

__all__ = ["DEFAULT_LEASE_TTL", "Lease", "LeaseManager"]

#: Seconds without a heartbeat after which a lease may be reclaimed.
#: Generous relative to heartbeats (every ``ttl / 4``) so a paused
#: worker is not preempted by a scheduling hiccup, short enough that a
#: killed worker's points are re-leased promptly.
DEFAULT_LEASE_TTL = 60.0

RECLAIM_LOG = "reclaimed.log"


@dataclass
class Lease:
    """A held claim on one grid point; refresh it or lose it."""

    path: Path
    token: dict[str, Any]

    def refresh(self) -> bool:
        """Heartbeat: bump mtime iff we still own the lease.

        Returns ``False`` (without touching anything) when the lease
        was reclaimed from under us — the worker should finish its
        current point (the commit is idempotent) but must not fight
        for the lease back.
        """
        if read_owner(self.path) != self.token:
            return False
        try:
            os.utime(self.path)
        except OSError:
            return False
        get_registry().counter("repro_sched_heartbeats_total").inc()
        return True

    def release(self) -> bool:
        """Drop the claim; no-op if it was already reclaimed."""
        if read_owner(self.path) != self.token:
            return False
        try:
            self.path.unlink()
        except OSError:
            return False
        return True

    @contextmanager
    def heartbeat(self, interval: float) -> Iterator[threading.Event]:
        """Refresh every ``interval`` s from a daemon thread.

        Yields an :class:`~threading.Event` that is set if the lease is
        lost mid-computation (informational — committing is still
        correct, claiming new work with a stale identity is not).
        """
        lost = threading.Event()
        stop = threading.Event()

        def beat() -> None:
            while not stop.wait(interval):
                if not self.refresh():
                    lost.set()
                    return

        thread = threading.Thread(target=beat, name="lease-heartbeat", daemon=True)
        thread.start()
        try:
            yield lost
        finally:
            stop.set()
            thread.join()


@dataclass
class LeaseManager:
    """Claims points of one grid directory on behalf of one worker."""

    grid_dir: Path
    ttl: float = DEFAULT_LEASE_TTL
    worker_id: str | None = None
    _lease_dir: Path = field(init=False)

    def __post_init__(self) -> None:
        self.grid_dir = Path(self.grid_dir)
        if self.ttl <= 0:
            raise ValueError(f"lease ttl must be positive, got {self.ttl!r}")
        self._lease_dir = self.grid_dir / "leases"
        self._lease_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def lease_path(self, digest: str) -> Path:
        return self._lease_dir / f"{digest}{LEASE_SUFFIX}"

    def _token(self) -> dict[str, Any]:
        token = owner_token()
        if self.worker_id is not None:
            token["worker"] = str(self.worker_id)
        return token

    def try_claim(self, digest: str) -> Lease | None:
        """Claim a point, reclaiming a stale lease if one blocks us.

        Returns ``None`` when another worker holds a *fresh* lease (or
        wins the race for a stale one) — the caller just moves on to
        the next pending point.
        """
        path = self.lease_path(digest)
        for _ in range(2):
            token = self._token()
            if write_owner_file(path, token):
                return Lease(path=path, token=token)
            evicted = break_stale(path, self.ttl)
            if evicted is None:
                return None
            self._log_reclaim(digest, evicted)
        return None

    def holder(self, digest: str) -> dict[str, Any] | None:
        """Current owner token of a point's lease, if any."""
        return read_owner(self.lease_path(digest))

    def is_leased(self, digest: str) -> bool:
        """True iff a lease exists and its heartbeat is within the TTL."""
        path = self.lease_path(digest)
        try:
            stat = path.stat()
        except OSError:
            return False
        # Lease freshness is the mtime heartbeat against the wall clock.
        return (time.time() - stat.st_mtime) <= self.ttl  # repro-lint: disable=RPR002

    # ------------------------------------------------------------------
    def _log_reclaim(self, digest: str, evicted: dict[str, Any]) -> None:
        get_registry().counter("repro_sched_reclaims_total").inc()
        obs_event("sched_reclaim", digest=digest)
        line = canonical_json(
            {
                "digest": digest,
                "evicted": evicted,
                "by": self._token(),
            }
        )
        fd = os.open(
            self.grid_dir / RECLAIM_LOG,
            os.O_WRONLY | os.O_CREAT | os.O_APPEND,
            0o644,
        )
        try:
            os.write(fd, line.encode("utf-8") + b"\n")
        finally:
            os.close(fd)

    def reclaim_events(self) -> list[dict[str, Any]]:
        """Parsed reclaim log (empty when nothing was ever reclaimed)."""
        try:
            text = (self.grid_dir / RECLAIM_LOG).read_text(encoding="utf-8")
        except OSError:
            return []
        events = []
        for line in text.splitlines():
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # torn final line from a killed writer
        return events

    def reclaimed_count(self) -> int:
        return len(self.reclaim_events())
